// google-benchmark microbenchmarks for the numerical substrates: banded LU,
// FDFD assembly, FFT, GEMM, spectral/standard convolution (direct reference
// vs im2col+GEMM), blur, mode solver, and an end-to-end NN training step.
#include <benchmark/benchmark.h>

#include "fdfd/assembler.hpp"
#include "fdfd/mode_solver.hpp"
#include "math/banded.hpp"
#include "math/fft.hpp"
#include "math/gemm.hpp"
#include "math/rng.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/optim.hpp"
#include "nn/spectral.hpp"
#include "param/blur.hpp"

using namespace maps;

namespace {

fdfd::FdfdOperator make_op(index_t n) {
  grid::GridSpec spec{n, n, 0.1};
  math::Rng rng(3);
  math::RealGrid eps(n, n);
  for (index_t k = 0; k < eps.size(); ++k) eps[k] = 2.0 + 10.0 * rng.uniform();
  fdfd::PmlSpec pml;
  pml.ncells = static_cast<int>(n / 8);
  return fdfd::assemble(spec, eps, 4.05, pml);
}

}  // namespace

static void BM_FdfdAssemble(benchmark::State& state) {
  const index_t n = state.range(0);
  grid::GridSpec spec{n, n, 0.1};
  math::RealGrid eps(n, n, 6.0);
  fdfd::PmlSpec pml;
  pml.ncells = static_cast<int>(n / 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdfd::assemble(spec, eps, 4.05, pml));
  }
}
BENCHMARK(BM_FdfdAssemble)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedFactorize(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto op = make_op(n);
  for (auto _ : state) {
    auto band = math::to_band(op.A);
    band.factorize();
    benchmark::DoNotOptimize(band);
  }
}
BENCHMARK(BM_BandedFactorize)->Arg(32)->Arg(64)->Arg(96)->Arg(128)
    ->Unit(benchmark::kMillisecond);

static void BM_BandedTriangularSolve(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<cplx> b(static_cast<std::size_t>(n * n), cplx{1.0, 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(band.solve(b));
  }
}
BENCHMARK(BM_BandedTriangularSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedSolveLoop8(benchmark::State& state) {
  // Baseline for the multi-RHS kernel: 8 independent solve passes, each
  // streaming the full band array.
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<std::vector<cplx>> bs(8);
  math::Rng rng(21);
  for (auto& b : bs) {
    b.resize(static_cast<std::size_t>(n * n));
    for (auto& v : b) v = {rng.uniform(), rng.uniform()};
  }
  for (auto _ : state) {
    for (const auto& b : bs) benchmark::DoNotOptimize(band.solve(b));
  }
}
BENCHMARK(BM_BandedSolveLoop8)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedSolveMulti8(benchmark::State& state) {
  // The batched kernel: one sweep over the factors applied to all 8 RHS.
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<std::vector<cplx>> bs(8);
  math::Rng rng(21);
  for (auto& b : bs) {
    b.resize(static_cast<std::size_t>(n * n));
    for (auto& v : b) v = {rng.uniform(), rng.uniform()};
  }
  for (auto _ : state) {
    auto work = bs;
    band.solve_multi_inplace(work);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_BandedSolveMulti8)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_Fft2(benchmark::State& state) {
  const index_t n = state.range(0);
  math::Rng rng(5);
  math::CplxGrid g(n, n);
  for (index_t k = 0; k < g.size(); ++k) g[k] = {rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::fft2(g));
  }
}
BENCHMARK(BM_Fft2)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

static void BM_Conv2d(benchmark::State& state) {
  math::Rng rng(7);
  nn::Conv2d conv(12, 12, 3, rng);
  nn::Tensor x({8, 12, 64, 64});
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_Conv2d)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ GEMM kernels

static void BM_Sgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  math::Rng rng(11);
  std::vector<float> A(static_cast<std::size_t>(n * n)), B(A.size()), C(A.size());
  for (auto& v : A) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : B) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    math::sgemm(math::Trans::No, math::Trans::No, n, n, n, 1.0f, A.data(), n,
                B.data(), n, 0.0f, C.data(), n);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Sgemm)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

static void BM_SgemmConvShape(benchmark::State& state) {
  // The exact GEMM the 3x3/32ch/64x64 conv forward lowers onto.
  const index_t M = 32, N = 64 * 64, K = 32 * 9;
  math::Rng rng(13);
  std::vector<float> A(static_cast<std::size_t>(M * K)),
      B(static_cast<std::size_t>(K * N)), C(static_cast<std::size_t>(M * N));
  for (auto& v : A) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : B) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    math::sgemm(math::Trans::No, math::Trans::No, M, N, K, 1.0f, A.data(), K,
                B.data(), N, 0.0f, C.data(), N);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(M) * N * K * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_SgemmConvShape)->Unit(benchmark::kMillisecond);

// ------------------------------------- direct vs im2col+GEMM convolution

namespace {

// The seed's direct Conv2d loops (multi-index arithmetic, bounds checks in
// the innermost loop), kept verbatim as the baseline the ROADMAP speedup
// target is measured against.
struct DirectConvRef {
  index_t c_in, c_out, k;
  nn::Tensor w, b;

  DirectConvRef(index_t ci, index_t co, index_t kk, math::Rng& rng)
      : c_in(ci), c_out(co), k(kk), w({co, ci, kk, kk}), b({co}) {
    for (index_t i = 0; i < w.numel(); ++i) {
      w[i] = static_cast<float>(rng.uniform(-0.1, 0.1));
    }
  }

  nn::Tensor forward(const nn::Tensor& x) const {
    const index_t N = x.size(0), H = x.size(2), W = x.size(3), r = k / 2;
    nn::Tensor y({N, c_out, H, W});
    for (index_t n = 0; n < N; ++n) {
      for (index_t co_i = 0; co_i < c_out; ++co_i) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t ww = 0; ww < W; ++ww) {
            float s = b[co_i];
            for (index_t ci = 0; ci < c_in; ++ci) {
              for (index_t kh = 0; kh < k; ++kh) {
                const index_t hh = h + kh - r;
                if (hh < 0 || hh >= H) continue;
                for (index_t kw = 0; kw < k; ++kw) {
                  const index_t wc = ww + kw - r;
                  if (wc < 0 || wc >= W) continue;
                  s += w.at(co_i, ci, kh, kw) * x.at(n, ci, hh, wc);
                }
              }
            }
            y.at(n, co_i, h, ww) = s;
          }
        }
      }
    }
    return y;
  }

  // Weight/bias/input gradients with the seed's loop structure.
  nn::Tensor backward(const nn::Tensor& x, const nn::Tensor& gy, nn::Tensor& dw,
                      nn::Tensor& db) const {
    const index_t N = x.size(0), H = x.size(2), W = x.size(3), r = k / 2;
    for (index_t co_i = 0; co_i < c_out; ++co_i) {
      double s = 0.0;
      for (index_t n = 0; n < N; ++n) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t ww = 0; ww < W; ++ww) s += gy.at(n, co_i, h, ww);
        }
      }
      db[co_i] += static_cast<float>(s);
    }
    for (index_t co_i = 0; co_i < c_out; ++co_i) {
      for (index_t ci = 0; ci < c_in; ++ci) {
        for (index_t kh = 0; kh < k; ++kh) {
          for (index_t kw = 0; kw < k; ++kw) {
            double s = 0.0;
            for (index_t n = 0; n < N; ++n) {
              for (index_t h = 0; h < H; ++h) {
                const index_t hh = h + kh - r;
                if (hh < 0 || hh >= H) continue;
                for (index_t ww = 0; ww < W; ++ww) {
                  const index_t wc = ww + kw - r;
                  if (wc < 0 || wc >= W) continue;
                  s += gy.at(n, co_i, h, ww) * x.at(n, ci, hh, wc);
                }
              }
            }
            dw.at(co_i, ci, kh, kw) += static_cast<float>(s);
          }
        }
      }
    }
    nn::Tensor gx({N, c_in, H, W});
    for (index_t n = 0; n < N; ++n) {
      for (index_t ci = 0; ci < c_in; ++ci) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t ww = 0; ww < W; ++ww) {
            float s = 0.0f;
            for (index_t co_i = 0; co_i < c_out; ++co_i) {
              for (index_t kh = 0; kh < k; ++kh) {
                const index_t ho = h - (kh - r);
                if (ho < 0 || ho >= H) continue;
                for (index_t kw = 0; kw < k; ++kw) {
                  const index_t wo = ww - (kw - r);
                  if (wo < 0 || wo >= W) continue;
                  s += w.at(co_i, ci, kh, kw) * gy.at(n, co_i, ho, wo);
                }
              }
            }
            gx.at(n, ci, h, ww) = s;
          }
        }
      }
    }
    return gx;
  }
};

nn::Tensor conv_bench_input(unsigned seed) {
  math::Rng rng(seed);
  nn::Tensor x({4, 32, 64, 64});
  for (index_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return x;
}

}  // namespace

static void BM_Conv2dDirectFwdBwd(benchmark::State& state) {
  // Baseline: seed direct loops, 3x3 kernel, 32 channels, 64x64 grid.
  math::Rng rng(17);
  DirectConvRef conv(32, 32, 3, rng);
  const nn::Tensor x = conv_bench_input(19);
  const nn::Tensor gy = conv_bench_input(23);
  nn::Tensor dw = nn::Tensor::zeros_like(conv.w), db({32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
    benchmark::DoNotOptimize(conv.backward(x, gy, dw, db));
  }
}
BENCHMARK(BM_Conv2dDirectFwdBwd)->Unit(benchmark::kMillisecond);

static void BM_Conv2dGemmFwdBwd(benchmark::State& state) {
  // The im2col+GEMM path on the identical problem.
  math::Rng rng(17);
  nn::Conv2d conv(32, 32, 3, rng);
  const nn::Tensor x = conv_bench_input(19);
  const nn::Tensor gy = conv_bench_input(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
    benchmark::DoNotOptimize(conv.backward(gy));
  }
}
BENCHMARK(BM_Conv2dGemmFwdBwd)->Unit(benchmark::kMillisecond);

// --------------------------------------------------- training-step e2e

static void BM_TrainStep(benchmark::State& state) {
  // One optimizer step of the FNO surrogate on a synthetic batch: forward,
  // NMSE-style gradient, backward, Adam update — the inner loop of
  // MAPS-Train, end to end.
  math::Rng rng(29);
  nn::Fno2d model(4, 2, /*width=*/16, /*modes=*/8, /*depth=*/2, rng);
  nn::Tensor x({4, 4, 32, 32}), target({4, 2, 32, 32});
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform(-1, 1));
  for (index_t i = 0; i < target.numel(); ++i) {
    target[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  nn::Adam adam(model.parameters());
  for (auto _ : state) {
    model.zero_grad();
    nn::Tensor pred = model.forward(x);
    nn::Tensor g = nn::Tensor::zeros_like(pred);
    for (index_t i = 0; i < g.numel(); ++i) g[i] = pred[i] - target[i];
    model.backward(g);
    adam.step();
    benchmark::DoNotOptimize(pred);
  }
  state.counters["samples_per_s"] = benchmark::Counter(
      4.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMillisecond);

static void BM_SpectralConv2d(benchmark::State& state) {
  math::Rng rng(9);
  nn::SpectralConv2d spec(12, 12, 8, 8, rng);
  nn::Tensor x({8, 12, 64, 64});
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.forward(x));
  }
}
BENCHMARK(BM_SpectralConv2d)->Unit(benchmark::kMillisecond);

static void BM_BlurFilter(benchmark::State& state) {
  param::BlurFilter blur(2.0);
  math::RealGrid x(48, 48, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blur.forward(x));
  }
}
BENCHMARK(BM_BlurFilter)->Unit(benchmark::kMicrosecond);

static void BM_SlabModeSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> eps(n, 2.07);
  for (std::size_t i = n / 2 - n / 10; i < n / 2 + n / 10; ++i) eps[i] = 12.11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fdfd::solve_slab_modes(eps, 0.02, omega_of_wavelength(1.55), 2));
  }
}
BENCHMARK(BM_SlabModeSolve)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
