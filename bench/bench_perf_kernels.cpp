// google-benchmark microbenchmarks for the numerical substrates: banded LU,
// FDFD assembly, FFT, spectral/standard convolution, blur, mode solver.
#include <benchmark/benchmark.h>

#include "fdfd/assembler.hpp"
#include "fdfd/mode_solver.hpp"
#include "math/banded.hpp"
#include "math/fft.hpp"
#include "math/rng.hpp"
#include "nn/layers.hpp"
#include "nn/spectral.hpp"
#include "param/blur.hpp"

using namespace maps;

namespace {

fdfd::FdfdOperator make_op(index_t n) {
  grid::GridSpec spec{n, n, 0.1};
  math::Rng rng(3);
  math::RealGrid eps(n, n);
  for (index_t k = 0; k < eps.size(); ++k) eps[k] = 2.0 + 10.0 * rng.uniform();
  fdfd::PmlSpec pml;
  pml.ncells = static_cast<int>(n / 8);
  return fdfd::assemble(spec, eps, 4.05, pml);
}

}  // namespace

static void BM_FdfdAssemble(benchmark::State& state) {
  const index_t n = state.range(0);
  grid::GridSpec spec{n, n, 0.1};
  math::RealGrid eps(n, n, 6.0);
  fdfd::PmlSpec pml;
  pml.ncells = static_cast<int>(n / 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdfd::assemble(spec, eps, 4.05, pml));
  }
}
BENCHMARK(BM_FdfdAssemble)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedFactorize(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto op = make_op(n);
  for (auto _ : state) {
    auto band = math::to_band(op.A);
    band.factorize();
    benchmark::DoNotOptimize(band);
  }
}
BENCHMARK(BM_BandedFactorize)->Arg(32)->Arg(64)->Arg(96)->Arg(128)
    ->Unit(benchmark::kMillisecond);

static void BM_BandedTriangularSolve(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<cplx> b(static_cast<std::size_t>(n * n), cplx{1.0, 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(band.solve(b));
  }
}
BENCHMARK(BM_BandedTriangularSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedSolveLoop8(benchmark::State& state) {
  // Baseline for the multi-RHS kernel: 8 independent solve passes, each
  // streaming the full band array.
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<std::vector<cplx>> bs(8);
  math::Rng rng(21);
  for (auto& b : bs) {
    b.resize(static_cast<std::size_t>(n * n));
    for (auto& v : b) v = {rng.uniform(), rng.uniform()};
  }
  for (auto _ : state) {
    for (const auto& b : bs) benchmark::DoNotOptimize(band.solve(b));
  }
}
BENCHMARK(BM_BandedSolveLoop8)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_BandedSolveMulti8(benchmark::State& state) {
  // The batched kernel: one sweep over the factors applied to all 8 RHS.
  const index_t n = state.range(0);
  const auto op = make_op(n);
  auto band = math::to_band(op.A);
  band.factorize();
  std::vector<std::vector<cplx>> bs(8);
  math::Rng rng(21);
  for (auto& b : bs) {
    b.resize(static_cast<std::size_t>(n * n));
    for (auto& v : b) v = {rng.uniform(), rng.uniform()};
  }
  for (auto _ : state) {
    auto work = bs;
    band.solve_multi_inplace(work);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_BandedSolveMulti8)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_Fft2(benchmark::State& state) {
  const index_t n = state.range(0);
  math::Rng rng(5);
  math::CplxGrid g(n, n);
  for (index_t k = 0; k < g.size(); ++k) g[k] = {rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::fft2(g));
  }
}
BENCHMARK(BM_Fft2)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

static void BM_Conv2d(benchmark::State& state) {
  math::Rng rng(7);
  nn::Conv2d conv(12, 12, 3, rng);
  nn::Tensor x({8, 12, 64, 64});
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_Conv2d)->Unit(benchmark::kMillisecond);

static void BM_SpectralConv2d(benchmark::State& state) {
  math::Rng rng(9);
  nn::SpectralConv2d spec(12, 12, 8, 8, rng);
  nn::Tensor x({8, 12, 64, 64});
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.forward(x));
  }
}
BENCHMARK(BM_SpectralConv2d)->Unit(benchmark::kMillisecond);

static void BM_BlurFilter(benchmark::State& state) {
  param::BlurFilter blur(2.0);
  math::RealGrid x(48, 48, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blur.forward(x));
  }
}
BENCHMARK(BM_BlurFilter)->Unit(benchmark::kMicrosecond);

static void BM_SlabModeSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> eps(n, 2.07);
  for (std::size_t i = n / 2 - n / 10; i < n / 2 + n / 10; ++i) eps[i] = 12.11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fdfd::solve_slab_modes(eps, 0.02, omega_of_wavelength(1.55), 2));
  }
}
BENCHMARK(BM_SlabModeSolve)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);
