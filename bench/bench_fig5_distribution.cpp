// Fig. 5 reproduction: what each sampling strategy actually collects.
//
// (a) Transmission-ratio histograms for random / opt-traj / perturbed
//     opt-traj sampling on the bending device. Random sampling should pile
//     up below ~10% transmission; trajectory sampling spans the range;
//     perturbation balances it.
// (b) t-SNE of the patterns (PCA-30 pre-reduction): low- and
//     high-performance patterns form separated clusters, and the perturbed
//     strategy covers both. We report the embedding (CSV) plus a
//     cluster-separation statistic instead of a figure.
#include <cstdio>

#include "analysis/histogram.hpp"
#include "math/stats.hpp"
#include "analysis/pca.hpp"
#include "analysis/tsne.hpp"
#include "common.hpp"

using namespace maps;

int main() {
  bench::Stopwatch watch;
  std::printf("=== Fig. 5: sampling-strategy data distributions (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);

  struct StrategyRun {
    data::SamplingStrategy strategy;
    data::Dataset set;
  };
  std::vector<StrategyRun> runs;
  for (auto strat : {data::SamplingStrategy::Random, data::SamplingStrategy::OptTraj,
                     data::SamplingStrategy::PerturbOptTraj}) {
    std::printf("[gen] %s...\n", data::strategy_name(strat));
    auto opt = bench::train_sampler_options(strat, 77);
    const auto patterns = data::sample_patterns(device, devices::DeviceKind::Bend, opt);
    runs.push_back({strat, data::generate_dataset(device, patterns)});
  }

  // ---- (a) transmission histograms.
  std::printf("\n--- Fig. 5(a): transmission-ratio histograms ---\n");
  for (const auto& run : runs) {
    const auto t = run.set.primary_transmissions();
    const auto h = analysis::make_histogram(t, 0.0, 1.0, 10);
    std::printf("\n%s",
                analysis::ascii_histogram(
                    h, std::string(data::strategy_name(run.strategy)) + "  (n=" +
                           std::to_string(t.size()) + ")")
                    .c_str());
    const auto s = maps::math::summarize(t);
    std::printf("  mean %.3f  median %.3f  max %.3f  frac(T<0.1) %.2f\n", s.mean,
                s.median, s.max,
                static_cast<double>(h.counts[0]) / std::max<index_t>(1, h.total));
  }

  // ---- (b) t-SNE of patterns, random + perturbed pooled, labeled by
  // low/high transmission.
  std::printf("\n--- Fig. 5(b): t-SNE embedding of patterns ---\n");
  std::vector<std::vector<double>> rows;
  std::vector<int> perf_labels;    // 0 = low (T < 0.3), 1 = high
  std::vector<int> strat_labels;   // per strategy
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const auto& s : runs[r].set.samples) {
      rows.push_back(std::vector<double>(s.density.data().begin(),
                                         s.density.data().end()));
      perf_labels.push_back(s.transmissions.front() >= 0.3 ? 1 : 0);
      strat_labels.push_back(static_cast<int>(r));
    }
  }
  std::printf("[tsne] %zu patterns, PCA-30 pre-reduction...\n", rows.size());
  const auto reduced = analysis::pca(rows, 30).projected;
  analysis::TsneOptions topt;
  topt.iterations = bench::scaled(400, 120);
  topt.perplexity = 20.0;
  const auto emb = analysis::tsne(reduced, topt);

  const double sep_perf = analysis::cluster_separation(emb, perf_labels);
  std::printf("  low/high-performance cluster separation: %.3f "
              "(>0 = separated, matching the paper's visual)\n",
              sep_perf);

  int high_perturb = 0, high_random = 0, low_perturb = 0, low_random = 0;
  for (std::size_t i = 0; i < perf_labels.size(); ++i) {
    if (strat_labels[i] == 0) {
      (perf_labels[i] ? high_random : low_random)++;
    } else if (strat_labels[i] == 2) {
      (perf_labels[i] ? high_perturb : low_perturb)++;
    }
  }
  std::printf("  coverage: random %d low / %d high; perturbed opt-traj %d low / %d high\n",
              low_random, high_random, low_perturb, high_perturb);
  std::printf("  (perturbed opt-traj covers both clusters; random covers only low)\n");

  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < emb.size(); ++i) {
    csv_rows.push_back({emb[i][0], emb[i][1], static_cast<double>(perf_labels[i]),
                        static_cast<double>(strat_labels[i])});
  }
  analysis::write_csv("fig5b_tsne.csv", {"x", "y", "high_perf", "strategy"}, csv_rows);
  std::printf("  embedding written to fig5b_tsne.csv\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
