// The paper's headline motivation: AI surrogates accelerate simulation by
// orders of magnitude over numerical solvers. Compares a full FDFD solve
// (assemble + factorize + solve) against one FNO inference at the same
// resolution, plus the amortized re-solve (factorization cached) case.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "fdfd/simulation.hpp"
#include "fdfd/source.hpp"
#include "math/rng.hpp"

using namespace maps;

namespace {

math::RealGrid random_eps(index_t n) {
  math::Rng rng(11);
  math::RealGrid eps(n, n, 2.07);
  for (index_t j = n / 3; j < 2 * n / 3; ++j) {
    for (index_t i = n / 3; i < 2 * n / 3; ++i) {
      eps(i, j) = 2.07 + 10.0 * rng.uniform();
    }
  }
  return eps;
}

fdfd::SimOptions sim_opt(index_t n) {
  fdfd::SimOptions o;
  o.pml.ncells = static_cast<int>(n / 8);
  return o;
}

}  // namespace

static void BM_FdfdFullSolve(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdFullSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdCachedResolve(benchmark::State& state) {
  // New source, same structure: factorization amortized.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  (void)sim.solve(J);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdCachedResolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdSequentialMultiRhs(benchmark::State& state) {
  // 8 sources through one factorization, one back-substitution pass each.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  std::vector<math::CplxGrid> Js;
  for (index_t k = 0; k < 8; ++k) {
    Js.push_back(fdfd::point_source(spec, n / 4 + 2 * k, n / 2));
  }
  (void)sim.solve(Js[0]);  // factorize outside the timed loop
  for (auto _ : state) {
    for (const auto& J : Js) benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdSequentialMultiRhs)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdBatchedMultiRhs(benchmark::State& state) {
  // Same 8 sources through solve_batch: the multi-RHS banded sweep streams
  // the LU factors once per batch slice instead of once per source.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  std::vector<math::CplxGrid> Js;
  for (index_t k = 0; k < 8; ++k) {
    Js.push_back(fdfd::point_source(spec, n / 4 + 2 * k, n / 2));
  }
  (void)sim.solve(Js[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solve_batch(Js));
  }
}
BENCHMARK(BM_FdfdBatchedMultiRhs)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdWavelengthSweepCold(benchmark::State& state) {
  // 4-omega sweep, no cache: every omega re-assembles and re-factorizes.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  for (auto _ : state) {
    for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
      fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), sim_opt(n));
      benchmark::DoNotOptimize(sim.solve(J));
    }
  }
}
BENCHMARK(BM_FdfdWavelengthSweepCold)->Arg(64)->Unit(benchmark::kMillisecond);

static void BM_FdfdWavelengthSweepCached(benchmark::State& state) {
  // Same sweep through a FactorizationCache: after the first pass every
  // omega's factorization is a cache hit and only back-substitution remains.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  auto opts = sim_opt(n);
  opts.cache = std::make_shared<solver::FactorizationCache>(8);
  for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), opts);
    (void)sim.solve(J);  // warm the cache
  }
  for (auto _ : state) {
    for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
      fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), opts);
      benchmark::DoNotOptimize(sim.solve(J));
    }
  }
}
BENCHMARK(BM_FdfdWavelengthSweepCached)->Arg(64)->Unit(benchmark::kMillisecond);

static void BM_FdfdCoarseGridSolve(benchmark::State& state) {
  // The Low-fidelity path: restrict, solve on the half-resolution grid,
  // prolongate (~8x cheaper LU at matched physics).
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  auto opts = sim_opt(n);
  opts.set_fidelity(fdfd::FidelityLevel::Low);
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), opts);
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdCoarseGridSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FnoInference(benchmark::State& state) {
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({1, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInference)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FnoInferenceBatch8(benchmark::State& state) {
  // Surrogates amortize further across batched queries.
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({8, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInferenceBatch8)->Arg(64)->Unit(benchmark::kMillisecond);
