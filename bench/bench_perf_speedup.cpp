// The paper's headline motivation: AI surrogates accelerate simulation by
// orders of magnitude over numerical solvers. Compares a full FDFD solve
// (assemble + factorize + solve) against one FNO inference at the same
// resolution, plus the amortized re-solve (factorization cached) case.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/invdes/engine.hpp"
#include "core/invdes/init.hpp"
#include "devices/builders.hpp"
#include "devices/sparams.hpp"
#include "fdfd/simulation.hpp"
#include "fdfd/source.hpp"
#include "fdfd/te.hpp"
#include "math/rng.hpp"
#include "param/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http_server.hpp"
#include "serve/service.hpp"

using namespace maps;

namespace {

math::RealGrid random_eps(index_t n) {
  math::Rng rng(11);
  math::RealGrid eps(n, n, 2.07);
  for (index_t j = n / 3; j < 2 * n / 3; ++j) {
    for (index_t i = n / 3; i < 2 * n / 3; ++i) {
      eps(i, j) = 2.07 + 10.0 * rng.uniform();
    }
  }
  return eps;
}

fdfd::SimOptions sim_opt(index_t n) {
  fdfd::SimOptions o;
  o.pml.ncells = static_cast<int>(n / 8);
  return o;
}

}  // namespace

static void BM_FdfdFullSolve(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdFullSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdFullSolveMixed(benchmark::State& state) {
  // The same full solve on SolverPrecision::Mixed: fp32 split-complex
  // factorization + iterative refinement to double accuracy. The ratio of
  // BM_FdfdFullSolve to this is the mixed-precision speedup the CI perf
  // gate tracks as fdfd_mixed_vs_double.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  auto opts = sim_opt(n);
  opts.precision = solver::SolverPrecision::Mixed;
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), opts);
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdFullSolveMixed)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdCachedResolve(benchmark::State& state) {
  // New source, same structure: factorization amortized.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  (void)sim.solve(J);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdCachedResolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdSequentialMultiRhs(benchmark::State& state) {
  // 8 sources through one factorization, one back-substitution pass each.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  std::vector<math::CplxGrid> Js;
  for (index_t k = 0; k < 8; ++k) {
    Js.push_back(fdfd::point_source(spec, n / 4 + 2 * k, n / 2));
  }
  (void)sim.solve(Js[0]);  // factorize outside the timed loop
  for (auto _ : state) {
    for (const auto& J : Js) benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdSequentialMultiRhs)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdBatchedMultiRhs(benchmark::State& state) {
  // Same 8 sources through solve_batch: the multi-RHS banded sweep streams
  // the LU factors once per batch slice instead of once per source.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  std::vector<math::CplxGrid> Js;
  for (index_t k = 0; k < 8; ++k) {
    Js.push_back(fdfd::point_source(spec, n / 4 + 2 * k, n / 2));
  }
  (void)sim.solve(Js[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solve_batch(Js));
  }
}
BENCHMARK(BM_FdfdBatchedMultiRhs)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdWavelengthSweepCold(benchmark::State& state) {
  // 4-omega sweep, no cache: every omega re-assembles and re-factorizes.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  for (auto _ : state) {
    for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
      fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), sim_opt(n));
      benchmark::DoNotOptimize(sim.solve(J));
    }
  }
}
BENCHMARK(BM_FdfdWavelengthSweepCold)->Arg(64)->Unit(benchmark::kMillisecond);

static void BM_FdfdWavelengthSweepCached(benchmark::State& state) {
  // Same sweep through a FactorizationCache: after the first pass every
  // omega's factorization is a cache hit and only back-substitution remains.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  auto opts = sim_opt(n);
  opts.cache = std::make_shared<solver::FactorizationCache>(8);
  for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), opts);
    (void)sim.solve(J);  // warm the cache
  }
  for (auto _ : state) {
    for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
      fdfd::Simulation sim(spec, eps, omega_of_wavelength(lambda), opts);
      benchmark::DoNotOptimize(sim.solve(J));
    }
  }
}
BENCHMARK(BM_FdfdWavelengthSweepCached)->Arg(64)->Unit(benchmark::kMillisecond);

static void BM_FdfdCoarseGridSolve(benchmark::State& state) {
  // The Low-fidelity path: restrict, solve on the half-resolution grid,
  // prolongate (~8x cheaper LU at matched physics).
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  auto opts = sim_opt(n);
  opts.set_fidelity(fdfd::FidelityLevel::Low);
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), opts);
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdCoarseGridSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_InvdesStep(benchmark::State& state) {
  // One adjoint inverse-design iteration on the bend device: forward solves
  // for every excitation group plus one transposed (adjoint) batch, all
  // against one factorization per group — the direct-solve-dominated hot
  // loop of MAPS-InvDes, riding the split-complex kernel end to end.
  const auto device = devices::make_device(devices::DeviceKind::Bend);
  const auto theta0 = invdes::make_initial_theta(device, invdes::InitKind::PathSeed);
  invdes::InvDesOptions options;
  options.iterations = 1;
  for (auto _ : state) {
    invdes::InverseDesigner designer(
        device, devices::make_default_pipeline(device, devices::DeviceKind::Bend),
        options);
    benchmark::DoNotOptimize(designer.run(theta0));
  }
}
BENCHMARK(BM_InvdesStep)->Unit(benchmark::kMillisecond);

namespace {

// Full S-parameter pass over the bend device's excitations at three
// wavelengths: one assembly + factorization + solve per (excitation,
// lambda) — the verification sweep that follows every inverse-design run.
// Shared by the split and interleaved variants so the ratio the CI perf
// gate tracks cannot drift from a one-sided edit.
void sparam_sweep_body(benchmark::State& state) {
  std::vector<devices::DeviceProblem> sweep;
  for (const double lambda : {1.50, 1.55, 1.60}) {
    devices::BuildOptions bo;
    bo.lambda = lambda;
    sweep.push_back(devices::make_device(devices::DeviceKind::Bend, bo));
  }
  maps::math::RealGrid rho(sweep.front().design_map.box.ni,
                           sweep.front().design_map.box.nj, 0.5);
  const auto eps = param::embed_density(sweep.front().design_map, rho);
  for (auto _ : state) {
    for (const auto& device : sweep) {
      benchmark::DoNotOptimize(devices::compute_sparams(device, eps));
    }
  }
}

}  // namespace

static void BM_SparamSweep(benchmark::State& state) { sparam_sweep_body(state); }
BENCHMARK(BM_SparamSweep)->Unit(benchmark::kMillisecond);

static void BM_SparamSweepInterleaved(benchmark::State& state) {
  // The same sweep on the MAPS_SOLVER_INTERLEAVED fallback. The ratio of
  // this to BM_SparamSweep is the split-kernel speedup measured within one
  // run — runner-speed-independent, which is what the CI perf gate tracks.
  // Save/restore the variable so an operator-set value (a whole-suite
  // interleaved A/B run) survives this benchmark.
  const char* prev = std::getenv("MAPS_SOLVER_INTERLEAVED");
  const std::string saved = prev != nullptr ? prev : "";
  setenv("MAPS_SOLVER_INTERLEAVED", "1", 1);
  sparam_sweep_body(state);
  if (prev != nullptr) {
    setenv("MAPS_SOLVER_INTERLEAVED", saved.c_str(), 1);
  } else {
    unsetenv("MAPS_SOLVER_INTERLEAVED");
  }
}
BENCHMARK(BM_SparamSweepInterleaved)->Unit(benchmark::kMillisecond);

namespace {

/// RAII save/set/restore of one environment variable for A/B bench bodies.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

}  // namespace

static void BM_SparamSweepMixed(benchmark::State& state) {
  // The same sweep with MAPS_SOLVER_PRECISION=mixed: every factorization in
  // the pass runs fp32 + refinement. BM_SparamSweep / this is the
  // sparam_mixed_vs_double CI gate — the end-to-end mixed-precision win on
  // the verification workload, measured within one run.
  ScopedEnv env("MAPS_SOLVER_PRECISION", "mixed");
  sparam_sweep_body(state);
}
BENCHMARK(BM_SparamSweepMixed)->Unit(benchmark::kMillisecond);

namespace {

// TE (Hz-polarized) full solve: assembly + factorization + one solve, the
// hot loop of TE-mode studies. Shared by the split/interleaved pair below so
// the te_split_vs_interleaved CI gate compares identical work.
void te_solve_body(benchmark::State& state, index_t n) {
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto Mz = fdfd::point_source(spec, n / 4, n / 2);
  fdfd::PmlSpec pml;
  pml.ncells = static_cast<int>(n / 8);
  for (auto _ : state) {
    fdfd::TeSimulation sim(spec, eps, omega_of_wavelength(1.55), pml);
    benchmark::DoNotOptimize(sim.solve(Mz));
  }
}

}  // namespace

static void BM_TeSolveSplit(benchmark::State& state) {
  te_solve_body(state, state.range(0));
}
BENCHMARK(BM_TeSolveSplit)->Arg(64)->Unit(benchmark::kMillisecond);

static void BM_TeSolveInterleaved(benchmark::State& state) {
  ScopedEnv env("MAPS_SOLVER_INTERLEAVED", "1");
  te_solve_body(state, state.range(0));
}
BENCHMARK(BM_TeSolveInterleaved)->Arg(64)->Unit(benchmark::kMillisecond);

namespace {

// --------------------------------------------------------- serve throughput
//
// BM_ServeThroughput pair: the same stream of distinct surrogate queries
// served (a) strictly one request at a time — the only mode the stateful
// training forward() supported before the serving layer existed — and (b)
// through the micro-batcher on 4 TaskQueue workers. The ratio of the two
// real_times is the serving win (request-dispatch amortization + batched
// const inference + worker parallelism) measured within one run, which is
// what the CI perf gate tracks as serve_batched_vs_unbatched. The result
// cache is disabled in both so the comparison is pure model inference; the
// requests use the 32x32 grid of the Low-fidelity (factor-2 coarse) serving
// tier.

constexpr index_t kServeGrid = 32;
constexpr int kServeRequests = 64;

std::shared_ptr<maps::serve::ModelRegistry> serve_registry() {
  nn::ModelConfig mcfg;
  mcfg.kind = nn::ModelKind::Fno;
  mcfg.in_channels = 4;
  mcfg.out_channels = 2;
  mcfg.width = 8;
  mcfg.modes = 4;
  mcfg.depth = 2;
  auto registry = std::make_shared<maps::serve::ModelRegistry>();
  registry->install("bench-fno", mcfg, nn::make_model(mcfg));
  return registry;
}

std::vector<maps::serve::ServeRequest> serve_requests() {
  std::vector<maps::serve::ServeRequest> reqs;
  reqs.reserve(kServeRequests);
  const index_t n = kServeGrid;
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  math::Rng rng(29);
  for (int k = 0; k < kServeRequests; ++k) {
    maps::serve::ServeRequest req;
    req.spec = spec;
    // Distinct pattern per request: no two queries share a cache key.
    math::RealGrid eps(n, n, 2.07);
    for (index_t j = n / 3; j < 2 * n / 3; ++j) {
      for (index_t i = n / 3; i < 2 * n / 3; ++i) {
        eps(i, j) = 2.07 + 10.0 * rng.uniform();
      }
    }
    req.eps = std::move(eps);
    req.J = fdfd::point_source(spec, n / 4 + (k % 8), n / 2);
    req.omega = omega_of_wavelength(1.55);
    req.pml.ncells = static_cast<int>(n / 8);
    req.fidelity = solver::FidelityLevel::Low;
    reqs.push_back(std::move(req));
  }
  return reqs;
}

}  // namespace

static void BM_ServeOneAtATime(benchmark::State& state) {
  const auto registry = serve_registry();
  const auto requests = serve_requests();
  maps::serve::ServeOptions options;
  options.max_batch = 1;  // no coalescing: each request is its own forward
  options.max_delay_ms = 0.0;
  options.workers = 1;
  options.cache_capacity = 0;
  maps::serve::PredictionService service(registry, options);
  for (auto _ : state) {
    for (const auto& req : requests) {
      benchmark::DoNotOptimize(service.predict(req));
    }
  }
  state.SetItemsProcessed(state.iterations() * kServeRequests);
}
BENCHMARK(BM_ServeOneAtATime)->Unit(benchmark::kMillisecond);

static void BM_ServeMicroBatched(benchmark::State& state) {
  const auto registry = serve_registry();
  const auto requests = serve_requests();
  maps::serve::ServeOptions options;
  options.max_batch = 32;
  options.max_delay_ms = 2.0;
  options.workers = 4;
  options.cache_capacity = 0;
  maps::serve::PredictionService service(registry, options);
  for (auto _ : state) {
    std::vector<maps::runtime::Future<maps::serve::ServeResponse>> futures;
    futures.reserve(requests.size());
    for (const auto& req : requests) futures.push_back(service.submit(req));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * kServeRequests);
}
BENCHMARK(BM_ServeMicroBatched)->Unit(benchmark::kMillisecond);

namespace {

// ----------------------------------------------------- stampede coalescing
//
// BM_ServeStampede pair: 32 clients race the SAME cold-cache query. Without
// coalescing every racer runs its own surrogate forward; with it the first
// becomes the leader, the other 31 attach to the in-flight computation and
// share the answer. The CI perf gate tracks the ratio of the two real_times
// as serve_coalesced_vs_stampede.

constexpr int kStampedeClients = 32;

double run_stampede_wave(maps::serve::PredictionService& service,
                         const maps::serve::ServeRequest& req) {
  std::vector<maps::runtime::Future<maps::serve::ServeResponse>> futures;
  futures.reserve(kStampedeClients);
  for (int k = 0; k < kStampedeClients; ++k) futures.push_back(service.submit(req));
  double checksum = 0.0;
  for (auto& f : futures) checksum += f.get().latency_ms;
  return checksum;
}

maps::serve::ServeOptions stampede_options(bool coalesce) {
  maps::serve::ServeOptions options;
  options.max_batch = 8;
  options.max_delay_ms = 2.0;
  options.workers = 2;
  options.cache_capacity = 0;  // every wave is a cold-cache stampede
  options.coalesce = coalesce;
  return options;
}

}  // namespace

static void BM_ServeStampede(benchmark::State& state) {
  const auto registry = serve_registry();
  const auto req = serve_requests().front();
  maps::serve::PredictionService service(registry, stampede_options(false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stampede_wave(service, req));
  }
  state.SetItemsProcessed(state.iterations() * kStampedeClients);
}
BENCHMARK(BM_ServeStampede)->Unit(benchmark::kMillisecond);

static void BM_ServeStampedeCoalesced(benchmark::State& state) {
  const auto registry = serve_registry();
  const auto req = serve_requests().front();
  maps::serve::PredictionService service(registry, stampede_options(true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stampede_wave(service, req));
  }
  state.SetItemsProcessed(state.iterations() * kStampedeClients);
}
BENCHMARK(BM_ServeStampedeCoalesced)->Unit(benchmark::kMillisecond);

// BM_ServeObs pair: the coalesced stampede workload with the observability
// layer fully off (metrics disabled, no traces — every instrumentation site
// degrades to one relaxed atomic load or null check) versus fully on
// (histograms recording and a Trace allocated and carried per request). The
// CI gate tracks off_time/instrumented_time as serve_obs_overhead with a
// baseline near 1.0: instrumentation must stay in the noise.

static void BM_ServeObsOff(benchmark::State& state) {
  maps::obs::set_metrics_enabled(false);
  const auto registry = serve_registry();
  const auto req = serve_requests().front();
  maps::serve::PredictionService service(registry, stampede_options(true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stampede_wave(service, req));
  }
  state.SetItemsProcessed(state.iterations() * kStampedeClients);
  maps::obs::set_metrics_enabled(true);
}
BENCHMARK(BM_ServeObsOff)->Unit(benchmark::kMillisecond);

static void BM_ServeObsInstrumented(benchmark::State& state) {
  maps::obs::set_metrics_enabled(true);
  const auto registry = serve_registry();
  const auto req = serve_requests().front();
  maps::serve::PredictionService service(registry, stampede_options(true));
  for (auto _ : state) {
    std::vector<maps::runtime::Future<maps::serve::ServeResponse>> futures;
    futures.reserve(kStampedeClients);
    for (int k = 0; k < kStampedeClients; ++k) {
      maps::serve::ServeRequest traced = req;
      traced.trace = std::make_shared<maps::obs::Trace>();
      futures.push_back(service.submit(std::move(traced)));
    }
    double checksum = 0.0;
    for (auto& f : futures) checksum += f.get().latency_ms;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kStampedeClients);
}
BENCHMARK(BM_ServeObsInstrumented)->Unit(benchmark::kMillisecond);

namespace {

// ------------------------------------------------------ HTTP keep-alive RTT
//
// One persistent HTTP/1.1 connection issuing small /predict requests
// back-to-back. The result cache answers every repeat, so the measured cost
// is the front end itself: event-loop dispatch, incremental parse, worker
// hand-off and the in-order reply write.

int bench_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads one Content-Length-framed response off `fd` into `scratch`.
bool bench_read_reply(int fd, std::string& scratch) {
  scratch.clear();
  char buf[4096];
  std::size_t body_at = std::string::npos;
  std::size_t content_length = 0;
  for (;;) {
    if (body_at == std::string::npos) {
      const auto head_end = scratch.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const auto cl = scratch.find("Content-Length: ");
        if (cl == std::string::npos || cl > head_end) return false;
        content_length = static_cast<std::size_t>(
            std::atoll(scratch.c_str() + cl + 16));
        body_at = head_end + 4;
      }
    }
    if (body_at != std::string::npos &&
        scratch.size() >= body_at + content_length) {
      return true;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    scratch.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

static void BM_ServeHttpKeepAlive(benchmark::State& state) {
  const auto registry = serve_registry();
  maps::serve::ServeOptions options;
  options.max_batch = 8;
  options.max_delay_ms = 0.5;
  options.workers = 2;
  options.cache_capacity = 64;  // repeats are cache hits: front-end cost only
  maps::serve::PredictionService service(registry, options);
  const maps::serve::WireDefaults defaults;

  std::atomic<bool> stop{false};
  std::atomic<int> port{0};
  maps::serve::HttpOptions http;
  http.stream.stop = &stop;
  std::thread server([&] {
    maps::serve::serve_http(service, defaults, http, nullptr, &port);
  });
  while (port.load() == 0) std::this_thread::yield();
  const int fd = bench_connect(port.load());

  // One wire body, reused: 32x32 eps, summary-only reply.
  std::ostringstream body;
  body << "{\"nx\": " << kServeGrid << ", \"ny\": " << kServeGrid
       << ", \"dl\": " << (6.4 / static_cast<double>(kServeGrid))
       << ", \"return_field\": false, \"eps\": [";
  {
    const auto req = serve_requests().front();
    for (index_t n = 0; n < req.eps.size(); ++n) {
      body << (n == 0 ? "" : ",") << req.eps[n];
    }
  }
  body << "]}";
  std::ostringstream wire;
  wire << "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Length: "
       << body.str().size() << "\r\n\r\n" << body.str();
  const std::string request = wire.str();

  std::string scratch;
  bool alive = fd >= 0;
  for (auto _ : state) {
    alive = alive &&
            ::send(fd, request.data(), request.size(), MSG_NOSIGNAL) ==
                static_cast<ssize_t>(request.size()) &&
            bench_read_reply(fd, scratch);
    if (!alive) state.SkipWithError("http connection failed");
  }
  if (fd >= 0) ::close(fd);
  stop.store(true);
  server.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeHttpKeepAlive)->Unit(benchmark::kMillisecond);

static void BM_FnoInference(benchmark::State& state) {
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({1, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInference)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FnoInferenceBatch8(benchmark::State& state) {
  // Surrogates amortize further across batched queries.
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({8, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInferenceBatch8)->Arg(64)->Unit(benchmark::kMillisecond);
