// The paper's headline motivation: AI surrogates accelerate simulation by
// orders of magnitude over numerical solvers. Compares a full FDFD solve
// (assemble + factorize + solve) against one FNO inference at the same
// resolution, plus the amortized re-solve (factorization cached) case.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "fdfd/simulation.hpp"
#include "fdfd/source.hpp"
#include "math/rng.hpp"

using namespace maps;

namespace {

math::RealGrid random_eps(index_t n) {
  math::Rng rng(11);
  math::RealGrid eps(n, n, 2.07);
  for (index_t j = n / 3; j < 2 * n / 3; ++j) {
    for (index_t i = n / 3; i < 2 * n / 3; ++i) {
      eps(i, j) = 2.07 + 10.0 * rng.uniform();
    }
  }
  return eps;
}

fdfd::SimOptions sim_opt(index_t n) {
  fdfd::SimOptions o;
  o.pml.ncells = static_cast<int>(n / 8);
  return o;
}

}  // namespace

static void BM_FdfdFullSolve(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  for (auto _ : state) {
    fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdFullSolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FdfdCachedResolve(benchmark::State& state) {
  // New source, same structure: factorization amortized.
  const index_t n = state.range(0);
  const auto eps = random_eps(n);
  grid::GridSpec spec{n, n, 6.4 / static_cast<double>(n)};
  fdfd::Simulation sim(spec, eps, omega_of_wavelength(1.55), sim_opt(n));
  const auto J = fdfd::point_source(spec, n / 4, n / 2);
  (void)sim.solve(J);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solve(J));
  }
}
BENCHMARK(BM_FdfdCachedResolve)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FnoInference(benchmark::State& state) {
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({1, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInference)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

static void BM_FnoInferenceBatch8(benchmark::State& state) {
  // Surrogates amortize further across batched queries.
  const index_t n = state.range(0);
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  nn::Tensor x({8, 4, n, n});
  math::Rng rng(13);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
}
BENCHMARK(BM_FnoInferenceBatch8)->Arg(64)->Unit(benchmark::kMillisecond);
