// Table III reproduction: four predictive baselines across the six benchmark
// devices. Rows report Train N-L2 / Test N-L2 / Test gradient similarity on
// perturbed opt-trajectory datasets with held-out-trajectory evaluation.
//
// Expected shape (per the paper): physics-encoded NeurOLight leads or ties
// on most devices, FNO/F-FNO follow, UNet trails; all models degrade sharply
// on the harder multiplexed/active devices (MDM, WDM, TOS).
#include <cstdio>

#include "common.hpp"

using namespace maps;

int main() {
  bench::Stopwatch watch;
  std::printf("=== Table III: baselines x devices ===\n");

  const nn::ModelKind kinds[] = {nn::ModelKind::Fno, nn::ModelKind::Ffno,
                                 nn::ModelKind::UNetKind, nn::ModelKind::NeurOLight};

  analysis::TextTable table(
      {"device", "model", "Train N-L2", "Test N-L2", "Grad Similarity"});

  for (auto dev_kind : devices::all_device_kinds()) {
    const auto device = devices::make_device(dev_kind);
    std::printf("[gen] %s datasets...\n", device.name.c_str());
    // 24 model-device combinations: slightly smaller per-cell budget than
    // Tables I/II so the sweep completes in minutes.
    auto sopt = bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 31);
    sopt.num_trajectories = bench::scaled(3, 2);
    sopt.traj_iterations = bench::scaled(24, 8);
    const auto train_patterns = data::sample_patterns(device, dev_kind, sopt);
    const auto train_set = data::generate_dataset(device, train_patterns);
    const auto test_set = bench::make_test_dataset(device, dev_kind);
    train::DataLoader loader(train_set, test_set, {});

    for (auto model_kind : kinds) {
      std::printf("[train] %-10s on %-13s (%zu train / %zu test samples)\n",
                  nn::model_name(model_kind), device.name.c_str(), train_set.size(),
                  test_set.size());
      auto model = nn::make_model(bench::field_model_config(model_kind));
      train::EncodingOptions enc;
      enc.wave_prior = (model_kind == nn::ModelKind::NeurOLight);
      const auto rep = bench::train_field_model(*model, loader, device, enc,
                                                bench::scaled(14, 4));
      table.add_row({device.name, nn::model_name(model_kind),
                     analysis::TextTable::fmt(rep.train_nl2, 2),
                     analysis::TextTable::fmt(rep.test_nl2, 2),
                     analysis::TextTable::fmt(rep.grad_similarity, 2)});
    }
  }

  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nPaper reference (Table III, train/test/grad-sim):\n"
      "  bending : FNO .10/.19/.43  F-FNO .13/.14/.58  UNet .41/.34/.25  NOL .11/.14/.55\n"
      "  crossing: FNO .08/.08/.83  F-FNO .11/.08/.86  UNet .38/.30/.65  NOL .10/.08/.84\n"
      "  diode   : FNO .16/.83/.08  F-FNO .16/.72/.12  UNet .53/.87/.03  NOL .14/.71/.14\n"
      "  MDM     : FNO .25/.58/.20  F-FNO .30/.47/.31  UNet .71/.76/.13  NOL .27/.45/.31\n"
      "  WDM     : FNO .56/.87/.03  F-FNO .60/.75/.06  UNet .85/.88/.00  NOL .71/.73/.10\n"
      "  TOS     : FNO .45/1.01/.02 F-FNO .52/.99/.03  UNet .82/.99/.00  NOL .70/.94/.03\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
