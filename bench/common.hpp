// Shared plumbing for the paper-reproduction benches: canonical dataset
// recipes, model configurations matched across tables, training wrappers,
// and environment-variable scaling (MAPS_BENCH_FAST=1 shrinks every budget
// for smoke runs).
#pragma once

#include <string>

#include "analysis/report.hpp"
#include "core/data/generator.hpp"
#include "core/data/sampler.hpp"
#include "core/train/loader.hpp"
#include "core/train/trainer.hpp"
#include "devices/builders.hpp"
#include "nn/models.hpp"

namespace maps::bench {

/// Global scale knob: 1.0 full budgets, <1 shrinks datasets/epochs.
double bench_scale();
int scaled(int full, int minimum = 1);

/// Canonical perturbed-opt-traj pattern recipe (train flavor) and the
/// held-out trajectory recipe (test flavor) used across Tables I-III.
data::SamplerOptions train_sampler_options(data::SamplingStrategy strategy,
                                           unsigned seed = 1);
data::SamplerOptions test_sampler_options(unsigned seed = 9001);

/// Generate the canonical evaluation dataset (held-out opt trajectories).
data::Dataset make_test_dataset(const devices::DeviceProblem& device,
                                devices::DeviceKind kind);

/// Model configurations used by every table (sizes matched across models).
nn::ModelConfig field_model_config(nn::ModelKind kind);

/// Train a field model on a loader; returns the standardized report.
train::TrainReport train_field_model(nn::Module& model, const train::DataLoader& loader,
                                     const devices::DeviceProblem& device,
                                     const train::EncodingOptions& enc,
                                     int epochs_override = -1, double maxwell_weight = 0.0,
                                     double mixup_prob = 0.0);

/// Default epochs for table runs (after bench scaling).
int default_epochs();

/// Wall-clock helper.
class Stopwatch {
 public:
  Stopwatch();
  double seconds() const;

 private:
  double start_;
};

}  // namespace maps::bench
