// Ablation: variation-aware (corner-robust) inverse design (Sec. III-C.3).
//
// Optimize the bend (i) through the nominal lithography model only and
// (ii) through all three etch corners (mean aggregate). Then report every
// design's post-fab transmission at each corner. The robust design should
// give up a little nominal performance to lift the worst corner.
#include <cstdio>

#include "common.hpp"
#include "core/invdes/init.hpp"
#include "core/invdes/robust.hpp"

using namespace maps;

namespace {

void report(const char* tag, const std::vector<invdes::CornerReport>& corners) {
  double worst = 1e9;
  std::printf("  %-14s", tag);
  for (const auto& rep : corners) {
    const double t = rep.transmissions.front();
    std::printf("  %s=%.4f", param::LithoModel::corner_name(rep.corner), t);
    worst = std::min(worst, t);
  }
  std::printf("  | worst=%.4f\n", worst);
}

}  // namespace

int main() {
  bench::Stopwatch watch;
  std::printf("=== Ablation: nominal vs corner-robust inverse design (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);
  const auto theta0 = invdes::make_initial_theta(device, invdes::InitKind::PathSeed);
  const int iters = bench::scaled(30, 8);

  invdes::RobustOptions nominal_opt;
  nominal_opt.base.iterations = iters;
  nominal_opt.base.lr = 0.05;

  // "Nominal" optimization = robust designer restricted to one corner: run
  // the plain engine with the nominal litho pipeline.
  std::printf("[opt] nominal-only (%d iters)...\n", iters);
  invdes::InvDesOptions plain;
  plain.iterations = iters;
  plain.lr = 0.05;
  auto nominal_pipeline = [&] {
    auto p = std::make_unique<param::DirectDensity>(device.design_map.box.ni,
                                                    device.design_map.box.nj);
    param::DesignPipeline pipe(std::move(p), device.design_map);
    pipe.add_transform(std::make_unique<param::BlurFilter>(1.5));
    param::SymmetryKind sym;
    if (devices::device_symmetry(devices::DeviceKind::Bend, &sym)) {
      pipe.add_transform(std::make_unique<param::Symmetrize>(sym));
    }
    pipe.add_transform(std::make_unique<param::LithoModel>(
        nominal_opt.litho, param::LithoCorner::Nominal));
    return pipe;
  }();
  invdes::InverseDesigner nominal_designer(device, std::move(nominal_pipeline), plain);
  const auto nominal_res = nominal_designer.run(theta0);

  std::printf("[opt] corner-robust (%d iters x 3 corners)...\n", iters);
  invdes::RobustInverseDesigner robust_designer(device, devices::DeviceKind::Bend,
                                                nominal_opt);
  const auto robust_res = robust_designer.run(theta0);

  invdes::NumericalProvider provider(device);
  const auto nominal_corners =
      robust_designer.evaluate_corners(nominal_res.theta, provider);
  const auto robust_corners =
      robust_designer.evaluate_corners(robust_res.theta, provider);

  std::printf("\n--- post-fab transmission per litho corner ---\n");
  report("nominal-opt", nominal_corners);
  report("robust-opt", robust_corners);

  auto worst_of = [](const std::vector<invdes::CornerReport>& cs) {
    double w = 1e9;
    for (const auto& c : cs) w = std::min(w, c.transmissions.front());
    return w;
  };
  std::printf("\n  worst-corner: nominal-opt %.4f vs robust-opt %.4f  (robust should win)\n",
              worst_of(nominal_corners), worst_of(robust_corners));
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
