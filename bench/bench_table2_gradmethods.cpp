// Table II reproduction: gradient computation methods.
//
// Three ways to extract dF/deps from neural surrogates, evaluated by cosine
// similarity against the ground-truth adjoint gradient on held-out
// trajectory designs:
//   AD-Black Box  — differentiate a transmission regressor through its input,
//   AD-Pred Field — differentiate the FoM of a predicted field through the
//                   field network's input,
//   Fwd & Adj Field — form the physical adjoint product from two predicted
//                   fields (no network differentiation).
// The paper's finding: the physics-based route wins by nearly an order of
// magnitude.
#include <cstdio>

#include "common.hpp"
#include "core/train/providers.hpp"

using namespace maps;

namespace {

double mean_provider_similarity(invdes::GradientProvider& provider,
                                const devices::DeviceProblem& device,
                                const std::vector<const data::SampleRecord*>& recs) {
  double total = 0.0;
  int count = 0;
  for (const auto* rec : recs) {
    // Provider gradients are for the device's base eps (no thermal delta);
    // the bend has a single excitation so rec->eps is exactly that.
    const auto ge = provider.evaluate(rec->eps);
    total += train::box_cosine(ge.grad_eps, rec->grad_eps, rec->design_box);
    ++count;
  }
  (void)device;
  return count ? total / count : 0.0;
}

}  // namespace

int main() {
  bench::Stopwatch watch;
  std::printf("=== Table II: gradient method comparison (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);
  const auto test_set = bench::make_test_dataset(device, devices::DeviceKind::Bend);
  const auto perturb_patterns = data::sample_patterns(
      device, devices::DeviceKind::Bend,
      bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 21));
  const auto train_set = data::generate_dataset(device, perturb_patterns);
  std::printf("    train %zu samples | eval %zu samples\n", train_set.size(),
              test_set.size());

  train::DataLoader loader(train_set, test_set, {});
  std::vector<const data::SampleRecord*> recs = loader.test_records();

  analysis::TextTable table({"model", "Grad Method", "Grad Similarity"});

  for (auto kind : {nn::ModelKind::Fno, nn::ModelKind::UNetKind}) {
    std::printf("[train] field model %s...\n", nn::model_name(kind));
    auto model = nn::make_model(bench::field_model_config(kind));
    train::EncodingOptions enc;
    (void)bench::train_field_model(*model, loader, device, enc);

    std::printf("[train] black-box transmission CNN for %s row...\n",
                nn::model_name(kind));
    nn::ModelConfig bb_cfg;
    bb_cfg.kind = nn::ModelKind::SParam;
    bb_cfg.in_channels = 4;
    bb_cfg.width = 12;
    bb_cfg.n_outputs = train::total_terms(device);
    bb_cfg.seed = (kind == nn::ModelKind::Fno) ? 42 : 43;
    auto bb_model = nn::make_model(bb_cfg);
    (void)train::train_blackbox(*bb_model, loader, device, bench::default_epochs(),
                                2e-3, enc);

    train::BlackBoxProvider bb(*bb_model, device, loader.standardizer(), enc);
    train::AutodiffFieldProvider ad(*model, device, loader.standardizer(), enc);
    train::FwdAdjFieldProvider fa(*model, device, loader.standardizer(), enc);

    table.add_row({nn::model_name(kind), "AD-Black Box",
                   analysis::TextTable::fmt(
                       mean_provider_similarity(bb, device, recs))});
    table.add_row({nn::model_name(kind), "AD-Pred Field",
                   analysis::TextTable::fmt(
                       mean_provider_similarity(ad, device, recs))});
    table.add_row({nn::model_name(kind), "Fwd & Adj Field",
                   analysis::TextTable::fmt(
                       mean_provider_similarity(fa, device, recs))});
  }

  std::printf("\n%s", table.str().c_str());
  std::printf("\nPaper reference (Table II):\n"
              "  FNO : AD-Black Box 0.0511 | AD-Pred Field 0.0552 | Fwd&Adj 0.4270\n"
              "  UNet: AD-Black Box 0.0243 | AD-Pred Field 0.0406 | Fwd&Adj 0.2707\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
