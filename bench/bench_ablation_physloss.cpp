// Ablation: data-driven loss vs data + physics (Maxwell-residual) loss
// (Sec. III-B feature 3). Same model, same data, same epochs; the physics
// term penalizes predictions inconsistent with A(eps) E = b even where the
// data loss is blind.
#include <cstdio>

#include "common.hpp"
#include "core/train/losses.hpp"

using namespace maps;

int main() {
  bench::Stopwatch watch;
  std::printf("=== Ablation: NMSE vs NMSE + Maxwell-residual loss (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);
  const auto patterns = data::sample_patterns(
      device, devices::DeviceKind::Bend,
      bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 61));
  const auto train_set = data::generate_dataset(device, patterns);
  const auto test_set = bench::make_test_dataset(device, devices::DeviceKind::Bend);
  train::DataLoader loader(train_set, test_set, {});
  std::printf("    %zu train / %zu test samples\n", train_set.size(), test_set.size());

  analysis::TextTable table({"loss", "Train N-L2", "Test N-L2", "Grad Similarity",
                             "Test Maxwell residual"});

  for (double w : {0.0, 0.05}) {
    std::printf("[train] FNO, maxwell_weight=%.2f...\n", w);
    auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
    train::EncodingOptions enc;
    const auto rep = bench::train_field_model(*model, loader, device, enc, -1, w);

    // Physics-consistency of the predictions on test records.
    double residual = 0.0;
    int count = 0;
    for (const auto* rec : loader.test_records()) {
      const auto pred = train::predict_field(*model, rec->eps, rec->J, rec->omega,
                                             rec->dl, loader.standardizer(), enc);
      residual += train::maxwell_residual_norm(*rec, pred);
      ++count;
    }
    residual /= std::max(1, count);

    table.add_row({w == 0.0 ? "NMSE only" : "NMSE + Maxwell",
                   analysis::TextTable::fmt(rep.train_nl2),
                   analysis::TextTable::fmt(rep.test_nl2),
                   analysis::TextTable::fmt(rep.grad_similarity),
                   analysis::TextTable::fmt(residual)});
  }

  std::printf("\n%s", table.str().c_str());
  std::printf("\nExpected shape: the physics-regularized model trades a little "
              "train fit for lower Maxwell residual on test.\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
