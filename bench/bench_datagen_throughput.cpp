// Dataset-generation throughput: the seed per-pattern parallel_for baseline
// vs the pipelined runtime vs a 2-shard sharded+merged run, on the bend
// benchmark device. Emits BENCH_datagen_throughput.json for regression
// tracking; the sharded leg also asserts the merged file is byte-identical
// to the single-process pipelined save (the runtime's core guarantee).
//
// Usage: bench_datagen_throughput [output.json]
//   MAPS_BENCH_PATTERNS  pattern count (default 12)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "io/json.hpp"
#include "math/parallel.hpp"
#include "runtime/datagen.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

maps::io::JsonValue leg_json(std::size_t patterns, double seconds) {
  maps::io::JsonValue v;
  v["seconds"] = seconds;
  v["patterns_per_s"] = seconds > 0 ? static_cast<double>(patterns) / seconds : 0.0;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maps;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_datagen_throughput.json";
  int n_patterns = 12;
  if (const char* env = std::getenv("MAPS_BENCH_PATTERNS")) {
    n_patterns = std::max(2, std::atoi(env));
  }

  const auto device = devices::make_device(devices::DeviceKind::Bend);
  data::SamplerOptions opt;
  opt.strategy = data::SamplingStrategy::Random;
  opt.num_patterns = n_patterns;
  opt.seed = 7;
  const auto patterns = data::sample_patterns(device, devices::DeviceKind::Bend, opt);
  const std::size_t m = patterns.densities.size();
  const std::string name = "bending/random";
  const std::vector<runtime::DatagenPhase> phases = {{&device, &patterns, 1}};

  const auto tmp = std::filesystem::temp_directory_path();
  const std::string seq_path = (tmp / "maps_bench_seq.mapsd").string();
  const std::string pipe_path = (tmp / "maps_bench_pipe.mapsd").string();
  const std::string shard_path = (tmp / "maps_bench_shard.mapsd").string();

  // Warm-up (allocator, page cache) outside the timed legs.
  {
    data::SamplerOptions w = opt;
    w.num_patterns = 2;
    const auto wp = data::sample_patterns(device, devices::DeviceKind::Bend, w);
    (void)data::generate_dataset_reference(device, wp);
  }

  // Leg 1: the seed baseline — parallel_for over simulate_pattern + save.
  bench::Stopwatch t_seq;
  {
    auto ds = data::generate_dataset_reference(device, patterns);
    ds.name = name;
    ds.save(seq_path);
  }
  const double s_seq = t_seq.seconds();

  // Leg 2: the pipelined runtime (prep/solve stage tasks, prepared-band
  // fast path) + save.
  runtime::DatagenStats pipe_stats;
  bench::Stopwatch t_pipe;
  {
    auto ds = runtime::generate_pipelined(phases, name, {}, &pipe_stats);
    ds.save(pipe_path);
  }
  const double s_pipe = t_pipe.seconds();

  // Leg 3: two shards run back-to-back plus the merge — the end-to-end cost
  // of a horizontally sharded run on one host.
  for (int i = 0; i < 2; ++i) {
    std::filesystem::remove(runtime::shard_part_path(shard_path, i, 2));
    std::filesystem::remove(runtime::shard_manifest_path(shard_path, i, 2));
  }
  bench::Stopwatch t_shard;
  for (int i = 0; i < 2; ++i) {
    runtime::DatagenOptions opts;
    opts.shard = {i, 2};
    runtime::generate_sharded(phases, name, shard_path, opts);
  }
  runtime::merge_shards(shard_path, 2);
  const double s_shard = t_shard.seconds();

  const bool identical = slurp(pipe_path) == slurp(shard_path);
  const double speedup = s_pipe > 0 ? s_seq / s_pipe : 0.0;

  io::JsonValue report;
  report["device"] = "bending";
  report["patterns"] = static_cast<int>(m);
  report["threads"] = static_cast<int>(math::num_threads());
  report["sequential"] = leg_json(m, s_seq);
  report["pipelined"] = leg_json(m, s_pipe);
  report["pipelined"]["solves_per_s"] = pipe_stats.solves_per_s();
  report["sharded_2_merged"] = leg_json(m, s_shard);
  report["speedup_pipelined_vs_sequential"] = speedup;
  report["merge_byte_identical"] = identical;
  io::json_save(report, out_path);

  std::printf("datagen throughput (%zu patterns, %zu threads)\n", m,
              math::num_threads());
  std::printf("  sequential : %.2fs  %.2f patterns/s\n", s_seq, m / s_seq);
  std::printf("  pipelined  : %.2fs  %.2f patterns/s  (%.2fx)\n", s_pipe, m / s_pipe,
              speedup);
  std::printf("  2-shard+merge: %.2fs  %.2f patterns/s  merge_identical=%s\n",
              s_shard, m / s_shard, identical ? "yes" : "NO");
  std::printf("  -> %s\n", out_path.c_str());

  if (!identical) {
    std::cerr << "FAIL: merged shards are not byte-identical\n";
    return 1;
  }
  return 0;
}
