// Table I reproduction: data sampling strategies.
//
// A model trained on a *perturbed opt-trajectory* dataset must beat the same
// model trained on *random* patterns when both are evaluated on held-out
// optimization trajectories (the distribution an inverse-design surrogate is
// actually queried on): lower test N-L2 and far higher gradient similarity.
#include <cstdio>

#include "common.hpp"

using namespace maps;

int main() {
  bench::Stopwatch watch;
  std::printf("=== Table I: perturbed opt-traj vs random sampling (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);

  // Held-out evaluation trajectories, shared by every row.
  std::printf("[gen] held-out opt-trajectory test set...\n");
  const auto test_set = bench::make_test_dataset(device, devices::DeviceKind::Bend);

  std::printf("[gen] perturbed opt-traj training set...\n");
  const auto perturb_patterns = data::sample_patterns(
      device, devices::DeviceKind::Bend,
      bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 11));
  const auto perturb_set = data::generate_dataset(device, perturb_patterns);

  std::printf("[gen] random training set (matched size)...\n");
  const auto random_patterns = data::sample_patterns(
      device, devices::DeviceKind::Bend,
      bench::train_sampler_options(data::SamplingStrategy::Random, 11));
  const auto random_set = data::generate_dataset(device, random_patterns);

  std::printf("    perturb-opt-traj: %zu samples | random: %zu samples | "
              "test: %zu samples\n",
              perturb_set.size(), random_set.size(), test_set.size());

  analysis::TextTable table(
      {"model", "dataset", "Train N-L2norm", "Test N-L2norm", "Grad Similarity"});

  struct Row {
    nn::ModelKind model;
    const data::Dataset* train_set;
    const char* dataset_name;
  };
  const Row rows[] = {
      {nn::ModelKind::Fno, &perturb_set, "Perturb Opt-Traj"},
      {nn::ModelKind::Fno, &random_set, "random"},
      {nn::ModelKind::UNetKind, &perturb_set, "Perturb Opt-Traj"},
      {nn::ModelKind::UNetKind, &random_set, "random"},
  };

  for (const auto& row : rows) {
    std::printf("[train] %s on %s...\n", nn::model_name(row.model), row.dataset_name);
    auto cfg = bench::field_model_config(row.model);
    auto model = nn::make_model(cfg);
    train::EncodingOptions enc;
    enc.wave_prior = (row.model == nn::ModelKind::NeurOLight);
    train::DataLoader loader(*row.train_set, test_set, {});
    const auto rep =
        bench::train_field_model(*model, loader, device, enc);
    table.add_row({nn::model_name(row.model), row.dataset_name,
                   analysis::TextTable::fmt(rep.train_nl2),
                   analysis::TextTable::fmt(rep.test_nl2),
                   analysis::TextTable::fmt(rep.grad_similarity)});
  }

  std::printf("\n%s", table.str().c_str());
  std::printf("\nPaper reference (Table I):\n"
              "  FNO : Perturb 0.1018/0.1881/0.4270 | random 0.1122/0.7910/0.0831\n"
              "  UNet: Perturb 0.4120/0.3401/0.2707 | random 0.5881/0.8290/0.0289\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
