// Fig. 6 reproduction: neural solver inside MAPS-InvDes.
//
// (a) Bend inverse design driven purely by NN-predicted forward/adjoint
//     fields ("Fwd & Adj Field" gradients); at every iteration the design is
//     independently verified with FDFD. The two transmission curves should
//     track each other and converge to a high-transmission structure.
// (b) The final design's NN-predicted field vs the FDFD field (N-L2), plus
//     final transmissions from both.
#include <cstdio>

#include "common.hpp"
#include "math/stats.hpp"
#include "core/invdes/engine.hpp"
#include "core/invdes/init.hpp"
#include "core/train/providers.hpp"

using namespace maps;

int main() {
  bench::Stopwatch watch;
  std::printf("=== Fig. 6: NN-driven inverse design (bending) ===\n");

  const auto device = devices::make_device(devices::DeviceKind::Bend);

  std::printf("[gen] training data (perturbed opt-traj)...\n");
  const auto patterns = data::sample_patterns(
      device, devices::DeviceKind::Bend,
      bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 55));
  const auto train_set = data::generate_dataset(device, patterns);
  const auto test_set = bench::make_test_dataset(device, devices::DeviceKind::Bend);
  train::DataLoader loader(train_set, test_set, {});

  std::printf("[train] FNO surrogate (%zu samples)...\n", train_set.size());
  auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
  train::EncodingOptions enc;
  const auto rep = bench::train_field_model(*model, loader, device, enc,
                                            bench::scaled(35, 6));
  std::printf("    surrogate test N-L2 %.3f | grad similarity %.3f\n", rep.test_nl2,
              rep.grad_similarity);

  // ---- (a) optimization trajectory with per-iteration FDFD verification.
  train::FwdAdjFieldProvider provider(*model, device, loader.standardizer(), enc);
  invdes::InvDesOptions opt;
  opt.iterations = bench::scaled(40, 10);
  opt.lr = 0.05;
  opt.record_density = true;
  auto pipeline = devices::make_default_pipeline(device, devices::DeviceKind::Bend);
  invdes::InverseDesigner designer(device, std::move(pipeline), opt);

  std::printf("\n--- Fig. 6(a): optimization trajectory ---\n");
  auto res = designer.run(
      invdes::make_initial_theta(device, invdes::InitKind::PathSeed), provider);

  std::printf("  %4s  %18s  %18s\n", "iter", "NN-predicted T", "FDFD-verified T");
  std::vector<std::vector<double>> csv_rows;
  for (const auto& it : res.history) {
    const auto eps = param::embed_density(device.design_map, it.density);
    const auto ev = device.evaluate(eps);
    const double t_nn = it.transmissions.empty() ? 0.0 : it.transmissions.front();
    const double t_fdfd = ev.per_excitation[0].transmissions[0];
    if (it.iteration % 4 == 0 || it.iteration + 1 == opt.iterations) {
      std::printf("  %4d  %18.4f  %18.4f\n", it.iteration, t_nn, t_fdfd);
    }
    csv_rows.push_back({static_cast<double>(it.iteration), t_nn, t_fdfd});
  }
  analysis::write_csv("fig6a_trajectory.csv", {"iter", "nn_T", "fdfd_T"}, csv_rows);

  // ---- (b) final design field agreement.
  std::printf("\n--- Fig. 6(b): final-design field check ---\n");
  const auto& exc = device.excitations[0];
  const auto E_nn = train::predict_field(*model, res.eps, exc.J, exc.omega,
                                         device.spec.dl, loader.standardizer(), enc);
  fdfd::Simulation sim(device.spec, res.eps, exc.omega, device.sim_options);
  const auto E_fdfd = sim.solve(exc.J);
  const double nl2 = maps::math::relative_l2(
      std::span<const cplx>(E_nn.data()), std::span<const cplx>(E_fdfd.data()));
  const double t_nn = fdfd::term_transmission(exc.terms[0], E_nn);
  const double t_fdfd = fdfd::term_transmission(exc.terms[0], E_fdfd);
  std::printf("  final field N-L2 (NN vs FDFD): %.4f\n", nl2);
  std::printf("  final transmission: NN %.4f | FDFD %.4f\n", t_nn, t_fdfd);
  const double t0 = csv_rows.front()[2];
  std::printf("  FDFD-verified improvement: %.4f -> %.4f\n", t0, t_fdfd);
  std::printf("\nPaper reference (Fig. 6): NN-driven trajectory climbs to a "
              "high-transmission design whose NN field matches FDFD.\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
