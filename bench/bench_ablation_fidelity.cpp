// Ablation: multi-fidelity data trade-offs (Sec. III-A.3).
//
// At a matched simulation-cost budget (one 128x128 solve costs ~8x a 64x64
// solve in the banded-LU model: N * bw^2), compare training FNO on
//   (a) low-fidelity labels only (many cheap samples),
//   (b) few high-fidelity samples only (downsampled to the training grid),
//   (c) a low+high mix,
//   (d) the low set with Richardson-extrapolated labels from paired solves.
// Evaluation uses held-out high-fidelity (downsampled) fields.
#include <cstdio>

#include "common.hpp"
#include "math/interpolate.hpp"

using namespace maps;

namespace {

// Resample a high-fidelity record onto the low-fidelity grid so it can join
// a 64x64 training batch. (eps/J/fields resampled; labels keep their ids.)
data::SampleRecord downsample_record(const data::SampleRecord& hi, index_t nx,
                                     index_t ny, double dl, int pml_cells) {
  data::SampleRecord lo = hi;
  lo.fidelity = 1;
  lo.dl = dl;
  lo.pml_cells = pml_cells;
  lo.eps = maps::math::bilinear_resample(hi.eps, nx, ny);
  // Preserve source line amplitude density: J scales with 1/dl footprint;
  // for an NN input feature the bilinear average is adequate.
  lo.J = maps::math::bilinear_resample(hi.J, nx, ny);
  lo.Ez = maps::math::bilinear_resample(hi.Ez, nx, ny);
  lo.adj_J = maps::math::bilinear_resample(hi.adj_J, nx, ny);
  lo.lambda_fwd = maps::math::bilinear_resample(hi.lambda_fwd, nx, ny);
  lo.grad_eps = maps::math::bilinear_resample(hi.grad_eps, nx, ny);
  lo.design_box = grid::BoxRegion{hi.design_box.i0 / 2, hi.design_box.j0 / 2,
                                  hi.design_box.ni / 2, hi.design_box.nj / 2};
  return lo;
}

}  // namespace

namespace {

// Solver-layer accounting: the wavelength-sweep scenario that motivates the
// FactorizationCache. Two passes over four omegas of one eps, forward +
// adjoint each: the cache factorizes once per omega and answers everything
// else from back-substitution, so factorizations stay strictly below solves.
void report_cache_accounting(const devices::DeviceProblem& dev) {
  auto opts = dev.sim_options;
  opts.cache = std::make_shared<solver::FactorizationCache>(8);
  const auto eps = dev.blank_eps();
  const auto& J = dev.excitations.front().J;
  std::vector<cplx> g(static_cast<std::size_t>(dev.spec.cells()), cplx{1.0, 0.0});

  for (int pass = 0; pass < 2; ++pass) {
    for (const double lambda : {1.50, 1.55, 1.60, 1.65}) {
      fdfd::Simulation sim(dev.spec, eps, omega_of_wavelength(lambda), opts);
      (void)sim.solve(J);
      (void)sim.solve_transposed(g);
    }
  }
  const auto stats = opts.cache->stats();
  std::printf("[solver] wavelength sweep (2 passes x 4 omegas, fwd+adj): "
              "%d factorizations / %d solves, cache hit rate %.0f%% "
              "(%zu hits, %zu misses)\n",
              opts.cache->factorization_count(), opts.cache->solve_count(),
              100.0 * stats.hit_rate(), stats.hits, stats.misses);
}

void report_device_cache(const char* tag, const devices::DeviceProblem& dev) {
  if (!dev.solver_cache) return;
  const auto stats = dev.solver_cache->stats();
  if (stats.hits + stats.misses == 0) return;
  std::printf("[solver] %s device cache: hit rate %.0f%% (%zu hits, %zu misses, "
              "%zu evictions)\n",
              tag, 100.0 * stats.hit_rate(), stats.hits, stats.misses,
              stats.evictions);
}

}  // namespace

int main() {
  bench::Stopwatch watch;
  std::printf("=== Ablation: multi-fidelity training trade-offs (bending) ===\n");

  const auto lo_dev = devices::make_device(devices::DeviceKind::Bend);
  devices::BuildOptions hi_opt;
  hi_opt.fidelity = 2;
  const auto hi_dev = devices::make_device(devices::DeviceKind::Bend, hi_opt);

  report_cache_accounting(lo_dev);

  // Pattern pool (low-fidelity design grid).
  auto sopt = bench::train_sampler_options(data::SamplingStrategy::PerturbOptTraj, 71);
  const auto patterns = data::sample_patterns(lo_dev, devices::DeviceKind::Bend, sopt);
  const std::size_t n_total = patterns.densities.size();

  // Cost model: one hi-fi sample ~ 8 lo-fi samples (N * bw^2 scaling).
  const std::size_t budget_lo = n_total;          // (a): all patterns, lo-fi
  const std::size_t n_hi = std::max<std::size_t>(2, n_total / 8);  // (b)/(c)/(d)

  auto subset = [&](std::size_t count) {
    data::PatternSet ps;
    ps.strategy = patterns.strategy;
    for (std::size_t i = 0; i < count && i < n_total; ++i) {
      ps.densities.push_back(patterns.densities[i]);
      ps.ids.push_back(patterns.ids[i]);
    }
    return ps;
  };

  std::printf("[gen] lo-fi set (%zu samples at 64x64)...\n", budget_lo);
  const auto lo_all = data::generate_dataset(lo_dev, subset(budget_lo));
  std::printf("[gen] paired multi-fidelity set (%zu patterns at both levels)...\n", n_hi);
  const auto paired = data::generate_multifidelity(lo_dev, hi_dev, subset(n_hi));
  std::printf("[gen] held-out hi-fi test set...\n");
  auto test_opt = bench::test_sampler_options();
  const auto test_patterns_lo =
      data::sample_patterns(lo_dev, devices::DeviceKind::Bend, test_opt);
  data::PatternSet test_patterns_hi;
  test_patterns_hi.strategy = test_patterns_lo.strategy;
  test_patterns_hi.ids = test_patterns_lo.ids;
  for (const auto& rho : test_patterns_lo.densities) {
    test_patterns_hi.densities.push_back(maps::math::bilinear_resample(
        rho, hi_dev.design_map.box.ni, hi_dev.design_map.box.nj));
  }
  const auto test_hi = data::generate_dataset(hi_dev, test_patterns_hi);
  data::Dataset test_set;
  test_set.name = "test_hi_downsampled";
  for (const auto& s : test_hi.samples) {
    test_set.samples.push_back(downsample_record(s, lo_dev.spec.nx, lo_dev.spec.ny,
                                                 lo_dev.spec.dl,
                                                 lo_dev.sim_options.pml.ncells));
  }

  // Assemble the four training variants.
  data::Dataset hi_only, mixed, richardson;
  hi_only.name = "hi_only";
  mixed.name = "mixed";
  richardson.name = "richardson";
  std::vector<const data::SampleRecord*> lo_of_pair, hi_of_pair;
  for (const auto& s : paired.samples) {
    (s.fidelity == 1 ? lo_of_pair : hi_of_pair).push_back(&s);
  }
  for (const auto* s : hi_of_pair) {
    hi_only.samples.push_back(downsample_record(*s, lo_dev.spec.nx, lo_dev.spec.ny,
                                                lo_dev.spec.dl,
                                                lo_dev.sim_options.pml.ncells));
  }
  // Mixed: half the lo budget + the hi samples.
  for (std::size_t i = 0; i < lo_all.samples.size() / 2; ++i) {
    mixed.samples.push_back(lo_all.samples[i]);
  }
  mixed.append(hi_only);
  // Richardson: lo pairs with labels refined by the paired hi solution.
  for (std::size_t i = 0; i < lo_of_pair.size() && i < hi_of_pair.size(); ++i) {
    data::SampleRecord refined = *lo_of_pair[i];
    const auto hi_ez = maps::math::bilinear_resample(hi_of_pair[i]->Ez,
                                                     refined.nx(), refined.ny());
    refined.Ez = maps::math::richardson_extrapolate(refined.Ez, hi_ez, 2);
    // Order-2 pair: coarse on the record grid, fine downsampled — the
    // extrapolation sharpens the label toward the continuum solution.
    richardson.samples.push_back(std::move(refined));
  }

  analysis::TextTable table({"training data", "#samples", "Test N-L2 (hi-fi labels)"});
  struct Variant {
    const char* tag;
    const data::Dataset* set;
  };
  for (const auto& v : std::initializer_list<Variant>{
           {"lo-fi only (full budget)", &lo_all},
           {"hi-fi only (1/8 budget)", &hi_only},
           {"lo+hi mixed", &mixed},
           {"lo + Richardson labels", &richardson}}) {
    std::printf("[train] %s (%zu samples)...\n", v.tag, v.set->size());
    auto model = nn::make_model(bench::field_model_config(nn::ModelKind::Fno));
    train::EncodingOptions enc;
    train::DataLoader loader(*v.set, test_set, {});
    const auto rep = bench::train_field_model(*model, loader, lo_dev, enc);
    table.add_row({v.tag, std::to_string(v.set->size()),
                   analysis::TextTable::fmt(rep.test_nl2)});
  }

  report_device_cache("lo-fi", lo_dev);
  report_device_cache("hi-fi", hi_dev);

  std::printf("\n%s", table.str().c_str());
  std::printf("\nExpected shape: abundant lo-fi data beats a handful of hi-fi "
              "samples; mixing recovers most of the hi-fi benefit at a "
              "fraction of the cost (the premise of MAPS-Data's multi-fidelity "
              "pairing).\n");
  std::printf("[done] %.1f s\n", watch.seconds());
  return 0;
}
