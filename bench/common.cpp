#include "common.hpp"

#include <chrono>
#include <cstdlib>

namespace maps::bench {

double bench_scale() {
  if (const char* env = std::getenv("MAPS_BENCH_FAST")) {
    if (env[0] == '1') return 0.25;
  }
  if (const char* env = std::getenv("MAPS_BENCH_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.01 && s <= 4.0) return s;
  }
  return 1.0;
}

int scaled(int full, int minimum) {
  const int v = static_cast<int>(full * bench_scale());
  return v < minimum ? minimum : v;
}

data::SamplerOptions train_sampler_options(data::SamplingStrategy strategy,
                                           unsigned seed) {
  data::SamplerOptions opt;
  opt.strategy = strategy;
  opt.seed = seed;
  opt.num_trajectories = scaled(4, 2);
  opt.traj_iterations = scaled(28, 8);
  opt.record_every = 4;
  opt.perturbs_per_snapshot = 1;
  // Random strategy pattern count matched to the perturb-opt-traj yield:
  // n_traj * (iters/every + 1) * (1 + perturbs).
  opt.num_patterns = opt.num_trajectories * (opt.traj_iterations / opt.record_every + 1) *
                     (1 + opt.perturbs_per_snapshot);
  return opt;
}

data::SamplerOptions test_sampler_options(unsigned seed) {
  data::SamplerOptions opt;
  opt.strategy = data::SamplingStrategy::OptTraj;  // the query distribution
  opt.seed = seed;
  opt.num_trajectories = scaled(2, 1);
  opt.traj_iterations = scaled(32, 8);
  opt.record_every = 4;
  return opt;
}

data::Dataset make_test_dataset(const devices::DeviceProblem& device,
                                devices::DeviceKind kind) {
  const auto patterns = data::sample_patterns(device, kind, test_sampler_options());
  return data::generate_dataset(device, patterns);
}

nn::ModelConfig field_model_config(nn::ModelKind kind) {
  nn::ModelConfig cfg;
  cfg.kind = kind;
  cfg.out_channels = 2;
  cfg.width = 12;
  // The guided field carries ~13 spatial cycles across the 6.4 um domain, so
  // the spectral band must reach past that: 16 of 32 positive modes.
  cfg.modes = 16;
  cfg.depth = 3;
  cfg.in_channels = (kind == nn::ModelKind::NeurOLight) ? 8 : 4;
  return cfg;
}

int default_epochs() { return scaled(20, 4); }

train::TrainReport train_field_model(nn::Module& model, const train::DataLoader& loader,
                                     const devices::DeviceProblem& device,
                                     const train::EncodingOptions& enc,
                                     int epochs_override, double maxwell_weight,
                                     double mixup_prob) {
  train::TrainOptions opt;
  opt.epochs = epochs_override > 0 ? epochs_override : default_epochs();
  opt.batch = 8;
  opt.lr = 1e-2;
  opt.lr_min = 5e-4;
  opt.encoding = enc;
  opt.maxwell_weight = maxwell_weight;
  opt.mixup_prob = mixup_prob;
  train::Trainer trainer(model, loader, opt);
  return trainer.fit(&device);
}

Stopwatch::Stopwatch()
    : start_(std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) {}

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         start_;
}

}  // namespace maps::bench
