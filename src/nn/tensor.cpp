#include "nn/tensor.hpp"

#include <algorithm>
#include <numeric>

namespace maps::nn {

Tensor::Tensor(std::vector<index_t> shape, float fill) : shape_(std::move(shape)) {
  index_t n = 1;
  for (index_t d : shape_) {
    require(d >= 0, "Tensor: negative dimension");
    n *= d;
  }
  data_.assign(static_cast<std::size_t>(n), fill);
}

index_t Tensor::size(int d) const {
  require(d >= 0 && d < ndim(), "Tensor::size: bad dimension");
  return shape_[static_cast<std::size_t>(d)];
}

Tensor Tensor::reshaped(std::vector<index_t> new_shape) const {
  index_t n = 1;
  for (index_t d : new_shape) n *= d;
  require(n == numel(), "Tensor::reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::add_(const Tensor& o, float scale) {
  require(same_shape(o), "Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * o.data_[i];
}

void Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
}

double Tensor::sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::sumsq() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

}  // namespace maps::nn
