// Numerical gradient checking for Modules.
//
// Scalarizes the module output with a fixed random cotangent and compares
// analytic backward() gradients (parameters and input) against central
// finite differences. float32 limits accuracy to ~1e-2 relative; tests use
// small tensors and tolerant thresholds.
#pragma once

#include "nn/module.hpp"

namespace maps::nn {

struct GradCheckResult {
  double max_param_err = 0.0;  // max abs(analytic - fd) over probed params
  double max_input_err = 0.0;  // same for input entries
  int param_probes = 0;
  int input_probes = 0;
};

GradCheckResult gradcheck(Module& m, const Tensor& x, unsigned seed = 0,
                          int param_probes = 24, int input_probes = 16,
                          double step = 1e-2);

}  // namespace maps::nn
