// Optimizers and LR schedules for MAPS-Train and MAPS-InvDes.
//
// Adam is used both for network weights (float tensors via Param) and, in a
// separate double-precision incarnation (AdamVector), for inverse-design
// variables theta.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace maps::nn {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamOptions options = {});

  void step();
  void zero_grad();
  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }
  int iterations() const { return t_; }

 private:
  std::vector<Param*> params_;
  AdamOptions options_;
  std::vector<std::vector<float>> m_, v_;
  int t_ = 0;
};

/// SGD with optional momentum (baseline / tests).
class Sgd {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void step();
  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Param*> params_;
  double lr_, momentum_;
  std::vector<std::vector<float>> vel_;
};

/// Serializable snapshot of an AdamVector: first/second moments plus the
/// bias-correction step count. Checkpointing this alongside theta lets an
/// interrupted inverse-design run resume on the exact same trajectory.
struct AdamVectorState {
  std::vector<double> m, v;
  int t = 0;
};

/// Adam over a plain double vector (inverse-design variables).
class AdamVector {
 public:
  AdamVector(std::size_t n, AdamOptions options = {});
  /// Gradient-ascent step when maximize = true.
  void step(std::vector<double>& theta, const std::vector<double>& grad,
            bool maximize = false);
  void set_lr(double lr) { options_.lr = lr; }

  AdamVectorState state() const { return {m_, v_, t_}; }
  /// Restore a snapshot taken with state(). Throws on a size mismatch.
  void restore(AdamVectorState state);

 private:
  AdamOptions options_;
  std::vector<double> m_, v_;
  int t_ = 0;
};

/// Cosine decay from lr0 to lr_min over total steps.
double cosine_lr(double lr0, double lr_min, int step, int total);

}  // namespace maps::nn
