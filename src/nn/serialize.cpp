#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace maps::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4D415053;  // "MAPS"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

void save_parameters(Module& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "save_parameters: cannot open file");
  const auto params = model.parameters();
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_u32(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(os, static_cast<std::uint32_t>(p->value.ndim()));
    for (int d = 0; d < p->value.ndim(); ++d) {
      write_u32(os, static_cast<std::uint32_t>(p->value.size(d)));
    }
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  require(os.good(), "save_parameters: write failed");
}

void load_parameters(Module& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "load_parameters: cannot open file");
  require(read_u32(is) == kMagic, "load_parameters: bad magic");
  const auto params = model.parameters();
  const std::uint32_t count = read_u32(is);
  require(count == params.size(), "load_parameters: parameter count mismatch");
  for (Param* p : params) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    require(name == p->name, "load_parameters: parameter name mismatch: " + name +
                                 " vs " + p->name);
    const std::uint32_t ndim = read_u32(is);
    require(static_cast<int>(ndim) == p->value.ndim(),
            "load_parameters: rank mismatch for " + name);
    for (int d = 0; d < p->value.ndim(); ++d) {
      require(read_u32(is) == static_cast<std::uint32_t>(p->value.size(d)),
              "load_parameters: shape mismatch for " + name);
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  require(is.good(), "load_parameters: truncated file");
}

}  // namespace maps::nn
