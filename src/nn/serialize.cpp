#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace maps::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4D415053;      // "MAPS"
constexpr std::uint32_t kMetaMagic = 0x4D455441;  // "META"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

/// Advance past the parameter records (header already consumed). Used by
/// load_metadata to reach the trailer without binding to an architecture.
void skip_parameters(std::istream& is, std::uint32_t count) {
  for (std::uint32_t p = 0; p < count; ++p) {
    const std::uint32_t name_len = read_u32(is);
    is.seekg(name_len, std::ios::cur);
    const std::uint32_t ndim = read_u32(is);
    std::uint64_t numel = 1;
    for (std::uint32_t d = 0; d < ndim; ++d) numel *= read_u32(is);
    is.seekg(static_cast<std::streamoff>(numel * sizeof(float)), std::ios::cur);
    require(is.good(), "load_metadata: truncated parameter record");
  }
}

}  // namespace

void save_parameters(Module& model, const std::string& path,
                     const std::map<std::string, double>& metadata) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "save_parameters: cannot open file");
  const auto params = model.parameters();
  write_u32(os, kMagic);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_u32(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(os, static_cast<std::uint32_t>(p->value.ndim()));
    for (int d = 0; d < p->value.ndim(); ++d) {
      write_u32(os, static_cast<std::uint32_t>(p->value.size(d)));
    }
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!metadata.empty()) {
    write_u32(os, kMetaMagic);
    write_u32(os, static_cast<std::uint32_t>(metadata.size()));
    for (const auto& [key, value] : metadata) {
      write_u32(os, static_cast<std::uint32_t>(key.size()));
      os.write(key.data(), static_cast<std::streamsize>(key.size()));
      os.write(reinterpret_cast<const char*>(&value), sizeof(value));
    }
  }
  require(os.good(), "save_parameters: write failed");
}

void load_parameters(Module& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "load_parameters: cannot open file");
  require(read_u32(is) == kMagic, "load_parameters: bad magic");
  const auto params = model.parameters();
  const std::uint32_t count = read_u32(is);
  require(count == params.size(), "load_parameters: parameter count mismatch");
  for (Param* p : params) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    require(name == p->name, "load_parameters: parameter name mismatch: " + name +
                                 " vs " + p->name);
    const std::uint32_t ndim = read_u32(is);
    require(static_cast<int>(ndim) == p->value.ndim(),
            "load_parameters: rank mismatch for " + name);
    for (int d = 0; d < p->value.ndim(); ++d) {
      require(read_u32(is) == static_cast<std::uint32_t>(p->value.size(d)),
              "load_parameters: shape mismatch for " + name);
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  require(is.good(), "load_parameters: truncated file");
}

std::map<std::string, double> load_metadata(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "load_metadata: cannot open file");
  require(read_u32(is) == kMagic, "load_metadata: bad magic");
  skip_parameters(is, read_u32(is));

  std::map<std::string, double> meta;
  std::uint32_t trailer = 0;
  is.read(reinterpret_cast<char*>(&trailer), sizeof(trailer));
  if (!is.good() || trailer != kMetaMagic) return meta;  // pre-trailer format
  const std::uint32_t count = read_u32(is);
  // Validate the unread counts against the bytes actually left in the file
  // before allocating: a corrupt/truncated trailer must fail the require
  // below, not trigger a multi-GB std::string / map allocation first.
  const auto pos = is.tellg();
  is.seekg(0, std::ios::end);
  const auto end_pos = is.tellg();
  is.seekg(pos);
  std::uint64_t remaining =
      (pos >= 0 && end_pos > pos) ? static_cast<std::uint64_t>(end_pos - pos) : 0;
  // Each record is at least key_len(u32) + key + value(f64) = 12 bytes.
  require(is.good() && count <= remaining / 12,
          "load_metadata: corrupt metadata trailer (count)");
  for (std::uint32_t k = 0; k < count; ++k) {
    require(remaining >= 12, "load_metadata: truncated metadata trailer");
    const std::uint32_t key_len = read_u32(is);
    require(is.good() && key_len <= remaining - 12,
            "load_metadata: corrupt metadata trailer (key length)");
    remaining -= 12 + static_cast<std::uint64_t>(key_len);
    std::string key(key_len, '\0');
    is.read(key.data(), key_len);
    double value = 0.0;
    is.read(reinterpret_cast<char*>(&value), sizeof(value));
    require(is.good(), "load_metadata: truncated metadata trailer");
    meta[key] = value;
  }
  return meta;
}

}  // namespace maps::nn
