// Baseline model zoo of MAPS-Train (Table III): FNO, Factorized-FNO, UNet,
// NeurOLight-style, plus the black-box S-parameter CNN used by Table II.
//
// NeurOLight is reproduced in simplified form: the same FNO backbone with a
// conv3x3 stem, consuming extra wave-prior input channels (built by the
// MAPS-Train input encoder from eps and the wavelength). See DESIGN.md §5.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/spectral.hpp"

namespace maps::nn {

/// sigma(spectral(x) + pointwise(x)) — the classic FNO block.
class FnoBlock final : public Module {
 public:
  FnoBlock(index_t channels, index_t modes_x, index_t modes_y, maps::math::Rng& rng,
           std::string tag);
  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override;

 private:
  std::string tag_;
  SpectralConv2d spectral_;
  Conv2d pointwise_;
  Activation act_{Act::Gelu};
};

/// F-FNO block: x + W2 gelu(W1 (specX(x) + specY(x))).
class FfnoBlock final : public Module {
 public:
  FfnoBlock(index_t channels, index_t modes, maps::math::Rng& rng, std::string tag);
  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override;

 private:
  std::string tag_;
  SpectralConv1d spec_x_, spec_y_;
  Conv2d w1_, w2_;
  Activation act_{Act::Gelu};
};

/// Two conv-gn-gelu stages (UNet building block).
class DoubleConv final : public Module {
 public:
  DoubleConv(index_t c_in, index_t c_out, maps::math::Rng& rng, std::string tag);
  std::string name() const override { return "double_conv"; }
  Tensor forward(const Tensor& x) override { return seq_.forward(x); }
  Tensor backward(const Tensor& g) override { return seq_.backward(g); }
  Tensor infer(const Tensor& x) const override { return seq_.infer(x); }
  std::vector<Param*> parameters() override { return seq_.parameters(); }

 private:
  Sequential seq_;
};

class Fno2d final : public Module {
 public:
  Fno2d(index_t c_in, index_t c_out, index_t width, index_t modes, int depth,
        maps::math::Rng& rng, index_t stem_kernel = 1);
  std::string name() const override { return "fno2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override;

 private:
  Sequential seq_;
};

class Ffno2d final : public Module {
 public:
  Ffno2d(index_t c_in, index_t c_out, index_t width, index_t modes, int depth,
         maps::math::Rng& rng);
  std::string name() const override { return "ffno2d"; }
  Tensor forward(const Tensor& x) override { return seq_.forward(x); }
  Tensor backward(const Tensor& g) override { return seq_.backward(g); }
  Tensor infer(const Tensor& x) const override { return seq_.infer(x); }
  std::vector<Param*> parameters() override { return seq_.parameters(); }

 private:
  Sequential seq_;
};

/// 3-level UNet with skip connections.
class UNet final : public Module {
 public:
  UNet(index_t c_in, index_t c_out, index_t width, maps::math::Rng& rng);
  std::string name() const override { return "unet"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override;

 private:
  DoubleConv enc1_, enc2_, bottleneck_, dec2_, dec1_;
  MaxPool2d pool1_, pool2_;
  Upsample2x up2_, up1_;
  Conv2d head_;
  Tensor s1_, s2_;  // skip tensors
};

/// Black-box regressor: eps+source maps -> scalar FoMs (Table II "AD-Black Box").
class SParamCnn final : public Module {
 public:
  SParamCnn(index_t c_in, index_t n_outputs, index_t width, maps::math::Rng& rng);
  std::string name() const override { return "sparam_cnn"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override;

 private:
  Sequential convs_;
  Linear fc_;
  std::vector<index_t> pre_pool_shape_;
};

// ------------------------------------------------------------------ factory

enum class ModelKind { Fno, Ffno, UNetKind, NeurOLight, SParam };

const char* model_name(ModelKind kind);

struct ModelConfig {
  ModelKind kind = ModelKind::Fno;
  index_t in_channels = 4;
  index_t out_channels = 2;
  index_t width = 16;
  index_t modes = 12;
  int depth = 4;
  index_t n_outputs = 1;  // SParamCnn only
  unsigned seed = 42;
};

std::unique_ptr<Module> make_model(const ModelConfig& config);

}  // namespace maps::nn
