// Module: the layer abstraction of MAPS-Train.
//
// Layer-based explicit reverse-mode: forward() caches whatever backward()
// needs; backward() consumes dL/d(output), accumulates parameter gradients
// and returns dL/d(input). Input gradients are first-class citizens because
// two of the paper's gradient modes (Table II: AD-Black Box, AD-Pred Field)
// differentiate the network with respect to the permittivity input channel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/rng.hpp"
#include "nn/tensor.hpp"

namespace maps::nn {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(Tensor::zeros_like(value)) {}
  void zero_grad() { grad.fill(0.0f); }
};

class Module {
 public:
  virtual ~Module() = default;
  virtual std::string name() const = 0;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  /// Inference-only forward: the same arithmetic as forward() (bit-identical
  /// outputs) but const — no activation caches are written, so one module
  /// instance can answer concurrent infer() calls from many threads (the
  /// serving layer's contract). Layers that implement it must not touch any
  /// mutable state; the default throws for modules without an inference path.
  virtual Tensor infer(const Tensor& x) const {
    (void)x;
    throw MapsError("Module::infer: no const inference path for " + name());
  }
  /// All trainable parameters (recursing into children).
  virtual std::vector<Param*> parameters() { return {}; }

  void zero_grad() {
    for (Param* p : parameters()) p->zero_grad();
  }
  index_t num_parameters() {
    index_t n = 0;
    for (Param* p : parameters()) n += p->value.numel();
    return n;
  }
};

/// Straight-line composition of modules.
class Sequential final : public Module {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Module> m) { mods_.push_back(std::move(m)); }

  std::string name() const override { return "sequential"; }
  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    for (auto& m : mods_) y = m->forward(y);
    return y;
  }
  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = mods_.rbegin(); it != mods_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }
  Tensor infer(const Tensor& x) const override {
    Tensor y = x;
    for (const auto& m : mods_) y = m->infer(y);
    return y;
  }
  std::vector<Param*> parameters() override {
    std::vector<Param*> ps;
    for (auto& m : mods_) {
      for (Param* p : m->parameters()) ps.push_back(p);
    }
    return ps;
  }
  std::size_t size() const { return mods_.size(); }
  Module& at(std::size_t i) { return *mods_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> mods_;
};

/// Kaiming-uniform initialization helper shared by layers.
void kaiming_init(Tensor& w, index_t fan_in, maps::math::Rng& rng);

}  // namespace maps::nn
