#include "nn/gradcheck.hpp"

#include <cmath>

#include "math/rng.hpp"

namespace maps::nn {

namespace {
double scalarize(const Tensor& y, const Tensor& cot) {
  double s = 0;
  for (index_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * cot[i];
  return s;
}
}  // namespace

GradCheckResult gradcheck(Module& m, const Tensor& x, unsigned seed, int param_probes,
                          int input_probes, double step) {
  maps::math::Rng rng(seed + 1);
  Tensor y0 = m.forward(x);
  Tensor cot = Tensor::zeros_like(y0);
  for (index_t i = 0; i < cot.numel(); ++i) {
    cot[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  m.zero_grad();
  (void)m.forward(x);  // fresh caches
  Tensor gx = m.backward(cot);

  GradCheckResult res;
  auto params = m.parameters();

  // Parameter probes spread across all parameter tensors.
  for (int probe = 0; probe < param_probes && !params.empty(); ++probe) {
    Param* p = params[static_cast<std::size_t>(
        rng.randint(0, static_cast<index_t>(params.size()) - 1))];
    const index_t i = rng.randint(0, p->value.numel() - 1);
    const float orig = p->value[i];
    p->value[i] = orig + static_cast<float>(step);
    const double fp = scalarize(m.forward(x), cot);
    p->value[i] = orig - static_cast<float>(step);
    const double fm = scalarize(m.forward(x), cot);
    p->value[i] = orig;
    const double fd = (fp - fm) / (2.0 * step);
    res.max_param_err = std::max(res.max_param_err, std::abs(fd - p->grad[i]));
    ++res.param_probes;
  }

  // Input probes.
  for (int probe = 0; probe < input_probes; ++probe) {
    const index_t i = rng.randint(0, x.numel() - 1);
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(step);
    xm[i] -= static_cast<float>(step);
    const double fp = scalarize(m.forward(xp), cot);
    const double fm = scalarize(m.forward(xm), cot);
    const double fd = (fp - fm) / (2.0 * step);
    res.max_input_err = std::max(res.max_input_err, std::abs(fd - gx[i]));
    ++res.input_probes;
  }
  // Leave caches consistent with the original input.
  (void)m.forward(x);
  return res;
}

}  // namespace maps::nn
