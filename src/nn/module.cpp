#include "nn/module.hpp"

#include <cmath>

namespace maps::nn {

void kaiming_init(Tensor& w, index_t fan_in, maps::math::Rng& rng) {
  require(fan_in > 0, "kaiming_init: fan_in must be positive");
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (index_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace maps::nn
