// Dense float32 tensor for the MAPS-Train neural framework.
//
// Row-major, value semantics. Field maps follow the (N, C, H, W) layout with
// W indexing x and H indexing y, so W lines up with the Grid2D fast axis.
#pragma once

#include <cstdint>
#include <vector>

#include "math/types.hpp"

namespace maps::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<index_t> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& t) { return Tensor(t.shape_); }

  index_t numel() const { return static_cast<index_t>(data_.size()); }
  int ndim() const { return static_cast<int>(shape_.size()); }
  index_t size(int d) const;
  const std::vector<index_t>& shape() const { return shape_; }
  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](index_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// 4D accessor (N, C, H, W); bounds unchecked in release paths.
  float& at(index_t n, index_t c, index_t h, index_t w) {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) *
                                          shape_[3] + w)];
  }
  float at(index_t n, index_t c, index_t h, index_t w) const {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) *
                                          shape_[3] + w)];
  }

  /// Reinterpret with a new shape of equal numel.
  Tensor reshaped(std::vector<index_t> new_shape) const;

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void add_(const Tensor& o, float scale = 1.0f);
  void scale_(float s);
  double sum() const;
  double sumsq() const;

 private:
  std::vector<index_t> shape_;
  std::vector<float> data_;
};

}  // namespace maps::nn
