// Model checkpointing: a small tagged binary format (name, shape, float32
// payload per parameter). Loading matches by name and shape so checkpoints
// survive unrelated architecture reordering.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace maps::nn {

void save_parameters(Module& model, const std::string& path);

/// Throws on missing file or any name/shape mismatch.
void load_parameters(Module& model, const std::string& path);

}  // namespace maps::nn
