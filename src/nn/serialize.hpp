// Model checkpointing: a small tagged binary format (name, shape, float32
// payload per parameter). Loading matches by name and shape so checkpoints
// survive unrelated architecture reordering.
//
// Checkpoints may carry an optional metadata trailer after the parameter
// records — a tagged list of (string key, double value) pairs used for
// training provenance such as the dataset standardizer constants ("std_*"
// keys). The trailer is backward and forward compatible: load_parameters
// reads exactly the declared parameters and never touches it, and
// load_metadata returns an empty map for trailer-less checkpoints.
#pragma once

#include <map>
#include <string>

#include "nn/module.hpp"

namespace maps::nn {

void save_parameters(Module& model, const std::string& path,
                     const std::map<std::string, double>& metadata = {});

/// Throws on missing file or any name/shape mismatch.
void load_parameters(Module& model, const std::string& path);

/// Read the metadata trailer of a checkpoint (empty map when the file
/// predates the trailer format). Throws on missing file or bad magic.
std::map<std::string, double> load_metadata(const std::string& path);

}  // namespace maps::nn
