#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "math/gemm.hpp"
#include "math/parallel.hpp"

namespace maps::nn {

using maps::math::parallel_for;
using maps::math::parallel_for_chunked;
using maps::math::Trans;

// ------------------------------------------------------------------ Conv2d

Conv2d::Conv2d(index_t c_in, index_t c_out, index_t k, maps::math::Rng& rng,
               std::string tag)
    : c_in_(c_in), c_out_(c_out), k_(k), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({c_out, c_in, k, k})),
      b_(tag_ + ".b", Tensor({c_out})) {
  require(k % 2 == 1, "Conv2d: kernel must be odd for same padding");
  kaiming_init(w_.value, c_in * k * k, rng);
}

Tensor Conv2d::run_forward(const Tensor& x, std::vector<float>& col) const {
  require(x.ndim() == 4 && x.size(1) == c_in_, "Conv2d: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t hw = H * W;
  const index_t ck2 = c_in_ * k_ * k_;
  Tensor y({N, c_out_, H, W});
  col.resize(static_cast<std::size_t>(ck2 * hw));
  const float* wp = w_.value.data();
  for (index_t n = 0; n < N; ++n) {
    maps::math::im2col(x.data() + n * c_in_ * hw, c_in_, H, W, k_, col.data());
    // Bias fills each output plane; the GEMM accumulates on top (beta = 1).
    float* yn = y.data() + n * c_out_ * hw;
    for (index_t co = 0; co < c_out_; ++co) {
      std::fill(yn + co * hw, yn + (co + 1) * hw, b_.value[co]);
    }
    maps::math::sgemm(Trans::No, Trans::No, c_out_, hw, ck2, 1.0f, wp, ck2,
                      col.data(), hw, 1.0f, yn, hw);
  }
  return y;
}

Tensor Conv2d::forward(const Tensor& x) {
  // Cache only after run_forward validated the input, so a rejected tensor
  // can't poison the backward cache.
  Tensor y = run_forward(x, col_);
  x_cache_ = x;
  return y;
}

Tensor Conv2d::infer(const Tensor& x) const {
  std::vector<float> col;  // local scratch: infer must not touch member state
  return run_forward(x, col);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  require(x.numel() > 0, "Conv2d::backward: call forward first");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t hw = H * W;
  const index_t ck2 = c_in_ * k_ * k_;

  // Bias gradient: per-channel reduction over every sample plane.
  parallel_for(0, static_cast<std::size_t>(c_out_), [&](std::size_t co_s) {
    const index_t co = static_cast<index_t>(co_s);
    double db = 0.0;
    for (index_t n = 0; n < N; ++n) {
      const float* g = grad_out.data() + (n * c_out_ + co) * hw;
      for (index_t i = 0; i < hw; ++i) db += g[i];
    }
    b_.grad[co] += static_cast<float>(db);
  });

  // Weight gradient dW += dY_n * col(x_n)^T and input gradient
  // dX_n = col2im(W^T * dY_n), both as GEMMs over the per-sample column
  // buffer (recomputed here rather than cached: one (c_in*k*k) x (H*W)
  // buffer instead of N of them).
  Tensor gx({N, c_in_, H, W});
  col_.resize(static_cast<std::size_t>(ck2 * hw));
  dcol_.resize(static_cast<std::size_t>(ck2 * hw));
  const float* wp = w_.value.data();
  for (index_t n = 0; n < N; ++n) {
    const float* gy = grad_out.data() + n * c_out_ * hw;
    maps::math::im2col(x.data() + n * c_in_ * hw, c_in_, H, W, k_, col_.data());
    maps::math::sgemm(Trans::No, Trans::Yes, c_out_, ck2, hw, 1.0f, gy, hw,
                      col_.data(), hw, 1.0f, w_.grad.data(), ck2);
    maps::math::sgemm(Trans::Yes, Trans::No, ck2, hw, c_out_, 1.0f, wp, ck2, gy,
                      hw, 0.0f, dcol_.data(), hw);
    maps::math::col2im(dcol_.data(), c_in_, H, W, k_,
                       gx.data() + n * c_in_ * hw);
  }
  return gx;
}

// ------------------------------------------------------------------ Linear

Linear::Linear(index_t f_in, index_t f_out, maps::math::Rng& rng, std::string tag)
    : f_in_(f_in), f_out_(f_out), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({f_out, f_in})), b_(tag_ + ".b", Tensor({f_out})) {
  kaiming_init(w_.value, f_in, rng);
}

Tensor Linear::run_forward(const Tensor& x) const {
  require(x.ndim() == 2 && x.size(1) == f_in_, "Linear: bad input shape");
  const index_t N = x.size(0);
  Tensor y({N, f_out_});
  // Y = X * W^T + b as one batched GEMM (bias seeds the output, beta = 1).
  for (index_t n = 0; n < N; ++n) {
    std::copy(b_.value.data(), b_.value.data() + f_out_, y.data() + n * f_out_);
  }
  maps::math::sgemm(Trans::No, Trans::Yes, N, f_out_, f_in_, 1.0f, x.data(),
                    f_in_, w_.value.data(), f_in_, 1.0f, y.data(), f_out_);
  return y;
}

Tensor Linear::forward(const Tensor& x) {
  Tensor y = run_forward(x);
  x_cache_ = x;
  return y;
}

Tensor Linear::infer(const Tensor& x) const { return run_forward(x); }

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  const index_t N = x.size(0);
  // db = column sums of dY; dW += dY^T * X; dX = dY * W — two GEMMs and one
  // reduction instead of per-sample loops.
  for (index_t n = 0; n < N; ++n) {
    const float* g = grad_out.data() + n * f_out_;
    float* db = b_.grad.data();
    for (index_t o = 0; o < f_out_; ++o) db[o] += g[o];
  }
  maps::math::sgemm(Trans::Yes, Trans::No, f_out_, f_in_, N, 1.0f,
                    grad_out.data(), f_out_, x.data(), f_in_, 1.0f,
                    w_.grad.data(), f_in_);
  Tensor gx({N, f_in_});
  maps::math::sgemm(Trans::No, Trans::No, N, f_in_, f_out_, 1.0f,
                    grad_out.data(), f_out_, w_.value.data(), f_in_, 0.0f,
                    gx.data(), f_in_);
  return gx;
}

// -------------------------------------------------------------- Activation

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

double act_forward(Act kind, double v) {
  switch (kind) {
    case Act::Relu:
      return v > 0 ? v : 0.0;
    case Act::Gelu:
      return 0.5 * v * (1.0 + std::erf(v * kInvSqrt2));
    case Act::Tanh:
      return std::tanh(v);
    case Act::Sigmoid:
      return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

double act_derivative(Act kind, double v) {
  switch (kind) {
    case Act::Relu:
      return v > 0 ? 1.0 : 0.0;
    case Act::Gelu: {
      const double cdf = 0.5 * (1.0 + std::erf(v * kInvSqrt2));
      const double pdf = kInvSqrt2Pi * std::exp(-0.5 * v * v);
      return cdf + v * pdf;
    }
    case Act::Tanh: {
      const double t = std::tanh(v);
      return 1.0 - t * t;
    }
    case Act::Sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-v));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}
}  // namespace

Tensor Activation::forward(const Tensor& x) {
  x_cache_ = x;
  return infer(x);
}

Tensor Activation::infer(const Tensor& x) const {
  Tensor y = x;
  for (index_t i = 0; i < y.numel(); ++i) {
    y[i] = static_cast<float>(act_forward(kind_, x[i]));
  }
  return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
  require(x_cache_.same_shape(grad_out), "Activation::backward: shape mismatch");
  Tensor gx = grad_out;
  for (index_t i = 0; i < gx.numel(); ++i) {
    gx[i] = static_cast<float>(grad_out[i] * act_derivative(kind_, x_cache_[i]));
  }
  return gx;
}

// --------------------------------------------------------------- GroupNorm

GroupNorm::GroupNorm(index_t groups, index_t channels, double eps)
    : groups_(groups), channels_(channels), eps_(eps),
      gamma_("gn.gamma", Tensor({channels}, 1.0f)),
      beta_("gn.beta", Tensor({channels}, 0.0f)) {
  require(channels % groups == 0, "GroupNorm: channels must divide by groups");
}

void GroupNorm::run_forward(const Tensor& x, Tensor& y, Tensor* xhat,
                            std::vector<double>* inv_std_out) const {
  require(x.ndim() == 4 && x.size(1) == channels_, "GroupNorm: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t cg = channels_ / groups_;
  const index_t m = cg * H * W;

  for (index_t n = 0; n < N; ++n) {
    for (index_t g = 0; g < groups_; ++g) {
      double mean = 0.0;
      for (index_t c = g * cg; c < (g + 1) * cg; ++c) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t w = 0; w < W; ++w) mean += x.at(n, c, h, w);
        }
      }
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (index_t c = g * cg; c < (g + 1) * cg; ++c) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t w = 0; w < W; ++w) {
            const double d = x.at(n, c, h, w) - mean;
            var += d * d;
          }
        }
      }
      var /= static_cast<double>(m);
      const double inv_std = 1.0 / std::sqrt(var + eps_);
      if (inv_std_out != nullptr) {
        (*inv_std_out)[static_cast<std::size_t>(n * groups_ + g)] = inv_std;
      }
      for (index_t c = g * cg; c < (g + 1) * cg; ++c) {
        const float ga = gamma_.value[c], be = beta_.value[c];
        for (index_t h = 0; h < H; ++h) {
          for (index_t w = 0; w < W; ++w) {
            const float xh = static_cast<float>((x.at(n, c, h, w) - mean) * inv_std);
            if (xhat != nullptr) xhat->at(n, c, h, w) = xh;
            y.at(n, c, h, w) = ga * xh + be;
          }
        }
      }
    }
  }
}

Tensor GroupNorm::forward(const Tensor& x) {
  require(x.ndim() == 4 && x.size(1) == channels_, "GroupNorm: bad input shape");
  x_cache_ = x;
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  xhat_cache_ = Tensor({N, channels_, H, W});
  inv_std_.assign(static_cast<std::size_t>(N * groups_), 0.0);
  Tensor y({N, channels_, H, W});
  run_forward(x, y, &xhat_cache_, &inv_std_);
  return y;
}

Tensor GroupNorm::infer(const Tensor& x) const {
  require(x.ndim() == 4 && x.size(1) == channels_, "GroupNorm: bad input shape");
  Tensor y({x.size(0), channels_, x.size(2), x.size(3)});
  run_forward(x, y, nullptr, nullptr);
  return y;
}

Tensor GroupNorm::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  require(x.same_shape(grad_out), "GroupNorm::backward: shape mismatch");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t cg = channels_ / groups_;
  const double m = static_cast<double>(cg * H * W);
  Tensor gx({N, channels_, H, W});

  // Affine parameter gradients.
  for (index_t c = 0; c < channels_; ++c) {
    double dg = 0, db = 0;
    for (index_t n = 0; n < N; ++n) {
      for (index_t h = 0; h < H; ++h) {
        for (index_t w = 0; w < W; ++w) {
          dg += grad_out.at(n, c, h, w) * xhat_cache_.at(n, c, h, w);
          db += grad_out.at(n, c, h, w);
        }
      }
    }
    gamma_.grad[c] += static_cast<float>(dg);
    beta_.grad[c] += static_cast<float>(db);
  }

  // Input gradient per (n, g): the standard normalized-stat backward.
  for (index_t n = 0; n < N; ++n) {
    for (index_t g = 0; g < groups_; ++g) {
      const double inv_std = inv_std_[static_cast<std::size_t>(n * groups_ + g)];
      double sum_dxhat = 0, sum_dxhat_xhat = 0;
      for (index_t c = g * cg; c < (g + 1) * cg; ++c) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t w = 0; w < W; ++w) {
            const double dxhat = grad_out.at(n, c, h, w) * gamma_.value[c];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat_cache_.at(n, c, h, w);
          }
        }
      }
      for (index_t c = g * cg; c < (g + 1) * cg; ++c) {
        for (index_t h = 0; h < H; ++h) {
          for (index_t w = 0; w < W; ++w) {
            const double dxhat = grad_out.at(n, c, h, w) * gamma_.value[c];
            const double xh = xhat_cache_.at(n, c, h, w);
            gx.at(n, c, h, w) = static_cast<float>(
                inv_std * (dxhat - sum_dxhat / m - xh * sum_dxhat_xhat / m));
          }
        }
      }
    }
  }
  return gx;
}

// --------------------------------------------------------------- MaxPool2d

Tensor MaxPool2d::run_forward(const Tensor& x, std::vector<index_t>* argmax) const {
  require(x.ndim() == 4, "MaxPool2d: expects 4D input");
  const index_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  require(H % 2 == 0 && W % 2 == 0, "MaxPool2d: H and W must be even");
  Tensor y({N, C, H / 2, W / 2});
  if (argmax != nullptr) argmax->assign(static_cast<std::size_t>(y.numel()), 0);
  index_t out = 0;
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      for (index_t h = 0; h < H; h += 2) {
        for (index_t w = 0; w < W; w += 2) {
          float best = x.at(n, c, h, w);
          index_t best_idx = ((n * C + c) * H + h) * W + w;
          for (index_t dh = 0; dh < 2; ++dh) {
            for (index_t dw = 0; dw < 2; ++dw) {
              const float v = x.at(n, c, h + dh, w + dw);
              if (v > best) {
                best = v;
                best_idx = ((n * C + c) * H + h + dh) * W + w + dw;
              }
            }
          }
          y[out] = best;
          if (argmax != nullptr) (*argmax)[static_cast<std::size_t>(out)] = best_idx;
          ++out;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::forward(const Tensor& x) {
  Tensor y = run_forward(x, &argmax_);
  in_shape_ = x.shape();
  return y;
}

Tensor MaxPool2d::infer(const Tensor& x) const { return run_forward(x, nullptr); }

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "MaxPool2d::backward: call forward first");
  Tensor gx(in_shape_);
  for (index_t i = 0; i < grad_out.numel(); ++i) {
    gx[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return gx;
}

// -------------------------------------------------------------- Upsample2x

Tensor Upsample2x::run_forward(const Tensor& x) const {
  require(x.ndim() == 4, "Upsample2x: expects 4D input");
  const index_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  Tensor y({N, C, H * 2, W * 2});
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      for (index_t h = 0; h < 2 * H; ++h) {
        for (index_t w = 0; w < 2 * W; ++w) {
          y.at(n, c, h, w) = x.at(n, c, h / 2, w / 2);
        }
      }
    }
  }
  return y;
}

Tensor Upsample2x::forward(const Tensor& x) {
  Tensor y = run_forward(x);
  in_shape_ = x.shape();
  return y;
}

Tensor Upsample2x::infer(const Tensor& x) const { return run_forward(x); }

Tensor Upsample2x::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "Upsample2x::backward: call forward first");
  Tensor gx(in_shape_);
  const index_t N = in_shape_[0], C = in_shape_[1], H = in_shape_[2], W = in_shape_[3];
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      for (index_t h = 0; h < 2 * H; ++h) {
        for (index_t w = 0; w < 2 * W; ++w) {
          gx.at(n, c, h / 2, w / 2) += grad_out.at(n, c, h, w);
        }
      }
    }
  }
  return gx;
}

}  // namespace maps::nn
