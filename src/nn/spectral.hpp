// Spectral convolution layers: the Fourier-domain kernels of FNO [6] and
// Factorized-FNO [7].
//
// SpectralConv2d: FFT2 -> complex channel-mixing weights on the low-frequency
// corner blocks (kx in [0,m1) u [nx-m1,nx), ky in [0,m2)) -> inverse FFT2,
// real part. SpectralConv1d applies the same idea along a single axis
// (weights shared across the other axis), which is the factorization of
// F-FNO. Both have exact adjoint backward passes (FFT adjoint = scaled
// inverse FFT; weights get the conjugated products).
#pragma once

#include "math/field2d.hpp"
#include "nn/module.hpp"

namespace maps::nn {

class SpectralConv2d final : public Module {
 public:
  SpectralConv2d(index_t c_in, index_t c_out, index_t modes_x, index_t modes_y,
                 maps::math::Rng& rng, std::string tag = "spectral2d");

  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override { return {&w_}; }

 private:
  /// FFT -> corner-block channel mixing -> inverse FFT, shared by forward()
  /// and infer(). On return `x_hat` holds the input-plane FFTs (the forward
  /// path moves it into the backward cache; infer drops it).
  Tensor run_forward(const Tensor& x, std::vector<maps::math::CplxGrid>& x_hat) const;

  index_t c_in_, c_out_, mx_, my_;
  std::string tag_;
  // (2 blocks, c_in, c_out, mx, my, 2[re/im])
  Param w_;
  std::vector<maps::math::CplxGrid> x_hat_;  // cached FFTs, index n*c_in+ci
  std::vector<index_t> in_shape_;
};

enum class FftAxis { X, Y };

class SpectralConv1d final : public Module {
 public:
  SpectralConv1d(index_t c_in, index_t c_out, index_t modes, FftAxis axis,
                 maps::math::Rng& rng, std::string tag = "spectral1d");

  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override { return {&w_}; }

 private:
  Tensor run_forward(const Tensor& x, std::vector<maps::math::CplxGrid>& x_hat) const;

  index_t c_in_, c_out_, m_;
  FftAxis axis_;
  std::string tag_;
  // (2 blocks, c_in, c_out, m, 2[re/im])
  Param w_;
  std::vector<maps::math::CplxGrid> x_hat_;
  std::vector<index_t> in_shape_;
};

}  // namespace maps::nn
