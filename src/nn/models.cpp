#include "nn/models.hpp"

namespace maps::nn {

// ---------------------------------------------------------------- FnoBlock

FnoBlock::FnoBlock(index_t channels, index_t modes_x, index_t modes_y,
                   maps::math::Rng& rng, std::string tag)
    : tag_(std::move(tag)),
      spectral_(channels, channels, modes_x, modes_y, rng, tag_ + ".spec"),
      pointwise_(channels, channels, 1, rng, tag_ + ".pw") {}

Tensor FnoBlock::forward(const Tensor& x) {
  Tensor y = spectral_.forward(x);
  y.add_(pointwise_.forward(x));
  return act_.forward(y);
}

Tensor FnoBlock::infer(const Tensor& x) const {
  Tensor y = spectral_.infer(x);
  y.add_(pointwise_.infer(x));
  return act_.infer(y);
}

Tensor FnoBlock::backward(const Tensor& grad_out) {
  const Tensor g = act_.backward(grad_out);
  Tensor gx = spectral_.backward(g);
  gx.add_(pointwise_.backward(g));
  return gx;
}

std::vector<Param*> FnoBlock::parameters() {
  auto ps = spectral_.parameters();
  for (Param* p : pointwise_.parameters()) ps.push_back(p);
  return ps;
}

// --------------------------------------------------------------- FfnoBlock

FfnoBlock::FfnoBlock(index_t channels, index_t modes, maps::math::Rng& rng,
                     std::string tag)
    : tag_(std::move(tag)),
      spec_x_(channels, channels, modes, FftAxis::X, rng, tag_ + ".sx"),
      spec_y_(channels, channels, modes, FftAxis::Y, rng, tag_ + ".sy"),
      w1_(channels, channels, 1, rng, tag_ + ".w1"),
      w2_(channels, channels, 1, rng, tag_ + ".w2") {}

Tensor FfnoBlock::forward(const Tensor& x) {
  Tensor s = spec_x_.forward(x);
  s.add_(spec_y_.forward(x));
  Tensor h = w2_.forward(act_.forward(w1_.forward(s)));
  h.add_(x);  // residual
  return h;
}

Tensor FfnoBlock::infer(const Tensor& x) const {
  Tensor s = spec_x_.infer(x);
  s.add_(spec_y_.infer(x));
  Tensor h = w2_.infer(act_.infer(w1_.infer(s)));
  h.add_(x);  // residual
  return h;
}

Tensor FfnoBlock::backward(const Tensor& grad_out) {
  Tensor gs = w1_.backward(act_.backward(w2_.backward(grad_out)));
  Tensor gx = spec_x_.backward(gs);
  gx.add_(spec_y_.backward(gs));
  gx.add_(grad_out);  // residual path
  return gx;
}

std::vector<Param*> FfnoBlock::parameters() {
  std::vector<Param*> ps;
  for (Module* m : std::initializer_list<Module*>{&spec_x_, &spec_y_, &w1_, &w2_}) {
    for (Param* p : m->parameters()) ps.push_back(p);
  }
  return ps;
}

// -------------------------------------------------------------- DoubleConv

DoubleConv::DoubleConv(index_t c_in, index_t c_out, maps::math::Rng& rng,
                       std::string tag) {
  const index_t groups = std::min<index_t>(4, c_out);
  seq_.add(std::make_unique<Conv2d>(c_in, c_out, 3, rng, tag + ".c1"));
  seq_.add(std::make_unique<GroupNorm>(groups, c_out));
  seq_.add(std::make_unique<Activation>(Act::Gelu));
  seq_.add(std::make_unique<Conv2d>(c_out, c_out, 3, rng, tag + ".c2"));
  seq_.add(std::make_unique<GroupNorm>(groups, c_out));
  seq_.add(std::make_unique<Activation>(Act::Gelu));
}

// ------------------------------------------------------------------- Fno2d

Fno2d::Fno2d(index_t c_in, index_t c_out, index_t width, index_t modes, int depth,
             maps::math::Rng& rng, index_t stem_kernel) {
  seq_.add(std::make_unique<Conv2d>(c_in, width, stem_kernel, rng, "lift"));
  for (int d = 0; d < depth; ++d) {
    seq_.add(std::make_unique<FnoBlock>(width, modes, modes, rng,
                                        "block" + std::to_string(d)));
  }
  seq_.add(std::make_unique<Conv2d>(width, width, 1, rng, "proj1"));
  seq_.add(std::make_unique<Activation>(Act::Gelu));
  seq_.add(std::make_unique<Conv2d>(width, c_out, 1, rng, "proj2"));
}

Tensor Fno2d::forward(const Tensor& x) { return seq_.forward(x); }
Tensor Fno2d::backward(const Tensor& g) { return seq_.backward(g); }
Tensor Fno2d::infer(const Tensor& x) const { return seq_.infer(x); }
std::vector<Param*> Fno2d::parameters() { return seq_.parameters(); }

// ------------------------------------------------------------------ Ffno2d

Ffno2d::Ffno2d(index_t c_in, index_t c_out, index_t width, index_t modes, int depth,
               maps::math::Rng& rng) {
  seq_.add(std::make_unique<Conv2d>(c_in, width, 1, rng, "lift"));
  for (int d = 0; d < depth; ++d) {
    seq_.add(std::make_unique<FfnoBlock>(width, modes, rng,
                                         "fblock" + std::to_string(d)));
  }
  seq_.add(std::make_unique<Conv2d>(width, width, 1, rng, "proj1"));
  seq_.add(std::make_unique<Activation>(Act::Gelu));
  seq_.add(std::make_unique<Conv2d>(width, c_out, 1, rng, "proj2"));
}

// -------------------------------------------------------------------- UNet

UNet::UNet(index_t c_in, index_t c_out, index_t width, maps::math::Rng& rng)
    : enc1_(c_in, width, rng, "enc1"),
      enc2_(width, 2 * width, rng, "enc2"),
      bottleneck_(2 * width, 2 * width, rng, "mid"),
      dec2_(4 * width, width, rng, "dec2"),
      dec1_(2 * width, width, rng, "dec1"),
      head_(width, c_out, 1, rng, "head") {}

namespace {
Tensor concat_channels(const Tensor& a, const Tensor& b) {
  const index_t N = a.size(0), Ca = a.size(1), Cb = b.size(1), H = a.size(2),
                W = a.size(3);
  require(b.size(0) == N && b.size(2) == H && b.size(3) == W,
          "concat_channels: shape mismatch");
  Tensor y({N, Ca + Cb, H, W});
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < Ca; ++c) {
      for (index_t h = 0; h < H; ++h) {
        for (index_t w = 0; w < W; ++w) y.at(n, c, h, w) = a.at(n, c, h, w);
      }
    }
    for (index_t c = 0; c < Cb; ++c) {
      for (index_t h = 0; h < H; ++h) {
        for (index_t w = 0; w < W; ++w) y.at(n, Ca + c, h, w) = b.at(n, c, h, w);
      }
    }
  }
  return y;
}

std::pair<Tensor, Tensor> split_channels(const Tensor& g, index_t ca) {
  const index_t N = g.size(0), C = g.size(1), H = g.size(2), W = g.size(3);
  Tensor a({N, ca, H, W}), b({N, C - ca, H, W});
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      for (index_t h = 0; h < H; ++h) {
        for (index_t w = 0; w < W; ++w) {
          if (c < ca) {
            a.at(n, c, h, w) = g.at(n, c, h, w);
          } else {
            b.at(n, c - ca, h, w) = g.at(n, c, h, w);
          }
        }
      }
    }
  }
  return {std::move(a), std::move(b)};
}
}  // namespace

Tensor UNet::forward(const Tensor& x) {
  s1_ = enc1_.forward(x);                    // (N, w, H, W)
  s2_ = enc2_.forward(pool1_.forward(s1_));  // (N, 2w, H/2, W/2)
  Tensor mid = bottleneck_.forward(pool2_.forward(s2_));  // (N, 2w, H/4, W/4)
  Tensor u2 = concat_channels(up2_.forward(mid), s2_);    // (N, 4w, H/2, W/2)
  Tensor d2 = dec2_.forward(u2);                          // (N, w, H/2, W/2)
  Tensor u1 = concat_channels(up1_.forward(d2), s1_);     // (N, 2w, H, W)
  Tensor d1 = dec1_.forward(u1);                          // (N, w, H, W)
  return head_.forward(d1);
}

Tensor UNet::infer(const Tensor& x) const {
  // Same dataflow as forward(), with the skip tensors held locally instead
  // of in the backward caches.
  Tensor s1 = enc1_.infer(x);
  Tensor s2 = enc2_.infer(pool1_.infer(s1));
  Tensor mid = bottleneck_.infer(pool2_.infer(s2));
  Tensor u2 = concat_channels(up2_.infer(mid), s2);
  Tensor d2 = dec2_.infer(u2);
  Tensor u1 = concat_channels(up1_.infer(d2), s1);
  Tensor d1 = dec1_.infer(u1);
  return head_.infer(d1);
}

Tensor UNet::backward(const Tensor& grad_out) {
  Tensor g = head_.backward(grad_out);
  g = dec1_.backward(g);
  auto [g_up1, g_s1] = split_channels(g, s1_.size(1) /* == width */);
  Tensor g_d2 = up1_.backward(g_up1);
  g_d2 = dec2_.backward(g_d2);
  auto [g_up2, g_s2] = split_channels(g_d2, s2_.size(1));
  Tensor g_mid = up2_.backward(g_up2);
  g_mid = bottleneck_.backward(g_mid);
  Tensor g_pool2 = pool2_.backward(g_mid);
  g_pool2.add_(g_s2);  // skip join at s2
  Tensor g_enc2 = enc2_.backward(g_pool2);
  Tensor g_pool1 = pool1_.backward(g_enc2);
  g_pool1.add_(g_s1);  // skip join at s1
  return enc1_.backward(g_pool1);
}

std::vector<Param*> UNet::parameters() {
  std::vector<Param*> ps;
  for (Module* m : std::initializer_list<Module*>{&enc1_, &enc2_, &bottleneck_, &dec2_,
                                                  &dec1_, &head_}) {
    for (Param* p : m->parameters()) ps.push_back(p);
  }
  return ps;
}

// --------------------------------------------------------------- SParamCnn

SParamCnn::SParamCnn(index_t c_in, index_t n_outputs, index_t width,
                     maps::math::Rng& rng)
    : fc_(2 * width, n_outputs, rng, "fc") {
  convs_.add(std::make_unique<Conv2d>(c_in, width, 3, rng, "s1"));
  convs_.add(std::make_unique<Activation>(Act::Gelu));
  convs_.add(std::make_unique<MaxPool2d>());
  convs_.add(std::make_unique<Conv2d>(width, 2 * width, 3, rng, "s2"));
  convs_.add(std::make_unique<Activation>(Act::Gelu));
  convs_.add(std::make_unique<MaxPool2d>());
  convs_.add(std::make_unique<Conv2d>(2 * width, 2 * width, 3, rng, "s3"));
  convs_.add(std::make_unique<Activation>(Act::Gelu));
}

namespace {
/// Global average pool (N, C, H, W) -> (N, C).
Tensor global_avg_pool(const Tensor& h) {
  const index_t N = h.size(0), C = h.size(1), H = h.size(2), W = h.size(3);
  Tensor pooled({N, C});
  const double inv = 1.0 / static_cast<double>(H * W);
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      double s = 0;
      for (index_t hh = 0; hh < H; ++hh) {
        for (index_t ww = 0; ww < W; ++ww) s += h.at(n, c, hh, ww);
      }
      pooled[n * C + c] = static_cast<float>(s * inv);
    }
  }
  return pooled;
}
}  // namespace

Tensor SParamCnn::forward(const Tensor& x) {
  Tensor h = convs_.forward(x);  // (N, C, H', W')
  pre_pool_shape_ = h.shape();
  return fc_.forward(global_avg_pool(h));
}

Tensor SParamCnn::infer(const Tensor& x) const {
  return fc_.infer(global_avg_pool(convs_.infer(x)));
}

Tensor SParamCnn::backward(const Tensor& grad_out) {
  Tensor g_pooled = fc_.backward(grad_out);  // (N, C)
  const index_t N = pre_pool_shape_[0], C = pre_pool_shape_[1],
                H = pre_pool_shape_[2], W = pre_pool_shape_[3];
  Tensor gh(pre_pool_shape_);
  const float inv = 1.0f / static_cast<float>(H * W);
  for (index_t n = 0; n < N; ++n) {
    for (index_t c = 0; c < C; ++c) {
      const float g = g_pooled[n * C + c] * inv;
      for (index_t hh = 0; hh < H; ++hh) {
        for (index_t ww = 0; ww < W; ++ww) gh.at(n, c, hh, ww) = g;
      }
    }
  }
  return convs_.backward(gh);
}

std::vector<Param*> SParamCnn::parameters() {
  auto ps = convs_.parameters();
  for (Param* p : fc_.parameters()) ps.push_back(p);
  return ps;
}

// ------------------------------------------------------------------ factory

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::Fno: return "FNO";
    case ModelKind::Ffno: return "F-FNO";
    case ModelKind::UNetKind: return "UNet";
    case ModelKind::NeurOLight: return "NeurOLight";
    case ModelKind::SParam: return "SParamCNN";
  }
  return "?";
}

std::unique_ptr<Module> make_model(const ModelConfig& cfg) {
  maps::math::Rng rng(cfg.seed);
  switch (cfg.kind) {
    case ModelKind::Fno:
      return std::make_unique<Fno2d>(cfg.in_channels, cfg.out_channels, cfg.width,
                                     cfg.modes, cfg.depth, rng);
    case ModelKind::Ffno:
      return std::make_unique<Ffno2d>(cfg.in_channels, cfg.out_channels, cfg.width,
                                      cfg.modes, cfg.depth, rng);
    case ModelKind::UNetKind:
      return std::make_unique<UNet>(cfg.in_channels, cfg.out_channels, cfg.width, rng);
    case ModelKind::NeurOLight:
      // Wave-prior channels are appended by the input encoder; the conv3x3
      // stem lets the operator exploit their local phase structure.
      return std::make_unique<Fno2d>(cfg.in_channels, cfg.out_channels, cfg.width,
                                     cfg.modes, cfg.depth, rng, /*stem_kernel=*/3);
    case ModelKind::SParam:
      return std::make_unique<SParamCnn>(cfg.in_channels, cfg.n_outputs, cfg.width,
                                         rng);
  }
  throw MapsError("make_model: unknown kind");
}

}  // namespace maps::nn
