// Standard layers: convolution, linear, activations, normalization,
// pooling/upsampling. All backwards are exact (verified by gradcheck tests).
#pragma once

#include "nn/module.hpp"

namespace maps::nn {

/// 2D convolution, stride 1, zero "same" padding (odd kernel).
///
/// Forward and backward are lowered onto the GEMM substrate (math/gemm.hpp):
/// per sample, im2col unrolls the input into a (c_in*k*k) x (H*W) column
/// matrix, the forward is one GEMM against the (c_out, c_in*k*k) weight
/// matrix, the weight gradient is a GEMM over the same column buffer and the
/// input gradient is a transposed GEMM followed by col2im.
class Conv2d final : public Module {
 public:
  Conv2d(index_t c_in, index_t c_out, index_t k, maps::math::Rng& rng,
         std::string tag = "conv");

  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override { return {&w_, &b_}; }

  index_t in_channels() const { return c_in_; }
  index_t out_channels() const { return c_out_; }

 private:
  /// The im2col+GEMM forward shared by forward() and infer(); `col` is the
  /// caller-provided per-sample column scratch.
  Tensor run_forward(const Tensor& x, std::vector<float>& col) const;

  index_t c_in_, c_out_, k_;
  std::string tag_;
  Param w_;  // (c_out, c_in, k, k)
  Param b_;  // (c_out)
  Tensor x_cache_;
  // Per-sample im2col scratch, reused across samples and steps ((c_in*k*k) x
  // (H*W) floats — the memory cost of the GEMM lowering).
  std::vector<float> col_, dcol_;
};

/// Fully connected layer on (N, F) tensors.
class Linear final : public Module {
 public:
  Linear(index_t f_in, index_t f_out, maps::math::Rng& rng, std::string tag = "linear");

  std::string name() const override { return tag_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override { return {&w_, &b_}; }

 private:
  Tensor run_forward(const Tensor& x) const;

  index_t f_in_, f_out_;
  std::string tag_;
  Param w_;  // (f_out, f_in)
  Param b_;  // (f_out)
  Tensor x_cache_;
};

enum class Act { Relu, Gelu, Tanh, Sigmoid };

class Activation final : public Module {
 public:
  explicit Activation(Act kind) : kind_(kind) {}
  std::string name() const override { return "activation"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  Act kind_;
  Tensor x_cache_;
};

/// GroupNorm over (channels/groups, H, W) per sample with learned affine.
class GroupNorm final : public Module {
 public:
  GroupNorm(index_t groups, index_t channels, double eps = 1e-5);

  std::string name() const override { return "group_norm"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param*> parameters() override { return {&gamma_, &beta_}; }

 private:
  /// Shared normalization core: writes y; optionally records xhat and the
  /// per-(n, g) inverse stddev for backward (null in the infer path).
  void run_forward(const Tensor& x, Tensor& y, Tensor* xhat,
                   std::vector<double>* inv_std) const;

  index_t groups_, channels_;
  double eps_;
  Param gamma_, beta_;
  Tensor x_cache_, xhat_cache_;
  std::vector<double> inv_std_;  // per (n, g)
};

/// 2x2 max pooling, stride 2 (even H, W).
class MaxPool2d final : public Module {
 public:
  std::string name() const override { return "max_pool2d"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  Tensor run_forward(const Tensor& x, std::vector<index_t>* argmax) const;

  std::vector<index_t> argmax_;
  std::vector<index_t> in_shape_;
};

/// 2x nearest-neighbour upsampling.
class Upsample2x final : public Module {
 public:
  std::string name() const override { return "upsample2x"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  Tensor run_forward(const Tensor& x) const;

  std::vector<index_t> in_shape_;
};

}  // namespace maps::nn
