// Batched inference entry points over Module::infer.
//
// The serving layer coalesces many single-sample requests into one (N, C, H,
// W) forward so the GEMM/FFT batch kernels see a full batch and the
// per-forward dispatch cost is paid once. These helpers do the stacking and
// splitting; because every layer's infer() processes batch rows
// independently, a stacked forward is bit-identical to N single-sample
// forwards.
#pragma once

#include <span>
#include <vector>

#include "nn/module.hpp"

namespace maps::nn {

/// Stack single-sample inputs (each (1, C, H, W)) into one (N, C, H, W)
/// batch. All inputs must share one shape.
Tensor stack_batch(std::span<const Tensor> inputs);

/// Split a batched output into per-sample (1, C, H, W) tensors.
std::vector<Tensor> split_batch(const Tensor& batch);

/// One stacked const forward over the inputs; returns per-sample outputs.
std::vector<Tensor> infer_batch(const Module& model, std::span<const Tensor> inputs);

}  // namespace maps::nn
