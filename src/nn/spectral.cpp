#include "nn/spectral.hpp"

#include <cmath>

#include "math/fft.hpp"
#include "math/parallel.hpp"

namespace maps::nn {

using maps::cplx;
using maps::math::CplxGrid;
using maps::math::parallel_for_chunked;

namespace {

// A tensor plane (n, c, :, :) flattens exactly like CplxGrid(W, H)
// (w + W*h == h*W + w), so plane gather/scatter is a flat pass over H*W
// contiguous elements — no multi-index arithmetic in the loop.

/// Gather every (n, c) plane of x into a batch of complex grids.
std::vector<CplxGrid> gather_planes(const Tensor& x) {
  const index_t C = x.size(1), H = x.size(2), W = x.size(3);
  const index_t hw = H * W;
  std::vector<CplxGrid> batch(static_cast<std::size_t>(x.size(0) * C));
  parallel_for_chunked(0, batch.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      CplxGrid g(W, H);
      const float* src = x.data() + static_cast<index_t>(idx) * hw;
      cplx* dst = g.data().data();
      for (index_t i = 0; i < hw; ++i) dst[i] = cplx{src[i], 0.0};
      batch[idx] = std::move(g);
    }
  });
  return batch;
}

/// Scatter the real part of each grid (times scale) into the tensor planes.
void scatter_planes(const std::vector<CplxGrid>& batch, Tensor& y, double scale) {
  const index_t hw = y.size(2) * y.size(3);
  parallel_for_chunked(0, batch.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t idx = b; idx < e; ++idx) {
      const cplx* src = batch[idx].data().data();
      float* dst = y.data() + static_cast<index_t>(idx) * hw;
      for (index_t i = 0; i < hw; ++i) {
        dst[i] = static_cast<float>(src[i].real() * scale);
      }
    }
  });
}

void spectral_init(Tensor& w, index_t c_in, maps::math::Rng& rng) {
  const double scale = 1.0 / static_cast<double>(c_in);
  for (index_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
}

}  // namespace

// ----------------------------------------------------------- SpectralConv2d

SpectralConv2d::SpectralConv2d(index_t c_in, index_t c_out, index_t modes_x,
                               index_t modes_y, maps::math::Rng& rng, std::string tag)
    : c_in_(c_in), c_out_(c_out), mx_(modes_x), my_(modes_y), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({2, c_in, c_out, modes_x, modes_y, 2})) {
  spectral_init(w_.value, c_in, rng);
}

Tensor SpectralConv2d::run_forward(const Tensor& x,
                                   std::vector<CplxGrid>& x_hat) const {
  require(x.ndim() == 4 && x.size(1) == c_in_, "SpectralConv2d: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  require(2 * mx_ <= W && my_ <= H, "SpectralConv2d: modes exceed grid");

  // One batched FFT over the N * c_in transform batch (shared twiddle plan).
  x_hat = gather_planes(x);
  maps::math::fft2_batch_inplace(x_hat, false);

  // Mix channels on the retained corner blocks, then batch-invert.
  std::vector<CplxGrid> yhat(static_cast<std::size_t>(N * c_out_));
  const float* wp = w_.value.data();
  parallel_for_chunked(0, yhat.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const index_t n = static_cast<index_t>(idx) / c_out_;
      const index_t co = static_cast<index_t>(idx) % c_out_;
      CplxGrid g(W, H);  // zero everywhere except the retained corners
      for (index_t b = 0; b < 2; ++b) {
        for (index_t km = 0; km < mx_; ++km) {
          const index_t kx = (b == 0) ? km : W - mx_ + km;
          for (index_t ky = 0; ky < my_; ++ky) {
            cplx s{};
            for (index_t ci = 0; ci < c_in_; ++ci) {
              const index_t base =
                  ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
              const cplx wv{wp[base], wp[base + 1]};
              s += wv * x_hat[static_cast<std::size_t>(n * c_in_ + ci)](kx, ky);
            }
            g(kx, ky) = s;
          }
        }
      }
      yhat[idx] = std::move(g);
    }
  });
  maps::math::fft2_batch_inplace(yhat, true);

  Tensor y({N, c_out_, H, W});
  scatter_planes(yhat, y, 1.0);
  return y;
}

Tensor SpectralConv2d::forward(const Tensor& x) {
  // Cache only after run_forward validated the input, so a rejected tensor
  // can't poison the backward cache.
  Tensor y = run_forward(x, x_hat_);
  in_shape_ = x.shape();
  return y;
}

Tensor SpectralConv2d::infer(const Tensor& x) const {
  std::vector<CplxGrid> x_hat;  // dropped: infer keeps no backward state
  return run_forward(x, x_hat);
}

Tensor SpectralConv2d::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "SpectralConv2d::backward: call forward first");
  const index_t N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const double inv_hw = 1.0 / static_cast<double>(H * W);

  // G_Y = (1/(HW)) fft2(grad_out plane) per (n, co), batched.
  std::vector<CplxGrid> gy = gather_planes(grad_out);
  maps::math::fft2_batch_inplace(gy, false);
  parallel_for_chunked(0, gy.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      cplx* p = gy[idx].data().data();
      const index_t sz = gy[idx].size();
      for (index_t k = 0; k < sz; ++k) p[k] *= inv_hw;
    }
  });

  // Weight gradients: dW[b,ci,co,k] += sum_n conj(X[n,ci,k]) G_Y[n,co,k].
  float* gw = w_.grad.data();
  parallel_for_chunked(
      0, static_cast<std::size_t>(c_in_ * c_out_),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const index_t ci = static_cast<index_t>(p) / c_out_;
          const index_t co = static_cast<index_t>(p) % c_out_;
          for (index_t b = 0; b < 2; ++b) {
            for (index_t km = 0; km < mx_; ++km) {
              const index_t kx = (b == 0) ? km : W - mx_ + km;
              for (index_t ky = 0; ky < my_; ++ky) {
                cplx s{};
                for (index_t n = 0; n < N; ++n) {
                  s += std::conj(
                           x_hat_[static_cast<std::size_t>(n * c_in_ + ci)](kx, ky)) *
                       gy[static_cast<std::size_t>(n * c_out_ + co)](kx, ky);
                }
                const index_t base =
                    ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
                gw[base] += static_cast<float>(s.real());
                gw[base + 1] += static_cast<float>(s.imag());
              }
            }
          }
        }
      });

  // Input gradient: dX = conj(W)^T G_Y on blocks; dx = Re(HW * ifft2(dX)).
  std::vector<CplxGrid> xg(static_cast<std::size_t>(N * c_in_));
  const float* wp = w_.value.data();
  parallel_for_chunked(0, xg.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const index_t n = static_cast<index_t>(idx) / c_in_;
      const index_t ci = static_cast<index_t>(idx) % c_in_;
      CplxGrid g(W, H);
      for (index_t b = 0; b < 2; ++b) {
        for (index_t km = 0; km < mx_; ++km) {
          const index_t kx = (b == 0) ? km : W - mx_ + km;
          for (index_t ky = 0; ky < my_; ++ky) {
            cplx s{};
            for (index_t co = 0; co < c_out_; ++co) {
              const index_t base =
                  ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
              const cplx wv{wp[base], wp[base + 1]};
              s += std::conj(wv) * gy[static_cast<std::size_t>(n * c_out_ + co)](kx, ky);
            }
            g(kx, ky) = s;
          }
        }
      }
      xg[idx] = std::move(g);
    }
  });
  maps::math::fft2_batch_inplace(xg, true);

  Tensor gx({N, c_in_, H, W});
  scatter_planes(xg, gx, static_cast<double>(H * W));
  return gx;
}

// ----------------------------------------------------------- SpectralConv1d

SpectralConv1d::SpectralConv1d(index_t c_in, index_t c_out, index_t modes,
                               FftAxis axis, maps::math::Rng& rng, std::string tag)
    : c_in_(c_in), c_out_(c_out), m_(modes), axis_(axis), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({2, c_in, c_out, modes, 2})) {
  spectral_init(w_.value, c_in, rng);
}

Tensor SpectralConv1d::run_forward(const Tensor& x,
                                   std::vector<CplxGrid>& x_hat) const {
  require(x.ndim() == 4 && x.size(1) == c_in_, "SpectralConv1d: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t L = (axis_ == FftAxis::X) ? W : H;   // transformed length
  const index_t T = (axis_ == FftAxis::X) ? H : W;   // untransformed length
  require(2 * m_ <= L, "SpectralConv1d: modes exceed axis length");
  const bool along_x = axis_ == FftAxis::X;

  x_hat = gather_planes(x);
  maps::math::fft1_lines_batch_inplace(x_hat, along_x, false);

  auto mode_at = [&](const CplxGrid& g, index_t k, index_t t) -> const cplx& {
    return along_x ? g(k, t) : g(t, k);
  };

  std::vector<CplxGrid> yhat(static_cast<std::size_t>(N * c_out_));
  const float* wp = w_.value.data();
  parallel_for_chunked(0, yhat.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const index_t n = static_cast<index_t>(idx) / c_out_;
      const index_t co = static_cast<index_t>(idx) % c_out_;
      CplxGrid g(W, H);
      for (index_t b = 0; b < 2; ++b) {
        for (index_t km = 0; km < m_; ++km) {
          const index_t k = (b == 0) ? km : L - m_ + km;
          for (index_t t = 0; t < T; ++t) {
            cplx s{};
            for (index_t ci = 0; ci < c_in_; ++ci) {
              const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
              const cplx wv{wp[base], wp[base + 1]};
              s += wv * mode_at(x_hat[static_cast<std::size_t>(n * c_in_ + ci)], k, t);
            }
            if (along_x) {
              g(k, t) = s;
            } else {
              g(t, k) = s;
            }
          }
        }
      }
      yhat[idx] = std::move(g);
    }
  });
  maps::math::fft1_lines_batch_inplace(yhat, along_x, true);

  Tensor y({N, c_out_, H, W});
  scatter_planes(yhat, y, 1.0);
  return y;
}

Tensor SpectralConv1d::forward(const Tensor& x) {
  Tensor y = run_forward(x, x_hat_);
  in_shape_ = x.shape();
  return y;
}

Tensor SpectralConv1d::infer(const Tensor& x) const {
  std::vector<CplxGrid> x_hat;
  return run_forward(x, x_hat);
}

Tensor SpectralConv1d::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "SpectralConv1d::backward: call forward first");
  const index_t N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const index_t L = (axis_ == FftAxis::X) ? W : H;
  const index_t T = (axis_ == FftAxis::X) ? H : W;
  const double inv_l = 1.0 / static_cast<double>(L);
  const bool along_x = axis_ == FftAxis::X;

  std::vector<CplxGrid> gy = gather_planes(grad_out);
  maps::math::fft1_lines_batch_inplace(gy, along_x, false);
  parallel_for_chunked(0, gy.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      cplx* p = gy[idx].data().data();
      const index_t sz = gy[idx].size();
      for (index_t k = 0; k < sz; ++k) p[k] *= inv_l;
    }
  });

  auto mode_at = [&](CplxGrid& g, index_t k, index_t t) -> cplx& {
    return along_x ? g(k, t) : g(t, k);
  };

  float* gw = w_.grad.data();
  parallel_for_chunked(
      0, static_cast<std::size_t>(c_in_ * c_out_),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const index_t ci = static_cast<index_t>(p) / c_out_;
          const index_t co = static_cast<index_t>(p) % c_out_;
          for (index_t b = 0; b < 2; ++b) {
            for (index_t km = 0; km < m_; ++km) {
              const index_t k = (b == 0) ? km : L - m_ + km;
              cplx s{};
              for (index_t n = 0; n < N; ++n) {
                auto& xh = x_hat_[static_cast<std::size_t>(n * c_in_ + ci)];
                auto& gg = gy[static_cast<std::size_t>(n * c_out_ + co)];
                for (index_t t = 0; t < T; ++t) {
                  s += std::conj(mode_at(xh, k, t)) * mode_at(gg, k, t);
                }
              }
              const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
              gw[base] += static_cast<float>(s.real());
              gw[base + 1] += static_cast<float>(s.imag());
            }
          }
        }
      });

  std::vector<CplxGrid> xg(static_cast<std::size_t>(N * c_in_));
  const float* wp = w_.value.data();
  parallel_for_chunked(0, xg.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const index_t n = static_cast<index_t>(idx) / c_in_;
      const index_t ci = static_cast<index_t>(idx) % c_in_;
      CplxGrid g(W, H);
      for (index_t b = 0; b < 2; ++b) {
        for (index_t km = 0; km < m_; ++km) {
          const index_t k = (b == 0) ? km : L - m_ + km;
          for (index_t t = 0; t < T; ++t) {
            cplx s{};
            for (index_t co = 0; co < c_out_; ++co) {
              const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
              const cplx wv{wp[base], wp[base + 1]};
              s += std::conj(wv) *
                   mode_at(gy[static_cast<std::size_t>(n * c_out_ + co)], k, t);
            }
            mode_at(g, k, t) = s;
          }
        }
      }
      xg[idx] = std::move(g);
    }
  });
  maps::math::fft1_lines_batch_inplace(xg, along_x, true);

  Tensor gx({N, c_in_, H, W});
  scatter_planes(xg, gx, static_cast<double>(L));
  return gx;
}

}  // namespace maps::nn
