#include "nn/spectral.hpp"

#include <cmath>

#include "math/fft.hpp"
#include "math/parallel.hpp"

namespace maps::nn {

using maps::cplx;
using maps::math::CplxGrid;

namespace {

CplxGrid plane_fft(const Tensor& x, index_t n, index_t c) {
  const index_t H = x.size(2), W = x.size(3);
  CplxGrid g(W, H);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) g(w, h) = cplx{x.at(n, c, h, w), 0.0};
  }
  return maps::math::fft2(g);
}

void spectral_init(Tensor& w, index_t c_in, maps::math::Rng& rng) {
  const double scale = 1.0 / static_cast<double>(c_in);
  for (index_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
}

}  // namespace

// ----------------------------------------------------------- SpectralConv2d

SpectralConv2d::SpectralConv2d(index_t c_in, index_t c_out, index_t modes_x,
                               index_t modes_y, maps::math::Rng& rng, std::string tag)
    : c_in_(c_in), c_out_(c_out), mx_(modes_x), my_(modes_y), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({2, c_in, c_out, modes_x, modes_y, 2})) {
  spectral_init(w_.value, c_in, rng);
}

Tensor SpectralConv2d::forward(const Tensor& x) {
  require(x.ndim() == 4 && x.size(1) == c_in_, "SpectralConv2d: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  require(2 * mx_ <= W && my_ <= H, "SpectralConv2d: modes exceed grid");
  in_shape_ = x.shape();

  x_hat_.assign(static_cast<std::size_t>(N * c_in_), CplxGrid());
  maps::math::parallel_for(0, static_cast<std::size_t>(N * c_in_), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_in_;
    const index_t c = static_cast<index_t>(idx) % c_in_;
    x_hat_[idx] = plane_fft(x, n, c);
  });

  Tensor y({N, c_out_, H, W});
  maps::math::parallel_for(0, static_cast<std::size_t>(N * c_out_), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_out_;
    const index_t co = static_cast<index_t>(idx) % c_out_;
    CplxGrid yhat(W, H);  // zero everywhere except the retained corners
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < mx_; ++km) {
        const index_t kx = (b == 0) ? km : W - mx_ + km;
        for (index_t ky = 0; ky < my_; ++ky) {
          cplx s{};
          for (index_t ci = 0; ci < c_in_; ++ci) {
            const index_t base =
                ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
            const cplx wv{w_.value[base], w_.value[base + 1]};
            s += wv * x_hat_[static_cast<std::size_t>(n * c_in_ + ci)](kx, ky);
          }
          yhat(kx, ky) = s;
        }
      }
    }
    const CplxGrid y_plane = maps::math::ifft2(yhat);
    for (index_t h = 0; h < H; ++h) {
      for (index_t w = 0; w < W; ++w) {
        y.at(n, co, h, w) = static_cast<float>(y_plane(w, h).real());
      }
    }
  });
  return y;
}

Tensor SpectralConv2d::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "SpectralConv2d::backward: call forward first");
  const index_t N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const double inv_hw = 1.0 / static_cast<double>(H * W);

  // G_Y = (1/(HW)) fft2(grad_out plane) per (n, co).
  std::vector<CplxGrid> gy(static_cast<std::size_t>(N * c_out_));
  maps::math::parallel_for(0, gy.size(), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_out_;
    const index_t co = static_cast<index_t>(idx) % c_out_;
    CplxGrid g = plane_fft(grad_out, n, co);
    for (index_t k = 0; k < g.size(); ++k) g[k] *= inv_hw;
    gy[idx] = std::move(g);
  });

  // Weight gradients: dW[b,ci,co,k] += sum_n conj(X[n,ci,k]) G_Y[n,co,k].
  maps::math::parallel_for(0, static_cast<std::size_t>(c_in_ * c_out_), [&](std::size_t p) {
    const index_t ci = static_cast<index_t>(p) / c_out_;
    const index_t co = static_cast<index_t>(p) % c_out_;
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < mx_; ++km) {
        const index_t kx = (b == 0) ? km : W - mx_ + km;
        for (index_t ky = 0; ky < my_; ++ky) {
          cplx s{};
          for (index_t n = 0; n < N; ++n) {
            s += std::conj(x_hat_[static_cast<std::size_t>(n * c_in_ + ci)](kx, ky)) *
                 gy[static_cast<std::size_t>(n * c_out_ + co)](kx, ky);
          }
          const index_t base =
              ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
          w_.grad[base] += static_cast<float>(s.real());
          w_.grad[base + 1] += static_cast<float>(s.imag());
        }
      }
    }
  });

  // Input gradient: dX = conj(W)^T G_Y on blocks; dx = Re(HW * ifft2(dX)).
  Tensor gx({N, c_in_, H, W});
  maps::math::parallel_for(0, static_cast<std::size_t>(N * c_in_), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_in_;
    const index_t ci = static_cast<index_t>(idx) % c_in_;
    CplxGrid xg(W, H);
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < mx_; ++km) {
        const index_t kx = (b == 0) ? km : W - mx_ + km;
        for (index_t ky = 0; ky < my_; ++ky) {
          cplx s{};
          for (index_t co = 0; co < c_out_; ++co) {
            const index_t base =
                ((((b * c_in_ + ci) * c_out_ + co) * mx_ + km) * my_ + ky) * 2;
            const cplx wv{w_.value[base], w_.value[base + 1]};
            s += std::conj(wv) * gy[static_cast<std::size_t>(n * c_out_ + co)](kx, ky);
          }
          xg(kx, ky) = s;
        }
      }
    }
    CplxGrid plane = maps::math::ifft2(xg);
    const double hw = static_cast<double>(H * W);
    for (index_t h = 0; h < H; ++h) {
      for (index_t w = 0; w < W; ++w) {
        gx.at(n, ci, h, w) = static_cast<float>(plane(w, h).real() * hw);
      }
    }
  });
  return gx;
}

// ----------------------------------------------------------- SpectralConv1d

SpectralConv1d::SpectralConv1d(index_t c_in, index_t c_out, index_t modes,
                               FftAxis axis, maps::math::Rng& rng, std::string tag)
    : c_in_(c_in), c_out_(c_out), m_(modes), axis_(axis), tag_(std::move(tag)),
      w_(tag_ + ".w", Tensor({2, c_in, c_out, modes, 2})) {
  spectral_init(w_.value, c_in, rng);
}

namespace {
// 1D FFT of every line along `axis` of an (H, W) plane stored as CplxGrid
// (nx=W, ny=H). In-place over the grid.
void fft_lines(CplxGrid& g, FftAxis axis, bool inverse) {
  const index_t W = g.nx(), H = g.ny();
  if (axis == FftAxis::X) {
    for (index_t h = 0; h < H; ++h) {
      maps::math::detail::fft_strided(&g(0, h), W, 1, inverse);
    }
  } else {
    for (index_t w = 0; w < W; ++w) {
      maps::math::detail::fft_strided(&g(w, 0), H, W, inverse);
    }
  }
}

CplxGrid plane_to_grid(const Tensor& x, index_t n, index_t c) {
  const index_t H = x.size(2), W = x.size(3);
  CplxGrid g(W, H);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) g(w, h) = cplx{x.at(n, c, h, w), 0.0};
  }
  return g;
}
}  // namespace

Tensor SpectralConv1d::forward(const Tensor& x) {
  require(x.ndim() == 4 && x.size(1) == c_in_, "SpectralConv1d: bad input shape");
  const index_t N = x.size(0), H = x.size(2), W = x.size(3);
  const index_t L = (axis_ == FftAxis::X) ? W : H;   // transformed length
  const index_t T = (axis_ == FftAxis::X) ? H : W;   // untransformed length
  require(2 * m_ <= L, "SpectralConv1d: modes exceed axis length");
  in_shape_ = x.shape();

  x_hat_.assign(static_cast<std::size_t>(N * c_in_), CplxGrid());
  maps::math::parallel_for(0, x_hat_.size(), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_in_;
    const index_t c = static_cast<index_t>(idx) % c_in_;
    CplxGrid g = plane_to_grid(x, n, c);
    fft_lines(g, axis_, false);
    x_hat_[idx] = std::move(g);
  });

  auto mode_at = [&](const CplxGrid& g, index_t k, index_t t) -> const cplx& {
    return (axis_ == FftAxis::X) ? g(k, t) : g(t, k);
  };

  Tensor y({N, c_out_, H, W});
  maps::math::parallel_for(0, static_cast<std::size_t>(N * c_out_), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_out_;
    const index_t co = static_cast<index_t>(idx) % c_out_;
    CplxGrid yhat(W, H);
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < m_; ++km) {
        const index_t k = (b == 0) ? km : L - m_ + km;
        for (index_t t = 0; t < T; ++t) {
          cplx s{};
          for (index_t ci = 0; ci < c_in_; ++ci) {
            const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
            const cplx wv{w_.value[base], w_.value[base + 1]};
            s += wv * mode_at(x_hat_[static_cast<std::size_t>(n * c_in_ + ci)], k, t);
          }
          if (axis_ == FftAxis::X) {
            yhat(k, t) = s;
          } else {
            yhat(t, k) = s;
          }
        }
      }
    }
    fft_lines(yhat, axis_, true);
    for (index_t h = 0; h < H; ++h) {
      for (index_t w = 0; w < W; ++w) {
        y.at(n, co, h, w) = static_cast<float>(yhat(w, h).real());
      }
    }
  });
  return y;
}

Tensor SpectralConv1d::backward(const Tensor& grad_out) {
  require(!in_shape_.empty(), "SpectralConv1d::backward: call forward first");
  const index_t N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const index_t L = (axis_ == FftAxis::X) ? W : H;
  const index_t T = (axis_ == FftAxis::X) ? H : W;
  const double inv_l = 1.0 / static_cast<double>(L);

  std::vector<CplxGrid> gy(static_cast<std::size_t>(N * c_out_));
  maps::math::parallel_for(0, gy.size(), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_out_;
    const index_t co = static_cast<index_t>(idx) % c_out_;
    CplxGrid g = plane_to_grid(grad_out, n, co);
    fft_lines(g, axis_, false);
    for (index_t k = 0; k < g.size(); ++k) g[k] *= inv_l;
    gy[idx] = std::move(g);
  });

  auto mode_at = [&](CplxGrid& g, index_t k, index_t t) -> cplx& {
    return (axis_ == FftAxis::X) ? g(k, t) : g(t, k);
  };

  maps::math::parallel_for(0, static_cast<std::size_t>(c_in_ * c_out_), [&](std::size_t p) {
    const index_t ci = static_cast<index_t>(p) / c_out_;
    const index_t co = static_cast<index_t>(p) % c_out_;
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < m_; ++km) {
        const index_t k = (b == 0) ? km : L - m_ + km;
        cplx s{};
        for (index_t n = 0; n < N; ++n) {
          auto& xh = x_hat_[static_cast<std::size_t>(n * c_in_ + ci)];
          auto& gg = gy[static_cast<std::size_t>(n * c_out_ + co)];
          for (index_t t = 0; t < T; ++t) {
            s += std::conj(mode_at(xh, k, t)) * mode_at(gg, k, t);
          }
        }
        const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
        w_.grad[base] += static_cast<float>(s.real());
        w_.grad[base + 1] += static_cast<float>(s.imag());
      }
    }
  });

  Tensor gx({N, c_in_, H, W});
  maps::math::parallel_for(0, static_cast<std::size_t>(N * c_in_), [&](std::size_t idx) {
    const index_t n = static_cast<index_t>(idx) / c_in_;
    const index_t ci = static_cast<index_t>(idx) % c_in_;
    CplxGrid xg(W, H);
    for (index_t b = 0; b < 2; ++b) {
      for (index_t km = 0; km < m_; ++km) {
        const index_t k = (b == 0) ? km : L - m_ + km;
        for (index_t t = 0; t < T; ++t) {
          cplx s{};
          for (index_t co = 0; co < c_out_; ++co) {
            const index_t base = (((b * c_in_ + ci) * c_out_ + co) * m_ + km) * 2;
            const cplx wv{w_.value[base], w_.value[base + 1]};
            s += std::conj(wv) *
                 mode_at(gy[static_cast<std::size_t>(n * c_out_ + co)], k, t);
          }
          mode_at(xg, k, t) = s;
        }
      }
    }
    fft_lines(xg, axis_, true);
    const double l = static_cast<double>(L);
    for (index_t h = 0; h < H; ++h) {
      for (index_t w = 0; w < W; ++w) {
        gx.at(n, ci, h, w) = static_cast<float>(xg(w, h).real() * l);
      }
    }
  });
  return gx;
}

}  // namespace maps::nn
