#include "nn/optim.hpp"

#include <cmath>

namespace maps::nn {

Adam::Adam(std::vector<Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, t_);
  const double bc2 = 1.0 - std::pow(options_.beta2, t_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    for (index_t i = 0; i < p->value.numel(); ++i) {
      double g = p->grad[i];
      if (options_.weight_decay > 0.0) g += options_.weight_decay * p->value[i];
      auto& m = m_[k][static_cast<std::size_t>(i)];
      auto& v = v_[k][static_cast<std::size_t>(i)];
      m = static_cast<float>(options_.beta1 * m + (1.0 - options_.beta1) * g);
      v = static_cast<float>(options_.beta2 * v + (1.0 - options_.beta2) * g * g);
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p->value[i] -= static_cast<float>(options_.lr * mhat /
                                        (std::sqrt(vhat) + options_.eps));
    }
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  for (Param* p : params_) {
    vel_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    for (index_t i = 0; i < p->value.numel(); ++i) {
      auto& v = vel_[k][static_cast<std::size_t>(i)];
      v = static_cast<float>(momentum_ * v + p->grad[i]);
      p->value[i] -= static_cast<float>(lr_ * v);
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

AdamVector::AdamVector(std::size_t n, AdamOptions options)
    : options_(options), m_(n, 0.0), v_(n, 0.0) {}

void AdamVector::step(std::vector<double>& theta, const std::vector<double>& grad,
                      bool maximize) {
  require(theta.size() == m_.size() && grad.size() == m_.size(),
          "AdamVector::step: size mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, t_);
  const double bc2 = 1.0 - std::pow(options_.beta2, t_);
  const double sign = maximize ? -1.0 : 1.0;  // descend on -F to ascend on F
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const double g = sign * grad[i];
    m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * g;
    v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * g * g;
    theta[i] -= options_.lr * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + options_.eps);
  }
}

double cosine_lr(double lr0, double lr_min, int step, int total) {
  if (total <= 0 || step >= total) return lr_min;
  const double cosv = 0.5 * (1.0 + std::cos(kPi * static_cast<double>(step) /
                                            static_cast<double>(total)));
  return lr_min + (lr0 - lr_min) * cosv;
}

}  // namespace maps::nn
