#include "nn/optim.hpp"

#include <cmath>

#include "math/parallel.hpp"

namespace maps::nn {

namespace {
// Update loops run as flat raw-pointer passes chunked over the thread pool;
// parameters big enough to matter (conv/spectral weights) get split across
// workers, tiny ones stay on one thread.
constexpr std::size_t kMinChunk = 4096;
}  // namespace

Adam::Adam(std::vector<Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = static_cast<float>(1.0 - std::pow(options_.beta1, t_));
  const float bc2 = static_cast<float>(1.0 - std::pow(options_.beta2, t_));
  const float b1 = static_cast<float>(options_.beta1);
  const float b2 = static_cast<float>(options_.beta2);
  const float lr = static_cast<float>(options_.lr);
  const float eps = static_cast<float>(options_.eps);
  const float wd = static_cast<float>(options_.weight_decay);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* __restrict w = p->value.data();
    const float* __restrict g = p->grad.data();
    float* __restrict m = m_[k].data();
    float* __restrict v = v_[k].data();
    maps::math::parallel_for_chunked(
        0, static_cast<std::size_t>(p->value.numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const float gi = wd > 0.0f ? g[i] + wd * w[i] : g[i];
            m[i] = b1 * m[i] + (1.0f - b1) * gi;
            v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
            const float mhat = m[i] / bc1;
            const float vhat = v[i] / bc2;
            w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
          }
        },
        kMinChunk);
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  for (Param* p : params_) {
    vel_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.0f);
  }
}

void Sgd::step() {
  const float lr = static_cast<float>(lr_);
  const float mom = static_cast<float>(momentum_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* __restrict w = p->value.data();
    const float* __restrict g = p->grad.data();
    float* __restrict v = vel_[k].data();
    maps::math::parallel_for_chunked(
        0, static_cast<std::size_t>(p->value.numel()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            v[i] = mom * v[i] + g[i];
            w[i] -= lr * v[i];
          }
        },
        kMinChunk);
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

AdamVector::AdamVector(std::size_t n, AdamOptions options)
    : options_(options), m_(n, 0.0), v_(n, 0.0) {}

void AdamVector::restore(AdamVectorState state) {
  require(state.m.size() == m_.size() && state.v.size() == v_.size() &&
              state.t >= 0,
          "AdamVector::restore: state size mismatch");
  m_ = std::move(state.m);
  v_ = std::move(state.v);
  t_ = state.t;
}

void AdamVector::step(std::vector<double>& theta, const std::vector<double>& grad,
                      bool maximize) {
  require(theta.size() == m_.size() && grad.size() == m_.size(),
          "AdamVector::step: size mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, t_);
  const double bc2 = 1.0 - std::pow(options_.beta2, t_);
  const double sign = maximize ? -1.0 : 1.0;  // descend on -F to ascend on F
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const double g = sign * grad[i];
    m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * g;
    v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * g * g;
    theta[i] -= options_.lr * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + options_.eps);
  }
}

double cosine_lr(double lr0, double lr_min, int step, int total) {
  if (total <= 0 || step >= total) return lr_min;
  const double cosv = 0.5 * (1.0 + std::cos(kPi * static_cast<double>(step) /
                                            static_cast<double>(total)));
  return lr_min + (lr0 - lr_min) * cosv;
}

}  // namespace maps::nn
