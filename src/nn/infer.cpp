#include "nn/infer.hpp"

#include <algorithm>

namespace maps::nn {

Tensor stack_batch(std::span<const Tensor> inputs) {
  require(!inputs.empty(), "stack_batch: empty input list");
  const Tensor& first = inputs.front();
  require(first.ndim() == 4 && first.size(0) == 1,
          "stack_batch: inputs must be (1, C, H, W)");
  const index_t row = first.numel();
  Tensor batch({static_cast<index_t>(inputs.size()), first.size(1), first.size(2),
                first.size(3)});
  for (std::size_t n = 0; n < inputs.size(); ++n) {
    require(inputs[n].same_shape(first), "stack_batch: input shape mismatch");
    std::copy(inputs[n].data(), inputs[n].data() + row,
              batch.data() + static_cast<index_t>(n) * row);
  }
  return batch;
}

std::vector<Tensor> split_batch(const Tensor& batch) {
  require(batch.ndim() == 4, "split_batch: expects a 4D batch");
  const index_t N = batch.size(0);
  const index_t row = batch.numel() / std::max<index_t>(1, N);
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    Tensor t({1, batch.size(1), batch.size(2), batch.size(3)});
    std::copy(batch.data() + n * row, batch.data() + (n + 1) * row, t.data());
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tensor> infer_batch(const Module& model, std::span<const Tensor> inputs) {
  return split_batch(model.infer(stack_batch(inputs)));
}

}  // namespace maps::nn
