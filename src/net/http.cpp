#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace maps::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Find "\r\n" in the unconsumed bytes; npos when incomplete.
std::size_t find_crlf(std::string_view s) { return s.find("\r\n"); }

/// Comma-separated token list membership, case-insensitive
/// ("Connection: keep-alive, TE" contains "keep-alive").
bool token_list_contains(std::string_view list, std::string_view token) {
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    std::string_view item = list.substr(pos, comma == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : comma - pos);
    if (iequals(trim(item), token)) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::find_header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

HttpParser::Status HttpParser::fail(int status, std::string message) {
  state_ = State::Error;
  error_status_ = status;
  error_message_ = std::move(message);
  return Status::Error;
}

HttpParser::Status HttpParser::finish_headers() {
  // Framing decision (RFC 9112 §6): Transfer-Encoding wins over
  // Content-Length; both present is a smuggling vector -> reject.
  const std::string* te = request_.find_header("Transfer-Encoding");
  const std::string* cl = request_.find_header("Content-Length");
  if (te && cl) {
    return fail(400, "both Transfer-Encoding and Content-Length present");
  }

  // Keep-alive default per version, overridden by Connection tokens.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* conn = request_.find_header("Connection")) {
    if (token_list_contains(*conn, "close")) {
      request_.keep_alive = false;
    } else if (token_list_contains(*conn, "keep-alive")) {
      request_.keep_alive = true;
    }
  }

  if (te) {
    if (!iequals(trim(*te), "chunked")) {
      return fail(400, "unsupported Transfer-Encoding: " + *te);
    }
    state_ = State::ChunkSize;
    return Status::NeedMore;
  }
  if (cl) {
    std::string_view text = trim(*cl);
    if (text.empty() ||
        !std::all_of(text.begin(), text.end(),
                     [](char c) { return c >= '0' && c <= '9'; }) ||
        text.size() > 15) {
      return fail(400, "invalid Content-Length");
    }
    std::size_t n = 0;
    for (char c : text) n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > limits_.max_body_bytes) {
      return fail(413, "request body exceeds limit");
    }
    if (n == 0) {
      state_ = State::Ready;
      return Status::Ready;
    }
    body_remaining_ = n;
    request_.body.reserve(n);
    state_ = State::Body;
    return Status::NeedMore;
  }
  // No framing headers: no body.
  state_ = State::Ready;
  return Status::Ready;
}

HttpParser::Status HttpParser::feed(ByteBuffer& in) {
  while (true) {
    switch (state_) {
      case State::RequestLine: {
        std::string_view data = in.readable();
        std::size_t eol = find_crlf(data);
        if (eol == std::string_view::npos) {
          if (data.size() > limits_.max_header_bytes) {
            return fail(431, "request line exceeds header limit");
          }
          return Status::NeedMore;
        }
        std::string_view line = data.substr(0, eol);
        header_bytes_ = eol + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return fail(431, "request line exceeds header limit");
        }
        // METHOD SP TARGET SP HTTP/1.x — exactly two separating spaces.
        std::size_t sp1 = line.find(' ');
        std::size_t sp2 =
            sp1 == std::string_view::npos ? std::string_view::npos
                                          : line.find(' ', sp1 + 1);
        if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
            sp1 == 0 || sp2 == sp1 + 1 ||
            line.find(' ', sp2 + 1) != std::string_view::npos) {
          return fail(400, "malformed request line");
        }
        std::string_view method = line.substr(0, sp1);
        std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        std::string_view version = line.substr(sp2 + 1);
        if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
            (version[7] != '0' && version[7] != '1')) {
          return fail(400, "unsupported HTTP version");
        }
        if (!std::all_of(method.begin(), method.end(), [](char c) {
              return (c >= 'A' && c <= 'Z') || c == '-';
            })) {
          return fail(400, "malformed request line");
        }
        request_.method.assign(method);
        request_.target.assign(target);
        request_.version_minor = version[7] - '0';
        in.consume(eol + 2);
        state_ = State::Headers;
        break;
      }

      case State::Headers: {
        std::string_view data = in.readable();
        std::size_t eol = find_crlf(data);
        if (eol == std::string_view::npos) {
          if (header_bytes_ + data.size() > limits_.max_header_bytes) {
            return fail(431, "headers exceed limit");
          }
          return Status::NeedMore;
        }
        header_bytes_ += eol + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return fail(431, "headers exceed limit");
        }
        if (eol == 0) {  // blank line: end of headers
          in.consume(2);
          Status st = finish_headers();
          if (st != Status::NeedMore) return st;
          break;
        }
        std::string_view line = data.substr(0, eol);
        std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0 ||
            line[colon - 1] == ' ' || line[colon - 1] == '\t') {
          return fail(400, "malformed header field");
        }
        request_.headers.emplace_back(std::string(line.substr(0, colon)),
                                      std::string(trim(line.substr(colon + 1))));
        in.consume(eol + 2);
        break;
      }

      case State::Body: {
        std::string_view data = in.readable();
        if (data.empty()) return Status::NeedMore;
        std::size_t take = std::min(data.size(), body_remaining_);
        request_.body.append(data.substr(0, take));
        in.consume(take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return Status::NeedMore;
        state_ = State::Ready;
        return Status::Ready;
      }

      case State::ChunkSize: {
        std::string_view data = in.readable();
        std::size_t eol = find_crlf(data);
        if (eol == std::string_view::npos) {
          if (data.size() > 1024) return fail(400, "invalid chunk size line");
          return Status::NeedMore;
        }
        std::string_view line = data.substr(0, eol);
        // Strip chunk extensions (";ext=val"); size is hex.
        std::size_t semi = line.find(';');
        std::string_view hex =
            trim(semi == std::string_view::npos ? line : line.substr(0, semi));
        if (hex.empty() || hex.size() > 8 ||
            !std::all_of(hex.begin(), hex.end(), [](char c) {
              return std::isxdigit(static_cast<unsigned char>(c)) != 0;
            })) {
          return fail(400, "invalid chunk size");
        }
        std::size_t n = 0;
        for (char c : hex) {
          n = n * 16 + static_cast<std::size_t>(
                           c <= '9' ? c - '0'
                                    : std::tolower(static_cast<unsigned char>(c)) -
                                          'a' + 10);
        }
        if (request_.body.size() + n > limits_.max_body_bytes) {
          return fail(413, "request body exceeds limit");
        }
        in.consume(eol + 2);
        if (n == 0) {
          state_ = State::Trailers;
        } else {
          body_remaining_ = n;
          state_ = State::ChunkData;
        }
        break;
      }

      case State::ChunkData: {
        std::string_view data = in.readable();
        if (data.empty()) return Status::NeedMore;
        std::size_t take = std::min(data.size(), body_remaining_);
        request_.body.append(data.substr(0, take));
        in.consume(take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return Status::NeedMore;
        state_ = State::ChunkCrlf;
        break;
      }

      case State::ChunkCrlf: {
        std::string_view data = in.readable();
        if (data.size() < 2) return Status::NeedMore;
        if (data.substr(0, 2) != "\r\n") {
          return fail(400, "missing CRLF after chunk data");
        }
        in.consume(2);
        state_ = State::ChunkSize;
        break;
      }

      case State::Trailers: {
        // Trailer fields are parsed for framing and discarded.
        std::string_view data = in.readable();
        std::size_t eol = find_crlf(data);
        if (eol == std::string_view::npos) {
          if (data.size() > limits_.max_header_bytes) {
            return fail(431, "trailers exceed limit");
          }
          return Status::NeedMore;
        }
        in.consume(eol + 2);
        if (eol == 0) {
          state_ = State::Ready;
          return Status::Ready;
        }
        break;
      }

      case State::Ready:
        return Status::Ready;
      case State::Error:
        return Status::Error;
    }
  }
}

HttpRequest HttpParser::take_request() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  state_ = State::RequestLine;
  header_bytes_ = 0;
  body_remaining_ = 0;
  error_status_ = 0;
  error_message_.clear();
  return out;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>&
                              extra) {
  std::string out;
  out.reserve(body.size() + 128);
  char head[64];
  std::snprintf(head, sizeof(head), "HTTP/1.1 %d ", status);
  out += head;
  out += http_status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  std::snprintf(head, sizeof(head), "%zu", body.size());
  out += head;
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  for (const auto& [k, v] : extra) {
    out += "\r\n";
    out += k;
    out += ": ";
    out += v;
  }
  out += "\r\n\r\n";
  out += body;
  return out;
}

}  // namespace maps::net
