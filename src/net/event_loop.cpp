#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <chrono>
#include <cstdlib>

#include "math/types.hpp"
#include "net/listener.hpp"

namespace maps::net {

namespace {

using Clock = std::chrono::steady_clock;

#ifdef __linux__
std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & EventLoop::kRead) ev |= EPOLLIN;
  if (interest & EventLoop::kWrite) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) {
  std::uint32_t mask = 0;
  if (ev & EPOLLIN) mask |= EventLoop::kRead;
  if (ev & EPOLLOUT) mask |= EventLoop::kWrite;
  // HUP/ERR are delivered regardless of interest; surface them as kError
  // plus kRead so read-driven handlers observe the EOF.
  if (ev & (EPOLLHUP | EPOLLERR)) mask |= EventLoop::kError | EventLoop::kRead;
  return mask;
}
#endif

short to_poll(std::uint32_t interest) {
  short ev = 0;
  if (interest & EventLoop::kRead) ev |= POLLIN;
  if (interest & EventLoop::kWrite) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short ev) {
  std::uint32_t mask = 0;
  if (ev & POLLIN) mask |= EventLoop::kRead;
  if (ev & POLLOUT) mask |= EventLoop::kWrite;
  if (ev & (POLLHUP | POLLERR | POLLNVAL)) {
    mask |= EventLoop::kError | EventLoop::kRead;
  }
  return mask;
}

}  // namespace

EventLoop::EventLoop() {
  require(::pipe(wake_pipe_) == 0, "EventLoop: pipe() failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
#ifdef __linux__
  const char* force_poll = std::getenv("MAPS_NET_FORCE_POLL");
  if (force_poll == nullptr || force_poll[0] == '\0' || force_poll[0] == '0') {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_pipe_[0];
      require(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) == 0,
              "EventLoop: epoll_ctl(wake pipe) failed");
    }
  }
#endif
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void EventLoop::update_backend(int fd, std::uint32_t interest, bool add) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    const int op = add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    require(::epoll_ctl(epoll_fd_, op, fd, &ev) == 0,
            "EventLoop: epoll_ctl(add/mod) failed");
  }
#else
  (void)fd;
  (void)interest;
  (void)add;
#endif
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  require(fd >= 0, "EventLoop::add_fd: bad fd");
  require(fds_.count(fd) == 0, "EventLoop::add_fd: fd already registered");
  fds_[fd] = FdEntry{interest, std::move(cb)};
  update_backend(fd, interest, /*add=*/true);
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  auto it = fds_.find(fd);
  require(it != fds_.end(), "EventLoop::set_interest: fd not registered");
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  update_backend(fd, interest, /*add=*/false);
}

void EventLoop::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  fds_.erase(it);
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
#endif
}

void EventLoop::wake() {
  const char b = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_pipe_[1], &b, 1);
}

void EventLoop::post(std::function<void()> fn) {
  bool need_wake = false;
  {
    std::lock_guard lk(post_mu_);
    posted_.push_back(std::move(fn));
    need_wake = !wake_pending_;
    wake_pending_ = true;
  }
  if (need_wake) wake();
}

void EventLoop::stop() {
  post([this] { stop_ = true; });
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lk(post_mu_);
    batch.swap(posted_);
    wake_pending_ = false;
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run(const std::function<void()>& tick, double tick_ms) {
  stop_ = false;
  auto last_tick = Clock::now();
  const auto tick_period =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(tick_ms > 0 ? tick_ms : 50));

  while (!stop_) {
    int timeout_ms = 500;
    if (tick) {
      const auto next = last_tick + tick_period;
      const auto now = Clock::now();
      timeout_ms = next <= now
                       ? 0
                       : static_cast<int>(
                             std::chrono::duration_cast<std::chrono::milliseconds>(
                                 next - now)
                                 .count()) +
                             1;
    }

    // (fd, ready-mask) pairs collected from the backend this iteration.
    std::vector<std::pair<int, std::uint32_t>> ready;
    bool woke = false;

#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event events[64];
      const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_pipe_[0]) {
          woke = true;
        } else {
          ready.emplace_back(fd, from_epoll(events[i].events));
        }
      }
    } else
#endif
    {
      std::vector<pollfd> pfds;
      pfds.reserve(fds_.size() + 1);
      pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
      for (const auto& [fd, entry] : fds_) {
        pfds.push_back(pollfd{fd, to_poll(entry.interest), 0});
      }
      const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (n > 0) {
        if (pfds[0].revents != 0) woke = true;
        for (std::size_t i = 1; i < pfds.size(); ++i) {
          if (pfds[i].revents != 0) {
            ready.emplace_back(pfds[i].fd, from_poll(pfds[i].revents));
          }
        }
      }
    }

    if (woke) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_posted();

    for (const auto& [fd, mask] : ready) {
      if (stop_) break;
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // removed by an earlier callback
      // Copy: the callback may remove_fd(fd), destroying the entry.
      FdCallback cb = it->second.cb;
      cb(mask);
    }

    if (tick && Clock::now() - last_tick >= tick_period) {
      last_tick = Clock::now();
      tick();
    }
  }
}

}  // namespace maps::net
