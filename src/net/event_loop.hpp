// Single-threaded readiness event loop for the HTTP serve front end.
//
// One thread calls run(); every registered fd callback executes on that
// thread, so connection state needs no locking. Other threads (task-queue
// workers finishing a prediction) hand work back with post(), which enqueues
// a closure and wakes the loop through a self-pipe — the only cross-thread
// channel, and the only locked structure.
//
// Backend: epoll on Linux, poll(2) elsewhere (MAPS_NET_FORCE_POLL=1 forces
// the fallback for tests). Level-triggered in both cases: a callback that
// doesn't drain its fd is simply called again, which keeps the connection
// state machines simple and fair under pipelining.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace maps::net {

class EventLoop {
 public:
  /// Readiness bitmask for set_interest / callbacks.
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;
  /// Reported to callbacks only (HUP/ERR); never requested.
  static constexpr std::uint32_t kError = 1u << 2;

  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with an initial interest set. The callback runs on the
  /// loop thread with the ready-event mask. Must not already be registered.
  void add_fd(int fd, std::uint32_t interest, FdCallback cb);
  /// Change the interest set (0 parks the fd: stays registered, never polled
  /// ready — used to pause reads for backpressure).
  void set_interest(int fd, std::uint32_t interest);
  /// Deregister. Safe from inside the fd's own callback; the loop skips any
  /// still-pending readiness for it this iteration. Does not close the fd.
  void remove_fd(int fd);
  bool has_fd(int fd) const { return fds_.count(fd) != 0; }
  std::size_t fd_count() const { return fds_.size(); }

  /// Thread-safe: queue `fn` to run on the loop thread and wake it. Closures
  /// queued after run() returns are destroyed unexecuted.
  void post(std::function<void()> fn);

  /// Run until stop(). `tick` (optional) fires on the loop thread roughly
  /// every `tick_ms` — the HTTP server uses it to poll its drain flag.
  void run(const std::function<void()>& tick = {}, double tick_ms = 50.0);

  /// Thread-safe: make run() return after the current iteration.
  void stop();

 private:
  struct FdEntry {
    std::uint32_t interest = 0;
    FdCallback cb;
  };

  void wake();
  void drain_posted();
  void update_backend(int fd, std::uint32_t interest, bool add);

  std::unordered_map<int, FdEntry> fds_;
  int epoll_fd_ = -1;        // -1 => poll(2) backend
  int wake_pipe_[2] = {-1, -1};
  bool stop_ = false;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool wake_pending_ = false;  // coalesce wake-pipe writes
};

}  // namespace maps::net
