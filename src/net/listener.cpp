#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "math/types.hpp"

namespace maps::net {

int make_listener(const std::string& bind_address, int port, int backlog) {
  in_addr parsed{};
  if (::inet_pton(AF_INET, bind_address.c_str(), &parsed) != 1) {
    throw MapsError("serve: invalid bind_address '" + bind_address +
                    "' (expected an IPv4 literal such as 127.0.0.1 or 0.0.0.0)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve: socket() failed");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parsed;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw MapsError("serve: cannot bind " + bind_address + ":" +
                    std::to_string(port) + " (" + std::strerror(err) + ")");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw MapsError("serve: listen() failed on " + bind_address + ":" +
                    std::to_string(port));
  }
  return fd;
}

int listener_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  require(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "serve: getsockname() failed");
  return static_cast<int>(ntohs(addr.sin_port));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "serve: fcntl(O_NONBLOCK) failed");
}

}  // namespace maps::net
