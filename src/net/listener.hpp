// Listening-socket setup shared by the serve front ends (blocking TCP and
// the HTTP event loop): bind-address validation, SO_REUSEADDR, port-0
// ephemeral binding.
#pragma once

#include <string>

namespace maps::net {

/// Create a listening TCP socket bound to `bind_address:port`.
///
/// `bind_address` must be a literal IPv4 dotted-quad (e.g. "127.0.0.1",
/// "0.0.0.0"); anything else throws MapsError naming the bad value — no DNS,
/// so a typo fails fast instead of binding somewhere surprising. Port 0
/// binds an ephemeral port (read it back with listener_port). Throws
/// MapsError on any socket/bind/listen failure.
int make_listener(const std::string& bind_address, int port, int backlog);

/// The locally bound port of a listening socket (resolves port-0 binds).
int listener_port(int fd);

/// Best-effort O_NONBLOCK toggle; throws MapsError on fcntl failure.
void set_nonblocking(int fd);

}  // namespace maps::net
