// Incremental HTTP/1.1 message layer: request parser + response serializer.
//
// The parser is a push state machine over a ByteBuffer: feed() consumes as
// many buffered bytes as one request needs and stops, leaving pipelined
// follow-up requests untouched for the next feed() after take_request()
// resets the machine. It understands request line + headers, fixed
// Content-Length bodies, and chunked transfer coding (with trailers), and
// enforces two byte caps:
//
//   max_header_bytes   request line + headers; over it -> 431 (the headers
//                      cannot be trusted, so the connection must close)
//   max_body_bytes     declared or accumulated body; over it -> 413
//
// Malformed input (bad request line, header without ':', conflicting
// framing headers, invalid chunk size) parks the parser in Error with
// status 400; the connection layer replies with the structured error
// envelope and closes. The parser never throws — serving must not unwind
// on hostile bytes.
//
// Keep-alive follows RFC defaults: HTTP/1.1 persists unless
// "Connection: close"; HTTP/1.0 closes unless "Connection: keep-alive".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/buffer.hpp"

namespace maps::net {

struct HttpRequest {
  std::string method;   // uppercase as received ("GET", "POST", ...)
  std::string target;   // origin-form, e.g. "/predict"
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* find_header(std::string_view name) const;
};

struct HttpLimits {
  std::size_t max_header_bytes = 64u << 10;
  std::size_t max_body_bytes = 8u << 20;
};

class HttpParser {
 public:
  enum class Status { NeedMore, Ready, Error };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consume buffered bytes until one request is complete (Ready), the data
  /// runs out (NeedMore), or the input is rejected (Error; see
  /// error_status() / error_message(), the parser stays parked and the
  /// connection should be closed after the error reply).
  Status feed(ByteBuffer& in);

  /// Move the completed request out and reset for the next one (keep-alive).
  HttpRequest take_request();

  /// True while a request is mid-parse (header or body bytes consumed but
  /// not Ready) — a peer that disconnects here truncated its request.
  bool mid_request() const { return state_ != State::RequestLine || header_bytes_ > 0; }

  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

 private:
  enum class State {
    RequestLine,
    Headers,
    Body,       // fixed Content-Length remainder
    ChunkSize,
    ChunkData,
    ChunkCrlf,
    Trailers,
    Ready,
    Error,
  };

  Status fail(int status, std::string message);
  Status finish_headers();  // framing decision after the blank line

  HttpLimits limits_;
  State state_ = State::RequestLine;
  HttpRequest request_;
  std::size_t header_bytes_ = 0;
  std::size_t body_remaining_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

/// Serialize one response head + body. Emitted headers: Content-Type,
/// Content-Length, Connection (+ any `extra` pairs, e.g. Retry-After).
std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>&
                              extra = {});

const char* http_status_reason(int status);

}  // namespace maps::net
