// ByteBuffer: the per-connection read/write accumulation buffer of the net
// layer.
//
// A contiguous std::string with a consumed-prefix offset, so the HTTP parser
// can peek at everything received so far, consume exactly the bytes one
// message used, and leave the pipelined remainder in place for the next
// message — without shifting memory on every consume. The consumed prefix is
// compacted away lazily, once it outgrows half the buffer.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace maps::net {

class ByteBuffer {
 public:
  void append(const char* data, std::size_t n) { data_.append(data, n); }
  void append(std::string_view s) { data_.append(s); }

  /// Everything received and not yet consumed.
  std::string_view readable() const {
    return std::string_view(data_).substr(offset_);
  }
  std::size_t size() const { return data_.size() - offset_; }
  bool empty() const { return size() == 0; }

  /// Drop `n` bytes from the front (n <= size()).
  void consume(std::size_t n) {
    offset_ += n;
    if (offset_ >= data_.size()) {
      data_.clear();
      offset_ = 0;
    } else if (offset_ > data_.size() / 2 && offset_ > 4096) {
      data_.erase(0, offset_);
      offset_ = 0;
    }
  }

  void clear() {
    data_.clear();
    offset_ = 0;
  }

 private:
  std::string data_;
  std::size_t offset_ = 0;
};

}  // namespace maps::net
