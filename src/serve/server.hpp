// Serving front ends: the ndjson stdio loop and a simple TCP socket mode.
//
// serve_stream is pipelined: a reader parses request lines and submits them
// to the service immediately, while a writer thread emits replies in request
// order — so a client that streams many lines before reading replies gets
// the full benefit of the micro-batcher. The in-flight window is bounded
// (backpressure: the reader parks when the reply queue is full). EOF drains
// everything and returns.
//
// serve_tcp accepts connections on a loopback-bound listening socket and
// runs the same line loop per connection (one thread each, connections
// pipelined independently).
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>

#include "serve/wire.hpp"

namespace maps::serve {

struct StreamServeReport {
  std::size_t requests = 0;
  std::size_t errors = 0;  // malformed lines / failed predictions
};

/// Serve ndjson requests from `in`, one reply line per request on `out`,
/// until EOF. `log` (optional) receives human-readable progress lines.
StreamServeReport serve_stream(PredictionService& service,
                               const WireDefaults& defaults, std::istream& in,
                               std::ostream& out, std::ostream* log = nullptr);

/// Listen on 127.0.0.1:`port` (port 0 picks a free one) and serve each
/// connection with the stream loop. Returns after `max_connections`
/// connections have been served (-1 = forever). `bound_port`, when non-null,
/// receives the actual listening port before the first accept — tests use
/// port 0 plus this to avoid collisions.
void serve_tcp(PredictionService& service, const WireDefaults& defaults, int port,
               std::ostream* log = nullptr, int max_connections = -1,
               std::atomic<int>* bound_port = nullptr);

}  // namespace maps::serve
