// Serving front ends: the ndjson stdio loop and a simple TCP socket mode.
//
// serve_stream is pipelined: a reader parses request lines and submits them
// to the service immediately, while a writer thread emits replies in request
// order — so a client that streams many lines before reading replies gets
// the full benefit of the micro-batcher. The in-flight window is bounded
// (backpressure: the reader parks when the reply queue is full). EOF drains
// everything and returns.
//
// serve_tcp accepts connections on a loopback-bound listening socket and
// runs the same line loop per connection (one thread each, connections
// pipelined independently).
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "serve/wire.hpp"

namespace maps::serve {

struct StreamServeReport {
  std::size_t requests = 0;
  std::size_t errors = 0;  // malformed lines / failed predictions
};

/// Per-stream serving limits and lifecycle hooks.
struct StreamOptions {
  /// Request lines longer than this many bytes answer "request_too_large"
  /// (the oversized line is discarded, siblings on the stream are
  /// unaffected). 0 = unlimited.
  std::size_t max_request_bytes = 8ull << 20;
  /// Per-connection in-flight reply cap (reader backpressure window);
  /// 0 = the default window, max(64, 4 * max_batch).
  std::size_t conn_max_inflight = 0;
  /// Graceful-shutdown flag. When it flips true the reader stops consuming
  /// lines and the writer drains already-submitted replies, bounded by
  /// drain_deadline_ms — stragglers answer {"error":{"code":
  /// "shutting_down"}} instead of holding the process open.
  const std::atomic<bool>* stop = nullptr;
  double drain_deadline_ms = 5000.0;
  /// Listening address shared by the socket front ends (TCP and HTTP). Must
  /// be an IPv4 literal; the default keeps the server loopback-only — serve
  /// to other machines by opting into "0.0.0.0" (or a specific interface)
  /// explicitly. Validated at bind time with a clear error.
  std::string bind_address = "127.0.0.1";
};

/// Serve ndjson requests from `in`, one reply line per request on `out`,
/// until EOF (or `options.stop`). `log` (optional) receives human-readable
/// progress lines. A client that disappears mid-reply (broken pipe) is
/// logged and the remaining replies are drained unsent — never fatal.
StreamServeReport serve_stream(PredictionService& service,
                               const WireDefaults& defaults, std::istream& in,
                               std::ostream& out, std::ostream* log = nullptr,
                               const StreamOptions& options = {});

/// Listen on `options.bind_address`:`port` (port 0 picks a free one) and serve each
/// connection with the stream loop. Returns after `max_connections`
/// connections have been served (-1 = forever) or once `options.stop` flips
/// true (active connections are shut down for reading and drained under the
/// drain deadline). `bound_port`, when non-null, receives the actual
/// listening port before the first accept — tests use port 0 plus this to
/// avoid collisions. Socket writes use MSG_NOSIGNAL: a client disconnect
/// mid-reply surfaces as an error on that connection, not SIGPIPE.
void serve_tcp(PredictionService& service, const WireDefaults& defaults, int port,
               std::ostream* log = nullptr, int max_connections = -1,
               std::atomic<int>* bound_port = nullptr,
               const StreamOptions& options = {});

}  // namespace maps::serve
