// Wire protocol of the serving layer: newline-delimited JSON.
//
// One request per line on the way in, one reply per line on the way out,
// ordered. Requests:
//
//   {"id": 7,                     // optional, echoed verbatim in the reply
//    "eps": [ ... ],              // nx*ny permittivity values, x fastest
//    "nx": 64, "ny": 64,
//    "dl": 0.1,                   // optional, default from the serve config
//    "wavelength": 1.55,          // or "omega"; optional
//    "fidelity": "low",           // low = surrogate, medium = iterative
//                                 // solve, high = direct LU solve
//    "source": {"type": "point", "i": 16, "j": 32},
//                                 // or {"re": [...], "im": [...]} (nx*ny);
//                                 // optional, default point at (nx/4, ny/2)
//    "return_field": true}        // optional; false returns summary only
//
// Replies:
//
//   {"id": 7, "ok": true, "source": "surrogate", "cache_hit": false,
//    "escalated": false, "model": "bend-fno", "model_version": 1,
//    "latency_ms": 1.9, "nx": 64, "ny": 64, "rms": 0.37,
//    "field": {"re": [...], "im": [...]}}
//
// "source" is the tier that produced the answer ("surrogate" | "solver");
// "cache_hit": true marks a reply served from the result cache without
// re-running that tier; "degraded": true marks a best-effort surrogate
// answer served while the solver tier's circuit breaker is open.
//
// Requests may carry "deadline_ms": a per-request latency budget. A request
// that cannot be answered inside it fails with code "deadline_exceeded".
//
// Errors: {"id": ..., "ok": false, "error": {"code": "...", "message":
// "...", "retry_after_ms": ...}} — the stream stays usable after an error
// reply. Codes: "bad_request" (malformed request), "request_too_large"
// (line over the server's byte cap), "overloaded" (admission control shed
// the request; retry_after_ms is the backlog estimate),
// "deadline_exceeded", "breaker_open" (solver fenced off, no surrogate to
// degrade to), "shutting_down" (server draining), "internal". The jobs API
// (serve/jobs.hpp) adds "not_found" (unknown id or route), "not_ready"
// (result fetched before a terminal state) and, inside terminal result
// documents, "job_failed" / "job_cancelled". Every front end emits this
// same envelope through the single encoder below.
#pragma once

#include "io/json.hpp"
#include "serve/jobs.hpp"
#include "serve/service.hpp"

namespace maps::serve {

/// Request fields the wire format lets clients omit (set from ServeConfig).
struct WireDefaults {
  double dl = 0.1;
  double omega = 0.0;  // 0 = derive from `wavelength` default below
  double wavelength = 1.55;
  fdfd::PmlSpec pml;
  solver::FidelityLevel fidelity = solver::FidelityLevel::Low;

  double default_omega() const;
};

struct WireRequest {
  io::JsonValue id;  // null when the client sent none
  ServeRequest request;
  bool return_field = true;
};

/// Parse one request document. Throws MapsError on malformed requests.
WireRequest parse_request(const io::JsonValue& doc, const WireDefaults& defaults);

io::JsonValue encode_response(const io::JsonValue& id, const ServeResponse& response,
                              bool return_field);

/// Streaming encoder: the same reply document as encode_response(...).dump()
/// — byte-identical, pinned by tests — serialized straight onto a string via
/// io::JsonWriter. The hot reply path: no JsonValue tree per response, which
/// matters when `field` carries nx*ny*2 numbers.
std::string encode_response_text(const io::JsonValue& id,
                                 const ServeResponse& response, bool return_field);

/// A structured wire error: machine-readable code + human message, plus an
/// optional backlog hint for "overloaded".
struct WireError {
  std::string code = "internal";
  std::string message;
  double retry_after_ms = 0.0;  // emitted only when > 0
};

/// Map a failed request's exception onto its wire error code:
/// OverloadedError -> "overloaded" (with retry_after_ms), DeadlineExceeded ->
/// "deadline_exceeded", BreakerOpenError -> "breaker_open", anything else ->
/// "internal".
WireError classify_error(std::exception_ptr error);

io::JsonValue encode_error(const io::JsonValue& id, const WireError& error);
/// Parse-site convenience: code "bad_request".
io::JsonValue encode_error(const io::JsonValue& id, const std::string& message);

/// Streaming form of encode_error — byte-identical to
/// encode_error(id, error).dump().
std::string encode_error_text(const io::JsonValue& id, const WireError& error);

/// The "serve_stats" report block (CLI exit report, tests). `jobs` — the
/// job-manager counters when the jobs API is mounted — adds a "jobs"
/// sub-block; null omits it. When metrics are enabled a "latency" block is
/// appended: per-stage histogram readouts (count, sum_ms, p50/p90/p99)
/// from the obs registry. Existing keys stay bit-compatible.
io::JsonValue stats_to_json(const ServeStatsSnapshot& stats,
                            const JobsStatsSnapshot* jobs = nullptr);

/// The per-stage latency block alone (the "latency" value stats_to_json
/// merges in): one object per registered histogram.
io::JsonValue latency_to_json();

/// The GET /v1/metrics page: Prometheus text exposition (0.0.4) of the obs
/// registry (per-stage latency histograms with buckets + p50/p90/p99)
/// merged with every ServeStats counter, per-shard cache hit ratios,
/// breaker state and — when the jobs API is mounted — the jobs counters.
/// One scrape surface for the whole process.
std::string metrics_text(const PredictionService& service,
                         const JobManager* jobs = nullptr);

}  // namespace maps::serve
