// Wire protocol of the serving layer: newline-delimited JSON.
//
// One request per line on the way in, one reply per line on the way out,
// ordered. Requests:
//
//   {"id": 7,                     // optional, echoed verbatim in the reply
//    "eps": [ ... ],              // nx*ny permittivity values, x fastest
//    "nx": 64, "ny": 64,
//    "dl": 0.1,                   // optional, default from the serve config
//    "wavelength": 1.55,          // or "omega"; optional
//    "fidelity": "low",           // low = surrogate, medium = iterative
//                                 // solve, high = direct LU solve
//    "source": {"type": "point", "i": 16, "j": 32},
//                                 // or {"re": [...], "im": [...]} (nx*ny);
//                                 // optional, default point at (nx/4, ny/2)
//    "return_field": true}        // optional; false returns summary only
//
// Replies:
//
//   {"id": 7, "ok": true, "source": "surrogate", "cache_hit": false,
//    "escalated": false, "model": "bend-fno", "model_version": 1,
//    "latency_ms": 1.9, "nx": 64, "ny": 64, "rms": 0.37,
//    "field": {"re": [...], "im": [...]}}
//
// "source" is the tier that produced the answer ("surrogate" | "solver");
// "cache_hit": true marks a reply served from the result cache without
// re-running that tier. Errors: {"id": ..., "ok": false, "error":
// {"message": "..."}} — the stream stays usable after an error reply.
#pragma once

#include "io/json.hpp"
#include "serve/service.hpp"

namespace maps::serve {

/// Request fields the wire format lets clients omit (set from ServeConfig).
struct WireDefaults {
  double dl = 0.1;
  double omega = 0.0;  // 0 = derive from `wavelength` default below
  double wavelength = 1.55;
  fdfd::PmlSpec pml;
  solver::FidelityLevel fidelity = solver::FidelityLevel::Low;

  double default_omega() const;
};

struct WireRequest {
  io::JsonValue id;  // null when the client sent none
  ServeRequest request;
  bool return_field = true;
};

/// Parse one request document. Throws MapsError on malformed requests.
WireRequest parse_request(const io::JsonValue& doc, const WireDefaults& defaults);

io::JsonValue encode_response(const io::JsonValue& id, const ServeResponse& response,
                              bool return_field);
io::JsonValue encode_error(const io::JsonValue& id, const std::string& message);

/// The "serve_stats" report block (CLI exit report, tests).
io::JsonValue stats_to_json(const ServeStatsSnapshot& stats);

}  // namespace maps::serve
