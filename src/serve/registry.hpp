// ModelRegistry: versioned, hot-swappable surrogate models for serving.
//
// The registry publishes one active ServedModel bundle — the module itself
// plus everything a server needs to answer pattern queries with it: the
// input-encoding options and the dataset standardizer constants fitted at
// training time. Publication is a shared_ptr swap under a read-mostly lock:
// readers snapshot the active bundle in O(1) and keep serving it even while
// an operator hot-swaps a new checkpoint in, so in-flight batches never see
// a half-loaded model (no torn reads). Every install bumps a monotone
// version, which the result cache folds into its keys — stale predictions
// from a replaced model can never answer for the new one.
//
// Checkpoints load through nn::load_parameters (name/shape verified against
// the freshly built architecture) and are additionally screened for
// non-finite parameters before they become visible.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>

#include "core/train/encoding.hpp"
#include "nn/models.hpp"

namespace maps::serve {

/// Immutable published bundle. `model` is const because serving runs the
/// concurrency-safe Module::infer path only.
struct ServedModel {
  std::string id;       // operator-chosen name, e.g. "bend-fno"
  int version = 0;      // monotone across installs (hot-swap detection)
  nn::ModelConfig config;
  maps::train::EncodingOptions encoding;
  maps::train::Standardizer standardizer;
  std::shared_ptr<const nn::Module> model;
  index_t param_count = 0;
};

class ModelRegistry {
 public:
  /// Build the architecture from `config`, load and verify `checkpoint`
  /// (empty path = keep the fresh random initialization — a dev/bench mode),
  /// and publish it as the active model. Throws on any checkpoint mismatch
  /// or non-finite parameter; the previously active model stays published in
  /// that case.
  ///
  /// Standardizer precedence: `standardizer` is the base (defaults); "std_*"
  /// keys in the checkpoint's metadata trailer (written by the trainer, see
  /// nn::save_parameters) replace base fields; `overrides` (config-explicit
  /// values) win over both.
  std::shared_ptr<const ServedModel> load(
      const std::string& id, const nn::ModelConfig& config,
      const std::string& checkpoint, maps::train::EncodingOptions encoding = {},
      maps::train::Standardizer standardizer = {},
      const maps::train::StandardizerOverrides& overrides = {});

  /// Publish an already-constructed module (in-process embedding: the
  /// trainer handing its model straight to a service, benches, tests).
  std::shared_ptr<const ServedModel> install(
      const std::string& id, const nn::ModelConfig& config,
      std::unique_ptr<nn::Module> model, maps::train::EncodingOptions encoding = {},
      maps::train::Standardizer standardizer = {});

  /// Snapshot of the active model (nullptr before the first install).
  std::shared_ptr<const ServedModel> active() const;

  /// Version of the active model (0 before the first install).
  int version() const;

 private:
  std::shared_ptr<const ServedModel> publish(std::shared_ptr<ServedModel> bundle);

  mutable std::shared_mutex mu_;
  std::shared_ptr<const ServedModel> active_;
  int next_version_ = 1;
};

}  // namespace maps::serve
