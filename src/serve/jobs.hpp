// Long-running jobs of the serving tier: the "/v1/jobs" API.
//
// The serve front ends answer single-pattern forward queries in
// milliseconds; the paper's headline workload — adjoint inverse design and
// its batched evaluation sweeps — runs for minutes. JobManager turns that
// workload into served traffic: a submitted job spec (JSON, same documents
// the CLI configs use plus a "type" selector) becomes a queued job that
// executes one optimization step per TaskQueue task, so long jobs interleave
// fairly with predict traffic instead of pinning a worker.
//
// Job types:
//
//   {"type": "invdes", ...InvDesConfig keys...}
//       adjoint inverse design via core/invdes: one InvDesStepper iteration
//       per step, progress = (step, objective, solver-work counters).
//   {"type": "sweep", ...SweepJobConfig keys...}
//       batched evaluation of a fixed design: lithography robustness
//       corners ("sweep": "corners") or a multi-wavelength S-parameter
//       matrix ("sweep": "sparams"); one corner / wavelength per step.
//
// Lifecycle: queued -> running -> done | failed, with cooperative
// cancellation checked between steps (queued -> cancelled immediately;
// running -> cancelling -> cancelled at the next step boundary).
//
// Crash safety follows the ShardJournal append/compact pattern (runtime/):
// every job keeps a manifest (`<id>.json`, atomic tmp+rename) plus a
// line-per-step journal (`<id>.journal`, flushed appends) under
// JobsOptions::journal_dir. A killed server re-adopts its jobs on restart
// via resume_journaled(): the manifest plus the last fully flushed journal
// line (torn trailing lines are ignored) reconstruct the exact optimizer
// state — theta, Adam moments, step counter (which doubles as the RNG
// stream position) — so a resumed run continues on the same trajectory and
// lands on the same final objective as an uninterrupted one. Journal I/O
// retries transient failures and is guarded by the `jobs.journal` fault
// point; the step path by `jobs.step` (see runtime/fault.hpp).
//
// Reliability mapping (PR 7 machinery): submits beyond max_queued are shed
// with OverloadedError (HTTP 429 + Retry-After), drain() parks running jobs
// at the next step boundary after journaling them, and stats() lands as the
// "jobs" block of the ServeStats wire JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "io/json.hpp"
#include "runtime/task_queue.hpp"

namespace maps::serve {

enum class JobState { Queued, Running, Cancelling, Done, Failed, Cancelled };

const char* job_state_name(JobState state);

/// Unknown job id ("not_found" on the wire, HTTP 404).
class JobNotFound : public MapsError {
 public:
  using MapsError::MapsError;
};

/// Result requested before the job reached a terminal state ("not_ready"
/// on the wire, HTTP 409).
class JobNotReady : public MapsError {
 public:
  using MapsError::MapsError;
};

struct JobsOptions {
  /// Jobs stepping concurrently. Each runs one step per TaskQueue task, so
  /// even max_running = 1 never starves predict traffic.
  int max_running = 1;
  /// Queued (not yet running) jobs beyond which submits are shed.
  int max_queued = 8;
  /// Manifest + journal directory (created if missing). Empty disables
  /// persistence: jobs run in-memory only and do not survive a restart.
  std::string journal_dir;
};

/// Monotone job counters (snapshot) plus the current queue occupancy; the
/// "jobs" block of the ServeStats wire JSON.
struct JobsStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   // reached Done
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t resumed = 0;     // re-adopted from journals at startup
  std::uint64_t shed = 0;        // submits rejected by admission control
  std::uint64_t steps = 0;       // optimization / sweep steps executed
  std::uint64_t journal_retries = 0;  // transient journal-I/O retries
  int running = 0;
  int queued = 0;
};

class JobManager {
 public:
  JobManager(runtime::TaskQueue& queue, JobsOptions options = {},
             std::ostream* log = nullptr);
  /// Stops scheduling, journals running jobs at their next step boundary
  /// and waits for in-flight step tasks to retire.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validate a job spec and enqueue it; returns the new job id. Throws
  /// MapsError on a malformed spec ("bad_request" on the wire) and
  /// OverloadedError when the queue is full or the manager is draining.
  std::string submit(const io::JsonValue& spec);

  /// Status + progress document of one job; throws JobNotFound.
  io::JsonValue status(const std::string& id) const;

  /// {"jobs": [status...]}, submission-ordered.
  io::JsonValue list() const;

  /// Terminal document of a finished job: {"ok": true, "result": ...} for
  /// Done, {"ok": false, "error": {code "job_failed" | "job_cancelled"}}
  /// for Failed / Cancelled. Throws JobNotFound / JobNotReady.
  io::JsonValue result(const std::string& id) const;

  /// Request cancellation; returns the post-transition status document.
  /// Queued jobs cancel immediately, running jobs at the next step
  /// boundary. Idempotent on terminal jobs. Throws JobNotFound.
  io::JsonValue cancel(const std::string& id);

  /// Re-adopt journaled jobs from journal_dir (call once, before serving):
  /// terminal jobs become queryable records, interrupted ones re-queue from
  /// their last fully flushed checkpoint. Returns the number re-queued.
  int resume_journaled();

  /// Stop scheduling: queued jobs stay queued, running jobs park (state
  /// back to Queued, checkpoint journaled) at their next step boundary.
  /// Returns immediately; the destructor waits for in-flight steps.
  void drain();

  JobsStatsSnapshot stats() const;

  const JobsOptions& options() const { return options_; }

 private:
  struct Job;

  std::string manifest_path(const std::string& id) const;
  std::string journal_path(const std::string& id) const;
  io::JsonValue manifest_json_locked(const Job& job) const;
  io::JsonValue status_locked(const Job& job) const;
  void save_manifest(const std::string& id, const io::JsonValue& doc);
  void append_journal(const std::string& id, const io::JsonValue& line);
  /// Fold the journal into the manifest and truncate it (terminal states,
  /// resume).
  void compact(const std::string& id, const io::JsonValue& manifest_doc);
  void warn(const std::string& message);

  void schedule_locked();
  void post_step_locked(const std::shared_ptr<Job>& job);
  void run_step(const std::shared_ptr<Job>& job);
  /// Terminal transition of a job holding a running slot: releases the
  /// slot, persists (manifest + journal compaction) and schedules
  /// successors. Caller holds mu_.
  void finish_locked(const std::shared_ptr<Job>& job, JobState state,
                     const std::string& error, io::JsonValue result_doc);
  /// Drain parking: persist the checkpoint, return the job to Queued.
  /// Caller holds mu_.
  void park_locked(const std::shared_ptr<Job>& job);

  runtime::TaskQueue& queue_;
  JobsOptions options_;
  std::ostream* log_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;  // id-sorted == seq order
  std::deque<std::shared_ptr<Job>> pending_;
  std::uint64_t seq_ = 1;
  int running_ = 0;
  bool draining_ = false;

  std::atomic<int> inflight_{0};  // queued or executing step tasks
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> resumed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> journal_retries_{0};
};

}  // namespace maps::serve
