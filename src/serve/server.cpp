#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/deadline.hpp"
#include "runtime/fault.hpp"

namespace maps::serve {

namespace {

/// One reply slot in the in-order pipeline: either an already-serialized
/// error line (parse failures reply immediately) or a pending prediction.
struct PendingReply {
  bool is_error = false;
  std::string error_text;
  runtime::Future<ServeResponse> future;
  io::JsonValue id;
  bool return_field = true;
};

/// getline with a byte cap: an over-limit line sets `oversized`, the rest of
/// the line is discarded (the stream stays line-synchronized for siblings).
/// Returns false on EOF with nothing read; a final un-terminated line is
/// still delivered.
bool bounded_getline(std::istream& in, std::string& line, std::size_t limit,
                     bool& oversized) {
  line.clear();
  oversized = false;
  char ch;
  while (in.get(ch)) {
    if (ch == '\n') return true;
    if (limit > 0 && line.size() >= limit) {
      oversized = true;
      while (in.get(ch)) {
        if (ch == '\n') break;
      }
      return true;
    }
    line.push_back(ch);
  }
  return !line.empty();
}

}  // namespace

StreamServeReport serve_stream(PredictionService& service,
                               const WireDefaults& defaults, std::istream& in,
                               std::ostream& out, std::ostream* log,
                               const StreamOptions& options) {
  StreamServeReport report;
  std::mutex mu;
  std::condition_variable cv_space, cv_items;
  std::deque<PendingReply> queue;
  bool done_reading = false;
  std::size_t errors = 0;
  const auto stopping = [&options] {
    return options.stop != nullptr && options.stop->load();
  };
  // Enough in-flight replies to keep full batches forming, bounded so a
  // streaming client cannot queue unbounded field buffers. The configured
  // per-connection cap tightens it further.
  std::size_t window =
      std::max<std::size_t>(64, 4 * static_cast<std::size_t>(
                                        service.options().max_batch));
  if (options.conn_max_inflight > 0) {
    window = std::max<std::size_t>(1, std::min(window, options.conn_max_inflight));
  }

  std::thread writer([&] {
    bool sink_broken = false;
    double drain_until = 0.0;  // armed when the stop flag is first observed
    for (;;) {
      PendingReply reply;
      {
        std::unique_lock lk(mu);
        cv_items.wait(lk, [&] { return done_reading || !queue.empty(); });
        if (queue.empty()) return;  // done_reading && drained
        reply = std::move(queue.front());
        queue.pop_front();
      }
      cv_space.notify_one();
      std::string text;
      if (reply.is_error) {
        text = std::move(reply.error_text);
      } else {
        bool ready = true;
        if (stopping()) {
          // Draining: wait out the remaining drain budget, not forever.
          if (drain_until == 0.0) {
            drain_until = runtime::now_steady_ms() + options.drain_deadline_ms;
          }
          ready = reply.future.wait_for_ms(drain_until - runtime::now_steady_ms());
        }
        if (!ready) {
          text = encode_error_text(
              reply.id, WireError{"shutting_down",
                                  "server draining: reply abandoned at shutdown",
                                  0.0});
          std::lock_guard lk(mu);
          ++errors;
        } else {
          try {
            text = encode_response_text(reply.id, reply.future.get(),
                                        reply.return_field);
          } catch (...) {
            text = encode_error_text(reply.id,
                                     classify_error(std::current_exception()));
            std::lock_guard lk(mu);
            ++errors;
          }
        }
      }
      if (!sink_broken) {
        out << text << "\n" << std::flush;
        if (!out.good()) {
          // Client went away mid-reply (broken pipe / closed socket). Not
          // fatal: log it once and drain the remaining replies unsent so
          // the service's in-flight accounting still settles.
          sink_broken = true;
          obs::log_to(log, obs::LogLevel::Warn, "serve",
                      "client disconnected mid-reply; draining remaining "
                      "replies unsent");
        }
      }
    }
  });

  std::string line;
  for (;;) {
    if (stopping()) break;  // shutdown: stop consuming, drain what's in
    bool oversized = false;
    if (!bounded_getline(in, line, options.max_request_bytes, oversized)) break;
    if (!oversized && line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++report.requests;
    PendingReply reply;
    if (oversized) {
      reply.is_error = true;
      io::JsonValue id;  // the id sits somewhere inside the discarded line
      reply.error_text = encode_error_text(
          id, WireError{"request_too_large",
                        "serve request: line exceeds " +
                            std::to_string(options.max_request_bytes) + " bytes",
                        0.0});
      std::lock_guard lk(mu);
      ++errors;
    } else {
      try {
        obs::TracePtr trace;
        if (service.tracing_enabled()) {
          trace = std::make_shared<obs::Trace>();
        }
        io::JsonValue doc;
        WireRequest wire;
        {
          obs::ScopedSpan span("ingress.parse", trace.get(),
                               &obs::registry().histogram("serve.ingress.parse_ms"));
          doc = io::json_parse(line);
          wire = parse_request(doc, defaults);
        }
        wire.request.trace = std::move(trace);
        reply.id = wire.id;
        reply.return_field = wire.return_field;
        reply.future = service.submit(std::move(wire.request));
      } catch (const std::exception& e) {
        reply.is_error = true;
        io::JsonValue id;  // null: the id may not even have parsed
        reply.error_text =
            encode_error_text(id, WireError{"bad_request", e.what(), 0.0});
        std::lock_guard lk(mu);
        ++errors;
      }
    }
    {
      std::unique_lock lk(mu);
      cv_space.wait(lk, [&] { return queue.size() < window; });
      queue.push_back(std::move(reply));
    }
    cv_items.notify_one();
  }
  {
    std::lock_guard lk(mu);
    done_reading = true;
  }
  cv_items.notify_all();
  writer.join();
  report.errors = errors;
  if (log != nullptr && obs::log_enabled(obs::LogLevel::Info)) {
    obs::log_to(log, obs::LogLevel::Info, "serve",
                "stream closed: " + std::to_string(report.requests) +
                    " request(s), " + std::to_string(report.errors) +
                    " error(s)" + (stopping() ? " (shutdown drain)" : ""));
  }
  return report;
}

namespace {

/// Minimal bidirectional streambuf over a connected socket fd.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    // Chaos hook: an armed "serve.tcp.read" io fault models the peer
    // vanishing mid-request (reads hit EOF from then on).
    if (runtime::fault::point("serve.tcp.read")) return traits_type::eof();
    ssize_t n;
    do {
      n = ::read(fd_, in_.data(), in_.size());
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_out() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    if (left > 0 && runtime::fault::point("serve.tcp.write")) return -1;
    while (left > 0) {
      // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE
      // here (the writer logs and drains), not as a process-killing SIGPIPE.
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return -1;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(out_.data(), out_.data() + out_.size());
    return 0;
  }

  int fd_;
  std::array<char, 1 << 14> in_;
  std::array<char, 1 << 14> out_;
};

}  // namespace

void serve_tcp(PredictionService& service, const WireDefaults& defaults, int port,
               std::ostream* log, int max_connections,
               std::atomic<int>* bound_port, const StreamOptions& options) {
  const int listener = net::make_listener(options.bind_address, port, 16);
  if (bound_port != nullptr) bound_port->store(net::listener_port(listener));
  obs::log_to(log, obs::LogLevel::Info, "serve",
              "listening on " + options.bind_address + ":" +
                  std::to_string(net::listener_port(listener)));

  // Handler threads each buffer their connection's log lines and flush them
  // whole under log_mu, so concurrent connections cannot interleave writes
  // on the shared log stream. Finished threads are reaped on every accept so
  // a long-lived server doesn't accumulate joinable-but-done threads. A list
  // keeps the slot-then-spawn sequence exception-safe: a failed spawn pops
  // the empty slot and refuses one connection instead of unwinding past
  // joinable threads (std::terminate).
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    int fd = -1;
  };
  std::list<Handler> handlers;
  std::mutex log_mu;
  const auto stopping = [&options] {
    return options.stop != nullptr && options.stop->load();
  };
  const auto reap = [&handlers](bool all) {
    for (auto it = handlers.begin(); it != handlers.end();) {
      if (all || it->done->load()) {
        it->thread.join();
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  };
  for (int served = 0; max_connections < 0 || served < max_connections; ++served) {
    if (stopping()) break;
    int conn;
    do {
      conn = ::accept(listener, nullptr, nullptr);
      // A signal (SIGTERM/SIGINT installed without SA_RESTART) interrupts
      // the blocking accept; re-check the stop flag before retrying.
    } while (conn < 0 && errno == EINTR && !stopping());
    if (conn < 0) break;
    reap(/*all=*/false);
    try {
      auto done = std::make_shared<std::atomic<bool>>(false);
      handlers.push_back({std::thread{}, done, conn});
      handlers.back().thread =
          std::thread([&service, &defaults, log, &log_mu, conn, done, &options] {
            FdStreamBuf buf(conn);
            std::istream in(&buf);
            std::ostream out(&buf);
            std::ostringstream conn_log;
            serve_stream(service, defaults, in, out,
                         log != nullptr ? &conn_log : nullptr, options);
            ::close(conn);
            if (log != nullptr) {
              std::lock_guard lk(log_mu);
              *log << conn_log.str();
            }
            done->store(true);
          });
    } catch (...) {
      // Thread or allocation exhaustion: drop this connection, keep serving.
      if (!handlers.empty() && !handlers.back().thread.joinable()) {
        handlers.pop_back();
      }
      ::close(conn);
      if (log != nullptr) {
        std::lock_guard lk(log_mu);
        obs::log_to(log, obs::LogLevel::Warn, "serve",
                    "refusing connection: handler spawn failed");
      }
    }
  }
  ::close(listener);
  if (stopping()) {
    // Graceful drain: wake every connection's reader (EOF on its next read)
    // so each stream drains in-flight replies under the drain deadline.
    for (auto& h : handlers) ::shutdown(h.fd, SHUT_RD);
    if (log != nullptr) {
      std::lock_guard lk(log_mu);
      obs::log_to(log, obs::LogLevel::Info, "serve",
                  "shutdown requested: draining " +
                      std::to_string(handlers.size()) + " connection(s)");
    }
  }
  reap(/*all=*/true);
}

}  // namespace maps::serve
