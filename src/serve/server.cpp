#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

namespace maps::serve {

namespace {

/// One reply slot in the in-order pipeline: either an already-formed error
/// document (parse failures reply immediately) or a pending prediction.
struct PendingReply {
  bool is_error = false;
  io::JsonValue error_doc;
  runtime::Future<ServeResponse> future;
  io::JsonValue id;
  bool return_field = true;
};

}  // namespace

StreamServeReport serve_stream(PredictionService& service,
                               const WireDefaults& defaults, std::istream& in,
                               std::ostream& out, std::ostream* log) {
  StreamServeReport report;
  std::mutex mu;
  std::condition_variable cv_space, cv_items;
  std::deque<PendingReply> queue;
  bool done_reading = false;
  std::size_t errors = 0;
  // Enough in-flight replies to keep full batches forming, bounded so a
  // streaming client cannot queue unbounded field buffers.
  const std::size_t window =
      std::max<std::size_t>(64, 4 * static_cast<std::size_t>(
                                        service.options().max_batch));

  std::thread writer([&] {
    for (;;) {
      PendingReply reply;
      {
        std::unique_lock lk(mu);
        cv_items.wait(lk, [&] { return done_reading || !queue.empty(); });
        if (queue.empty()) return;  // done_reading && drained
        reply = std::move(queue.front());
        queue.pop_front();
      }
      cv_space.notify_one();
      io::JsonValue doc;
      if (reply.is_error) {
        doc = std::move(reply.error_doc);
      } else {
        try {
          doc = encode_response(reply.id, reply.future.get(), reply.return_field);
        } catch (const std::exception& e) {
          doc = encode_error(reply.id, e.what());
          std::lock_guard lk(mu);
          ++errors;
        }
      }
      out << doc.dump() << "\n" << std::flush;
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++report.requests;
    PendingReply reply;
    try {
      const io::JsonValue doc = io::json_parse(line);
      WireRequest wire = parse_request(doc, defaults);
      reply.id = wire.id;
      reply.return_field = wire.return_field;
      reply.future = service.submit(std::move(wire.request));
    } catch (const std::exception& e) {
      reply.is_error = true;
      io::JsonValue id;  // null: the id may not even have parsed
      reply.error_doc = encode_error(id, e.what());
      std::lock_guard lk(mu);
      ++errors;
    }
    {
      std::unique_lock lk(mu);
      cv_space.wait(lk, [&] { return queue.size() < window; });
      queue.push_back(std::move(reply));
    }
    cv_items.notify_one();
  }
  {
    std::lock_guard lk(mu);
    done_reading = true;
  }
  cv_items.notify_all();
  writer.join();
  report.errors = errors;
  if (log != nullptr) {
    *log << "[serve] stream closed: " << report.requests << " request(s), "
         << report.errors << " error(s)\n";
  }
  return report;
}

namespace {

/// Minimal bidirectional streambuf over a connected socket fd.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_.data(), in_.size());
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_out() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return -1;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(out_.data(), out_.data() + out_.size());
    return 0;
  }

  int fd_;
  std::array<char, 1 << 14> in_;
  std::array<char, 1 << 14> out_;
};

}  // namespace

void serve_tcp(PredictionService& service, const WireDefaults& defaults, int port,
               std::ostream* log, int max_connections,
               std::atomic<int>* bound_port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listener >= 0, "serve_tcp: socket() failed");
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listener);
    throw MapsError("serve_tcp: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listener, 16) != 0) {
    ::close(listener);
    throw MapsError("serve_tcp: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  if (bound_port != nullptr) bound_port->store(ntohs(addr.sin_port));
  if (log != nullptr) {
    *log << "[serve] listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n";
  }

  // Handler threads each buffer their connection's log lines and flush them
  // whole under log_mu, so concurrent connections cannot interleave writes
  // on the shared log stream. Finished threads are reaped on every accept so
  // a long-lived server doesn't accumulate joinable-but-done threads. A list
  // keeps the slot-then-spawn sequence exception-safe: a failed spawn pops
  // the empty slot and refuses one connection instead of unwinding past
  // joinable threads (std::terminate).
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Handler> handlers;
  std::mutex log_mu;
  const auto reap = [&handlers](bool all) {
    for (auto it = handlers.begin(); it != handlers.end();) {
      if (all || it->done->load()) {
        it->thread.join();
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  };
  for (int served = 0; max_connections < 0 || served < max_connections; ++served) {
    int conn;
    do {
      conn = ::accept(listener, nullptr, nullptr);
    } while (conn < 0 && errno == EINTR);
    if (conn < 0) break;
    reap(/*all=*/false);
    try {
      auto done = std::make_shared<std::atomic<bool>>(false);
      handlers.push_back({std::thread{}, done});
      handlers.back().thread =
          std::thread([&service, &defaults, log, &log_mu, conn, done] {
            FdStreamBuf buf(conn);
            std::istream in(&buf);
            std::ostream out(&buf);
            std::ostringstream conn_log;
            serve_stream(service, defaults, in, out,
                         log != nullptr ? &conn_log : nullptr);
            ::close(conn);
            if (log != nullptr) {
              std::lock_guard lk(log_mu);
              *log << conn_log.str();
            }
            done->store(true);
          });
    } catch (...) {
      // Thread or allocation exhaustion: drop this connection, keep serving.
      if (!handlers.empty() && !handlers.back().thread.joinable()) {
        handlers.pop_back();
      }
      ::close(conn);
      if (log != nullptr) {
        std::lock_guard lk(log_mu);
        *log << "[serve] refusing connection: handler spawn failed\n";
      }
    }
  }
  ::close(listener);
  reap(/*all=*/true);
}

}  // namespace maps::serve
