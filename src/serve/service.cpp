#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "core/train/encoding.hpp"
#include "solver/cache.hpp"

namespace maps::serve {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* response_source_name(ResponseSource source) {
  switch (source) {
    case ResponseSource::Surrogate: return "surrogate";
    case ResponseSource::Solver: return "solver";
  }
  return "?";
}

QueryKey PredictionService::make_key(const ServeRequest& request, int model_version) {
  // Pattern identity: eps bytes, source bytes, geometry and PML — everything
  // that changes the answer besides (omega, fidelity, model), which are key
  // fields of their own.
  std::uint64_t h = solver::digest_grid(request.eps);
  h = fnv_mix(h, request.J.data().data(), request.J.data().size() * sizeof(cplx));
  h = fnv_mix(h, &request.spec.nx, sizeof(request.spec.nx));
  h = fnv_mix(h, &request.spec.ny, sizeof(request.spec.ny));
  h = fnv_mix(h, &request.spec.dl, sizeof(request.spec.dl));
  h = fnv_mix(h, &request.pml.ncells, sizeof(request.pml.ncells));
  h = fnv_mix(h, &request.pml.m, sizeof(request.pml.m));
  h = fnv_mix(h, &request.pml.R0, sizeof(request.pml.R0));
  QueryKey key;
  key.pattern_digest = h;
  key.omega = request.omega;
  key.fidelity = static_cast<int>(request.fidelity);
  key.model_version = model_version;
  return key;
}

PredictionService::PredictionService(std::shared_ptr<ModelRegistry> registry,
                                     ServeOptions options)
    : registry_(std::move(registry)), options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      solver_cache_(std::make_shared<solver::FactorizationCache>(
          std::max<std::size_t>(1, options.solver_cache_capacity))) {
  require(registry_ != nullptr, "PredictionService: null registry");
  if (options_.workers > 0) {
    own_queue_ = std::make_unique<runtime::TaskQueue>(options_.workers);
    queue_ = own_queue_.get();
  } else {
    queue_ = &runtime::TaskQueue::shared();
  }
  BatcherOptions bopt;
  bopt.max_batch = options_.max_batch;
  bopt.max_delay_ms = options_.max_delay_ms;
  bopt.queue = queue_;
  batcher_ = std::make_unique<MicroBatcher>(bopt);
}

PredictionService::~PredictionService() {
  // Order matters: the batcher drains its surrogate batches first (their
  // callbacks touch the cache and counters), then we wait out the directly
  // submitted solver jobs before any member is torn down.
  batcher_.reset();
  while (inflight_.load() != 0) std::this_thread::yield();
}

runtime::Future<ServeResponse> PredictionService::submit(ServeRequest request) {
  runtime::Promise<ServeResponse> promise;
  runtime::Future<ServeResponse> future = promise.future();
  requests_.fetch_add(1);
  const double start = now_ms();

  try {
    require(request.eps.nx() == request.spec.nx && request.eps.ny() == request.spec.ny,
            "PredictionService: eps shape does not match spec");
    require(request.J.nx() == request.spec.nx && request.J.ny() == request.spec.ny,
            "PredictionService: source shape does not match spec");
    require(request.omega > 0.0, "PredictionService: omega must be positive");

    const bool surrogate = request.fidelity == solver::FidelityLevel::Low;
    std::shared_ptr<const ServedModel> model;
    int model_version = 0;
    if (surrogate) {
      model = registry_->active();
      require(model != nullptr, "PredictionService: no active model for surrogate "
                                "fidelity (load one into the registry)");
      model_version = model->version;
    }

    const QueryKey key = make_key(request, model_version);
    if (const auto hit = cache_.get(key)) {
      cache_hits_.fetch_add(1);
      ServeResponse response;
      response.Ez = hit->Ez;
      // `source` reports the tier that produced the answer; cache_hit says
      // it was served from the cache without re-running that tier.
      response.source =
          hit->solver_grade ? ResponseSource::Solver : ResponseSource::Surrogate;
      response.cache_hit = true;
      if (model != nullptr) {
        response.model_id = model->id;
        response.model_version = model->version;
      }
      finish(promise, std::move(response), start);
      return future;
    }

    if (!surrogate) {
      // Explicit medium/high fidelity: dispatch a solver-backed job.
      solver_requests_.fetch_add(1);
      // inflight_ must be raised before the job can run (the job decrements
      // it), so roll the increment back if the enqueue itself throws —
      // otherwise the destructor's drain loop would spin forever.
      inflight_.fetch_add(1);
      try {
        (void)queue_->submit(
            [this, request = std::move(request), key, promise, start]() mutable -> int {
              try {
                ServeResponse response = solve_high(request);
                cache_.put(key, std::make_shared<CachedResult>(
                                    CachedResult{response.Ez, true}));
                finish(promise, std::move(response), start);
              } catch (...) {
                errors_.fetch_add(1);
                promise.set_exception(std::current_exception());
              }
              inflight_.fetch_sub(1);
              return 0;
            });
      } catch (...) {
        inflight_.fetch_sub(1);
        throw;
      }
      return future;
    }

    surrogate_requests_.fetch_add(1);
    // The promise is passed by copy (shared state), not moved: if
    // answer_surrogate throws before the job is queued, the catch below
    // still holds a live promise to carry the error to the caller.
    answer_surrogate(std::make_shared<const ServeRequest>(std::move(request)),
                     model, key, promise, start);
  } catch (...) {
    errors_.fetch_add(1);
    promise.set_exception(std::current_exception());
  }
  return future;
}

void PredictionService::answer_surrogate(
    std::shared_ptr<const ServeRequest> request,
    const std::shared_ptr<const ServedModel>& model, const QueryKey& key,
    runtime::Promise<ServeResponse> promise, double start_ms) {
  nn::Tensor input = maps::train::make_input_batch(1, request->spec.nx,
                                                   request->spec.ny, model->encoding);
  maps::train::encode_input(input, 0, request->eps, request->J, request->omega,
                            request->spec.dl, model->standardizer, model->encoding);

  BatchJob job;
  job.input = std::move(input);
  job.model = model;
  // The request rides along as a shared_ptr: the callback only needs it for
  // the escalation fallback, and sharing one buffer avoids deep-copying the
  // eps/J grids into every queued job.
  job.done = [this, request = std::move(request), model, key, promise, start_ms](
                 nn::Tensor output, std::exception_ptr error) mutable {
    if (error != nullptr) {
      errors_.fetch_add(1);
      promise.set_exception(error);
      return;
    }
    try {
      ServeResponse response;
      response.model_id = model->id;
      response.model_version = model->version;
      response.Ez = maps::train::decode_field(output, 0, model->standardizer);
      response.source = ResponseSource::Surrogate;

      // Confidence screen: a non-finite field always escalates; a field
      // whose RMS blows past the training-set scale is suspect when the
      // RMS screen is armed.
      double sumsq = 0.0;
      bool finite = true;
      for (index_t n = 0; n < response.Ez.size() && finite; ++n) {
        const cplx v = response.Ez[n];
        finite = std::isfinite(v.real()) && std::isfinite(v.imag());
        sumsq += std::norm(v);
      }
      const double rms =
          std::sqrt(sumsq / static_cast<double>(std::max<index_t>(1, response.Ez.size())));
      const bool suspect =
          !finite || (options_.escalate_rms_factor > 0.0 &&
                      rms > options_.escalate_rms_factor *
                                model->standardizer.field_scale);
      if (suspect) {
        // Running on a TaskQueue worker already: solve inline rather than
        // re-queueing (a worker must never wait on queued work).
        escalations_.fetch_add(1);
        ServeResponse solved = solve_high(*request);
        solved.model_id = model->id;
        solved.model_version = model->version;
        solved.escalated = true;
        cache_.put(key, std::make_shared<CachedResult>(CachedResult{solved.Ez, true}));
        finish(promise, std::move(solved), start_ms);
        return;
      }
      cache_.put(key, std::make_shared<CachedResult>(CachedResult{response.Ez, false}));
      finish(promise, std::move(response), start_ms);
    } catch (...) {
      errors_.fetch_add(1);
      promise.set_exception(std::current_exception());
    }
  };
  batcher_->submit(std::move(job));
}

ServeResponse PredictionService::solve_high(const ServeRequest& request) {
  // The solver tier inherits the split-complex LU direct path and the
  // FactorizationCache: repeat escalations of one pattern only pay
  // back-substitution. Medium fidelity maps to the iterative backend.
  fdfd::SimOptions sim_options;
  sim_options.pml = request.pml;
  sim_options.set_fidelity(request.fidelity == solver::FidelityLevel::Low
                               ? solver::FidelityLevel::High
                               : request.fidelity);
  sim_options.cache = solver_cache_;
  sim_options.precision = options_.solver_precision;
  fdfd::Simulation sim(request.spec, request.eps, request.omega, sim_options);
  ServeResponse response;
  response.Ez = sim.solve(request.J);
  response.source = ResponseSource::Solver;
  return response;
}

void PredictionService::finish(runtime::Promise<ServeResponse>& promise,
                               ServeResponse response, double start_ms) {
  const double latency = now_ms() - start_ms;
  response.latency_ms = latency;
  {
    std::lock_guard lk(latency_mu_);
    total_latency_ms_ += latency;
    max_latency_ms_ = std::max(max_latency_ms_, latency);
  }
  promise.set_value(std::move(response));
}

ServeStatsSnapshot PredictionService::stats() const {
  ServeStatsSnapshot s;
  s.requests = requests_.load();
  s.cache_hits = cache_hits_.load();
  s.surrogate_requests = surrogate_requests_.load();
  s.solver_requests = solver_requests_.load();
  s.escalations = escalations_.load();
  s.errors = errors_.load();
  s.solver_refine_iterations =
      static_cast<std::uint64_t>(solver_cache_->refinement_iteration_count());
  s.solver_refine_fallbacks =
      static_cast<std::uint64_t>(solver_cache_->refinement_fallback_count());
  {
    std::lock_guard lk(latency_mu_);
    s.total_latency_ms = total_latency_ms_;
    s.max_latency_ms = max_latency_ms_;
  }
  s.batcher = batcher_->stats();
  s.cache = cache_.stats();
  return s;
}

}  // namespace maps::serve
