#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/train/encoding.hpp"
#include "obs/log.hpp"
#include "runtime/fault.hpp"
#include "solver/cache.hpp"

namespace maps::serve {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

nn::Tensor encode_request(const ServeRequest& request, const ServedModel& model) {
  nn::Tensor input = maps::train::make_input_batch(1, request.spec.nx,
                                                   request.spec.ny, model.encoding);
  maps::train::encode_input(input, 0, request.eps, request.J, request.omega,
                            request.spec.dl, model.standardizer, model.encoding);
  return input;
}

}  // namespace

const char* response_source_name(ResponseSource source) {
  switch (source) {
    case ResponseSource::Surrogate: return "surrogate";
    case ResponseSource::Solver: return "solver";
  }
  return "?";
}

QueryKey PredictionService::make_key(const ServeRequest& request, int model_version) {
  // Pattern identity: eps bytes, source bytes, geometry and PML — everything
  // that changes the answer besides (omega, fidelity, model), which are key
  // fields of their own.
  std::uint64_t h = solver::digest_grid(request.eps);
  h = fnv_mix(h, request.J.data().data(), request.J.data().size() * sizeof(cplx));
  h = fnv_mix(h, &request.spec.nx, sizeof(request.spec.nx));
  h = fnv_mix(h, &request.spec.ny, sizeof(request.spec.ny));
  h = fnv_mix(h, &request.spec.dl, sizeof(request.spec.dl));
  h = fnv_mix(h, &request.pml.ncells, sizeof(request.pml.ncells));
  h = fnv_mix(h, &request.pml.m, sizeof(request.pml.m));
  h = fnv_mix(h, &request.pml.R0, sizeof(request.pml.R0));
  QueryKey key;
  key.pattern_digest = h;
  key.omega = request.omega;
  key.fidelity = static_cast<int>(request.fidelity);
  key.model_version = model_version;
  return key;
}

PredictionService::PredictionService(std::shared_ptr<ModelRegistry> registry,
                                     ServeOptions options)
    : registry_(std::move(registry)), options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      solver_cache_(std::make_shared<solver::FactorizationCache>(
          std::max<std::size_t>(1, options.solver_cache_capacity))) {
  require(registry_ != nullptr, "PredictionService: null registry");
  if (options_.workers > 0) {
    own_queue_ = std::make_unique<runtime::TaskQueue>(options_.workers);
    queue_ = own_queue_.get();
  } else {
    queue_ = &runtime::TaskQueue::shared();
  }
  BreakerOptions bropt;
  bropt.failure_threshold = options_.breaker_failures;
  bropt.backoff_ms = options_.breaker_backoff_ms;
  bropt.backoff_max_ms = options_.breaker_backoff_max_ms;
  bropt.half_open_probes = options_.breaker_half_open_probes;
  breaker_ = std::make_unique<CircuitBreaker>(bropt);
  BatcherOptions bopt;
  bopt.max_batch = options_.max_batch;
  bopt.max_delay_ms = options_.max_delay_ms;
  bopt.queue = queue_;
  batcher_ = std::make_unique<MicroBatcher>(bopt);
  hist_total_ms_ = &obs::registry().histogram("serve.request.total_ms");
  hist_cache_lookup_ms_ = &obs::registry().histogram("serve.cache.lookup_ms");
  slow_request_ms_ = options_.slow_request_ms;
  if (const char* env = std::getenv("MAPS_SLOW_REQUEST_MS");
      env != nullptr && *env != '\0') {
    slow_request_ms_ = std::atof(env);
  }
}

PredictionService::~PredictionService() {
  // Order matters: the batcher drains its surrogate batches first (their
  // callbacks touch the cache and counters), then we wait out the directly
  // submitted solver jobs before any member is torn down.
  batcher_.reset();
  while (inflight_.load() != 0) std::this_thread::yield();
}

runtime::Future<ServeResponse> PredictionService::submit(ServeRequest request) {
  runtime::Promise<ServeResponse> promise;
  runtime::Future<ServeResponse> future = promise.future();
  requests_.fetch_add(1);
  // Every submitted request holds one inflight slot until its terminal
  // finish() or fail() — admission control below counts this uniformly for
  // cache hits, surrogate jobs and solver jobs alike.
  inflight_.fetch_add(1);
  const double start = runtime::now_steady_ms();
  // The trace rides the request into the pipeline; keep a handle for the
  // terminal paths (the request itself is moved into the dispatch).
  const obs::TracePtr trace = request.trace;
  // Declared outside the try so the catch can clean up a registered
  // pending-leader slot when dispatch throws after lead_pending().
  QueryKey key;
  bool leading = false;

  try {
    require(request.eps.nx() == request.spec.nx && request.eps.ny() == request.spec.ny,
            "PredictionService: eps shape does not match spec");
    require(request.J.nx() == request.spec.nx && request.J.ny() == request.spec.ny,
            "PredictionService: source shape does not match spec");
    require(request.omega > 0.0, "PredictionService: omega must be positive");
    const double deadline_abs =
        request.deadline_ms > 0.0 ? start + request.deadline_ms : 0.0;

    const bool surrogate = request.fidelity == solver::FidelityLevel::Low;
    std::shared_ptr<const ServedModel> model;
    int model_version = 0;
    if (surrogate) {
      model = registry_->active();
      require(model != nullptr, "PredictionService: no active model for surrogate "
                                "fidelity (load one into the registry)");
      model_version = model->version;
    }

    key = make_key(request, model_version);
    std::shared_ptr<const CachedResult> hit;
    {
      obs::ScopedSpan span("cache.lookup", trace.get(), hist_cache_lookup_ms_);
      hit = cache_.get(key);
    }
    if (hit) {
      cache_hits_.fetch_add(1);
      ServeResponse response;
      response.Ez = hit->Ez;
      // `source` reports the tier that produced the answer; cache_hit says
      // it was served from the cache without re-running that tier.
      response.source =
          hit->solver_grade ? ResponseSource::Solver : ResponseSource::Surrogate;
      response.cache_hit = true;
      if (model != nullptr) {
        response.model_id = model->id;
        response.model_version = model->version;
      }
      finish(promise, std::move(response), start, nullptr, trace);
      return future;
    }

    // Identical query already in flight? Attach to it instead of running
    // the pipeline again — the cache-stampede path: N racing misses cost
    // one forward. Attached requests add no pipeline work, so they bypass
    // admission control just like cache hits.
    if (attach_pending(key, promise, start, trace)) return future;

    // Cache misses consume pipeline stages; shed here, at ingress, while the
    // reply still costs microseconds. Cache hits above bypass admission —
    // they never queue.
    admit(request);

    if (!surrogate) {
      // Explicit medium/high fidelity: dispatch a solver-backed job.
      solver_requests_.fetch_add(1);
      if (!breaker_->allow()) {
        // Solver tier is fenced off. Degrade to an un-verified surrogate
        // answer when a model is loaded; otherwise the caller gets the
        // structured breaker_open error and its retry_after hint.
        auto fallback = registry_->active();
        if (fallback != nullptr) {
          lead_pending(key);
          leading = true;
          answer_surrogate(std::make_shared<const ServeRequest>(std::move(request)),
                           fallback, key, promise, start, deadline_abs,
                           /*degraded=*/true);
          return future;
        }
        throw BreakerOpenError(
            "PredictionService: solver circuit breaker is open and no "
            "surrogate model is loaded to degrade to");
      }
      lead_pending(key);
      leading = true;
      (void)queue_->submit(
          [this, request = std::move(request), key, promise, start,
           deadline_abs, trace]() mutable -> int {
            try {
              if (deadline_abs > 0.0 && runtime::now_steady_ms() >= deadline_abs) {
                breaker_->cancel();  // the solver never ran: no outcome to record
                throw runtime::DeadlineExceeded(
                    "PredictionService: deadline exceeded in the solver queue");
              }
              ServeResponse response = solve_guarded(request, deadline_abs);
              cache_.put(key, std::make_shared<CachedResult>(
                                  CachedResult{response.Ez, true}));
              finish(promise, std::move(response), start, &key, trace);
            } catch (...) {
              fail(promise, std::current_exception(), &key, trace);
            }
            return 0;
          });
      return future;
    }

    surrogate_requests_.fetch_add(1);
    lead_pending(key);
    leading = true;
    // The promise is passed by copy (shared state), not moved: if
    // answer_surrogate throws before the job is queued, the catch below
    // still holds a live promise to carry the error to the caller.
    answer_surrogate(std::make_shared<const ServeRequest>(std::move(request)),
                     model, key, promise, start, deadline_abs, /*degraded=*/false);
  } catch (...) {
    fail(promise, std::current_exception(), leading ? &key : nullptr, trace);
  }
  return future;
}

void PredictionService::admit(const ServeRequest& request) {
  (void)request;
  // inflight_ already counts this request, so "more than max_inflight" means
  // max_inflight other requests are occupying the pipeline.
  if (options_.max_inflight > 0 && inflight_.load() > options_.max_inflight) {
    throw OverloadedError(
        "PredictionService: overloaded (" + std::to_string(inflight_.load() - 1) +
            " requests in flight, limit " + std::to_string(options_.max_inflight) + ")",
        backlog_estimate_ms());
  }
  if (options_.max_queue_ms > 0.0) {
    const double wait = backlog_estimate_ms();
    if (wait > options_.max_queue_ms) {
      throw OverloadedError(
          "PredictionService: overloaded (estimated queue wait " +
              std::to_string(wait) + " ms exceeds max_queue_ms " +
              std::to_string(options_.max_queue_ms) + ")",
          wait);
    }
  }
}

double PredictionService::backlog_estimate_ms() const {
  // Queue-theory-lite: (waiting ahead of you) / workers * average service
  // time. Before any request completes, fall back to the batch window as
  // the only latency scale the service knows.
  const std::uint64_t done = completed_.load();
  double avg = options_.max_delay_ms + 1.0;
  if (done > 0) {
    std::lock_guard lk(latency_mu_);
    avg = total_latency_ms_ / static_cast<double>(done);
  }
  const std::uint64_t inflight = inflight_.load();
  const double ahead = inflight > 0 ? static_cast<double>(inflight - 1) : 0.0;
  const double workers = static_cast<double>(std::max<std::size_t>(1, queue_->worker_count()));
  return std::max(1.0, ahead / workers * std::max(avg, 0.1));
}

void PredictionService::answer_surrogate(
    std::shared_ptr<const ServeRequest> request,
    const std::shared_ptr<const ServedModel>& model, const QueryKey& key,
    runtime::Promise<ServeResponse> promise, double start_ms,
    double deadline_abs_ms, bool degraded) {
  BatchJob job;
  job.input = encode_request(*request, *model);
  job.model = model;
  job.trace = request->trace;
  // The request rides along as a shared_ptr: the callback only needs it for
  // the escalation fallback, and sharing one buffer avoids deep-copying the
  // eps/J grids into every queued job.
  job.done = [this, request = std::move(request), model, key, promise, start_ms,
              deadline_abs_ms, degraded](nn::Tensor output,
                                         std::exception_ptr error) mutable {
    try {
      // Queue hand-off deadline check: the reply is late no matter what the
      // batch produced, so don't spend decode/screen/escalation on it.
      if (deadline_abs_ms > 0.0 && runtime::now_steady_ms() >= deadline_abs_ms) {
        throw runtime::DeadlineExceeded(
            "PredictionService: deadline exceeded in the batch queue");
      }
      if (error != nullptr) {
        // The batched forward failed (or a chaos fault fired inside it).
        // A single-sample retry re-runs this request alone through the same
        // encode + infer, which is bit-identical to its batched row — a
        // transient batch failure stays invisible to the caller.
        surrogate_retries_.fetch_add(1);
        try {
          output = model->model->infer(encode_request(*request, *model));
          error = nullptr;
        } catch (...) {
          // Surrogate tier is down for this request; fail over to the
          // solver when the breaker permits.
          if (breaker_->allow()) {
            solver_failovers_.fetch_add(1);
            ServeResponse solved = solve_guarded(*request, deadline_abs_ms);
            solved.model_id = model->id;
            solved.model_version = model->version;
            cache_.put(key,
                       std::make_shared<CachedResult>(CachedResult{solved.Ez, true}));
            finish(promise, std::move(solved), start_ms, &key, request->trace);
            return;
          }
          std::rethrow_exception(error);
        }
      }

      ServeResponse response;
      response.model_id = model->id;
      response.model_version = model->version;
      response.Ez = maps::train::decode_field(output, 0, model->standardizer);
      response.source = ResponseSource::Surrogate;

      if (degraded) {
        // Breaker-open fallback for a solver-fidelity request: serve the
        // surrogate answer un-verified and say so. Not cached — a recovered
        // solver should re-answer the next identical query at full grade.
        response.degraded = true;
        degraded_served_.fetch_add(1);
        finish(promise, std::move(response), start_ms, &key, request->trace);
        return;
      }

      // Confidence screen: a non-finite field always escalates; a field
      // whose RMS blows past the training-set scale is suspect when the
      // RMS screen is armed.
      double sumsq = 0.0;
      bool finite = true;
      for (index_t n = 0; n < response.Ez.size() && finite; ++n) {
        const cplx v = response.Ez[n];
        finite = std::isfinite(v.real()) && std::isfinite(v.imag());
        sumsq += std::norm(v);
      }
      const double rms =
          std::sqrt(sumsq / static_cast<double>(std::max<index_t>(1, response.Ez.size())));
      const bool suspect =
          !finite || (options_.escalate_rms_factor > 0.0 &&
                      rms > options_.escalate_rms_factor *
                                model->standardizer.field_scale);
      if (suspect) {
        // Running on a TaskQueue worker already: solve inline rather than
        // re-queueing (a worker must never wait on queued work).
        escalations_.fetch_add(1);
        if (!breaker_->allow()) {
          // Solver tier fenced off: the suspect surrogate answer beats no
          // answer. Degrade instead of escalating.
          response.degraded = true;
          degraded_served_.fetch_add(1);
          finish(promise, std::move(response), start_ms, &key, request->trace);
          return;
        }
        try {
          ServeResponse solved = solve_guarded(*request, deadline_abs_ms);
          solved.model_id = model->id;
          solved.model_version = model->version;
          solved.escalated = true;
          cache_.put(key,
                     std::make_shared<CachedResult>(CachedResult{solved.Ez, true}));
          finish(promise, std::move(solved), start_ms, &key, request->trace);
        } catch (const runtime::DeadlineExceeded&) {
          throw;  // the reply is late either way: report the blown budget
        } catch (...) {
          // Escalation solve broke (breaker recorded the failure inside
          // solve_guarded): degrade to the suspect surrogate answer.
          response.degraded = true;
          degraded_served_.fetch_add(1);
          finish(promise, std::move(response), start_ms, &key, request->trace);
        }
        return;
      }
      cache_.put(key, std::make_shared<CachedResult>(CachedResult{response.Ez, false}));
      finish(promise, std::move(response), start_ms, &key, request->trace);
    } catch (...) {
      fail(promise, std::current_exception(), &key, request->trace);
    }
  };
  batcher_->submit(std::move(job));
}

ServeResponse PredictionService::solve_guarded(const ServeRequest& request,
                                               double deadline_abs_ms) {
  // Wrap the solve in the request's deadline scope and the breaker's
  // accounting. A deadline blown mid-solve counts as a solver timeout —
  // from the pipeline's perspective the tier failed to answer in budget —
  // so repeated timeouts trip the breaker exactly like hard failures.
  // The ambient trace scope lets the solver backend (factorize/solve/
  // refine, which have no trace parameter) record spans against this
  // request from this thread.
  obs::TraceScope trace_scope(request.trace.get());
  try {
    runtime::DeadlineGuard guard(deadline_abs_ms);
    ServeResponse response = solve_high(request);
    runtime::check_deadline("PredictionService::solve_guarded");
    breaker_->record_success();
    return response;
  } catch (...) {
    breaker_->record_failure();
    throw;
  }
}

ServeResponse PredictionService::solve_high(const ServeRequest& request) {
  // The solver tier inherits the split-complex LU direct path and the
  // FactorizationCache: repeat escalations of one pattern only pay
  // back-substitution. Medium fidelity maps to the iterative backend.
  fdfd::SimOptions sim_options;
  sim_options.pml = request.pml;
  sim_options.set_fidelity(request.fidelity == solver::FidelityLevel::Low
                               ? solver::FidelityLevel::High
                               : request.fidelity);
  sim_options.cache = solver_cache_;
  sim_options.precision = options_.solver_precision;
  fdfd::Simulation sim(request.spec, request.eps, request.omega, sim_options);
  ServeResponse response;
  response.Ez = sim.solve(request.J);
  response.source = ResponseSource::Solver;
  return response;
}

bool PredictionService::attach_pending(const QueryKey& key,
                                       const runtime::Promise<ServeResponse>& promise,
                                       double start_ms, const obs::TracePtr& trace) {
  if (!options_.coalesce) return false;
  // Chaos `io` action: pretend the in-flight entry was not found. The
  // request degrades gracefully into a duplicate leader — correct answer,
  // one wasted forward.
  if (runtime::fault::point("coalesce.attach")) return false;
  std::lock_guard lk(pending_mu_);
  auto it = pending_.find(key);
  if (it == pending_.end()) return false;
  it->second.push_back(Waiter{promise, start_ms, trace});
  coalesced_.fetch_add(1);
  return true;
}

void PredictionService::lead_pending(const QueryKey& key) {
  if (!options_.coalesce) return;
  std::lock_guard lk(pending_mu_);
  // emplace is a no-op when a racing leader won the slot: this request
  // still runs its own pipeline, it just fans out to nobody.
  pending_.emplace(key, std::vector<Waiter>{});
}

std::vector<PredictionService::Waiter> PredictionService::take_waiters(
    const QueryKey* key) {
  std::vector<Waiter> out;
  if (key == nullptr || !options_.coalesce) return out;
  std::lock_guard lk(pending_mu_);
  auto it = pending_.find(*key);
  if (it != pending_.end()) {
    out = std::move(it->second);
    pending_.erase(it);
  }
  return out;
}

void PredictionService::record_completion(double latency_ms) {
  completed_.fetch_add(1);
  std::lock_guard lk(latency_mu_);
  total_latency_ms_ += latency_ms;
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
}

void PredictionService::observe_terminal(const obs::TracePtr& trace,
                                         double total_ms, const char* outcome) {
  if (obs::metrics_enabled()) hist_total_ms_->record(total_ms);
  if (trace == nullptr) return;
  if (slow_request_ms_ >= 0.0 && total_ms >= slow_request_ms_ &&
      trace->claim_dump()) {
    obs::write_raw_line(obs::render_span_tree(*trace, total_ms, outcome));
  }
}

void PredictionService::finish(runtime::Promise<ServeResponse>& promise,
                               ServeResponse response, double start_ms,
                               const QueryKey* key, const obs::TracePtr& trace) {
  std::vector<Waiter> waiters = take_waiters(key);
  const double now = runtime::now_steady_ms();
  // Fan out to attached waiters first (they copy), then the leader consumes
  // the original. Each request is billed its own latency from its own
  // submit().
  for (Waiter& w : waiters) {
    ServeResponse copy = response;
    copy.latency_ms = now - w.start_ms;
    record_completion(copy.latency_ms);
    // The attacher did none of the pipeline work itself — adopt the
    // leader's spans so its trace names what it waited on.
    if (w.trace != nullptr && trace != nullptr) w.trace->adopt(*trace);
    observe_terminal(w.trace, copy.latency_ms, "ok");
    w.promise.set_value(std::move(copy));
    inflight_.fetch_sub(1);
  }
  response.latency_ms = now - start_ms;
  record_completion(response.latency_ms);
  observe_terminal(trace, response.latency_ms, "ok");
  promise.set_value(std::move(response));
  // Last touch of service state: the destructor's drain proceeds the moment
  // this hits zero.
  inflight_.fetch_sub(1);
}

void PredictionService::fail(runtime::Promise<ServeResponse>& promise,
                             std::exception_ptr error, const QueryKey* key,
                             const obs::TracePtr& trace) {
  std::vector<Waiter> waiters = take_waiters(key);
  const auto n = static_cast<std::uint64_t>(1 + waiters.size());
  const char* outcome = "error";
  try {
    std::rethrow_exception(error);
  } catch (const OverloadedError&) {
    shed_.fetch_add(n);
    outcome = "overloaded";
  } catch (const runtime::DeadlineExceeded&) {
    deadline_exceeded_.fetch_add(n);
    outcome = "deadline_exceeded";
  } catch (...) {
    errors_.fetch_add(n);
  }
  const double now = runtime::now_steady_ms();
  for (Waiter& w : waiters) {
    if (w.trace != nullptr && trace != nullptr) w.trace->adopt(*trace);
    observe_terminal(w.trace, now - w.start_ms, outcome);
    w.promise.set_exception(error);
    inflight_.fetch_sub(1);
  }
  if (trace != nullptr) observe_terminal(trace, now - trace->created_ms(), outcome);
  promise.set_exception(std::move(error));
  inflight_.fetch_sub(1);
}

ServeStatsSnapshot PredictionService::stats() const {
  ServeStatsSnapshot s;
  s.requests = requests_.load();
  s.cache_hits = cache_hits_.load();
  s.surrogate_requests = surrogate_requests_.load();
  s.solver_requests = solver_requests_.load();
  s.escalations = escalations_.load();
  s.errors = errors_.load();
  s.shed = shed_.load();
  s.deadline_exceeded = deadline_exceeded_.load();
  s.degraded_served = degraded_served_.load();
  s.surrogate_retries = surrogate_retries_.load();
  s.solver_failovers = solver_failovers_.load();
  s.coalesced = coalesced_.load();
  s.completed = completed_.load();
  s.breaker = breaker_->stats();
  s.solver_refine_iterations =
      static_cast<std::uint64_t>(solver_cache_->refinement_iteration_count());
  s.solver_refine_fallbacks =
      static_cast<std::uint64_t>(solver_cache_->refinement_fallback_count());
  {
    std::lock_guard lk(latency_mu_);
    s.total_latency_ms = total_latency_ms_;
    s.max_latency_ms = max_latency_ms_;
  }
  s.batcher = batcher_->stats();
  s.cache = cache_.stats();
  return s;
}

}  // namespace maps::serve
