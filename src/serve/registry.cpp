#include "serve/registry.hpp"

#include <cmath>
#include <mutex>

#include "nn/serialize.hpp"
#include "runtime/fault.hpp"

namespace maps::serve {

namespace {

/// A checkpoint that parses but carries NaN/Inf weights would poison every
/// prediction; screen before publishing.
void verify_finite(nn::Module& model, const std::string& id) {
  for (const nn::Param* p : model.parameters()) {
    const float* v = p->value.data();
    for (index_t i = 0; i < p->value.numel(); ++i) {
      if (!std::isfinite(v[i])) {
        throw MapsError("ModelRegistry: checkpoint for '" + id +
                        "' has non-finite values in parameter " + p->name);
      }
    }
  }
}

}  // namespace

std::shared_ptr<const ServedModel> ModelRegistry::load(
    const std::string& id, const nn::ModelConfig& config,
    const std::string& checkpoint, maps::train::EncodingOptions encoding,
    maps::train::Standardizer standardizer,
    const maps::train::StandardizerOverrides& overrides) {
  runtime::fault::point("registry.load");
  auto bundle = std::make_shared<ServedModel>();
  bundle->id = id;
  bundle->config = config;
  bundle->encoding = encoding;
  bundle->standardizer = standardizer;

  // Build + verify while this thread holds the only reference; readers keep
  // snapshotting the previous model until publish().
  std::unique_ptr<nn::Module> model = nn::make_model(config);
  if (!checkpoint.empty()) {
    nn::load_parameters(*model, checkpoint);  // throws on name/shape mismatch
    // Training provenance: the trainer embeds its fitted standardizer as
    // "std_*" metadata, so serving no longer depends on the values being
    // duplicated into the serve config.
    const auto meta = nn::load_metadata(checkpoint);
    maps::train::StandardizerOverrides from_meta;
    auto pick = [&meta](const char* key) -> std::optional<double> {
      const auto it = meta.find(key);
      if (it == meta.end()) return std::nullopt;
      return it->second;
    };
    from_meta.eps_lo = pick("std_eps_lo");
    from_meta.eps_hi = pick("std_eps_hi");
    from_meta.field_scale = pick("std_field_scale");
    from_meta.j_scale = pick("std_j_scale");
    from_meta.lambda_ref = pick("std_lambda_ref");
    from_meta.apply(bundle->standardizer);
  }
  // Config-explicit values outrank checkpoint provenance.
  overrides.apply(bundle->standardizer);
  verify_finite(*model, id);
  bundle->param_count = model->num_parameters();
  bundle->model = std::shared_ptr<const nn::Module>(std::move(model));
  return publish(std::move(bundle));
}

std::shared_ptr<const ServedModel> ModelRegistry::install(
    const std::string& id, const nn::ModelConfig& config,
    std::unique_ptr<nn::Module> model, maps::train::EncodingOptions encoding,
    maps::train::Standardizer standardizer) {
  require(model != nullptr, "ModelRegistry::install: null model");
  auto bundle = std::make_shared<ServedModel>();
  bundle->id = id;
  bundle->config = config;
  bundle->encoding = encoding;
  bundle->standardizer = standardizer;
  verify_finite(*model, id);
  bundle->param_count = model->num_parameters();
  bundle->model = std::shared_ptr<const nn::Module>(std::move(model));
  return publish(std::move(bundle));
}

std::shared_ptr<const ServedModel> ModelRegistry::publish(
    std::shared_ptr<ServedModel> bundle) {
  std::unique_lock lk(mu_);
  bundle->version = next_version_++;
  active_ = std::move(bundle);
  return active_;
}

std::shared_ptr<const ServedModel> ModelRegistry::active() const {
  std::shared_lock lk(mu_);
  return active_;
}

int ModelRegistry::version() const {
  std::shared_lock lk(mu_);
  return active_ ? active_->version : 0;
}

}  // namespace maps::serve
