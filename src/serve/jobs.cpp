#include "serve/jobs.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/invdes/engine.hpp"
#include "core/invdes/init.hpp"
#include "devices/builders.hpp"
#include "devices/sparams.hpp"
#include "io/config.hpp"
#include "param/blur.hpp"
#include "param/litho.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "param/symmetry.hpp"
#include "runtime/deadline.hpp"
#include "runtime/fault.hpp"
#include "serve/service.hpp"

namespace maps::serve {

namespace {

// Same transient-I/O posture as the datagen shards (runtime/shard.cpp): a
// momentarily full disk must not fail a minutes-long optimization, so
// journal appends and manifest saves retry with backoff. Past the retries
// the job keeps running in-memory — durability degrades, the work does not.
constexpr int kIoAttempts = 3;

void io_retry_backoff(int attempt) {
  static std::atomic<unsigned> salt{0};
  const double jitter = static_cast<double>(salt.fetch_add(1) % 7) * 0.1;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      static_cast<double>(1 << (attempt - 1)) + jitter));
}

io::JsonValue to_json_array(const std::vector<double>& xs) {
  io::JsonArray a(xs.begin(), xs.end());
  return io::JsonValue(std::move(a));
}

std::vector<double> from_json_array(const io::JsonValue& v) {
  std::vector<double> xs;
  xs.reserve(v.size());
  for (const auto& x : v.as_array()) xs.push_back(x.as_number());
  return xs;
}

invdes::InitKind init_kind_from_name(const std::string& name) {
  if (name == "gray") return invdes::InitKind::Gray;
  if (name == "random") return invdes::InitKind::Random;
  if (name == "path_seed") return invdes::InitKind::PathSeed;
  throw MapsError("jobs: init must be gray | random | path_seed");
}

io::JsonValue stepper_state_to_json(const invdes::StepperState& s) {
  io::JsonValue v;
  v["step"] = s.step;
  v["fom"] = s.fom;
  v["total_factorizations"] = s.total_factorizations;
  v["total_solves"] = s.total_solves;
  v["theta"] = to_json_array(s.theta);
  v["adam_m"] = to_json_array(s.adam.m);
  v["adam_v"] = to_json_array(s.adam.v);
  v["adam_t"] = s.adam.t;
  return v;
}

invdes::StepperState stepper_state_from_json(const io::JsonValue& v) {
  invdes::StepperState s;
  s.step = static_cast<int>(v.at("step").as_int());
  s.fom = v.at("fom").as_number();
  s.total_factorizations = static_cast<int>(v.at("total_factorizations").as_int());
  s.total_solves = static_cast<int>(v.at("total_solves").as_int());
  s.theta = from_json_array(v.at("theta"));
  s.adam.m = from_json_array(v.at("adam_m"));
  s.adam.v = from_json_array(v.at("adam_v"));
  s.adam.t = static_cast<int>(v.at("adam_t").as_int());
  return s;
}

/// One executing job behind the manager: a sequence of steps with a
/// serializable checkpoint between any two. Engines live on TaskQueue
/// workers only — construction (device build, normalization solves) and
/// step() are the expensive parts and run off the manager lock.
class JobEngine {
 public:
  virtual ~JobEngine() = default;
  virtual int step_index() const = 0;
  virtual double objective() const = 0;
  virtual int factorizations() const = 0;
  virtual int solves() const = 0;
  /// True once every step has run (also right after construction when the
  /// resume checkpoint was taken past the last step).
  virtual bool finished() const = 0;
  /// One unit of work; returns finished().
  virtual bool step() = 0;
  /// Resume snapshot covering everything step() mutates.
  virtual io::JsonValue checkpoint() const = 0;
  /// Per-step history record (null = this job type keeps no history).
  virtual io::JsonValue history_entry() const = 0;
  /// Terminal document; call only when finished().
  virtual io::JsonValue result() = 0;
};

/// Adjoint inverse design via core/invdes: one InvDesStepper iteration per
/// step. The checkpoint is the full StepperState (theta + Adam moments +
/// step counter, which doubles as the RNG stream position), so a resumed
/// job continues on the exact trajectory of an uninterrupted one.
class InvdesJobEngine final : public JobEngine {
 public:
  InvdesJobEngine(io::InvDesConfig config, const io::JsonValue* checkpoint)
      : config_(std::move(config)) {
    devices::BuildOptions build;
    build.fidelity = config_.fidelity;
    device_ = devices::make_device(config_.device, build);
    io::apply_solver_settings(device_, config_.solver);
    pipeline_.emplace(
        devices::make_default_pipeline(device_, config_.device, config_.pipeline));
    provider_.emplace(device_);
    if (checkpoint != nullptr) {
      invdes::StepperState state = stepper_state_from_json(*checkpoint);
      last_.iteration = state.step - 1;
      last_.fom = state.fom;
      if (const io::JsonValue* ts = checkpoint->find("transmissions")) {
        last_.transmissions = from_json_array(*ts);
      }
      stepper_.emplace(*pipeline_, config_.options, std::move(state));
    } else {
      stepper_.emplace(*pipeline_, config_.options,
                       invdes::make_initial_theta(
                           device_, init_kind_from_name(config_.init), config_.seed));
    }
  }

  int step_index() const override { return stepper_->state().step; }
  double objective() const override { return stepper_->state().fom; }
  int factorizations() const override {
    return stepper_->state().total_factorizations;
  }
  int solves() const override { return stepper_->state().total_solves; }
  bool finished() const override { return stepper_->done(); }

  bool step() override {
    last_ = stepper_->step(*provider_);
    return stepper_->done();
  }

  io::JsonValue checkpoint() const override {
    io::JsonValue v = stepper_state_to_json(stepper_->state());
    v["transmissions"] = to_json_array(last_.transmissions);
    return v;
  }

  io::JsonValue history_entry() const override {
    io::JsonValue v;
    v["iteration"] = last_.iteration;
    v["fom"] = last_.fom;
    v["beta"] = last_.beta;
    return v;
  }

  io::JsonValue result() override {
    const invdes::InvDesResult res = stepper_->finalize();
    io::JsonValue v;
    v["task"] = "invdes";
    v["device"] = devices::device_name(config_.device);
    v["fom"] = res.fom;
    v["iterations"] = stepper_->state().step;
    v["factorizations"] = res.total_factorizations;
    v["solves"] = res.total_solves;
    v["final_transmissions"] = to_json_array(last_.transmissions);
    v["theta"] = to_json_array(res.theta);
    return v;
  }

 private:
  io::InvDesConfig config_;
  devices::DeviceProblem device_;
  std::optional<param::DesignPipeline> pipeline_;
  std::optional<invdes::NumericalProvider> provider_;
  std::optional<invdes::InvDesStepper> stepper_;
  invdes::IterationRecord last_;
};

/// Batched evaluation of one fixed design: a lithography robustness corner
/// or one wavelength of an S-parameter sweep per step. The checkpoint is
/// the completed item count plus the accumulated per-item results, so a
/// resumed sweep skips everything already solved.
class SweepJobEngine final : public JobEngine {
 public:
  SweepJobEngine(io::SweepJobConfig config, const io::JsonValue* checkpoint)
      : config_(std::move(config)) {
    devices::BuildOptions build;
    build.fidelity = config_.fidelity;
    device_ = devices::make_device(config_.device, build);
    io::apply_solver_settings(device_, config_.solver);
    pipeline_.emplace(devices::make_default_pipeline(device_, config_.device));
    if (config_.theta.empty()) {
      theta_ = invdes::make_initial_theta(
          device_, init_kind_from_name(config_.init), config_.seed);
    } else {
      maps::require(
          static_cast<int>(config_.theta.size()) == pipeline_->num_params(),
          "sweep: theta has " + std::to_string(config_.theta.size()) +
              " values, the design region expects " +
              std::to_string(pipeline_->num_params()));
      theta_ = config_.theta;
    }
    total_ = config_.sweep == "corners"
                 ? static_cast<int>(param::LithoModel::corners().size())
                 : static_cast<int>(config_.wavelengths.size());
    if (checkpoint != nullptr) {
      next_ = static_cast<int>(checkpoint->at("item").as_int());
      results_ = checkpoint->at("results").as_array();
      maps::require(next_ == static_cast<int>(results_.size()) && next_ <= total_,
                    "sweep: corrupt resume checkpoint");
      objective_ = checkpoint->at("objective").as_number();
      factorizations_ = static_cast<int>(checkpoint->at("factorizations").as_int());
      solves_ = static_cast<int>(checkpoint->at("solves").as_int());
    }
  }

  int step_index() const override { return next_; }
  double objective() const override { return objective_; }
  int factorizations() const override { return factorizations_; }
  int solves() const override { return solves_; }
  bool finished() const override { return next_ >= total_; }

  bool step() override {
    if (config_.sweep == "corners") {
      run_corner();
    } else {
      run_wavelength();
    }
    ++next_;
    return finished();
  }

  io::JsonValue checkpoint() const override {
    io::JsonValue v;
    v["item"] = next_;
    v["results"] = io::JsonValue(results_);
    v["objective"] = objective_;
    v["factorizations"] = factorizations_;
    v["solves"] = solves_;
    return v;
  }

  io::JsonValue history_entry() const override { return io::JsonValue(); }

  io::JsonValue result() override {
    io::JsonValue v;
    v["task"] = "sweep";
    v["sweep"] = config_.sweep;
    v["device"] = devices::device_name(config_.device);
    v["items"] = io::JsonValue(results_);
    return v;
  }

 private:
  void run_corner() {
    // The litho-corner pipeline of robust inverse design (core/invdes/
    // robust.cpp): blur -> (symmetry) -> defocus/dose pattern transfer.
    const param::LithoCorner corner = param::LithoModel::corners()[
        static_cast<std::size_t>(next_)];
    auto direct = std::make_unique<param::DirectDensity>(
        device_.design_map.box.ni, device_.design_map.box.nj);
    param::DesignPipeline pipe(std::move(direct), device_.design_map);
    pipe.add_transform(std::make_unique<param::BlurFilter>(1.5));
    param::SymmetryKind sym;
    if (devices::device_symmetry(config_.device, &sym)) {
      pipe.add_transform(std::make_unique<param::Symmetrize>(sym));
    }
    pipe.add_transform(
        std::make_unique<param::LithoModel>(param::LithoSpec{}, corner));
    const devices::DeviceEval eval = device_.evaluate(pipe.eps_of(theta_));

    io::JsonValue item;
    item["corner"] = param::LithoModel::corner_name(corner);
    item["fom"] = eval.fom;
    io::JsonArray ts;
    for (const auto& exc : eval.per_excitation) {
      for (const double t : exc.transmissions) ts.push_back(t);
    }
    item["transmissions"] = io::JsonValue(std::move(ts));
    objective_ = eval.fom;
    factorizations_ += eval.factorizations;
    solves_ += eval.solves;
    results_.push_back(std::move(item));
  }

  void run_wavelength() {
    // Fresh device at this wavelength (sources and normalization are
    // frequency-dependent), same theta.
    const double lambda = config_.wavelengths[static_cast<std::size_t>(next_)];
    devices::BuildOptions build;
    build.fidelity = config_.fidelity;
    build.lambda = lambda;
    devices::DeviceProblem dev = devices::make_device(config_.device, build);
    io::apply_solver_settings(dev, config_.solver);
    param::DesignPipeline pipe =
        devices::make_default_pipeline(dev, config_.device);
    const devices::SParamMatrix sp = devices::compute_sparams(dev, pipe.eps_of(theta_));

    io::JsonValue item;
    item["wavelength"] = lambda;
    item["contrast"] = sp.contrast();
    io::JsonArray entries;
    for (const auto& e : sp.entries) {
      io::JsonValue ent;
      ent["excitation"] = e.excitation;
      ent["monitor"] = e.monitor;
      ent["re"] = e.s.real();
      ent["im"] = e.s.imag();
      ent["power"] = e.power;
      ent["goal"] = e.goal == fdfd::Goal::Maximize ? "maximize" : "minimize";
      entries.push_back(std::move(ent));
    }
    item["entries"] = io::JsonValue(std::move(entries));
    objective_ = sp.contrast();
    // compute_sparams runs one un-cached Simulation per excitation.
    factorizations_ += static_cast<int>(dev.excitations.size());
    solves_ += static_cast<int>(dev.excitations.size());
    results_.push_back(std::move(item));
  }

  io::SweepJobConfig config_;
  devices::DeviceProblem device_;
  std::optional<param::DesignPipeline> pipeline_;
  std::vector<double> theta_;
  int total_ = 0;
  int next_ = 0;
  double objective_ = 0.0;
  int factorizations_ = 0;
  int solves_ = 0;
  io::JsonArray results_;
};

struct SpecInfo {
  std::string type;
  int total_steps = 0;
};

/// Submit-time validation: parse the config (cheap — no device build) so a
/// malformed spec answers 400 at submit instead of failing the job later.
SpecInfo inspect_spec(const io::JsonValue& spec) {
  const io::JsonValue* t = spec.find("type");
  if (t == nullptr || !t->is_string()) {
    throw MapsError("jobs: spec needs a string \"type\" (invdes | sweep)");
  }
  io::JsonValue body = spec;
  body.as_object().erase("type");
  SpecInfo info;
  info.type = t->as_string();
  if (info.type == "invdes") {
    for (const char* k : {"density_out", "history_out", "report"}) {
      if (body.has(k)) {
        throw MapsError(std::string("jobs: invdes job rejects \"") + k +
                        "\" — fetch the result from /v1/jobs/{id}/result instead");
      }
    }
    info.total_steps = io::InvDesConfig::from_json(body).options.iterations;
  } else if (info.type == "sweep") {
    const io::SweepJobConfig cfg = io::SweepJobConfig::from_json(body);
    info.total_steps = cfg.sweep == "corners"
                           ? static_cast<int>(param::LithoModel::corners().size())
                           : static_cast<int>(cfg.wavelengths.size());
  } else {
    throw MapsError("jobs: unknown job type '" + info.type +
                    "' (expected invdes | sweep)");
  }
  return info;
}

std::unique_ptr<JobEngine> make_engine(const std::string& type,
                                       const io::JsonValue& spec,
                                       const io::JsonValue* checkpoint) {
  io::JsonValue body = spec;
  body.as_object().erase("type");
  if (type == "invdes") {
    return std::make_unique<InvdesJobEngine>(io::InvDesConfig::from_json(body),
                                             checkpoint);
  }
  return std::make_unique<SweepJobEngine>(io::SweepJobConfig::from_json(body),
                                          checkpoint);
}

JobState job_state_from_name(const std::string& name) {
  if (name == "queued") return JobState::Queued;
  if (name == "running") return JobState::Running;
  if (name == "cancelling") return JobState::Cancelling;
  if (name == "done") return JobState::Done;
  if (name == "failed") return JobState::Failed;
  if (name == "cancelled") return JobState::Cancelled;
  throw MapsError("jobs: unknown state '" + name + "'");
}

/// States as persisted: a crash while Running resumes as Queued (the
/// journaled checkpoint re-queues), one while Cancelling honors the cancel.
JobState persisted_state(JobState state) {
  if (state == JobState::Running) return JobState::Queued;
  if (state == JobState::Cancelling) return JobState::Cancelled;
  return state;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Cancelling: return "cancelling";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

struct JobManager::Job {
  std::string id;
  std::uint64_t seq = 0;
  std::string type;
  io::JsonValue spec;
  JobState state = JobState::Queued;
  bool cancel_requested = false;
  bool resumed = false;
  int step = 0;
  int total_steps = 0;
  double objective = 0.0;
  int factorizations = 0;
  int solves = 0;
  io::JsonValue checkpoint;   // null until the first step commits
  io::JsonArray history;
  io::JsonValue result_doc;   // null until Done
  std::string error;
  /// Built lazily on a worker; only the job's single in-flight step task
  /// touches it (steps are chained, never concurrent per job).
  std::unique_ptr<JobEngine> engine;
};

JobManager::JobManager(runtime::TaskQueue& queue, JobsOptions options,
                       std::ostream* log)
    : queue_(queue), options_(std::move(options)), log_(log) {
  if (!options_.journal_dir.empty()) {
    if (::mkdir(options_.journal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      throw MapsError("jobs: cannot create journal dir " + options_.journal_dir);
    }
  }
}

JobManager::~JobManager() {
  drain();
  // Parked / finished jobs retire their step tasks quickly; an FDFD step in
  // flight finishes first. The TaskQueue outlives us (callers own it), so
  // waiting here is what keeps step lambdas from outliving the manager.
  while (inflight_.load() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::string JobManager::manifest_path(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".json";
}

std::string JobManager::journal_path(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".journal";
}

void JobManager::warn(const std::string& message) {
  obs::log_to(log_, obs::LogLevel::Warn, "jobs", "warning: " + message);
}

io::JsonValue JobManager::manifest_json_locked(const Job& job) const {
  io::JsonValue v;
  v["id"] = job.id;
  v["seq"] = static_cast<double>(job.seq);
  v["type"] = job.type;
  v["state"] = job_state_name(persisted_state(job.state));
  v["spec"] = job.spec;
  v["step"] = job.step;
  v["total_steps"] = job.total_steps;
  v["objective"] = job.objective;
  v["factorizations"] = job.factorizations;
  v["solves"] = job.solves;
  v["checkpoint"] = job.checkpoint;
  v["history"] = io::JsonValue(job.history);
  v["result"] = job.result_doc;
  if (!job.error.empty()) v["error"] = job.error;
  return v;
}

io::JsonValue JobManager::status_locked(const Job& job) const {
  io::JsonValue v;
  v["id"] = job.id;
  v["type"] = job.type;
  v["state"] = job_state_name(job.state);
  v["step"] = job.step;
  v["total_steps"] = job.total_steps;
  v["objective"] = job.objective;
  v["factorizations"] = job.factorizations;
  v["solves"] = job.solves;
  if (job.resumed) v["resumed"] = true;
  if (!job.error.empty()) v["error"] = job.error;
  return v;
}

void JobManager::save_manifest(const std::string& id, const io::JsonValue& doc) {
  if (options_.journal_dir.empty()) return;
  const std::string path = manifest_path(id);
  const std::string tmp = path + ".tmp";
  for (int attempt = 1;; ++attempt) {
    try {
      if (runtime::fault::point("jobs.journal")) {
        throw MapsError("jobs: injected manifest I/O failure");
      }
      io::json_save(doc, tmp);
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw MapsError("jobs: rename to " + path + " failed");
      }
      return;
    } catch (const MapsError& e) {
      if (attempt >= kIoAttempts) {
        warn(std::string("manifest save failed: ") + e.what());
        return;
      }
      journal_retries_.fetch_add(1);
      io_retry_backoff(attempt);
    }
  }
}

void JobManager::append_journal(const std::string& id, const io::JsonValue& line) {
  if (options_.journal_dir.empty()) return;
  const std::string path = journal_path(id);
  const std::string text = line.dump() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    warn("cannot open journal " + path);
    return;
  }
  // Crash contract: last fully flushed line wins. Retries truncate back to
  // the committed size first so a torn partial write never glues onto the
  // retried line (the ShardJournal::append posture).
  const long committed = std::ftell(f);
  for (int attempt = 1;; ++attempt) {
    try {
      if (runtime::fault::point("jobs.journal")) {
        throw MapsError("jobs: injected journal I/O failure");
      }
      const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
      maps::require(wrote == text.size() && std::fflush(f) == 0,
                    "jobs: journal write to " + path + " failed");
      break;
    } catch (const MapsError& e) {
      std::clearerr(f);
      const bool restored =
          committed >= 0 &&
          ::ftruncate(::fileno(f), static_cast<off_t>(committed)) == 0 &&
          std::fseek(f, committed, SEEK_SET) == 0;
      if (attempt >= kIoAttempts || !restored) {
        warn(std::string("journal append failed: ") + e.what());
        break;
      }
      journal_retries_.fetch_add(1);
      io_retry_backoff(attempt);
    }
  }
  std::fclose(f);
}

void JobManager::compact(const std::string& id, const io::JsonValue& manifest_doc) {
  if (options_.journal_dir.empty()) return;
  // Manifest first (atomic rename makes it the full record), journal
  // truncation second; a crash in between is healed by the resume-side
  // dedup on step numbers.
  save_manifest(id, manifest_doc);
  std::FILE* f = std::fopen(journal_path(id).c_str(), "wb");
  if (f != nullptr) std::fclose(f);
}

std::string JobManager::submit(const io::JsonValue& spec) {
  const SpecInfo info = inspect_spec(spec);
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) {
    shed_.fetch_add(1);
    throw OverloadedError("jobs: server is draining", 1000.0);
  }
  // max_queued bounds jobs waiting *beyond* the running slots: a submit that
  // would start immediately is always admitted.
  const bool starts_now = running_ < options_.max_running;
  if (!starts_now &&
      static_cast<int>(pending_.size()) >= options_.max_queued) {
    shed_.fetch_add(1);
    throw OverloadedError(
        "jobs: queue full (" + std::to_string(pending_.size()) + " queued)",
        1000.0);
  }
  auto job = std::make_shared<Job>();
  job->seq = seq_++;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "job-%06llu",
                static_cast<unsigned long long>(job->seq));
  job->id = buf;
  job->type = info.type;
  job->spec = spec;
  job->total_steps = info.total_steps;
  jobs_[job->id] = job;
  pending_.push_back(job);
  submitted_.fetch_add(1);
  save_manifest(job->id, manifest_json_locked(*job));
  schedule_locked();
  return job->id;
}

io::JsonValue JobManager::status(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobNotFound("jobs: no such job '" + id + "'");
  return status_locked(*it->second);
}

io::JsonValue JobManager::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  io::JsonArray all;
  for (const auto& [id, job] : jobs_) all.push_back(status_locked(*job));
  io::JsonValue v;
  v["jobs"] = io::JsonValue(std::move(all));
  return v;
}

io::JsonValue JobManager::result(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobNotFound("jobs: no such job '" + id + "'");
  const Job& job = *it->second;
  io::JsonValue v;
  v["id"] = job.id;
  v["state"] = job_state_name(job.state);
  switch (job.state) {
    case JobState::Done:
      v["ok"] = true;
      v["result"] = job.result_doc;
      return v;
    case JobState::Failed: {
      io::JsonValue err;
      err["code"] = "job_failed";
      err["message"] = job.error;
      v["ok"] = false;
      v["error"] = std::move(err);
      return v;
    }
    case JobState::Cancelled: {
      io::JsonValue err;
      err["code"] = "job_cancelled";
      err["message"] = "job was cancelled";
      v["ok"] = false;
      v["error"] = std::move(err);
      return v;
    }
    default:
      throw JobNotReady("jobs: job '" + id + "' is " +
                        job_state_name(job.state) +
                        " — poll its status until it reaches a terminal state");
  }
}

io::JsonValue JobManager::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobNotFound("jobs: no such job '" + id + "'");
  Job& job = *it->second;
  switch (job.state) {
    case JobState::Queued: {
      for (auto p = pending_.begin(); p != pending_.end(); ++p) {
        if ((*p)->id == id) {
          pending_.erase(p);
          break;
        }
      }
      job.state = JobState::Cancelled;
      job.cancel_requested = true;
      cancelled_.fetch_add(1);
      compact(job.id, manifest_json_locked(job));
      break;
    }
    case JobState::Running:
      // Cooperative: the step task observes the flag at the next boundary.
      job.cancel_requested = true;
      job.state = JobState::Cancelling;
      break;
    case JobState::Cancelling:
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      break;  // idempotent
  }
  return status_locked(job);
}

void JobManager::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
}

JobsStatsSnapshot JobManager::stats() const {
  JobsStatsSnapshot s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.failed = failed_.load();
  s.cancelled = cancelled_.load();
  s.resumed = resumed_.load();
  s.shed = shed_.load();
  s.steps = steps_.load();
  s.journal_retries = journal_retries_.load();
  std::lock_guard<std::mutex> lk(mu_);
  s.running = running_;
  s.queued = static_cast<int>(pending_.size());
  return s;
}

void JobManager::schedule_locked() {
  while (!draining_ && running_ < options_.max_running && !pending_.empty()) {
    std::shared_ptr<Job> job = pending_.front();
    pending_.pop_front();
    job->state = JobState::Running;
    ++running_;
    post_step_locked(job);
  }
}

void JobManager::post_step_locked(const std::shared_ptr<Job>& job) {
  inflight_.fetch_add(1);
  queue_.submit([this, job]() -> int {
    run_step(job);  // handles its own failures; must not throw
    inflight_.fetch_sub(1);
    return 0;
  });
}

void JobManager::finish_locked(const std::shared_ptr<Job>& job, JobState state,
                               const std::string& error,
                               io::JsonValue result_doc) {
  job->state = state;
  job->error = error;
  job->result_doc = std::move(result_doc);
  job->engine.reset();
  --running_;
  if (state == JobState::Done) completed_.fetch_add(1);
  if (state == JobState::Failed) failed_.fetch_add(1);
  if (state == JobState::Cancelled) cancelled_.fetch_add(1);
  compact(job->id, manifest_json_locked(*job));
  schedule_locked();
}

void JobManager::park_locked(const std::shared_ptr<Job>& job) {
  job->state = JobState::Queued;
  job->engine.reset();
  --running_;
  pending_.push_front(job);
  compact(job->id, manifest_json_locked(*job));
}

void JobManager::run_step(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job->cancel_requested) {
      finish_locked(job, JobState::Cancelled, "", io::JsonValue());
      return;
    }
    if (draining_) {
      park_locked(job);
      return;
    }
  }

  if (!job->engine) {
    try {
      job->engine = make_engine(
          job->type, job->spec,
          job->checkpoint.is_object() ? &job->checkpoint : nullptr);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(mu_);
      finish_locked(job, JobState::Failed, e.what(), io::JsonValue());
      return;
    }
  }

  // finished() right after construction covers a crash that landed between
  // the last journaled step and the result: resume skips straight to it.
  bool done = job->engine->finished();
  if (!done) {
    static obs::Histogram& step_hist =
        obs::registry().histogram("jobs.step_ms");
    try {
      obs::ScopedSpan span("jobs.step", obs::current_trace(), &step_hist);
      if (runtime::fault::point("jobs.step")) {
        throw MapsError("jobs: injected step failure");
      }
      done = job->engine->step();
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(mu_);
      finish_locked(job, JobState::Failed, e.what(), io::JsonValue());
      return;
    }
    steps_.fetch_add(1);

    std::lock_guard<std::mutex> lk(mu_);
    job->step = job->engine->step_index();
    job->objective = job->engine->objective();
    job->factorizations = job->engine->factorizations();
    job->solves = job->engine->solves();
    job->checkpoint = job->engine->checkpoint();
    const io::JsonValue h = job->engine->history_entry();
    if (!h.is_null()) job->history.push_back(h);
    io::JsonValue line;
    line["step"] = job->step;
    line["objective"] = job->objective;
    line["factorizations"] = job->factorizations;
    line["solves"] = job->solves;
    line["checkpoint"] = job->checkpoint;
    line["history"] = h;
    append_journal(job->id, line);
    if (!done) {
      if (job->cancel_requested) {
        finish_locked(job, JobState::Cancelled, "", io::JsonValue());
      } else if (draining_) {
        park_locked(job);
      } else {
        post_step_locked(job);
      }
      return;
    }
  }

  io::JsonValue result;
  try {
    result = job->engine->result();
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    finish_locked(job, JobState::Failed, e.what(), io::JsonValue());
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  finish_locked(job, JobState::Done, "", std::move(result));
}

int JobManager::resume_journaled() {
  if (options_.journal_dir.empty()) return 0;
  DIR* dir = ::opendir(options_.journal_dir.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> ids;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.rfind("job-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      ids.push_back(name.substr(0, name.size() - 5));
    }
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());  // id order == submission order

  int requeued = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::string& id : ids) {
    auto job = std::make_shared<Job>();
    try {
      const io::JsonValue m = io::json_load(manifest_path(id));
      job->id = m.at("id").as_string();
      job->seq = static_cast<std::uint64_t>(m.at("seq").as_int());
      job->type = m.at("type").as_string();
      job->spec = m.at("spec");
      job->state = job_state_from_name(m.at("state").as_string());
      job->step = static_cast<int>(m.at("step").as_int());
      job->total_steps = static_cast<int>(m.at("total_steps").as_int());
      job->objective = m.at("objective").as_number();
      job->factorizations = static_cast<int>(m.at("factorizations").as_int());
      job->solves = static_cast<int>(m.at("solves").as_int());
      job->checkpoint = m.at("checkpoint");
      job->history = m.at("history").as_array();
      job->result_doc = m.at("result");
      if (const io::JsonValue* err = m.find("error")) job->error = err->as_string();
    } catch (const std::exception& e) {
      warn("skipping unreadable manifest for " + id + ": " + e.what());
      continue;
    }
    if (job->id != id || jobs_.count(job->id) > 0) {
      warn("skipping inconsistent manifest for " + id);
      continue;
    }

    // Adopt journal lines newer than the manifest. A torn trailing line
    // (kill mid-append) is uncommitted: stop there — the last fully
    // flushed step wins.
    std::ifstream is(journal_path(id), std::ios::binary);
    std::string text;
    while (is.good() && std::getline(is, text)) {
      if (text.empty()) continue;
      try {
        const io::JsonValue line = io::json_parse(text);
        const int step = static_cast<int>(line.at("step").as_int());
        if (step <= job->step) continue;  // already compacted into the manifest
        job->step = step;
        job->objective = line.at("objective").as_number();
        job->factorizations = static_cast<int>(line.at("factorizations").as_int());
        job->solves = static_cast<int>(line.at("solves").as_int());
        job->checkpoint = line.at("checkpoint");
        const io::JsonValue& h = line.at("history");
        if (!h.is_null()) job->history.push_back(h);
      } catch (const std::exception&) {
        break;
      }
    }

    job->state = persisted_state(job->state);
    seq_ = std::max(seq_, job->seq + 1);
    jobs_[job->id] = job;
    if (job->state == JobState::Queued) {
      job->resumed = true;
      resumed_.fetch_add(1);
      pending_.push_back(job);
      ++requeued;
    }
    // Fold what the journal added back into the manifest so the next
    // restart (or a crash right now) starts from a clean compact point.
    compact(job->id, manifest_json_locked(*job));
  }
  schedule_locked();
  return requeued;
}

}  // namespace maps::serve
