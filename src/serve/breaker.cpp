#include "serve/breaker.hpp"

#include <algorithm>

#include "runtime/deadline.hpp"

namespace maps::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options), backoff_ms_(options.backoff_ms) {}

bool CircuitBreaker::allow() {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard lk(mu_);
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open: {
      const double now = runtime::now_steady_ms();
      if (now - opened_at_ms_ < backoff_ms_) {
        ++stats_.rejected;
        return false;
      }
      state_ = BreakerState::HalfOpen;
      probes_outstanding_ = 1;
      return true;
    }
    case BreakerState::HalfOpen:
      if (probes_outstanding_ < std::max(1, options_.half_open_probes)) {
        ++probes_outstanding_;
        return true;
      }
      ++stats_.rejected;
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lk(mu_);
  ++stats_.successes;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::HalfOpen) {
    // Recovery confirmed: close and reset the backoff schedule.
    state_ = BreakerState::Closed;
    probes_outstanding_ = 0;
    backoff_ms_ = options_.backoff_ms;
  }
}

void CircuitBreaker::record_failure() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lk(mu_);
  ++stats_.failures;
  const double now = runtime::now_steady_ms();
  switch (state_) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        open_locked(now);
      }
      break;
    case BreakerState::HalfOpen:
      // The probe failed: back off harder before the next one.
      backoff_ms_ = std::min(backoff_ms_ * options_.backoff_multiplier,
                             options_.backoff_max_ms);
      open_locked(now);
      break;
    case BreakerState::Open:
      // Late failure from an attempt admitted before the trip; stays open.
      break;
  }
}

void CircuitBreaker::cancel() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard lk(mu_);
  if (state_ == BreakerState::HalfOpen && probes_outstanding_ > 0) {
    --probes_outstanding_;
  }
}

void CircuitBreaker::open_locked(double now) {
  state_ = BreakerState::Open;
  opened_at_ms_ = now;
  probes_outstanding_ = 0;
  consecutive_failures_ = 0;
  ++stats_.open_total;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lk(mu_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard lk(mu_);
  BreakerStats s = stats_;
  s.state = state_;
  s.current_backoff_ms = backoff_ms_;
  return s;
}

}  // namespace maps::serve
