// ResultCache: sharded LRU over finished predictions.
//
// Serving traffic is repetitive — wavelength sweeps re-query the same
// pattern, design loops revisit candidate structures, dashboards re-fetch —
// so a finished prediction is worth keeping. Entries are keyed on the full
// query identity: a digest of the pattern (eps bytes + source bytes + grid
// shape + pml), the frequency, the requested fidelity, and the model version
// that answered (solver answers use version 0: exact results survive model
// hot-swaps). The key space is split across independently locked shards so
// concurrent lookups from many worker threads don't serialize on one mutex;
// each shard runs its own LRU list with a per-shard slice of the capacity.
#pragma once

#include <bit>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "math/field2d.hpp"

namespace maps::serve {

struct QueryKey {
  std::uint64_t pattern_digest = 0;  // eps + source + geometry
  double omega = 0.0;
  int fidelity = 0;       // solver::FidelityLevel as int
  int model_version = 0;  // 0 for solver-grade entries

  /// Equality compares omega's bit pattern, matching QueryKeyHash, so keys
  /// that differ only as +0.0 vs -0.0 (equal as doubles, distinct bits)
  /// cannot land in one shard's map while hashing to another.
  bool operator==(const QueryKey& o) const {
    return pattern_digest == o.pattern_digest &&
           std::bit_cast<std::uint64_t>(omega) ==
               std::bit_cast<std::uint64_t>(o.omega) &&
           fidelity == o.fidelity && model_version == o.model_version;
  }
};

struct QueryKeyHash {
  std::size_t operator()(const QueryKey& k) const;
};

/// What the cache stores: the answer plus how it was produced, so a cache
/// hit can report the original source ("surrogate" vs "solver").
struct CachedResult {
  maps::math::CplxGrid Ez;
  bool solver_grade = false;  // produced by (or escalated to) the solver path
};

struct ResultCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ResultCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRU shards
  /// (each gets at least one slot). capacity == 0 disables the cache:
  /// lookups miss without counting and insertions drop.
  explicit ResultCache(std::size_t capacity = 1024, std::size_t shards = 8);

  /// nullptr on miss; refreshes LRU position on hit.
  std::shared_ptr<const CachedResult> get(const QueryKey& key);

  /// Insert (or refresh) an entry, evicting the shard's LRU tail past the
  /// per-shard capacity.
  void put(const QueryKey& key, std::shared_ptr<const CachedResult> value);

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  bool enabled() const { return capacity_ > 0; }
  ResultCacheStats stats() const;
  /// One ResultCacheStats per shard, in shard order (the metrics scrape
  /// reports per-shard hit ratios so key skew across shards is visible).
  std::vector<ResultCacheStats> shard_stats() const;
  void clear();

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<QueryKey, std::shared_ptr<const CachedResult>>> lru;
    std::unordered_map<QueryKey, decltype(lru)::iterator, QueryKeyHash> index;
    std::size_t capacity = 0;
    std::size_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shard_for(const QueryKey& key);

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace maps::serve
