#include "serve/result_cache.hpp"

#include <cstring>

namespace maps::serve {

std::size_t QueryKeyHash::operator()(const QueryKey& k) const {
  // FNV-1a over the key fields; omega enters via its bit pattern.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(k.pattern_digest);
  std::uint64_t omega_bits = 0;
  static_assert(sizeof(k.omega) == sizeof(omega_bits));
  std::memcpy(&omega_bits, &k.omega, sizeof(omega_bits));
  mix(omega_bits);
  mix(static_cast<std::uint64_t>(k.fidelity));
  mix(static_cast<std::uint64_t>(k.model_version));
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  const std::size_t n = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(1, capacity)));
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    // Spread the capacity; earlier shards absorb the remainder.
    shard->capacity = capacity / n + (s < capacity % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

ResultCache::Shard& ResultCache::shard_for(const QueryKey& key) {
  return *shards_[QueryKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const CachedResult> ResultCache::get(const QueryKey& key) {
  if (!enabled()) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard lk(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  ++s.hits;
  return it->second->second;
}

void ResultCache::put(const QueryKey& key, std::shared_ptr<const CachedResult> value) {
  if (!enabled()) return;
  Shard& s = shard_for(key);
  std::lock_guard lk(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  while (s.lru.size() > s.capacity) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

std::vector<ResultCacheStats> ResultCache::shard_stats() const {
  std::vector<ResultCacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    ResultCacheStats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.evictions = shard->evictions;
    s.entries = shard->lru.size();
    out.push_back(s);
  }
  return out;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace maps::serve
