// MicroBatcher: dynamic request coalescing for surrogate inference.
//
// Serving traffic arrives one request at a time, but the NN substrate is at
// its best on batches (one stacked GEMM/FFT forward, one dispatch). The
// batcher queues encoded single-sample inputs and flushes a batch when
// either trigger fires:
//
//   max_batch   the queue holds a full batch — flush immediately;
//   max_delay   the oldest queued request has waited its deadline out —
//               flush whatever is there (bounds added latency at light load).
//
// A flush stacks the inputs into one (N, C, H, W) tensor and submits a
// single job to the TaskQueue, where a worker runs one const infer() per
// consecutive same-model run of jobs (jobs pin the model snapshot they were
// encoded for, so a registry hot-swap splits a batch at the swap point
// instead of silently retargeting queued inputs) and completes every
// request's callback with its output row. Multiple flushed batches run
// concurrently on different workers — Module::infer is const, so they share
// one model with no lock. max_batch = 1 degenerates to per-request dispatch
// (the "unbatched" serving mode the benchmarks compare against).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "nn/infer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/task_queue.hpp"
#include "serve/registry.hpp"

namespace maps::serve {

/// One queued request: the encoded input row, the model bundle the caller
/// encoded it for (inputs are standardizer-specific, so a job must run on
/// the exact model snapshot taken at submit time — a hot-swap mid-queue
/// must not retarget it), and the completion callback. Exactly one of
/// (output, error) is delivered, from a TaskQueue worker.
struct BatchJob {
  nn::Tensor input;  // (1, C, H, W)
  std::shared_ptr<const ServedModel> model;
  std::function<void(nn::Tensor output, std::exception_ptr error)> done;
  /// Request trace (null = untraced): the batcher records the queue-wait
  /// span and the (shared, per-run) surrogate forward span into it.
  obs::TracePtr trace;
  /// Steady-clock submit time, stamped by MicroBatcher::submit when
  /// instrumentation is live (0 otherwise).
  double enqueued_ms = 0.0;
};

struct BatcherOptions {
  int max_batch = 32;
  double max_delay_ms = 2.0;
  /// Queue running the batched forwards; nullptr = runtime::TaskQueue::shared().
  runtime::TaskQueue* queue = nullptr;
};

struct BatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t full_flushes = 0;      // triggered by max_batch
  std::uint64_t deadline_flushes = 0;  // triggered by max_delay
  std::uint64_t max_batch_seen = 0;

  double avg_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) / static_cast<double>(batches);
  }
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherOptions options = {});
  /// Drains the queue (pending jobs still run) and waits for in-flight
  /// batches to complete their callbacks.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  void submit(BatchJob job);

  BatcherStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    BatchJob job;
    Clock::time_point enqueued;
  };

  void flusher_loop();
  void dispatch(std::vector<BatchJob> batch);
  void run_batch(std::vector<BatchJob>& batch) const;

  BatcherOptions options_;
  runtime::TaskQueue* queue_;
  obs::Histogram* hist_queue_ms_ = nullptr;
  obs::Histogram* hist_forward_ms_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the flusher
  std::condition_variable cv_idle_;  // wakes the destructor drain
  std::deque<Pending> pending_;
  std::size_t in_flight_ = 0;  // dispatched batches not yet completed
  bool stop_ = false;
  BatcherStats stats_;
  std::thread flusher_;
};

}  // namespace maps::serve
