#include "serve/wire.hpp"

#include <cmath>
#include <sstream>

#include "fdfd/source.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault.hpp"

namespace maps::serve {

using io::JsonArray;
using io::JsonValue;

double WireDefaults::default_omega() const {
  return omega > 0.0 ? omega : omega_of_wavelength(wavelength);
}

namespace {

maps::math::RealGrid parse_eps(const JsonValue& doc, index_t nx, index_t ny) {
  const JsonArray& arr = doc.at("eps").as_array();
  require(static_cast<index_t>(arr.size()) == nx * ny,
          "serve request: eps must have nx*ny entries");
  maps::math::RealGrid eps(nx, ny);
  for (std::size_t n = 0; n < arr.size(); ++n) {
    eps[static_cast<index_t>(n)] = arr[n].as_number();
  }
  return eps;
}

maps::math::CplxGrid parse_source(const JsonValue* src, const grid::GridSpec& spec) {
  if (src == nullptr) {
    return fdfd::point_source(spec, spec.nx / 4, spec.ny / 2);
  }
  if (src->has("type")) {
    const std::string& type = src->at("type").as_string();
    require(type == "point", "serve request: source type must be 'point'");
    const index_t i = static_cast<index_t>(src->at("i").as_int());
    const index_t j = static_cast<index_t>(src->at("j").as_int());
    require(i >= 0 && i < spec.nx && j >= 0 && j < spec.ny,
            "serve request: point source outside the grid");
    return fdfd::point_source(spec, i, j);
  }
  const JsonArray& re = src->at("re").as_array();
  const JsonArray& im = src->at("im").as_array();
  require(static_cast<index_t>(re.size()) == spec.cells() && re.size() == im.size(),
          "serve request: source re/im must have nx*ny entries");
  maps::math::CplxGrid J(spec.nx, spec.ny);
  for (std::size_t n = 0; n < re.size(); ++n) {
    J[static_cast<index_t>(n)] = cplx{re[n].as_number(), im[n].as_number()};
  }
  return J;
}

}  // namespace

WireRequest parse_request(const JsonValue& doc, const WireDefaults& defaults) {
  require(doc.is_object(), "serve request: expected a JSON object");
  WireRequest out;
  if (const JsonValue* id = doc.find("id")) out.id = *id;

  const index_t nx = static_cast<index_t>(doc.at("nx").as_int());
  const index_t ny = static_cast<index_t>(doc.at("ny").as_int());
  require(nx > 0 && ny > 0, "serve request: nx and ny must be positive");
  ServeRequest& req = out.request;
  req.spec = grid::GridSpec{nx, ny,
                            doc.has("dl") ? doc.at("dl").as_number() : defaults.dl};
  require(req.spec.dl > 0.0, "serve request: dl must be positive");
  req.eps = parse_eps(doc, nx, ny);
  req.J = parse_source(doc.find("source"), req.spec);
  req.pml = defaults.pml;

  if (doc.has("omega")) {
    req.omega = doc.at("omega").as_number();
  } else if (doc.has("wavelength")) {
    req.omega = omega_of_wavelength(doc.at("wavelength").as_number());
  } else {
    req.omega = defaults.default_omega();
  }
  require(req.omega > 0.0 && std::isfinite(req.omega),
          "serve request: omega/wavelength must be positive");

  req.fidelity = doc.has("fidelity")
                     ? solver::fidelity_from_name(doc.at("fidelity").as_string())
                     : defaults.fidelity;
  if (doc.has("deadline_ms")) {
    req.deadline_ms = doc.at("deadline_ms").as_number();
    require(req.deadline_ms > 0.0 && std::isfinite(req.deadline_ms),
            "serve request: deadline_ms must be positive");
  }
  out.return_field =
      doc.has("return_field") ? doc.at("return_field").as_bool() : true;
  return out;
}

JsonValue encode_response(const JsonValue& id, const ServeResponse& response,
                          bool return_field) {
  JsonValue v;
  v["id"] = id;
  v["ok"] = true;
  v["source"] = response_source_name(response.source);
  v["cache_hit"] = response.cache_hit;
  v["escalated"] = response.escalated;
  v["degraded"] = response.degraded;
  if (!response.model_id.empty()) {
    v["model"] = response.model_id;
    v["model_version"] = response.model_version;
  }
  v["latency_ms"] = response.latency_ms;
  v["nx"] = response.Ez.nx();
  v["ny"] = response.Ez.ny();
  double sumsq = 0.0;
  for (index_t n = 0; n < response.Ez.size(); ++n) sumsq += std::norm(response.Ez[n]);
  v["rms"] = response.Ez.size() == 0
                 ? 0.0
                 : std::sqrt(sumsq / static_cast<double>(response.Ez.size()));
  if (return_field) {
    JsonArray re, im;
    re.reserve(static_cast<std::size_t>(response.Ez.size()));
    im.reserve(static_cast<std::size_t>(response.Ez.size()));
    for (index_t n = 0; n < response.Ez.size(); ++n) {
      re.push_back(response.Ez[n].real());
      im.push_back(response.Ez[n].imag());
    }
    JsonValue field;
    field["re"] = JsonValue(std::move(re));
    field["im"] = JsonValue(std::move(im));
    v["field"] = field;
  }
  return v;
}

std::string encode_response_text(const JsonValue& id, const ServeResponse& response,
                                 bool return_field) {
  // Mirrors encode_response exactly: same fields, emitted in std::map key
  // order (the order dump() would use), so the bytes match dump(0).
  std::string out;
  out.reserve(return_field
                  ? static_cast<std::size_t>(response.Ez.size()) * 40 + 256
                  : 256);
  io::JsonWriter w(out);
  w.begin_object();
  w.key("cache_hit").value(response.cache_hit);
  w.key("degraded").value(response.degraded);
  w.key("escalated").value(response.escalated);
  if (return_field) {
    w.key("field").begin_object();
    w.key("im").begin_array();
    for (index_t n = 0; n < response.Ez.size(); ++n) w.value(response.Ez[n].imag());
    w.end_array();
    w.key("re").begin_array();
    for (index_t n = 0; n < response.Ez.size(); ++n) w.value(response.Ez[n].real());
    w.end_array();
    w.end_object();
  }
  w.key("id").value(id);
  w.key("latency_ms").value(response.latency_ms);
  if (!response.model_id.empty()) {
    w.key("model").value(response.model_id);
    w.key("model_version").value(response.model_version);
  }
  w.key("nx").value(response.Ez.nx());
  w.key("ny").value(response.Ez.ny());
  w.key("ok").value(true);
  double sumsq = 0.0;
  for (index_t n = 0; n < response.Ez.size(); ++n) sumsq += std::norm(response.Ez[n]);
  w.key("rms").value(response.Ez.size() == 0
                         ? 0.0
                         : std::sqrt(sumsq / static_cast<double>(response.Ez.size())));
  w.key("source").value(response_source_name(response.source));
  w.end_object();
  return out;
}

std::string encode_error_text(const JsonValue& id, const WireError& error) {
  // One encoder for every front end: error documents are small (no nx*ny
  // field payload), so the streaming path simply serializes the tree the
  // canonical encoder builds — bit-identity by construction, not by two
  // hand-assembled copies kept in sync.
  return encode_error(id, error).dump();
}

WireError classify_error(std::exception_ptr error) {
  WireError out;
  try {
    std::rethrow_exception(std::move(error));
  } catch (const OverloadedError& e) {
    out.code = "overloaded";
    out.message = e.what();
    out.retry_after_ms = e.retry_after_ms;
  } catch (const runtime::DeadlineExceeded& e) {
    out.code = "deadline_exceeded";
    out.message = e.what();
  } catch (const BreakerOpenError& e) {
    out.code = "breaker_open";
    out.message = e.what();
  } catch (const std::exception& e) {
    out.code = "internal";
    out.message = e.what();
  } catch (...) {
    out.code = "internal";
    out.message = "unknown error";
  }
  return out;
}

JsonValue encode_error(const JsonValue& id, const WireError& error) {
  JsonValue v;
  v["id"] = id;
  v["ok"] = false;
  JsonValue detail;
  detail["code"] = error.code;
  detail["message"] = error.message;
  if (error.retry_after_ms > 0.0) detail["retry_after_ms"] = error.retry_after_ms;
  v["error"] = detail;
  return v;
}

JsonValue encode_error(const JsonValue& id, const std::string& message) {
  return encode_error(id, WireError{"bad_request", message, 0.0});
}

JsonValue stats_to_json(const ServeStatsSnapshot& stats,
                        const JobsStatsSnapshot* jobs) {
  JsonValue v;
  v["requests"] = static_cast<double>(stats.requests);
  v["cache_hits"] = static_cast<double>(stats.cache_hits);
  v["cache_hit_rate"] = stats.cache.hit_rate();
  v["cache_entries"] = static_cast<double>(stats.cache.entries);
  v["cache_evictions"] = static_cast<double>(stats.cache.evictions);
  v["surrogate_requests"] = static_cast<double>(stats.surrogate_requests);
  v["solver_requests"] = static_cast<double>(stats.solver_requests);
  v["escalations"] = static_cast<double>(stats.escalations);
  v["errors"] = static_cast<double>(stats.errors);
  v["solver_refine_iterations"] =
      static_cast<double>(stats.solver_refine_iterations);
  v["solver_refine_fallbacks"] =
      static_cast<double>(stats.solver_refine_fallbacks);
  v["batches"] = static_cast<double>(stats.batcher.batches);
  v["avg_batch"] = stats.batcher.avg_batch();
  v["max_batch_seen"] = static_cast<double>(stats.batcher.max_batch_seen);
  v["full_flushes"] = static_cast<double>(stats.batcher.full_flushes);
  v["deadline_flushes"] = static_cast<double>(stats.batcher.deadline_flushes);
  v["avg_latency_ms"] = stats.avg_latency_ms();
  v["max_latency_ms"] = stats.max_latency_ms;
  // Reliability counters.
  v["completed"] = static_cast<double>(stats.completed);
  v["shed"] = static_cast<double>(stats.shed);
  v["deadline_exceeded"] = static_cast<double>(stats.deadline_exceeded);
  v["degraded_served"] = static_cast<double>(stats.degraded_served);
  v["surrogate_retries"] = static_cast<double>(stats.surrogate_retries);
  v["solver_failovers"] = static_cast<double>(stats.solver_failovers);
  v["coalesced"] = static_cast<double>(stats.coalesced);
  JsonValue breaker;
  breaker["state"] = breaker_state_name(stats.breaker.state);
  breaker["failures"] = static_cast<double>(stats.breaker.failures);
  breaker["successes"] = static_cast<double>(stats.breaker.successes);
  breaker["open_total"] = static_cast<double>(stats.breaker.open_total);
  breaker["rejected"] = static_cast<double>(stats.breaker.rejected);
  breaker["current_backoff_ms"] = stats.breaker.current_backoff_ms;
  v["breaker"] = breaker;
  // Long-running jobs block, present only when the jobs API is mounted.
  if (jobs != nullptr) {
    JsonValue j;
    j["submitted"] = static_cast<double>(jobs->submitted);
    j["completed"] = static_cast<double>(jobs->completed);
    j["failed"] = static_cast<double>(jobs->failed);
    j["cancelled"] = static_cast<double>(jobs->cancelled);
    j["resumed"] = static_cast<double>(jobs->resumed);
    j["shed"] = static_cast<double>(jobs->shed);
    j["steps"] = static_cast<double>(jobs->steps);
    j["journal_retries"] = static_cast<double>(jobs->journal_retries);
    j["running"] = jobs->running;
    j["queued"] = jobs->queued;
    v["jobs"] = j;
  }
  // Per-fault-point chaos counters, present only when MAPS_FAULTS armed
  // anything (the block's absence is the "clean run" signal).
  if (runtime::fault::armed()) {
    JsonValue faults;
    for (const auto& p : runtime::fault::stats()) {
      JsonValue entry;
      entry["hits"] = static_cast<double>(p.hits);
      entry["fires"] = static_cast<double>(p.fires);
      faults[p.name] = entry;
    }
    v["faults"] = faults;
  }
  // Per-stage latency readouts from the obs registry, present only while
  // metrics are enabled (existing keys above stay bit-compatible).
  if (obs::metrics_enabled()) {
    v["latency"] = latency_to_json();
  }
  return v;
}

JsonValue latency_to_json() {
  JsonValue block;
  obs::registry().visit_histograms(
      [&block](const std::string& name, const obs::Histogram& h) {
        const obs::Histogram::Snapshot snap = h.snapshot();
        JsonValue e;
        e["count"] = static_cast<double>(snap.count);
        e["sum_ms"] = snap.sum;
        e["p50_ms"] = snap.percentile(0.50);
        e["p90_ms"] = snap.percentile(0.90);
        e["p99_ms"] = snap.percentile(0.99);
        block[name] = e;
      });
  return block;
}

std::string metrics_text(const PredictionService& service,
                         const JobManager* jobs) {
  std::ostringstream os;
  os.precision(9);
  os << obs::registry().render_prometheus();
  const auto counter = [&os](const char* name, std::uint64_t value) {
    os << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
  };
  const auto gauge = [&os](const char* name, double value) {
    os << "# TYPE " << name << " gauge\n" << name << " " << value << "\n";
  };
  const ServeStatsSnapshot s = service.stats();
  counter("maps_serve_requests_total", s.requests);
  counter("maps_serve_completed_total", s.completed);
  counter("maps_serve_cache_hits_total", s.cache_hits);
  counter("maps_serve_cache_evictions_total", s.cache.evictions);
  counter("maps_serve_surrogate_requests_total", s.surrogate_requests);
  counter("maps_serve_solver_requests_total", s.solver_requests);
  counter("maps_serve_escalations_total", s.escalations);
  counter("maps_serve_errors_total", s.errors);
  counter("maps_serve_shed_total", s.shed);
  counter("maps_serve_deadline_exceeded_total", s.deadline_exceeded);
  counter("maps_serve_degraded_served_total", s.degraded_served);
  counter("maps_serve_surrogate_retries_total", s.surrogate_retries);
  counter("maps_serve_solver_failovers_total", s.solver_failovers);
  counter("maps_serve_coalesced_total", s.coalesced);
  counter("maps_serve_batches_total", s.batcher.batches);
  counter("maps_serve_batch_full_flushes_total", s.batcher.full_flushes);
  counter("maps_serve_batch_deadline_flushes_total", s.batcher.deadline_flushes);
  counter("maps_solver_refine_iterations_total", s.solver_refine_iterations);
  counter("maps_solver_refine_fallbacks_total", s.solver_refine_fallbacks);
  gauge("maps_serve_cache_entries", static_cast<double>(s.cache.entries));
  gauge("maps_serve_cache_hit_ratio", s.cache.hit_rate());
  // Per-shard hit ratio: a skewed key distribution shows up as one hot
  // shard long before the aggregate ratio moves.
  const auto shards = service.cache_shard_stats();
  os << "# TYPE maps_serve_cache_shard_hit_ratio gauge\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    os << "maps_serve_cache_shard_hit_ratio{shard=\"" << i << "\"} "
       << shards[i].hit_rate() << "\n";
  }
  // Breaker: one 0/1 sample per state (the standard enum exposition), plus
  // its counters.
  os << "# TYPE maps_serve_breaker_state gauge\n";
  for (const BreakerState state :
       {BreakerState::Closed, BreakerState::Open, BreakerState::HalfOpen}) {
    os << "maps_serve_breaker_state{state=\"" << breaker_state_name(state)
       << "\"} " << (s.breaker.state == state ? 1 : 0) << "\n";
  }
  counter("maps_serve_breaker_failures_total", s.breaker.failures);
  counter("maps_serve_breaker_rejected_total", s.breaker.rejected);
  counter("maps_serve_breaker_open_total", s.breaker.open_total);
  if (jobs != nullptr) {
    const JobsStatsSnapshot j = jobs->stats();
    counter("maps_jobs_submitted_total", j.submitted);
    counter("maps_jobs_completed_total", j.completed);
    counter("maps_jobs_failed_total", j.failed);
    counter("maps_jobs_cancelled_total", j.cancelled);
    counter("maps_jobs_resumed_total", j.resumed);
    counter("maps_jobs_shed_total", j.shed);
    counter("maps_jobs_steps_total", j.steps);
    gauge("maps_jobs_running", static_cast<double>(j.running));
    gauge("maps_jobs_queued", static_cast<double>(j.queued));
  }
  return os.str();
}

}  // namespace maps::serve
