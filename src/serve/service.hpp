// PredictionService: the multi-fidelity surrogate serving front end.
//
// One service answers pattern queries (permittivity map + source + frequency
// + fidelity hint) from a three-tier pipeline:
//
//   1. ResultCache     sharded LRU keyed on (pattern digest, omega,
//                      fidelity, model version) — repeat queries cost a hash
//                      lookup, the model never re-runs;
//   2. MicroBatcher    misses at surrogate fidelity queue for a dynamically
//                      coalesced batched Module::infer on TaskQueue workers
//                      (flush on max_batch or the max_delay deadline);
//   3. Escalation      `fidelity: high` requests — and surrogate outputs that
//                      fail the confidence screen — run through
//                      solver::SolverBackend via fdfd::Simulation, sharing
//                      one FactorizationCache (split-complex LU) across
//                      requests, so repeat verifications only back-substitute.
//
// submit() is asynchronous (returns a runtime::Future); predict() is the
// blocking convenience. Callers are external threads — do not call predict()
// from a TaskQueue worker (it would block a worker on queued work, the
// queue's deadlock rule). Models come from a ModelRegistry and may be
// hot-swapped while the service runs; every response reports the model
// version that produced it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fdfd/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/deadline.hpp"
#include "runtime/future.hpp"
#include "runtime/task_queue.hpp"
#include "serve/batcher.hpp"
#include "serve/breaker.hpp"
#include "serve/registry.hpp"
#include "serve/result_cache.hpp"

namespace maps::serve {

struct ServeRequest {
  grid::GridSpec spec;        // nx, ny, dl of the query pattern
  maps::math::RealGrid eps;   // permittivity map (nx, ny)
  maps::math::CplxGrid J;     // current source (nx, ny)
  double omega = 0.0;
  fdfd::PmlSpec pml;          // escalation-solve boundary spec
  solver::FidelityLevel fidelity = solver::FidelityLevel::Low;
  /// Latency budget in ms from submit() (0 = none). Past the deadline the
  /// request stops consuming pipeline stages — queue hand-offs, refinement
  /// rounds and Krylov iterations all check — and its future fails with
  /// runtime::DeadlineExceeded ("deadline_exceeded" on the wire).
  double deadline_ms = 0.0;
  /// Trace context created at ingress (null = untraced). The pipeline
  /// records per-stage spans into it (cache lookup, batch queue, surrogate
  /// forward, solver factorize/solve) and the terminal finish()/fail()
  /// emits the span tree as one NDJSON line when the request ran longer
  /// than ServeOptions::slow_request_ms.
  obs::TracePtr trace;
};

/// Thrown by submit() when admission control sheds the request (pipeline
/// saturated). `retry_after_ms` is the service's current backlog estimate.
class OverloadedError : public MapsError {
 public:
  OverloadedError(const std::string& what, double retry_after)
      : MapsError(what), retry_after_ms(retry_after) {}
  double retry_after_ms = 0.0;
};

/// Thrown when the solver tier is required (no surrogate fallback possible)
/// but its circuit breaker is open.
class BreakerOpenError : public MapsError {
 public:
  explicit BreakerOpenError(const std::string& what) : MapsError(what) {}
};

/// The tier that produced the answer. Cache hits keep the producing tier
/// and set ServeResponse::cache_hit instead.
enum class ResponseSource { Surrogate, Solver };

const char* response_source_name(ResponseSource source);

struct ServeResponse {
  maps::math::CplxGrid Ez;
  ResponseSource source = ResponseSource::Surrogate;
  bool cache_hit = false;
  bool escalated = false;   // surrogate answer failed the confidence screen
  /// Best-effort answer served while the solver tier's circuit breaker is
  /// open (or after a failed escalation): the surrogate output is returned
  /// un-verified instead of failing the request. Degraded answers are never
  /// cached, so a recovered solver re-answers the next identical query.
  bool degraded = false;
  std::string model_id;     // empty for pure solver answers
  int model_version = 0;    // 0 for pure solver answers
  double latency_ms = 0.0;
};

struct ServeOptions {
  // Micro-batching.
  int max_batch = 32;
  double max_delay_ms = 2.0;
  /// Workers for batched inference and escalation solves; 0 = the shared
  /// process-wide TaskQueue.
  std::size_t workers = 0;

  // Result cache (entries; 0 disables).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;

  // Escalation policy: a surrogate field whose RMS exceeds
  // escalate_rms_factor * field_scale (or is non-finite) is re-answered by
  // the solver. 0 disables the RMS screen (non-finite always escalates).
  double escalate_rms_factor = 0.0;
  /// Prepared high-fidelity operators kept across escalation solves.
  std::size_t solver_cache_capacity = 4;
  /// Factor precision of the escalation solver tier: Mixed halves the bytes
  /// each cached factorization holds (~2x the prepared operators per byte
  /// budget) and refines solves back to double accuracy.
  solver::SolverPrecision solver_precision = solver::default_solver_precision();

  // In-flight request coalescing (cache-stampede protection). When N
  // identical queries race a cold cache, the first becomes the leader and
  // runs the pipeline once; the other N-1 attach to its in-flight
  // computation and share the answer (each billed its own latency). Attached
  // requests skip admission control — they add no pipeline work. Coalesced
  // waiters inherit the leader's deadline; their own deadline_ms is not
  // enforced while attached.
  bool coalesce = true;

  // Admission control. A request that misses the cache is shed with
  // OverloadedError when more than max_inflight requests are already in the
  // pipeline (0 = unlimited), or when the estimated queue wait alone exceeds
  // max_queue_ms (0 = no wait bound). Shedding at ingress keeps tail latency
  // bounded: a saturated service answers "overloaded + retry_after_ms" in
  // microseconds instead of queueing work it cannot finish in time.
  std::size_t max_inflight = 0;
  double max_queue_ms = 0.0;

  // Solver-escalation circuit breaker. After `breaker_failures` consecutive
  // solver failures/timeouts the breaker opens: escalations short-circuit to
  // degraded surrogate answers (no solver attempts) until a backoff expires,
  // then half-open probes test recovery. 0 disables the breaker.
  int breaker_failures = 5;
  double breaker_backoff_ms = 1000.0;
  double breaker_backoff_max_ms = 30000.0;
  int breaker_half_open_probes = 1;

  // Observability. A traced request whose end-to-end latency exceeds
  // slow_request_ms has its whole span tree written to the obs log sink as
  // one NDJSON line (0 = dump every traced request; negative = disabled).
  // The MAPS_SLOW_REQUEST_MS environment variable overrides this at
  // construction so a test suite can be re-run with the dump path armed.
  double slow_request_ms = -1.0;
};

/// Monotone service counters (snapshot).
struct ServeStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t surrogate_requests = 0;
  std::uint64_t solver_requests = 0;     // explicit fidelity-high dispatches
  std::uint64_t escalations = 0;         // confidence-screen failures
  std::uint64_t errors = 0;
  // Reliability counters.
  std::uint64_t shed = 0;               // rejected by admission control
  std::uint64_t deadline_exceeded = 0;  // failed their latency budget
  std::uint64_t degraded_served = 0;    // un-verified surrogate fallbacks
  std::uint64_t surrogate_retries = 0;  // single-sample retries after batch failure
  std::uint64_t solver_failovers = 0;   // surrogate failures answered by the solver
  std::uint64_t coalesced = 0;          // attached to an identical in-flight query
  std::uint64_t completed = 0;          // requests that produced an answer
  BreakerStats breaker;                 // solver-tier circuit breaker
  // Mixed-precision accounting of the escalation solver tier (0 under
  // double precision): refinement steps taken and double-factorization
  // fallbacks across the cached backends.
  std::uint64_t solver_refine_iterations = 0;
  std::uint64_t solver_refine_fallbacks = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  BatcherStats batcher;
  ResultCacheStats cache;

  double avg_latency_ms() const {
    return completed == 0 ? 0.0 : total_latency_ms / static_cast<double>(completed);
  }
};

class PredictionService {
 public:
  PredictionService(std::shared_ptr<ModelRegistry> registry, ServeOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  runtime::Future<ServeResponse> submit(ServeRequest request);
  ServeResponse predict(ServeRequest request) { return submit(std::move(request)).get(); }

  ModelRegistry& registry() { return *registry_; }
  const ServeOptions& options() const { return options_; }
  ServeStatsSnapshot stats() const;
  /// Per-shard result-cache counters (the /v1/metrics scrape reports a hit
  /// ratio per shard so a skewed key distribution is visible).
  std::vector<ResultCacheStats> cache_shard_stats() const {
    return cache_.shard_stats();
  }

  /// The worker pool this service runs on. Front ends offload request
  /// decode/submit work here to keep their I/O threads non-blocking. The
  /// TaskQueue deadlock rule applies: never block on a queued-task future
  /// from one of these workers — use Future::subscribe.
  runtime::TaskQueue& task_queue() { return *queue_; }

  /// The escalation path's factorization cache (tests assert the solver
  /// dispatch through its counters).
  const solver::FactorizationCache& solver_cache() const { return *solver_cache_; }

  /// Query identity as cached (exposed for tests).
  static QueryKey make_key(const ServeRequest& request, int model_version);

  /// Circuit breaker of the escalation solver tier (exposed for tests).
  const CircuitBreaker& breaker() const { return *breaker_; }

  /// Effective slow-request threshold (config + MAPS_SLOW_REQUEST_MS
  /// override; negative = disabled). Exposed for front ends deciding
  /// whether to allocate a trace at ingress.
  double slow_request_ms() const { return slow_request_ms_; }
  /// True when requests should carry a trace context: metrics are on or
  /// the slow-request dump is armed.
  bool tracing_enabled() const {
    return obs::metrics_enabled() || slow_request_ms_ >= 0.0;
  }

 private:
  /// A request attached to another request's in-flight computation: its
  /// promise is fanned out to at the leader's terminal.
  struct Waiter {
    runtime::Promise<ServeResponse> promise;
    double start_ms = 0.0;
    /// The attacher's own trace: at fan-out it adopts the leader's spans
    /// so each client's slow dump names the work it actually waited on.
    obs::TracePtr trace;
  };

  /// Terminal success path. When `key` is non-null the pending-waiter entry
  /// for it is popped and every attached waiter receives a copy of the
  /// response (with its own latency). Every submitted request ends in
  /// finish() or fail() exactly once. `trace` is the leader's trace (may be
  /// null): finish/fail record the total-latency histogram and emit the
  /// slow-request span dump against it.
  void finish(runtime::Promise<ServeResponse>& promise, ServeResponse response,
              double start_ms, const QueryKey* key = nullptr,
              const obs::TracePtr& trace = nullptr);
  /// Terminal error path: classifies `error` into the right counter
  /// (shed / deadline_exceeded / errors), releases the inflight slot and
  /// fails the promise — and every attached waiter when `key` is non-null.
  void fail(runtime::Promise<ServeResponse>& promise, std::exception_ptr error,
            const QueryKey* key = nullptr, const obs::TracePtr& trace = nullptr);
  /// One observed request terminal: total-latency histogram + threshold-
  /// triggered span-tree dump (at most once per trace).
  void observe_terminal(const obs::TracePtr& trace, double total_ms,
                        const char* outcome);
  /// Coalescing: join an identical in-flight computation. True = attached
  /// (the caller's promise is satisfied at the leader's terminal).
  bool attach_pending(const QueryKey& key,
                      const runtime::Promise<ServeResponse>& promise,
                      double start_ms, const obs::TracePtr& trace);
  /// Coalescing: announce this request as the in-flight computation for
  /// `key`. No-op when another leader already holds the slot (the race loser
  /// simply runs its own pipeline and fans out to nobody).
  void lead_pending(const QueryKey& key);
  std::vector<Waiter> take_waiters(const QueryKey* key);
  void record_completion(double latency_ms);
  void admit(const ServeRequest& request);
  double backlog_estimate_ms() const;
  ServeResponse solve_high(const ServeRequest& request);
  /// solve_high under the request's deadline guard and the circuit breaker's
  /// failure accounting.
  ServeResponse solve_guarded(const ServeRequest& request, double deadline_abs_ms);
  void answer_surrogate(std::shared_ptr<const ServeRequest> request,
                        const std::shared_ptr<const ServedModel>& model,
                        const QueryKey& key, runtime::Promise<ServeResponse> promise,
                        double start_ms, double deadline_abs_ms, bool degraded);

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  std::unique_ptr<runtime::TaskQueue> own_queue_;  // set when options.workers > 0
  runtime::TaskQueue* queue_;
  ResultCache cache_;
  std::shared_ptr<solver::FactorizationCache> solver_cache_;
  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<MicroBatcher> batcher_;
  /// Cached registry refs (stable for the process lifetime) so the hot
  /// path never touches the registry map.
  obs::Histogram* hist_total_ms_ = nullptr;
  obs::Histogram* hist_cache_lookup_ms_ = nullptr;
  double slow_request_ms_ = -1.0;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> surrogate_requests_{0};
  std::atomic<std::uint64_t> solver_requests_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> degraded_served_{0};
  std::atomic<std::uint64_t> surrogate_retries_{0};
  std::atomic<std::uint64_t> solver_failovers_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> inflight_{0};
  /// In-flight computations by query key; the mapped waiters are the
  /// attached requests fanned out to at the leader's terminal.
  std::mutex pending_mu_;
  std::unordered_map<QueryKey, std::vector<Waiter>, QueryKeyHash> pending_;
  mutable std::mutex latency_mu_;
  double total_latency_ms_ = 0.0;
  double max_latency_ms_ = 0.0;
};

}  // namespace maps::serve
