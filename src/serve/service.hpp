// PredictionService: the multi-fidelity surrogate serving front end.
//
// One service answers pattern queries (permittivity map + source + frequency
// + fidelity hint) from a three-tier pipeline:
//
//   1. ResultCache     sharded LRU keyed on (pattern digest, omega,
//                      fidelity, model version) — repeat queries cost a hash
//                      lookup, the model never re-runs;
//   2. MicroBatcher    misses at surrogate fidelity queue for a dynamically
//                      coalesced batched Module::infer on TaskQueue workers
//                      (flush on max_batch or the max_delay deadline);
//   3. Escalation      `fidelity: high` requests — and surrogate outputs that
//                      fail the confidence screen — run through
//                      solver::SolverBackend via fdfd::Simulation, sharing
//                      one FactorizationCache (split-complex LU) across
//                      requests, so repeat verifications only back-substitute.
//
// submit() is asynchronous (returns a runtime::Future); predict() is the
// blocking convenience. Callers are external threads — do not call predict()
// from a TaskQueue worker (it would block a worker on queued work, the
// queue's deadlock rule). Models come from a ModelRegistry and may be
// hot-swapped while the service runs; every response reports the model
// version that produced it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "fdfd/simulation.hpp"
#include "runtime/future.hpp"
#include "runtime/task_queue.hpp"
#include "serve/batcher.hpp"
#include "serve/registry.hpp"
#include "serve/result_cache.hpp"

namespace maps::serve {

struct ServeRequest {
  grid::GridSpec spec;        // nx, ny, dl of the query pattern
  maps::math::RealGrid eps;   // permittivity map (nx, ny)
  maps::math::CplxGrid J;     // current source (nx, ny)
  double omega = 0.0;
  fdfd::PmlSpec pml;          // escalation-solve boundary spec
  solver::FidelityLevel fidelity = solver::FidelityLevel::Low;
};

/// The tier that produced the answer. Cache hits keep the producing tier
/// and set ServeResponse::cache_hit instead.
enum class ResponseSource { Surrogate, Solver };

const char* response_source_name(ResponseSource source);

struct ServeResponse {
  maps::math::CplxGrid Ez;
  ResponseSource source = ResponseSource::Surrogate;
  bool cache_hit = false;
  bool escalated = false;   // surrogate answer failed the confidence screen
  std::string model_id;     // empty for pure solver answers
  int model_version = 0;    // 0 for pure solver answers
  double latency_ms = 0.0;
};

struct ServeOptions {
  // Micro-batching.
  int max_batch = 32;
  double max_delay_ms = 2.0;
  /// Workers for batched inference and escalation solves; 0 = the shared
  /// process-wide TaskQueue.
  std::size_t workers = 0;

  // Result cache (entries; 0 disables).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;

  // Escalation policy: a surrogate field whose RMS exceeds
  // escalate_rms_factor * field_scale (or is non-finite) is re-answered by
  // the solver. 0 disables the RMS screen (non-finite always escalates).
  double escalate_rms_factor = 0.0;
  /// Prepared high-fidelity operators kept across escalation solves.
  std::size_t solver_cache_capacity = 4;
  /// Factor precision of the escalation solver tier: Mixed halves the bytes
  /// each cached factorization holds (~2x the prepared operators per byte
  /// budget) and refines solves back to double accuracy.
  solver::SolverPrecision solver_precision = solver::default_solver_precision();
};

/// Monotone service counters (snapshot).
struct ServeStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t surrogate_requests = 0;
  std::uint64_t solver_requests = 0;     // explicit fidelity-high dispatches
  std::uint64_t escalations = 0;         // confidence-screen failures
  std::uint64_t errors = 0;
  // Mixed-precision accounting of the escalation solver tier (0 under
  // double precision): refinement steps taken and double-factorization
  // fallbacks across the cached backends.
  std::uint64_t solver_refine_iterations = 0;
  std::uint64_t solver_refine_fallbacks = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  BatcherStats batcher;
  ResultCacheStats cache;

  double avg_latency_ms() const {
    const std::uint64_t done = requests - errors;
    return done == 0 ? 0.0 : total_latency_ms / static_cast<double>(done);
  }
};

class PredictionService {
 public:
  PredictionService(std::shared_ptr<ModelRegistry> registry, ServeOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  runtime::Future<ServeResponse> submit(ServeRequest request);
  ServeResponse predict(ServeRequest request) { return submit(std::move(request)).get(); }

  ModelRegistry& registry() { return *registry_; }
  const ServeOptions& options() const { return options_; }
  ServeStatsSnapshot stats() const;

  /// The escalation path's factorization cache (tests assert the solver
  /// dispatch through its counters).
  const solver::FactorizationCache& solver_cache() const { return *solver_cache_; }

  /// Query identity as cached (exposed for tests).
  static QueryKey make_key(const ServeRequest& request, int model_version);

 private:
  void finish(runtime::Promise<ServeResponse>& promise, ServeResponse response,
              double start_ms);
  ServeResponse solve_high(const ServeRequest& request);
  void answer_surrogate(std::shared_ptr<const ServeRequest> request,
                        const std::shared_ptr<const ServedModel>& model,
                        const QueryKey& key, runtime::Promise<ServeResponse> promise,
                        double start_ms);

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  std::unique_ptr<runtime::TaskQueue> own_queue_;  // set when options.workers > 0
  runtime::TaskQueue* queue_;
  ResultCache cache_;
  std::shared_ptr<solver::FactorizationCache> solver_cache_;
  std::unique_ptr<MicroBatcher> batcher_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> surrogate_requests_{0};
  std::atomic<std::uint64_t> solver_requests_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> inflight_{0};
  mutable std::mutex latency_mu_;
  double total_latency_ms_ = 0.0;
  double max_latency_ms_ = 0.0;
};

}  // namespace maps::serve
