// HTTP/1.1 serve front end on the net::EventLoop.
//
// One event-loop thread owns every socket: accepts, reads, incremental
// parsing and reply writes all happen there, so thousands of idle keep-alive
// connections cost file descriptors, not threads. Service work never runs on
// the loop: a /predict body is handed to the service's TaskQueue, the
// prediction futures are subscribed, and the finished reply is posted back
// to the loop thread, which slots it into the connection's in-order reply
// queue (pipelined requests answer strictly in request order).
//
// The API is versioned under a /v1 prefix; see serve/README.md for the
// versioning contract. Bare paths (/predict, /healthz, /stats) remain as
// deprecated aliases of their /v1 forms; any other /v<n>/ prefix answers a
// structured 404. Endpoints:
//   POST /v1/predict           one wire request object, or a JSON array of
//                              them (the reply is then a JSON array,
//                              per-element ok/error)
//   GET  /v1/healthz           {"status": "ok" | "degraded" | "draining" |
//                              "unavailable", ...} — degraded/unavailable
//                              follow the solver breaker and model registry,
//                              draining follows the stop flag; statuses
//                              ok/degraded answer 200, the rest 503; carries
//                              jobs_running/jobs_queued when jobs are mounted
//   GET  /v1/stats             the ServeStats wire JSON (same document as
//                              the CLI "serve_stats" report block)
//   POST /v1/jobs              submit a long-running job (serve/jobs.hpp)
//   GET  /v1/jobs              list jobs, submission-ordered
//   GET  /v1/jobs/{id}         status + progress of one job
//   GET  /v1/jobs/{id}/result  terminal document (409 before terminal state)
//   POST /v1/jobs/{id}/cancel  request cancellation (idempotent)
// The jobs routes answer 404 "jobs API disabled" unless options.jobs is set.
//
// Errors reuse the PR 7 wire envelope {"error":{"code",...}}: 400
// bad_request, 404 not_found, 405 method_not_allowed, 409 not_ready, 413
// request_too_large, 429 overloaded (+ Retry-After), 503 breaker_open /
// shutting_down, 504 deadline_exceeded, 500 internal.
//
// Shutdown: when options.stream.stop flips, the listener closes, reads
// pause, in-flight replies drain under stream.drain_deadline_ms, then every
// connection is torn down and serve_http returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>

#include "serve/server.hpp"

namespace maps::serve {

class JobManager;

struct HttpOptions {
  int port = 0;          // 0 picks a free port (see bound_port)
  int backlog = 128;
  /// Accepted-connection cap; excess accepts are closed immediately.
  std::size_t max_connections = 10000;
  std::size_t max_header_bytes = 64u << 10;  // over it: 431, close
  /// Drain-flag poll period of the loop (ms).
  double tick_ms = 20.0;
  /// Shared socket front-end knobs: bind_address, max_request_bytes (the
  /// body cap behind 413), conn_max_inflight (per-connection pipeline
  /// window), stop, drain_deadline_ms.
  StreamOptions stream;
  /// Mounts the /v1/jobs routes when non-null (borrowed, must outlive the
  /// server). Shutdown drains it: running jobs journal their checkpoint and
  /// park at the next step boundary.
  JobManager* jobs = nullptr;
};

struct HttpServeReport {
  std::size_t requests = 0;     // HTTP requests parsed (all endpoints)
  std::size_t errors = 0;       // error replies (4xx/5xx) + aborted conns
  std::size_t connections = 0;  // connections accepted
};

/// Run the HTTP front end until the stop flag flips (or forever). Blocks the
/// calling thread (it becomes the event-loop thread). `bound_port`, when
/// non-null, receives the listening port before the first accept.
HttpServeReport serve_http(PredictionService& service,
                           const WireDefaults& defaults,
                           const HttpOptions& options = {},
                           std::ostream* log = nullptr,
                           std::atomic<int>* bound_port = nullptr);

}  // namespace maps::serve
