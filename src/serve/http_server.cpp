#include "serve/http_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/listener.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/deadline.hpp"
#include "runtime/fault.hpp"
#include "serve/jobs.hpp"

namespace maps::serve {

namespace {

using io::JsonValue;

int status_for(const std::string& code) {
  if (code == "bad_request") return 400;
  if (code == "not_found") return 404;
  if (code == "method_not_allowed") return 405;
  if (code == "not_ready") return 409;
  if (code == "request_too_large") return 413;
  if (code == "overloaded") return 429;
  if (code == "breaker_open" || code == "shutting_down") return 503;
  if (code == "deadline_exceeded") return 504;
  return 500;
}

/// Resolve a request target onto its canonical (unversioned) route path.
/// "/v1/..." strips the prefix; bare paths are deprecated aliases of their
/// /v1 forms and pass through unchanged. Returns false for any other
/// "/v<n>" prefix — an unsupported API version.
bool canonical_path(const std::string& target, std::string* path) {
  if (target == "/v1" || target.rfind("/v1/", 0) == 0) {
    *path = target.substr(3);
    return true;
  }
  if (target.size() > 2 && target[0] == '/' && target[1] == 'v') {
    std::size_t i = 2;
    while (i < target.size() && target[i] >= '0' && target[i] <= '9') ++i;
    if (i > 2 && (i == target.size() || target[i] == '/')) return false;
  }
  *path = target;
  return true;
}

/// Jobs-route exceptions onto wire errors: admission shed -> 429 (with
/// Retry-After), unknown id -> 404, result-before-terminal -> 409, anything
/// else (spec parse/validation) -> 400.
WireError classify_jobs_error(std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const OverloadedError& e) {
    return WireError{"overloaded", e.what(), e.retry_after_ms};
  } catch (const JobNotFound& e) {
    return WireError{"not_found", e.what(), 0.0};
  } catch (const JobNotReady& e) {
    return WireError{"not_ready", e.what(), 0.0};
  } catch (const std::exception& e) {
    return WireError{"bad_request", e.what(), 0.0};
  } catch (...) {
    return WireError{"internal", "unknown error", 0.0};
  }
}

/// Retry-After is whole seconds on the wire; round the backlog estimate up
/// so "retry after 0s" never happens.
std::string retry_after_seconds(double retry_after_ms) {
  const auto secs =
      static_cast<long long>((std::max(retry_after_ms, 1.0) + 999.0) / 1000.0);
  return std::to_string(secs);
}

/// One reply in a connection's in-order pipeline. Created on the loop thread
/// when the request parses; filled (bytes + ready) on the loop thread when
/// the answer arrives. Pipelined requests answer strictly in slot order.
struct Slot {
  bool ready = false;
  bool close_after = false;
  std::string bytes;
  /// Echoed as X-Request-Id on the reply (client-supplied or generated) so
  /// a probe failure seen by a load balancer joins against server logs.
  std::string request_id;
};

/// Per-connection state. Owned by the loop thread; worker threads never
/// touch a Conn — they post closures that do.
struct Conn {
  explicit Conn(int fd_in, net::HttpLimits limits) : fd(fd_in), parser(limits) {}
  int fd = -1;
  net::ByteBuffer in;
  net::ByteBuffer out;
  net::HttpParser parser;
  std::deque<std::shared_ptr<Slot>> slots;
  bool closed = false;
  bool eof = false;          // peer half-closed, or server draining
  bool read_paused = false;  // pipeline window / write backlog backpressure
  bool want_write = false;
  bool close_when_drained = false;  // close once `out` flushes
};

/// Write backlog (bytes) past which the connection stops reading until the
/// peer drains replies — a slow reader cannot balloon server memory.
constexpr std::size_t kOutBufferCap = 4u << 20;

class HttpServer {
 public:
  HttpServer(PredictionService& service, const WireDefaults& defaults,
             const HttpOptions& options, std::ostream* log)
      : service_(service),
        defaults_(defaults),
        options_(options),
        jobs_(options.jobs),
        log_(log),
        hist_parse_ms_(&obs::registry().histogram("serve.ingress.parse_ms")) {
    limits_.max_header_bytes = options_.max_header_bytes;
    limits_.max_body_bytes = options_.stream.max_request_bytes > 0
                                 ? options_.stream.max_request_bytes
                                 : std::numeric_limits<std::size_t>::max();
    window_ = std::max<std::size_t>(
        64, 4 * static_cast<std::size_t>(service_.options().max_batch));
    if (options_.stream.conn_max_inflight > 0) {
      window_ = std::max<std::size_t>(
          1, std::min(window_, options_.stream.conn_max_inflight));
    }
  }

  HttpServeReport run(std::atomic<int>* bound_port) {
    listener_fd_ = net::make_listener(options_.stream.bind_address,
                                      options_.port, options_.backlog);
    net::set_nonblocking(listener_fd_);
    const int port = net::listener_port(listener_fd_);
    if (bound_port != nullptr) bound_port->store(port);
    obs::log_to(log_, obs::LogLevel::Info, "serve",
                "http listening on " + options_.stream.bind_address + ":" +
                    std::to_string(port));
    loop_.add_fd(listener_fd_, net::EventLoop::kRead,
                 [this](std::uint32_t) { on_accept(); });
    loop_.run([this] { tick(); }, options_.tick_ms);

    // The loop is stopped but TaskQueue workers may still be finishing
    // predictions whose completions post into this loop. Wait them out so
    // no completion ever touches a destroyed loop; their queued closures
    // are simply discarded.
    while (outstanding_.load() != 0) std::this_thread::yield();

    for (int fd : conn_fds()) close_conn(conns_.at(fd));
    if (listener_fd_ >= 0) ::close(listener_fd_);

    HttpServeReport report;
    report.requests = requests_.load();
    report.errors = errors_.load();
    report.connections = connections_;
    obs::log_to(log_, obs::LogLevel::Info, "serve",
                "http closed: " + std::to_string(report.requests) +
                    " request(s), " + std::to_string(report.errors) +
                    " error(s), " + std::to_string(report.connections) +
                    " connection(s)");
    return report;
  }

 private:
  bool stopping() const {
    return options_.stream.stop != nullptr && options_.stream.stop->load();
  }

  std::vector<int> conn_fds() const {
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    return fds;
  }

  void tick() {
    if (stopping() && !draining_) {
      draining_ = true;
      drain_until_ =
          runtime::now_steady_ms() + options_.stream.drain_deadline_ms;
      // Long-running jobs journal their checkpoint and park at the next
      // step boundary; a restart re-adopts them via resume_journaled().
      if (jobs_ != nullptr) jobs_->drain();
      // Stop accepting, stop reading; in-flight replies drain below.
      loop_.remove_fd(listener_fd_);
      ::close(listener_fd_);
      listener_fd_ = -1;
      obs::log_to(log_, obs::LogLevel::Info, "serve",
                  "shutdown requested: draining " +
                      std::to_string(conns_.size()) + " connection(s)");
      for (int fd : conn_fds()) {
        const auto conn = conns_.at(fd);
        conn->eof = true;
        update_interest(conn);
        if (conn->slots.empty() && conn->out.empty()) close_conn(conn);
      }
    }
    if (draining_ &&
        (conns_.empty() || runtime::now_steady_ms() >= drain_until_)) {
      const std::size_t abandoned = conns_.size();
      for (int fd : conn_fds()) close_conn(conns_.at(fd));
      if (abandoned > 0) {
        errors_.fetch_add(abandoned);
        obs::log_to(log_, obs::LogLevel::Warn, "serve",
                    "drain deadline: dropped " + std::to_string(abandoned) +
                        " connection(s)");
      }
      loop_.stop();
    }
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(listener_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained) or transient accept failure: next event
      }
      if (draining_ || conns_.size() >= options_.max_connections) {
        ::close(fd);
        errors_.fetch_add(1);
        continue;
      }
      net::set_nonblocking(fd);
      auto conn = std::make_shared<Conn>(fd, limits_);
      conns_.emplace(fd, conn);
      ++connections_;
      loop_.add_fd(fd, net::EventLoop::kRead, [this, conn](std::uint32_t mask) {
        on_event(conn, mask);
      });
    }
  }

  void on_event(const std::shared_ptr<Conn>& conn, std::uint32_t mask) {
    if (conn->closed) return;
    try {
      if (mask & net::EventLoop::kWrite) flush(conn);
      if (conn->closed) return;
      if (mask & net::EventLoop::kRead) on_readable(conn);
    } catch (...) {
      // A connection's failure (including an armed `throw` chaos fault in
      // its read/write path) must never take the server down.
      errors_.fetch_add(1);
      close_conn(conn);
    }
  }

  void on_readable(const std::shared_ptr<Conn>& conn) {
    char buf[1 << 14];
    for (;;) {
      if (conn->eof || conn->read_paused) break;
      // Chaos hook: an armed "http.read" io fault models the peer vanishing
      // mid-request (EOF from then on).
      ssize_t n = runtime::fault::point("http.read")
                      ? 0
                      : ::read(conn->fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn);
        return;
      }
      if (n == 0) {
        // Peer half-closed. Replies already in the pipeline still go out;
        // the connection closes once everything flushes.
        conn->eof = true;
        update_interest(conn);
        if (conn->parser.mid_request() && conn->slots.empty() &&
            conn->out.empty()) {
          // Truncated request with nothing owed: just drop the connection.
          errors_.fetch_add(1);
          close_conn(conn);
          return;
        }
        break;
      }
      conn->in.append(buf, static_cast<std::size_t>(n));
    }
    if (!conn->closed) process_input(conn);
  }

  void process_input(const std::shared_ptr<Conn>& conn) {
    while (!conn->close_when_drained) {
      if (conn->slots.size() >= window_ || conn->out.size() > kOutBufferCap) {
        // Backpressure: park reads until the pipeline/write backlog drains.
        if (!conn->read_paused) {
          conn->read_paused = true;
          update_interest(conn);
        }
        break;
      }
      const net::HttpParser::Status st = conn->parser.feed(conn->in);
      if (st == net::HttpParser::Status::NeedMore) break;
      if (st == net::HttpParser::Status::Error) {
        requests_.fetch_add(1);
        errors_.fetch_add(1);
        const int status = conn->parser.error_status();
        const WireError err{
            status == 400 ? "bad_request" : "request_too_large",
            conn->parser.error_message(), 0.0};
        auto slot = push_slot(conn);
        slot->request_id = obs::next_request_id();
        fill_slot(slot, status, encode_error_text(JsonValue(), err),
                  /*keep_alive=*/false, {});
        // The byte stream is no longer trustworthy: reply, then close.
        conn->eof = true;
        update_interest(conn);
        break;
      }
      requests_.fetch_add(1);
      handle_request(conn, conn->parser.take_request());
    }
    pump(conn);
  }

  void handle_request(const std::shared_ptr<Conn>& conn, net::HttpRequest req) {
    // Request identity: honor a client-supplied X-Request-Id, else mint
    // one. Every slot pushed while this request routes echoes it back.
    const std::string* supplied = req.find_header("x-request-id");
    current_request_id_ = (supplied != nullptr && !supplied->empty())
                              ? *supplied
                              : obs::next_request_id();
    if (draining_) {
      reply_error(conn,
                  WireError{"shutting_down", "server draining", 0.0},
                  /*keep_alive=*/false);
      return;
    }
    std::string path;
    if (!canonical_path(req.target, &path)) {
      reply_error(conn,
                  WireError{"not_found",
                            "unsupported API version in " + req.target +
                                " (supported: /v1)",
                            0.0},
                  req.keep_alive);
      return;
    }
    if (path == "/predict") {
      if (req.method != "POST") {
        reply_error(conn,
                    WireError{"method_not_allowed",
                              req.target + " requires POST", 0.0},
                    req.keep_alive, {{"Allow", "POST"}});
        return;
      }
      auto slot = push_slot(conn);
      offload_predict(conn, slot, std::move(req.body), req.keep_alive);
      return;
    }
    if (path == "/metrics") {
      if (req.method != "GET") {
        reply_error(conn,
                    WireError{"method_not_allowed",
                              req.target + " requires GET", 0.0},
                    req.keep_alive, {{"Allow", "GET"}});
        return;
      }
      auto slot = push_slot(conn);
      fill_slot(slot, 200, metrics_text(service_, jobs_), req.keep_alive, {},
                "text/plain; version=0.0.4; charset=utf-8");
      return;
    }
    if (path == "/healthz" || path == "/stats") {
      if (req.method != "GET") {
        reply_error(conn,
                    WireError{"method_not_allowed",
                              req.target + " requires GET", 0.0},
                    req.keep_alive, {{"Allow", "GET"}});
        return;
      }
      auto slot = push_slot(conn);
      const auto [status, body] =
          path == "/healthz" ? healthz_reply()
                             : std::pair<int, std::string>{200, stats_body()};
      fill_slot(slot, status, body, req.keep_alive, {});
      return;
    }
    if (path == "/jobs" || path.rfind("/jobs/", 0) == 0) {
      handle_jobs(conn, req, path);
      return;
    }
    reply_error(conn,
                WireError{"not_found", "unknown target " + req.target, 0.0},
                req.keep_alive);
  }

  /// The /v1/jobs routes. JobManager calls are mutex-guarded bookkeeping
  /// (submit validates the spec but never steps), so they run inline on the
  /// loop thread like the other control-plane endpoints.
  void handle_jobs(const std::shared_ptr<Conn>& conn,
                   const net::HttpRequest& req, const std::string& path) {
    if (jobs_ == nullptr) {
      reply_error(conn,
                  WireError{"not_found",
                            "jobs API disabled (serve with a jobs journal "
                            "dir to enable it)",
                            0.0},
                  req.keep_alive);
      return;
    }
    try {
      // Every JobManager call happens before push_slot: a thrown
      // JobNotFound/JobNotReady must not leave an unfillable slot at the
      // head of the connection's reply pipeline.
      if (path == "/jobs") {
        if (req.method == "POST") {
          const std::string id = jobs_->submit(io::json_parse(req.body));
          const std::string body = jobs_->status(id).dump();
          auto slot = push_slot(conn);
          // 202: the job is accepted, not finished; poll GET /v1/jobs/{id}.
          fill_slot(slot, 202, body, req.keep_alive, {});
          return;
        }
        if (req.method == "GET") {
          const std::string body = jobs_->list().dump();
          auto slot = push_slot(conn);
          fill_slot(slot, 200, body, req.keep_alive, {});
          return;
        }
        reply_error(conn,
                    WireError{"method_not_allowed",
                              req.target + " requires GET or POST", 0.0},
                    req.keep_alive, {{"Allow", "GET, POST"}});
        return;
      }
      const std::string rest = path.substr(6);  // past "/jobs/"
      const std::size_t slash = rest.find('/');
      const std::string id = rest.substr(0, slash);
      const std::string action =
          slash == std::string::npos ? std::string() : rest.substr(slash);
      if (action.empty() || action == "/result") {
        if (req.method != "GET") {
          reply_error(conn,
                      WireError{"method_not_allowed",
                                req.target + " requires GET", 0.0},
                      req.keep_alive, {{"Allow", "GET"}});
          return;
        }
        const std::string body = action.empty() ? jobs_->status(id).dump()
                                                : jobs_->result(id).dump();
        auto slot = push_slot(conn);
        fill_slot(slot, 200, body, req.keep_alive, {});
        return;
      }
      if (action == "/cancel") {
        if (req.method != "POST") {
          reply_error(conn,
                      WireError{"method_not_allowed",
                                req.target + " requires POST", 0.0},
                      req.keep_alive, {{"Allow", "POST"}});
          return;
        }
        const std::string body = jobs_->cancel(id).dump();
        auto slot = push_slot(conn);
        fill_slot(slot, 200, body, req.keep_alive, {});
        return;
      }
      reply_error(conn,
                  WireError{"not_found", "unknown target " + req.target, 0.0},
                  req.keep_alive);
    } catch (...) {
      reply_error(conn, classify_jobs_error(std::current_exception()),
                  req.keep_alive);
    }
  }

  std::string stats_body() {
    if (jobs_ == nullptr) return stats_to_json(service_.stats()).dump();
    const JobsStatsSnapshot snapshot = jobs_->stats();
    return stats_to_json(service_.stats(), &snapshot).dump();
  }

  std::pair<int, std::string> healthz_reply() {
    const auto model = service_.registry().active();
    const BreakerStats breaker = service_.breaker().stats();
    // stats().state, not allow(): a health probe must never consume the
    // breaker's half-open budget.
    const bool open = breaker.state == BreakerState::Open;
    const char* status = "ok";
    int code = 200;
    if (draining_) {
      status = "draining";
      code = 503;
    } else if (model == nullptr && open) {
      status = "unavailable";  // neither tier can answer
      code = 503;
    } else if (model == nullptr || open) {
      status = "degraded";  // one tier down, the other still answers
    }
    JsonValue v;
    v["breaker"] = breaker_state_name(breaker.state);
    v["model_loaded"] = model != nullptr;
    if (model != nullptr) {
      v["model"] = model->id;
      v["model_version"] = model->version;
    }
    if (jobs_ != nullptr) {
      const JobsStatsSnapshot snapshot = jobs_->stats();
      v["jobs_queued"] = snapshot.queued;
      v["jobs_running"] = snapshot.running;
    }
    v["status"] = status;
    return {code, v.dump()};
  }

  /// Dispatch a /predict body to the service's worker pool. The loop thread
  /// never parses bodies or waits on predictions; the finished reply is
  /// posted back and lands in `slot`.
  void offload_predict(const std::shared_ptr<Conn>& conn,
                       const std::shared_ptr<Slot>& slot, std::string body,
                       bool keep_alive) {
    outstanding_.fetch_add(1);
    try {
      (void)service_.task_queue().submit(
          [this, conn, slot, body = std::move(body), keep_alive]() -> int {
            predict_job(conn, slot, body, keep_alive);
            return 0;
          });
    } catch (...) {
      outstanding_.fetch_sub(1);
      errors_.fetch_add(1);
      fill_slot(slot, 500,
                encode_error_text(
                    JsonValue(),
                    WireError{"internal", "failed to queue request", 0.0}),
                /*keep_alive=*/false, {});
      pump(conn);
    }
  }

  /// Runs on a TaskQueue worker. Must not block on prediction futures (the
  /// queue's deadlock rule) — completions are subscribed instead.
  void predict_job(const std::shared_ptr<Conn>& conn,
                   const std::shared_ptr<Slot>& slot, const std::string& body,
                   bool keep_alive) {
    // Ingress trace: created here (not on the loop thread) so the untraced
    // path costs the loop nothing; the id ties the span tree to the
    // X-Request-Id the client sees.
    obs::TracePtr trace;
    if (service_.tracing_enabled()) {
      trace = std::make_shared<obs::Trace>(slot->request_id);
    }
    try {
      JsonValue doc;
      WireRequest wire;
      bool is_batch = false;
      {
        // The parse span covers the JSON document and (single-request
        // bodies) the eps/J grid decode — the real ingress byte-crunching.
        obs::ScopedSpan span("ingress.parse", trace.get(), hist_parse_ms_);
        doc = io::json_parse(body);
        is_batch = doc.is_array();
        if (!is_batch) wire = parse_request(doc, defaults_);
      }
      if (is_batch) {
        predict_batch(conn, slot, doc.as_array(), keep_alive);
      } else {
        wire.request.trace = trace;
        auto future = service_.submit(std::move(wire.request));
        auto id = std::make_shared<JsonValue>(std::move(wire.id));
        const bool return_field = wire.return_field;
        future.subscribe([this, conn, slot, keep_alive, future, id,
                          return_field]() mutable {
          int status = 200;
          std::string reply;
          std::vector<std::pair<std::string, std::string>> extra;
          try {
            reply = encode_response_text(*id, future.get(), return_field);
          } catch (...) {
            const WireError err = classify_error(std::current_exception());
            status = status_for(err.code);
            if (err.code == "overloaded") {
              extra.emplace_back("Retry-After",
                                 retry_after_seconds(err.retry_after_ms));
            }
            errors_.fetch_add(1);
            reply = encode_error_text(*id, err);
          }
          deliver(conn, slot, status, std::move(reply), keep_alive,
                  std::move(extra));
        });
      }
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      deliver(conn, slot, 400,
              encode_error_text(JsonValue(),
                                WireError{"bad_request", e.what(), 0.0}),
              keep_alive, {});
    }
  }

  /// JSON-array body: one wire request per element, answered as a JSON array
  /// in element order. Element failures are per-element error objects; the
  /// HTTP status stays 200 (the batch itself was well-formed).
  void predict_batch(const std::shared_ptr<Conn>& conn,
                     const std::shared_ptr<Slot>& slot,
                     const io::JsonArray& batch, bool keep_alive) {
    require(!batch.empty(), "serve request: empty batch");
    struct BatchState {
      std::vector<runtime::Future<ServeResponse>> futures;  // invalid = error
      std::vector<std::string> error_texts;
      std::vector<JsonValue> ids;
      std::vector<char> return_field;
      std::atomic<std::size_t> remaining{0};
    };
    auto state = std::make_shared<BatchState>();
    const std::size_t n = batch.size();
    state->futures.resize(n);
    state->error_texts.resize(n);
    state->ids.resize(n);
    state->return_field.assign(n, 1);

    std::size_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        WireRequest wire = parse_request(batch[i], defaults_);
        state->ids[i] = std::move(wire.id);
        state->return_field[i] = wire.return_field ? 1 : 0;
        if (service_.tracing_enabled()) {
          // One trace per element (suffixed id): element latencies differ,
          // so each gets its own slow-dump decision.
          wire.request.trace = std::make_shared<obs::Trace>(
              slot->request_id + "#" + std::to_string(i));
        }
        state->futures[i] = service_.submit(std::move(wire.request));
        ++live;
      } catch (const std::exception& e) {
        errors_.fetch_add(1);
        state->error_texts[i] = encode_error_text(
            state->ids[i], WireError{"bad_request", e.what(), 0.0});
      }
    }

    auto finalize = [this, conn, slot, keep_alive, state]() {
      std::string reply;
      reply.push_back('[');
      for (std::size_t i = 0; i < state->futures.size(); ++i) {
        if (i > 0) reply.push_back(',');
        if (!state->error_texts[i].empty()) {
          reply += state->error_texts[i];
        } else {
          try {
            reply += encode_response_text(state->ids[i], state->futures[i].get(),
                                          state->return_field[i] != 0);
          } catch (...) {
            errors_.fetch_add(1);
            reply += encode_error_text(
                state->ids[i], classify_error(std::current_exception()));
          }
        }
      }
      reply.push_back(']');
      deliver(conn, slot, 200, std::move(reply), keep_alive, {});
    };

    if (live == 0) {
      finalize();
      return;
    }
    state->remaining.store(live);
    for (std::size_t i = 0; i < n; ++i) {
      if (!state->futures[i].valid()) continue;
      state->futures[i].subscribe([state, finalize]() {
        if (state->remaining.fetch_sub(1) == 1) finalize();
      });
    }
  }

  /// Thread-safe terminal of every offloaded request: serialize the HTTP
  /// bytes, post them onto the loop thread, release the outstanding slot.
  void deliver(const std::shared_ptr<Conn>& conn,
               const std::shared_ptr<Slot>& slot, int status, std::string body,
               bool keep_alive,
               std::vector<std::pair<std::string, std::string>> extra = {}) {
    if (!slot->request_id.empty()) {
      extra.emplace_back("X-Request-Id", slot->request_id);
    }
    std::string bytes =
        net::http_response(status, "application/json", body, keep_alive, extra);
    loop_.post([this, conn, slot, bytes = std::move(bytes), keep_alive]() mutable {
      if (conn->closed) return;
      slot->bytes = std::move(bytes);
      slot->close_after = !keep_alive;
      slot->ready = true;
      pump(conn);
    });
    // Decrement only after the post: once outstanding_ reads zero, no new
    // closures can be in flight toward the loop.
    outstanding_.fetch_sub(1);
  }

  std::shared_ptr<Slot> push_slot(const std::shared_ptr<Conn>& conn) {
    auto slot = std::make_shared<Slot>();
    slot->request_id = current_request_id_;
    conn->slots.push_back(slot);
    return slot;
  }

  /// Loop thread: complete a slot in place (inline endpoints, parse errors).
  void fill_slot(const std::shared_ptr<Slot>& slot, int status,
                 const std::string& body, bool keep_alive,
                 std::vector<std::pair<std::string, std::string>> extra,
                 const char* content_type = "application/json") {
    if (!slot->request_id.empty()) {
      extra.emplace_back("X-Request-Id", slot->request_id);
    }
    slot->bytes = net::http_response(status, content_type, body, keep_alive, extra);
    slot->close_after = !keep_alive;
    slot->ready = true;
  }

  void reply_error(const std::shared_ptr<Conn>& conn, const WireError& err,
                   bool keep_alive,
                   std::vector<std::pair<std::string, std::string>> extra = {}) {
    errors_.fetch_add(1);
    if (err.code == "overloaded") {
      extra.emplace_back("Retry-After", retry_after_seconds(err.retry_after_ms));
    }
    auto slot = push_slot(conn);
    fill_slot(slot, status_for(err.code), encode_error_text(JsonValue(), err),
              keep_alive, extra);
  }

  /// Move ready head slots into the write buffer, in request order, then
  /// flush. A close_after slot seals the connection: later pipelined slots
  /// are dropped (the peer asked for the close).
  void pump(const std::shared_ptr<Conn>& conn) {
    if (conn->closed) return;
    while (!conn->close_when_drained && !conn->slots.empty() &&
           conn->slots.front()->ready) {
      const auto slot = conn->slots.front();
      conn->slots.pop_front();
      conn->out.append(slot->bytes);
      if (slot->close_after) {
        conn->close_when_drained = true;
        conn->slots.clear();
        conn->eof = true;
      }
    }
    flush(conn);
    if (conn->closed) return;
    // Reads resume once the pipeline window and write backlog have room.
    if (conn->read_paused && !conn->eof && conn->slots.size() < window_ &&
        conn->out.size() <= kOutBufferCap) {
      conn->read_paused = false;
      update_interest(conn);
      process_input(conn);
    }
  }

  void flush(const std::shared_ptr<Conn>& conn) {
    if (conn->closed) return;
    while (!conn->out.empty()) {
      // Chaos hook: an armed "http.write" io fault models the peer closing
      // mid-reply (EPIPE without the syscall).
      if (runtime::fault::point("http.write")) {
        errors_.fetch_add(1);
        close_conn(conn);
        return;
      }
      const std::string_view view = conn->out.readable();
      const ssize_t n = ::send(conn->fd, view.data(), view.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn->out.consume(static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          update_interest(conn);
        }
        return;
      }
      errors_.fetch_add(1);  // peer went away mid-reply
      close_conn(conn);
      return;
    }
    if (conn->want_write) {
      conn->want_write = false;
      update_interest(conn);
    }
    if (conn->close_when_drained || (conn->eof && conn->slots.empty())) {
      close_conn(conn);
    }
  }

  void update_interest(const std::shared_ptr<Conn>& conn) {
    if (conn->closed) return;
    std::uint32_t mask = 0;
    if (!conn->eof && !conn->read_paused) mask |= net::EventLoop::kRead;
    if (conn->want_write) mask |= net::EventLoop::kWrite;
    loop_.set_interest(conn->fd, mask);
  }

  void close_conn(const std::shared_ptr<Conn>& conn) {
    if (conn->closed) return;
    conn->closed = true;
    loop_.remove_fd(conn->fd);
    ::close(conn->fd);
    conns_.erase(conn->fd);
  }

  PredictionService& service_;
  const WireDefaults& defaults_;
  const HttpOptions& options_;
  JobManager* jobs_;
  std::ostream* log_;
  obs::Histogram* hist_parse_ms_;
  net::EventLoop loop_;
  net::HttpLimits limits_;
  std::size_t window_ = 64;
  int listener_fd_ = -1;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  bool draining_ = false;
  double drain_until_ = 0.0;
  std::size_t connections_ = 0;
  /// Request id of the request currently being routed on the loop thread;
  /// push_slot copies it into the slot it creates.
  std::string current_request_id_;
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> errors_{0};
  /// Predict jobs whose completion has not yet been posted to the loop.
  std::atomic<int> outstanding_{0};
};

}  // namespace

HttpServeReport serve_http(PredictionService& service,
                           const WireDefaults& defaults,
                           const HttpOptions& options, std::ostream* log,
                           std::atomic<int>* bound_port) {
  HttpServer server(service, defaults, options, log);
  return server.run(bound_port);
}

}  // namespace maps::serve
