#include "serve/batcher.hpp"

#include "runtime/deadline.hpp"
#include "runtime/fault.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace maps::serve {

MicroBatcher::MicroBatcher(BatcherOptions options)
    : options_(options),
      queue_(options.queue != nullptr ? options.queue : &runtime::TaskQueue::shared()) {
  require(options_.max_batch >= 1, "MicroBatcher: max_batch must be >= 1");
  require(options_.max_delay_ms >= 0.0, "MicroBatcher: max_delay_ms must be >= 0");
  hist_queue_ms_ = &obs::registry().histogram("serve.batch.queue_ms");
  hist_forward_ms_ = &obs::registry().histogram("serve.surrogate.forward_ms");
  flusher_ = std::thread([this] { flusher_loop(); });
}

MicroBatcher::~MicroBatcher() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  flusher_.join();  // the flusher drains pending_ before exiting
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

BatcherStats MicroBatcher::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void MicroBatcher::submit(BatchJob job) {
  require(job.model != nullptr && job.model->model != nullptr,
          "MicroBatcher::submit: job carries no model snapshot");
  if (obs::metrics_enabled() || job.trace != nullptr) {
    job.enqueued_ms = runtime::now_steady_ms();
  }
  {
    std::lock_guard lk(mu_);
    require(!stop_, "MicroBatcher::submit: batcher is shutting down");
    pending_.push_back({std::move(job), Clock::now()});
    ++stats_.requests;
  }
  cv_.notify_one();
}

void MicroBatcher::flusher_loop() {
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  std::unique_lock lk(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lk, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    const std::size_t max_batch = static_cast<std::size_t>(options_.max_batch);
    bool full = pending_.size() >= max_batch;
    if (!full && !stop_) {
      // Wait out the oldest request's deadline or a fill-up, whichever first.
      const auto deadline = pending_.front().enqueued + delay;
      cv_.wait_until(lk, deadline, [this, max_batch] {
        return stop_ || pending_.size() >= max_batch;
      });
      if (pending_.empty()) continue;
      full = pending_.size() >= max_batch;
      if (!full && !stop_ && Clock::now() < deadline) continue;  // spurious wake
    }

    const std::size_t take = std::min(pending_.size(), max_batch);
    std::vector<BatchJob> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front().job));
      pending_.pop_front();
    }
    ++stats_.batches;
    if (full) {
      ++stats_.full_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    stats_.max_batch_seen = std::max<std::uint64_t>(stats_.max_batch_seen, take);
    ++in_flight_;
    lk.unlock();
    dispatch(std::move(batch));
    lk.lock();
  }
}

void MicroBatcher::dispatch(std::vector<BatchJob> batch) {
  // The batch rides in a shared_ptr so it survives a throwing enqueue: if
  // the queue refuses the job (shutdown race, allocation failure), the
  // catch still holds the jobs and can fail them instead of leaving their
  // callers hung in Future::get.
  auto shared = std::make_shared<std::vector<BatchJob>>(std::move(batch));
  const auto complete = [this] {
    std::lock_guard lk(mu_);
    --in_flight_;
    // Notify while holding mu_: the destructor waits on in_flight_ == 0
    // and may destroy this object the moment it observes it, so this
    // thread's last touch of cv_idle_ must happen before mu_ is released.
    cv_idle_.notify_all();
  };
  try {
    // The future is intentionally dropped: completion flows through the job
    // callbacks, and the destructor tracks in_flight_ instead.
    (void)queue_->submit([this, shared, complete]() -> int {
      run_batch(*shared);
      complete();
      return 0;
    });
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (auto& job : *shared) job.done(nn::Tensor{}, error);
    complete();
  }
}

void MicroBatcher::run_batch(std::vector<BatchJob>& batch) const {
  // The queue is FIFO and model installs are monotone, so jobs for different
  // model snapshots sit in consecutive runs: stack and infer one run at a
  // time. In steady state this is the whole batch; across a hot-swap the
  // batch splits at the swap point instead of running old-encoded inputs
  // through the new model. Runs also split on input shape: requests for
  // different grid sizes can co-arrive within one flush window, and a
  // mixed-shape run cannot stack — each shape gets its own forward instead
  // of failing every job in the batch.
  std::size_t lo = 0;
  while (lo < batch.size()) {
    std::size_t hi = lo + 1;
    while (hi < batch.size() && batch[hi].model == batch[lo].model &&
           batch[hi].input.same_shape(batch[lo].input)) {
      ++hi;
    }
    // Stage timing: each job's queue wait (submit -> run start), then one
    // forward span shared by every job in the run — the batch is the unit
    // of inference, so coalesced requests legitimately share the interval.
    bool timed = obs::metrics_enabled();
    for (std::size_t i = lo; i < hi && !timed; ++i) {
      timed = batch[i].trace != nullptr;
    }
    const double run_start = timed ? runtime::now_steady_ms() : 0.0;
    if (timed) {
      for (std::size_t i = lo; i < hi; ++i) {
        BatchJob& job = batch[i];
        if (job.enqueued_ms <= 0.0) continue;
        if (obs::metrics_enabled()) {
          hist_queue_ms_->record(run_start - job.enqueued_ms);
        }
        if (job.trace != nullptr) {
          job.trace->add_span("batch.queue", job.enqueued_ms, run_start);
        }
      }
    }
    std::exception_ptr error;
    std::vector<nn::Tensor> outputs;
    try {
      // Chaos hook: MAPS_FAULTS "batcher.run_batch" breaks or stalls the
      // stacked forward inside the per-run try, so an injected throw flows
      // through the same error delivery as a real inference failure (and
      // the service's single-sample retry path absorbs it).
      runtime::fault::point("batcher.run_batch");
      // Stack the rows straight out of the jobs (no intermediate copy), run
      // one const forward, split back per request.
      const nn::Tensor& first = batch[lo].input;
      require(first.ndim() == 4 && first.size(0) == 1,
              "MicroBatcher: job inputs must be (1, C, H, W)");
      const index_t row = first.numel();
      nn::Tensor stacked({static_cast<index_t>(hi - lo), first.size(1),
                          first.size(2), first.size(3)});
      for (std::size_t i = lo; i < hi; ++i) {
        require(batch[i].input.same_shape(first),
                "MicroBatcher: input shape mismatch");
        std::copy(batch[i].input.data(), batch[i].input.data() + row,
                  stacked.data() + static_cast<index_t>(i - lo) * row);
      }
      outputs = nn::split_batch(batch[lo].model->model->infer(stacked));
    } catch (...) {
      error = std::current_exception();
    }
    if (timed) {
      const double run_end = runtime::now_steady_ms();
      if (obs::metrics_enabled()) hist_forward_ms_->record(run_end - run_start);
      for (std::size_t i = lo; i < hi; ++i) {
        if (batch[i].trace != nullptr) {
          batch[i].trace->add_span("surrogate.forward", run_start, run_end);
        }
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      if (error != nullptr) {
        batch[i].done(nn::Tensor{}, error);
      } else {
        batch[i].done(std::move(outputs[i - lo]), nullptr);
      }
    }
    lo = hi;
  }
}

}  // namespace maps::serve
