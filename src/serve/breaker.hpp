// Circuit breaker for the solver-escalation tier.
//
// The solver is the expensive, stateful, occasionally-slow tier of the
// serving pipeline. When it starts failing (or timing out) consistently,
// continuing to send every escalation through it turns one outage into a
// pipeline-wide pile-up. The breaker is the standard three-state machine:
//
//   Closed    everything flows; N consecutive failures trip it Open.
//   Open      allow() refuses until the backoff elapses; the service
//             answers from the surrogate tier instead, tagged
//             "degraded": true (graceful degradation, not an error).
//   HalfOpen  after the backoff, a bounded number of probe attempts pass
//             through. A probe success closes the breaker; a failure
//             re-opens it with exponentially grown backoff (capped).
//
// Thread-safe; time base is the steady clock (runtime::now_steady_ms).
#pragma once

#include <cstdint>
#include <mutex>

namespace maps::serve {

enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerOptions {
  /// Consecutive failures that trip the breaker open. <= 0 disables it
  /// (allow() always true, nothing recorded).
  int failure_threshold = 5;
  double backoff_ms = 1000.0;        // first open period
  double backoff_multiplier = 2.0;   // growth per re-open from half-open
  double backoff_max_ms = 30000.0;
  int half_open_probes = 1;          // concurrent probes allowed half-open
};

struct BreakerStats {
  BreakerState state = BreakerState::Closed;
  std::uint64_t failures = 0;       // record_failure() calls
  std::uint64_t successes = 0;      // record_success() calls
  std::uint64_t open_total = 0;     // times the breaker tripped open
  std::uint64_t rejected = 0;       // allow() == false occurrences
  double current_backoff_ms = 0.0;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {});

  /// May an attempt proceed? Closed: always. Open: false until the backoff
  /// elapses, then the breaker turns HalfOpen and admits probes. HalfOpen:
  /// true while fewer than half_open_probes attempts are outstanding.
  /// Every allow() == true MUST be matched by exactly one record_success()
  /// or record_failure() for the attempt.
  bool allow();

  void record_success();
  void record_failure();
  /// Release an allow() == true reservation whose attempt never ran (e.g.
  /// the request's deadline expired in the queue before the solver started):
  /// no outcome is recorded, a half-open probe slot is returned.
  void cancel();

  BreakerState state() const;
  BreakerStats stats() const;

 private:
  void open_locked(double now);

  BreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int probes_outstanding_ = 0;
  double opened_at_ms_ = 0.0;
  double backoff_ms_ = 0.0;
  BreakerStats stats_;
};

}  // namespace maps::serve
