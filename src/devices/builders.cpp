#include "devices/builders.hpp"

#include <algorithm>
#include <cmath>

#include "fdfd/monitor.hpp"
#include "fdfd/source.hpp"
#include "grid/materials.hpp"
#include "grid/structure.hpp"
#include "heat/heat_solver.hpp"
#include "param/blur.hpp"

namespace maps::devices {

using fdfd::Axis;
using fdfd::FomTerm;
using fdfd::Goal;
using fdfd::Mode;
using fdfd::Port;
using grid::GridSpec;
using grid::Structure;
using maps::math::CplxGrid;
using maps::math::RealGrid;

namespace {

// Physical layout constants [um], shared by every device.
constexpr double kDomain = 6.4;
constexpr double kCenter = 3.2;
constexpr double kPmlUm = 1.0;
constexpr double kBoxLo = 2.0, kBoxHi = 4.4;  // design region
constexpr double kWgSingle = 0.4;
constexpr double kWgMulti = 1.0;
constexpr double kPortIn = 1.4, kPortOut = 5.0;  // port planes
constexpr double kPortHalfSpan = 1.0;            // single-mode port half-width
constexpr double kPortHalfSpanWide = 1.3;        // multimode port half-width
constexpr int kNormShift = 8;                    // norm monitor offset [base cells]

const double kEpsSi = grid::kSilicon.eps();
const double kEpsClad = grid::kSilica.eps();

struct Layout {
  GridSpec spec;
  int f = 1;  // fidelity factor
  index_t at(double x) const {
    return static_cast<index_t>(std::llround(x / spec.dl));
  }
};

Layout make_layout(int fidelity) {
  maps::require(fidelity >= 1 && fidelity <= 8, "make_device: bad fidelity");
  Layout lay;
  lay.f = fidelity;
  lay.spec = GridSpec{64 * fidelity, 64 * fidelity, 0.1 / fidelity};
  return lay;
}

fdfd::SimOptions sim_options(const Layout& lay) {
  fdfd::SimOptions o;
  o.pml.ncells = static_cast<int>(std::llround(kPmlUm / lay.spec.dl));
  return o;
}

Port x_port(const Layout& lay, double x, double y_center, double half_span, int dir,
            std::string name) {
  Port p;
  p.normal = Axis::X;
  p.pos = lay.at(x);
  p.lo = lay.at(y_center - half_span);
  p.hi = lay.at(y_center + half_span);
  p.direction = dir;
  p.name = std::move(name);
  return p;
}

Port y_port(const Layout& lay, double y, double x_center, double half_span, int dir,
            std::string name) {
  Port p;
  p.normal = Axis::Y;
  p.pos = lay.at(y);
  p.lo = lay.at(x_center - half_span);
  p.hi = lay.at(x_center + half_span);
  p.direction = dir;
  p.name = std::move(name);
  return p;
}

/// Straight-waveguide normalization structure along the source port's axis.
Structure norm_structure(const Layout& lay, const Port& src, double wg_width) {
  Structure s(lay.spec, kEpsClad);
  const double c = (src.normal == Axis::X)
                       ? (static_cast<double>(src.lo + src.hi) / 2.0) * lay.spec.dl
                       : (static_cast<double>(src.lo + src.hi) / 2.0) * lay.spec.dl;
  if (src.normal == Axis::X) {
    s.add_waveguide_x(c, wg_width, 0.0, kDomain);
  } else {
    s.add_waveguide_y(c, wg_width, 0.0, kDomain);
  }
  return s;
}

struct TargetSpec {
  Port port;
  int mode = 0;
  Goal goal = Goal::Maximize;
  double weight = 1.0;
};

struct ExcSpec {
  std::string name;
  double lambda = 1.55;
  Port src;
  int src_mode = 0;
  double src_wg_width = kWgSingle;
  std::vector<TargetSpec> targets;
  double weight = 1.0;
  RealGrid delta_eps;  // empty = none
};

/// Resolve an excitation: mode-solve the source, run the normalization
/// simulation for the input power, and build normalized FoM terms against
/// the device's blank (density-0) permittivity.
Excitation resolve_excitation(const Layout& lay, const RealGrid& blank_eps,
                              const ExcSpec& es) {
  const double omega = omega_of_wavelength(es.lambda);
  const auto opts = sim_options(lay);

  // --- Normalization run on the straight-through structure.
  const Structure norm_s = norm_structure(lay, es.src, es.src_wg_width);
  const RealGrid norm_eps = norm_s.render();
  const auto src_eps_line = fdfd::eps_along_port(norm_eps, es.src);
  const auto src_modes = fdfd::solve_slab_modes(src_eps_line, lay.spec.dl, omega,
                                                es.src_mode + 1);
  maps::require(static_cast<int>(src_modes.size()) > es.src_mode,
                "resolve_excitation: source mode not guided");
  const Mode& src_mode = src_modes[static_cast<std::size_t>(es.src_mode)];

  Excitation exc;
  exc.name = es.name;
  exc.omega = omega;
  exc.weight = es.weight;
  exc.source_port = es.src;
  exc.source_mode = es.src_mode;
  exc.J = fdfd::mode_source_directional(lay.spec, es.src, src_mode);
  if (es.delta_eps.size() > 0) exc.delta_eps = es.delta_eps;

  fdfd::Simulation norm_sim(lay.spec, norm_eps, omega, opts);
  const CplxGrid norm_Ez = norm_sim.solve(exc.J);
  const Port norm_mon = es.src.shifted(kNormShift * lay.f);
  const cplx a_in = fdfd::mode_overlap(norm_Ez, norm_mon, src_mode, lay.spec.dl);
  exc.input_norm = std::norm(a_in);
  maps::require(exc.input_norm > 1e-12,
                "resolve_excitation: normalization run produced no power");

  // --- Targets, mode-solved on the device's blank permittivity.
  for (const auto& ts : es.targets) {
    const auto line = fdfd::eps_along_port(blank_eps, ts.port);
    const auto modes = fdfd::solve_slab_modes(line, lay.spec.dl, omega, ts.mode + 1);
    maps::require(static_cast<int>(modes.size()) > ts.mode,
                  "resolve_excitation: target mode not guided");
    FomTerm term;
    term.coeffs =
        fdfd::mode_monitor_coeffs(lay.spec, ts.port, modes[static_cast<std::size_t>(ts.mode)]);
    term.norm = exc.input_norm;
    term.weight = ts.weight;
    term.goal = ts.goal;
    term.name = ts.port.name + ":m" + std::to_string(ts.mode);
    exc.terms.push_back(std::move(term));
  }
  return exc;
}

param::DesignMap design_map_for(const Layout& lay, const Structure& s) {
  param::DesignMap dm;
  dm.box = grid::BoxRegion{lay.at(kBoxLo), lay.at(kBoxLo), lay.at(kBoxHi) - lay.at(kBoxLo),
                           lay.at(kBoxHi) - lay.at(kBoxLo)};
  dm.eps_lo = kEpsClad;
  dm.eps_hi = kEpsSi;
  dm.base_eps = s.render();
  return dm;
}

DeviceProblem finalize(const Layout& lay, std::string name, const Structure& s,
                       const std::vector<ExcSpec>& specs) {
  DeviceProblem d;
  d.name = std::move(name);
  d.spec = lay.spec;
  d.sim_options = sim_options(lay);
  // Sized for a corner sweep: every litho corner of a multi-excitation
  // device can stay resident between the optimization and report passes.
  d.solver_cache = std::make_shared<solver::FactorizationCache>(
      std::max<std::size_t>(8, 4 * specs.size()));
  d.design_map = design_map_for(lay, s);
  const RealGrid blank = d.blank_eps();
  for (const auto& es : specs) {
    d.excitations.push_back(resolve_excitation(lay, blank, es));
  }
  return d;
}

// ---------------------------------------------------------------- devices --

DeviceProblem build_bend(const Layout& lay, const BuildOptions& o) {
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgSingle, 0.0, kBoxLo);   // west feed
  s.add_waveguide_y(kCenter, kWgSingle, 0.0, kBoxLo);   // south exit

  ExcSpec e;
  e.name = "fwd";
  e.lambda = o.lambda;
  e.src = x_port(lay, kPortIn, kCenter, kPortHalfSpan, +1, "in_w");
  e.targets = {{y_port(lay, kDomain - kPortOut, kCenter, kPortHalfSpan, -1, "out_s"),
                0, Goal::Maximize, 1.0}};
  return finalize(lay, "bending", s, {e});
}

DeviceProblem build_crossing(const Layout& lay, const BuildOptions& o) {
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgSingle, 0.0, kBoxLo);
  s.add_waveguide_x(kCenter, kWgSingle, kBoxHi, kDomain);
  s.add_waveguide_y(kCenter, kWgSingle, 0.0, kBoxLo);
  s.add_waveguide_y(kCenter, kWgSingle, kBoxHi, kDomain);

  ExcSpec e;
  e.name = "through";
  e.lambda = o.lambda;
  e.src = x_port(lay, kPortIn, kCenter, kPortHalfSpan, +1, "in_w");
  e.targets = {
      {x_port(lay, kPortOut, kCenter, kPortHalfSpan, +1, "out_e"), 0, Goal::Maximize, 1.0},
      {y_port(lay, kPortOut, kCenter, kPortHalfSpan, +1, "out_n"), 0, Goal::Minimize, 0.5},
      {y_port(lay, kDomain - kPortOut, kCenter, kPortHalfSpan, -1, "out_s"), 0,
       Goal::Minimize, 0.5},
  };
  return finalize(lay, "crossing", s, {e});
}

DeviceProblem build_diode(const Layout& lay, const BuildOptions& o) {
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgSingle, 0.0, kBoxLo);
  s.add_waveguide_x(kCenter, kWgSingle, kBoxHi, kDomain);

  ExcSpec fwd;
  fwd.name = "forward";
  fwd.lambda = o.lambda;
  fwd.src = x_port(lay, kPortIn, kCenter, kPortHalfSpan, +1, "in_w");
  fwd.targets = {{x_port(lay, kPortOut, kCenter, kPortHalfSpan, +1, "out_e"), 0,
                  Goal::Maximize, 1.0}};

  ExcSpec bwd;
  bwd.name = "backward";
  bwd.lambda = o.lambda;
  bwd.src = x_port(lay, kPortOut, kCenter, kPortHalfSpan, -1, "in_e");
  bwd.targets = {{x_port(lay, kPortIn, kCenter, kPortHalfSpan, -1, "out_w"), 0,
                  Goal::Minimize, 1.0}};
  bwd.weight = 0.5;

  return finalize(lay, "optical_diode", s, {fwd, bwd});
}

DeviceProblem build_wdm(const Layout& lay, const BuildOptions& o) {
  const double y1 = 4.0, y2 = 2.4;  // output arm centers
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgSingle, 0.0, kBoxLo);
  s.add_waveguide_x(y1, kWgSingle, kBoxHi, kDomain);
  s.add_waveguide_x(y2, kWgSingle, kBoxHi, kDomain);

  const double half = 0.7;  // narrower spans: the two arms must not overlap
  auto out1 = x_port(lay, kPortOut, y1, half, +1, "out_top");
  auto out2 = x_port(lay, kPortOut, y2, half, +1, "out_bot");

  ExcSpec e1;
  e1.name = "lambda1";
  e1.lambda = o.wdm_lambda1;
  e1.src = x_port(lay, kPortIn, kCenter, kPortHalfSpan, +1, "in_w");
  e1.targets = {{out1, 0, Goal::Maximize, 1.0}, {out2, 0, Goal::Minimize, 0.5}};

  ExcSpec e2;
  e2.name = "lambda2";
  e2.lambda = o.wdm_lambda2;
  e2.src = e1.src;
  e2.targets = {{out2, 0, Goal::Maximize, 1.0}, {out1, 0, Goal::Minimize, 0.5}};

  return finalize(lay, "wdm", s, {e1, e2});
}

DeviceProblem build_mdm(const Layout& lay, const BuildOptions& o) {
  const double y1 = 4.0, y2 = 2.4;
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgMulti, 0.0, kBoxLo);  // multimode feed
  s.add_waveguide_x(y1, kWgSingle, kBoxHi, kDomain);
  s.add_waveguide_x(y2, kWgSingle, kBoxHi, kDomain);

  const double half = 0.7;
  auto out1 = x_port(lay, kPortOut, y1, half, +1, "out_top");
  auto out2 = x_port(lay, kPortOut, y2, half, +1, "out_bot");
  auto in = x_port(lay, kPortIn, kCenter, kPortHalfSpanWide, +1, "in_w");

  ExcSpec e0;
  e0.name = "mode0";
  e0.lambda = o.lambda;
  e0.src = in;
  e0.src_mode = 0;
  e0.src_wg_width = kWgMulti;
  e0.targets = {{out1, 0, Goal::Maximize, 1.0}, {out2, 0, Goal::Minimize, 0.5}};

  ExcSpec e1;
  e1.name = "mode1";
  e1.lambda = o.lambda;
  e1.src = in;
  e1.src_mode = 1;
  e1.src_wg_width = kWgMulti;
  e1.targets = {{out2, 0, Goal::Maximize, 1.0}, {out1, 0, Goal::Minimize, 0.5}};

  return finalize(lay, "mdm", s, {e0, e1});
}

DeviceProblem build_tos(const Layout& lay, const BuildOptions& o) {
  Structure s(lay.spec, kEpsClad);
  s.add_waveguide_x(kCenter, kWgSingle, 0.0, kBoxLo);        // west feed
  s.add_waveguide_x(kCenter, kWgSingle, kBoxHi, kDomain);    // east bar
  s.add_waveguide_y(kCenter, kWgSingle, 0.0, kBoxLo);        // south cross

  // --- Thermal state: heater strip north of the design region. The heater
  // power is normalized so the peak design-region temperature rise equals
  // tos_delta_T (a deliberately strong drive so the 6.4 um domain can switch;
  // real TOS devices integrate the phase over much longer arms).
  heat::HeatProblem hp;
  hp.spec = lay.spec;
  hp.kappa = RealGrid(lay.spec.nx, lay.spec.ny, heat::kKappaSilica);
  const grid::BoxRegion heater{lay.at(kBoxLo), lay.at(4.6), lay.at(kBoxHi) - lay.at(kBoxLo),
                               lay.at(5.0) - lay.at(4.6)};
  hp.power = heat::heater_power_map(lay.spec, heater, 1.0);
  RealGrid T = heat::solve_steady_heat(hp);
  double t_peak = 0.0;
  const grid::BoxRegion box{lay.at(kBoxLo), lay.at(kBoxLo),
                            lay.at(kBoxHi) - lay.at(kBoxLo),
                            lay.at(kBoxHi) - lay.at(kBoxLo)};
  for (index_t j = box.j0; j < box.j0 + box.nj; ++j) {
    for (index_t i = box.i0; i < box.i0 + box.ni; ++i) {
      t_peak = std::max(t_peak, T(i, j));
    }
  }
  maps::require(t_peak > 0.0, "build_tos: heater produced no temperature rise");
  const double t_scale = o.tos_delta_T / t_peak;

  // Thermo-optic permittivity shift applied inside the design region.
  RealGrid delta(lay.spec.nx, lay.spec.ny, 0.0);
  for (index_t j = box.j0; j < box.j0 + box.nj; ++j) {
    for (index_t i = box.i0; i < box.i0 + box.ni; ++i) {
      const double dT = T(i, j) * t_scale;
      delta(i, j) = 2.0 * grid::kSilicon.n * grid::kSilicon.dn_dT * dT;
    }
  }

  auto in = x_port(lay, kPortIn, kCenter, kPortHalfSpan, +1, "in_w");
  auto bar = x_port(lay, kPortOut, kCenter, kPortHalfSpan, +1, "out_bar");
  auto cross = y_port(lay, kDomain - kPortOut, kCenter, kPortHalfSpan, -1, "out_cross");

  ExcSpec cold;
  cold.name = "cold";
  cold.lambda = o.lambda;
  cold.src = in;
  cold.targets = {{bar, 0, Goal::Maximize, 1.0}, {cross, 0, Goal::Minimize, 0.5}};

  ExcSpec hot;
  hot.name = "hot";
  hot.lambda = o.lambda;
  hot.src = in;
  hot.delta_eps = delta;
  hot.targets = {{cross, 0, Goal::Maximize, 1.0}, {bar, 0, Goal::Minimize, 0.5}};

  return finalize(lay, "tos", s, {cold, hot});
}

}  // namespace

const char* device_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Bend: return "bending";
    case DeviceKind::Crossing: return "crossing";
    case DeviceKind::OpticalDiode: return "optical_diode";
    case DeviceKind::Wdm: return "wdm";
    case DeviceKind::Mdm: return "mdm";
    case DeviceKind::Tos: return "tos";
  }
  return "?";
}

std::vector<DeviceKind> all_device_kinds() {
  return {DeviceKind::Bend, DeviceKind::Crossing, DeviceKind::OpticalDiode,
          DeviceKind::Wdm, DeviceKind::Mdm, DeviceKind::Tos};
}

DeviceProblem make_device(DeviceKind kind, const BuildOptions& options) {
  const Layout lay = make_layout(options.fidelity);
  switch (kind) {
    case DeviceKind::Bend: return build_bend(lay, options);
    case DeviceKind::Crossing: return build_crossing(lay, options);
    case DeviceKind::OpticalDiode: return build_diode(lay, options);
    case DeviceKind::Wdm: return build_wdm(lay, options);
    case DeviceKind::Mdm: return build_mdm(lay, options);
    case DeviceKind::Tos: return build_tos(lay, options);
  }
  throw MapsError("make_device: unknown kind");
}

bool device_symmetry(DeviceKind kind, param::SymmetryKind* out) {
  switch (kind) {
    case DeviceKind::Bend:
      *out = param::SymmetryKind::Diagonal;
      return true;
    case DeviceKind::Crossing:
      *out = param::SymmetryKind::C4;
      return true;
    case DeviceKind::OpticalDiode:
      *out = param::SymmetryKind::MirrorY;
      return true;
    default:
      return false;
  }
}

param::DesignPipeline make_default_pipeline(const DeviceProblem& device,
                                            DeviceKind kind,
                                            const PipelineOptions& options) {
  auto p = std::make_unique<param::DirectDensity>(device.design_map.box.ni,
                                                  device.design_map.box.nj);
  param::DesignPipeline pipe(std::move(p), device.design_map);
  pipe.add_transform(std::make_unique<param::BlurFilter>(options.blur_radius));
  param::SymmetryKind sym;
  if (device_symmetry(kind, &sym)) {
    pipe.add_transform(std::make_unique<param::Symmetrize>(sym));
  }
  pipe.add_transform(std::make_unique<param::TanhProject>(options.beta, options.eta));
  return pipe;
}

}  // namespace maps::devices
