// Factory for the six benchmark devices of Fig. 2.
//
// All devices share a 6.4 x 6.4 um silica-clad silicon platform with a
// 2.4 x 2.4 um central design region and 1.0 um PML. The base (low) fidelity
// is a 64 x 64 grid (dl = 0.1 um); fidelity factor f renders the *same*
// physical device at (64 f)^2 — the paired multi-fidelity levels of
// MAPS-Data. Excitation normalization factors come from straight-waveguide
// normalization runs performed at build time.
#pragma once

#include <memory>
#include <vector>

#include "devices/device.hpp"
#include "param/pipeline.hpp"
#include "param/symmetry.hpp"

namespace maps::devices {

enum class DeviceKind { Bend, Crossing, OpticalDiode, Wdm, Mdm, Tos };

const char* device_name(DeviceKind kind);
std::vector<DeviceKind> all_device_kinds();

struct BuildOptions {
  int fidelity = 1;          // resolution multiplier over the 64x64 base
  double lambda = 1.55;      // primary wavelength [um] (WDM overrides per exc.)
  double wdm_lambda1 = 1.50;
  double wdm_lambda2 = 1.60;
  double tos_delta_T = 300.0;  // peak heater temperature rise [K]
};

DeviceProblem make_device(DeviceKind kind, const BuildOptions& options = {});

/// The device's canonical projection chain: blur -> (symmetry) -> tanh
/// projection, matching the per-device symmetry constraints.
struct PipelineOptions {
  double blur_radius = 1.5;  // design-grid cells
  double beta = 8.0;
  double eta = 0.5;
};

param::DesignPipeline make_default_pipeline(const DeviceProblem& device,
                                            DeviceKind kind,
                                            const PipelineOptions& options = {});

/// Symmetry constraint used by a device's canonical pipeline (if any).
bool device_symmetry(DeviceKind kind, param::SymmetryKind* out);

}  // namespace maps::devices
