#include "devices/sparams.hpp"

#include <cmath>
#include <cstdio>

namespace maps::devices {

double SParamMatrix::contrast() const {
  double c = 0.0;
  for (const auto& e : entries) {
    c += (e.goal == fdfd::Goal::Maximize ? 1.0 : -1.0) * e.power;
  }
  return c;
}

const SParamEntry& SParamMatrix::at(const std::string& excitation,
                                    const std::string& monitor) const {
  for (const auto& e : entries) {
    if (e.excitation == excitation && e.monitor == monitor) return e;
  }
  throw MapsError("SParamMatrix::at: no entry " + excitation + "/" + monitor);
}

std::string SParamMatrix::to_string() const {
  std::string out;
  char line[160];
  for (const auto& e : entries) {
    std::snprintf(line, sizeof(line), "  S[%s -> %s] = %+.4f%+.4fi  |S|^2 = %.4f (%s)\n",
                  e.excitation.c_str(), e.monitor.c_str(), e.s.real(), e.s.imag(),
                  e.power, e.goal == fdfd::Goal::Maximize ? "max" : "min");
    out += line;
  }
  return out;
}

SParamMatrix compute_sparams(const DeviceProblem& device,
                             const maps::math::RealGrid& eps) {
  SParamMatrix m;
  for (const auto& exc : device.excitations) {
    fdfd::Simulation sim(device.spec, device.excitation_eps(eps, exc), exc.omega,
                         device.sim_options);
    const auto Ez = sim.solve(exc.J);
    const double inv_sqrt_norm = 1.0 / std::sqrt(exc.input_norm);
    for (const auto& term : exc.terms) {
      SParamEntry e;
      e.excitation = exc.name;
      e.monitor = term.name;
      e.s = fdfd::term_amplitude(term, Ez) * inv_sqrt_norm;
      e.power = std::norm(e.s);
      e.goal = term.goal;
      m.entries.push_back(std::move(e));
    }
  }
  return m;
}

}  // namespace maps::devices
