#include "devices/device.hpp"

namespace maps::devices {

using maps::math::CplxGrid;
using maps::math::RealGrid;

RealGrid DeviceProblem::excitation_eps(const RealGrid& eps, const Excitation& exc) const {
  if (!exc.has_delta()) return eps;
  maps::require(exc.delta_eps.same_shape(eps), "excitation_eps: delta shape mismatch");
  RealGrid out = eps;
  for (index_t n = 0; n < out.size(); ++n) out[n] += exc.delta_eps[n];
  return out;
}

DeviceEval DeviceProblem::evaluate(const RealGrid& eps) const {
  DeviceEval ev;
  for (const auto& exc : excitations) {
    fdfd::Simulation sim(spec, excitation_eps(eps, exc), exc.omega, sim_options);
    ExcitationResult r;
    r.Ez = sim.solve(exc.J);
    r.objective = fdfd::objective_value(exc.terms, r.Ez);
    for (const auto& t : exc.terms) {
      r.transmissions.push_back(fdfd::term_transmission(t, r.Ez));
    }
    ev.fom += exc.weight * r.objective;
    ev.per_excitation.push_back(std::move(r));
  }
  return ev;
}

DeviceProblem::GradEval DeviceProblem::evaluate_with_gradient(const RealGrid& eps) const {
  GradEval ev;
  ev.grad_eps = RealGrid(spec.nx, spec.ny, 0.0);
  for (const auto& exc : excitations) {
    fdfd::Simulation sim(spec, excitation_eps(eps, exc), exc.omega, sim_options);
    ExcitationResult r;
    r.Ez = sim.solve(exc.J);
    r.objective = fdfd::objective_value(exc.terms, r.Ez);
    for (const auto& t : exc.terms) {
      r.transmissions.push_back(fdfd::term_transmission(t, r.Ez));
    }
    const auto adj = fdfd::compute_adjoint(sim, r.Ez, exc.terms);
    for (index_t n = 0; n < ev.grad_eps.size(); ++n) {
      ev.grad_eps[n] += exc.weight * adj.grad_eps[n];
    }
    ev.fom += exc.weight * r.objective;
    ev.per_excitation.push_back(std::move(r));
  }
  return ev;
}

RealGrid DeviceProblem::blank_eps() const {
  return param::embed_density(design_map,
                              RealGrid(design_map.box.ni, design_map.box.nj, 0.0));
}

}  // namespace maps::devices
