#include "devices/device.hpp"

#include <map>

namespace maps::devices {

using maps::math::CplxGrid;
using maps::math::RealGrid;

namespace {

// Excitations that simulate the same operator (same omega, no per-excitation
// eps perturbation) form one group and share a Simulation + multi-RHS batch.
// Perturbed excitations (TOS hot state, corner deltas) get their own group.
std::vector<std::vector<std::size_t>> group_excitations(
    const std::vector<Excitation>& excitations) {
  std::vector<std::vector<std::size_t>> groups;
  std::map<double, std::size_t> shared_by_omega;  // omega -> group index
  for (std::size_t e = 0; e < excitations.size(); ++e) {
    const auto& exc = excitations[e];
    if (exc.has_delta()) {
      groups.push_back({e});
      continue;
    }
    const auto it = shared_by_omega.find(exc.omega);
    if (it == shared_by_omega.end()) {
      shared_by_omega.emplace(exc.omega, groups.size());
      groups.push_back({e});
    } else {
      groups[it->second].push_back(e);
    }
  }
  return groups;
}

}  // namespace

std::vector<std::vector<std::size_t>> DeviceProblem::excitation_groups() const {
  return group_excitations(excitations);
}

fdfd::SimOptions DeviceProblem::cached_sim_options() const {
  fdfd::SimOptions opts = sim_options;
  opts.cache = solver_cache;
  return opts;
}

RealGrid DeviceProblem::excitation_eps(const RealGrid& eps, const Excitation& exc) const {
  if (!exc.has_delta()) return eps;
  maps::require(exc.delta_eps.same_shape(eps), "excitation_eps: delta shape mismatch");
  RealGrid out = eps;
  for (index_t n = 0; n < out.size(); ++n) out[n] += exc.delta_eps[n];
  return out;
}

DeviceProblem::GroupSolution DeviceProblem::solve_excitation_group(
    const RealGrid& base_eps, const std::vector<std::size_t>& group,
    bool with_adjoint, bool use_cache) const {
  maps::require(!group.empty(), "solve_excitation_group: empty group");
  const auto& first = excitations[group.front()];
  GroupSolution gs{fdfd::Simulation(spec, excitation_eps(base_eps, first), first.omega,
                                    use_cache ? cached_sim_options() : sim_options),
                   {}, {}, 0, 0};
  const int f0 = gs.sim.factorization_count(), s0 = gs.sim.solve_count();

  std::vector<CplxGrid> Js;
  Js.reserve(group.size());
  for (const std::size_t e : group) Js.push_back(excitations[e].J);
  gs.fields = gs.sim.solve_batch(Js);

  if (with_adjoint) {
    // All adjoint systems of the group ride one transposed multi-RHS batch
    // against the factorization the forward batch just prepared.
    std::vector<const CplxGrid*> ez_ptrs;
    std::vector<const std::vector<fdfd::FomTerm>*> term_ptrs;
    for (std::size_t k = 0; k < group.size(); ++k) {
      ez_ptrs.push_back(&gs.fields[k]);
      term_ptrs.push_back(&excitations[group[k]].terms);
    }
    gs.adjoints = fdfd::compute_adjoint_batch(gs.sim.backend(), spec, first.omega,
                                              ez_ptrs, term_ptrs);
  }
  gs.factorizations = gs.sim.factorization_count() - f0;
  gs.solves = gs.sim.solve_count() - s0;
  return gs;
}

DeviceEval DeviceProblem::evaluate(const RealGrid& eps) const {
  DeviceEval ev;
  ev.per_excitation.resize(excitations.size());
  for (const auto& group : group_excitations(excitations)) {
    auto gs = solve_excitation_group(eps, group, /*with_adjoint=*/false,
                                     /*use_cache=*/true);
    for (std::size_t k = 0; k < group.size(); ++k) {
      const auto& exc = excitations[group[k]];
      ExcitationResult r;
      r.Ez = std::move(gs.fields[k]);
      r.objective = fdfd::objective_value(exc.terms, r.Ez);
      for (const auto& t : exc.terms) {
        r.transmissions.push_back(fdfd::term_transmission(t, r.Ez));
      }
      ev.fom += exc.weight * r.objective;
      ev.per_excitation[group[k]] = std::move(r);
    }
    ev.factorizations += gs.factorizations;
    ev.solves += gs.solves;
  }
  return ev;
}

DeviceProblem::GradEval DeviceProblem::evaluate_with_gradient(const RealGrid& eps) const {
  GradEval ev;
  ev.grad_eps = RealGrid(spec.nx, spec.ny, 0.0);
  ev.per_excitation.resize(excitations.size());
  for (const auto& group : group_excitations(excitations)) {
    auto gs = solve_excitation_group(eps, group, /*with_adjoint=*/true,
                                     /*use_cache=*/true);
    for (std::size_t k = 0; k < group.size(); ++k) {
      const auto& exc = excitations[group[k]];
      ExcitationResult r;
      r.Ez = std::move(gs.fields[k]);
      r.objective = fdfd::objective_value(exc.terms, r.Ez);
      for (const auto& t : exc.terms) {
        r.transmissions.push_back(fdfd::term_transmission(t, r.Ez));
      }
      for (index_t n = 0; n < ev.grad_eps.size(); ++n) {
        ev.grad_eps[n] += exc.weight * gs.adjoints[k].grad_eps[n];
      }
      ev.fom += exc.weight * r.objective;
      ev.per_excitation[group[k]] = std::move(r);
    }
    ev.factorizations += gs.factorizations;
    ev.solves += gs.solves;
  }
  return ev;
}

RealGrid DeviceProblem::blank_eps() const {
  return param::embed_density(design_map,
                              RealGrid(design_map.box.ni, design_map.box.nj, 0.0));
}

}  // namespace maps::devices
