// DeviceProblem: a fully-resolved inverse-design benchmark instance.
//
// Excitations are the simulation configurations a device is scored under
// (WDM: one per wavelength; MDM: one per input mode; optical diode: forward
// and backward launches; TOS: hot and cold thermal states). Each excitation
// carries its prepared current source, optional permittivity perturbation,
// and normalized FoM terms. The total device FoM is the weighted sum across
// excitations — exactly the multi-objective structure of MAPS-InvDes.
#pragma once

#include <string>
#include <vector>

#include "fdfd/adjoint.hpp"
#include "fdfd/objective.hpp"
#include "fdfd/port.hpp"
#include "fdfd/simulation.hpp"
#include "param/pipeline.hpp"

namespace maps::devices {

struct Excitation {
  std::string name;
  double omega = 0.0;
  maps::math::CplxGrid J;          // prepared (directional mode) source
  maps::math::RealGrid delta_eps;  // additive eps perturbation; empty = none
  std::vector<fdfd::FomTerm> terms;
  double weight = 1.0;
  fdfd::Port source_port;
  int source_mode = 0;
  double input_norm = 1.0;  // |a_in|^2 measured in the normalization run

  bool has_delta() const { return delta_eps.size() > 0; }
};

/// Per-excitation evaluation detail.
struct ExcitationResult {
  double objective = 0.0;                  // signed weighted sum of terms
  std::vector<double> transmissions;       // unsigned T per term
  maps::math::CplxGrid Ez;
};

struct DeviceEval {
  double fom = 0.0;  // sum over excitations of weight * objective
  std::vector<ExcitationResult> per_excitation;
};

class DeviceProblem {
 public:
  std::string name;
  grid::GridSpec spec;
  fdfd::SimOptions sim_options;
  param::DesignMap design_map;      // base_eps rendered from the static geometry
  std::vector<Excitation> excitations;

  /// Permittivity actually simulated for an excitation (adds delta_eps).
  maps::math::RealGrid excitation_eps(const maps::math::RealGrid& eps,
                                      const Excitation& exc) const;

  /// Forward-evaluate a candidate permittivity map across all excitations.
  DeviceEval evaluate(const maps::math::RealGrid& eps) const;

  /// FoM and total dF/deps via one forward+adjoint pair per excitation.
  struct GradEval {
    double fom = 0.0;
    maps::math::RealGrid grad_eps;
    std::vector<ExcitationResult> per_excitation;
  };
  GradEval evaluate_with_gradient(const maps::math::RealGrid& eps) const;

  /// The design region rendered as all-cladding (density 0) map.
  maps::math::RealGrid blank_eps() const;
};

}  // namespace maps::devices
