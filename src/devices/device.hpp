// DeviceProblem: a fully-resolved inverse-design benchmark instance.
//
// Excitations are the simulation configurations a device is scored under
// (WDM: one per wavelength; MDM: one per input mode; optical diode: forward
// and backward launches; TOS: hot and cold thermal states). Each excitation
// carries its prepared current source, optional permittivity perturbation,
// and normalized FoM terms. The total device FoM is the weighted sum across
// excitations — exactly the multi-objective structure of MAPS-InvDes.
#pragma once

#include <string>
#include <vector>

#include "fdfd/adjoint.hpp"
#include "fdfd/objective.hpp"
#include "fdfd/port.hpp"
#include "fdfd/simulation.hpp"
#include "param/pipeline.hpp"

namespace maps::devices {

struct Excitation {
  std::string name;
  double omega = 0.0;
  maps::math::CplxGrid J;          // prepared (directional mode) source
  maps::math::RealGrid delta_eps;  // additive eps perturbation; empty = none
  std::vector<fdfd::FomTerm> terms;
  double weight = 1.0;
  fdfd::Port source_port;
  int source_mode = 0;
  double input_norm = 1.0;  // |a_in|^2 measured in the normalization run

  bool has_delta() const { return delta_eps.size() > 0; }
};

/// Per-excitation evaluation detail.
struct ExcitationResult {
  double objective = 0.0;                  // signed weighted sum of terms
  std::vector<double> transmissions;       // unsigned T per term
  maps::math::CplxGrid Ez;
};

struct DeviceEval {
  double fom = 0.0;  // sum over excitations of weight * objective
  std::vector<ExcitationResult> per_excitation;
  int factorizations = 0;  // LU factorizations this evaluation performed
  int solves = 0;          // linear solves this evaluation performed
};

class DeviceProblem {
 public:
  std::string name;
  grid::GridSpec spec;
  fdfd::SimOptions sim_options;
  param::DesignMap design_map;      // base_eps rendered from the static geometry
  std::vector<Excitation> excitations;
  /// Shared factorization cache for this device's evaluations: corner
  /// sweeps, S-param passes and repeated evaluations of one eps reuse the
  /// prepared backend instead of re-factorizing.
  std::shared_ptr<solver::FactorizationCache> solver_cache;

  /// sim_options with the device cache attached (the options every
  /// evaluation path passes to Simulation).
  fdfd::SimOptions cached_sim_options() const;

  /// Permittivity actually simulated for an excitation (adds delta_eps).
  maps::math::RealGrid excitation_eps(const maps::math::RealGrid& eps,
                                      const Excitation& exc) const;

  /// Excitation indices grouped by shared operator: excitations with the
  /// same omega and no per-excitation eps perturbation can share one
  /// factorization and ride one multi-RHS batch.
  std::vector<std::vector<std::size_t>> excitation_groups() const;

  /// One operator group solved end-to-end: batched forward fields (aligned
  /// with the group's index order), optionally batched adjoints, and the
  /// solver work the group cost. The Simulation member keeps the backend —
  /// and with it op()/W — alive for consumers of the fields.
  struct GroupSolution {
    fdfd::Simulation sim;
    std::vector<maps::math::CplxGrid> fields;
    std::vector<fdfd::AdjointResult> adjoints;  // empty unless requested
    int factorizations = 0;
    int solves = 0;
  };
  GroupSolution solve_excitation_group(const maps::math::RealGrid& base_eps,
                                       const std::vector<std::size_t>& group,
                                       bool with_adjoint, bool use_cache) const;

  /// Forward-evaluate a candidate permittivity map across all excitations.
  /// Excitations sharing one operator (same omega, no per-excitation eps
  /// perturbation) are solved as one multi-RHS batch.
  DeviceEval evaluate(const maps::math::RealGrid& eps) const;

  /// FoM and total dF/deps via forward+adjoint per excitation; forward and
  /// adjoint share one backend per operator, batched per group.
  struct GradEval {
    double fom = 0.0;
    maps::math::RealGrid grad_eps;
    std::vector<ExcitationResult> per_excitation;
    int factorizations = 0;
    int solves = 0;
  };
  GradEval evaluate_with_gradient(const maps::math::RealGrid& eps) const;

  /// The design region rendered as all-cladding (density 0) map.
  maps::math::RealGrid blank_eps() const;
};

}  // namespace maps::devices
