// S-parameter extraction: the complex port-to-port scattering amplitudes of
// a candidate design, normalized by the excitation's input power — the
// "s-param" rich label of MAPS-Data and the quantity black-box surrogates
// regress.
#pragma once

#include <string>
#include <vector>

#include "devices/device.hpp"

namespace maps::devices {

struct SParamEntry {
  std::string excitation;  // input port + drive condition
  std::string monitor;     // output port : mode
  cplx s = 0.0;            // complex amplitude ratio a_out / sqrt(P_in)
  double power = 0.0;      // |s|^2 (the transmission the tables report)
  fdfd::Goal goal = fdfd::Goal::Maximize;
};

struct SParamMatrix {
  std::vector<SParamEntry> entries;

  /// Total power routed to Maximize-targets minus Minimize-targets
  /// (a scalar design score).
  double contrast() const;

  /// Lookup by (excitation, monitor) name; throws if absent.
  const SParamEntry& at(const std::string& excitation,
                        const std::string& monitor) const;

  std::string to_string() const;
};

/// Solve every excitation of the device on `eps` and collect the scattering
/// amplitudes at every FoM monitor.
SParamMatrix compute_sparams(const DeviceProblem& device,
                             const maps::math::RealGrid& eps);

}  // namespace maps::devices
