// DesignPipeline: theta -> P -> G -> eps, with the exact adjoint chain back.
//
// This is the "param / transform" backbone of MAPS-InvDes (Fig. 4):
//   rho      = P(theta)           (Parameterization)
//   rho_bar  = G_k(...G_1(rho))   (Transform chain: blur, symmetry, litho,
//                                  projection, ...)
//   eps      = base_eps outside the design box;
//              eps_lo + rho_bar * (eps_hi - eps_lo) inside.
// backward() reverses the chain, turning dF/deps (from the FDFD adjoint)
// into dF/dtheta for the optimizer.
#pragma once

#include <memory>
#include <vector>

#include "grid/yee_grid.hpp"
#include "param/parameterization.hpp"
#include "param/project.hpp"
#include "param/transform.hpp"

namespace maps::param {

struct DesignMap {
  grid::BoxRegion box;       // design region in sim-grid cells
  double eps_lo = 1.0;       // density 0 material
  double eps_hi = 12.0;      // density 1 material
  RealGrid base_eps;         // full-grid permittivity outside the box
};

class DesignPipeline {
 public:
  DesignPipeline(std::unique_ptr<Parameterization> param, DesignMap map);

  DesignPipeline(const DesignPipeline&) = delete;
  DesignPipeline& operator=(const DesignPipeline&) = delete;
  DesignPipeline(DesignPipeline&&) = default;
  DesignPipeline& operator=(DesignPipeline&&) = default;

  void add_transform(std::unique_ptr<Transform> t);

  int num_params() const { return param_->num_params(); }
  const DesignMap& map() const { return map_; }
  Parameterization& parameterization() { return *param_; }

  /// Post-transform density on the design grid (caches the forward chain).
  RealGrid density(const std::vector<double>& theta);

  /// Full-grid permittivity for the same theta (calls density()).
  RealGrid eps_of(const std::vector<double>& theta);

  /// dF/dtheta from a full-grid dF/deps. Must follow eps_of/density on the
  /// same theta.
  std::vector<double> backward(const RealGrid& grad_eps_full) const;

  /// dF/dtheta from a design-grid dF/drho_bar (e.g. gray-penalty terms).
  std::vector<double> backward_density(const RealGrid& grad_rho_bar) const;

  /// Update beta on every TanhProject in the chain (binarization schedule).
  void set_projection_beta(double beta);

  /// Clamp theta to the parameterization's feasible set.
  void feasible(std::vector<double>& theta) const { param_->feasible(theta); }

 private:
  std::unique_ptr<Parameterization> param_;
  std::vector<std::unique_ptr<Transform>> transforms_;
  DesignMap map_;
};

/// Insert a design-grid tensor into the full eps map.
RealGrid embed_density(const DesignMap& map, const RealGrid& rho_bar);

/// Extract the design-box slice of a full-grid tensor, scaled by
/// (eps_hi - eps_lo) — the adjoint of embed_density.
RealGrid extract_density_grad(const DesignMap& map, const RealGrid& grad_eps_full);

}  // namespace maps::param
