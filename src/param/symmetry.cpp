#include "param/symmetry.hpp"

#include <cmath>

namespace maps::param {

RealGrid Symmetrize::apply(const RealGrid& x) const {
  const index_t nx = x.nx(), ny = x.ny();
  RealGrid y(nx, ny);
  switch (kind_) {
    case SymmetryKind::MirrorX:
      for (index_t j = 0; j < ny; ++j) {
        for (index_t i = 0; i < nx; ++i) {
          y(i, j) = 0.5 * (x(i, j) + x(nx - 1 - i, j));
        }
      }
      break;
    case SymmetryKind::MirrorY:
      for (index_t j = 0; j < ny; ++j) {
        for (index_t i = 0; i < nx; ++i) {
          y(i, j) = 0.5 * (x(i, j) + x(i, ny - 1 - j));
        }
      }
      break;
    case SymmetryKind::Diagonal:
      maps::require(nx == ny, "Symmetrize: diagonal symmetry needs a square grid");
      for (index_t j = 0; j < ny; ++j) {
        for (index_t i = 0; i < nx; ++i) {
          y(i, j) = 0.5 * (x(i, j) + x(j, i));
        }
      }
      break;
    case SymmetryKind::C4:
      maps::require(nx == ny, "Symmetrize: C4 symmetry needs a square grid");
      for (index_t j = 0; j < ny; ++j) {
        for (index_t i = 0; i < nx; ++i) {
          // Average over the orbit of the 90-degree rotation group.
          y(i, j) = 0.25 * (x(i, j) + x(ny - 1 - j, i) + x(nx - 1 - i, ny - 1 - j) +
                            x(j, nx - 1 - i));
        }
      }
      break;
  }
  return y;
}

double Symmetrize::asymmetry(const RealGrid& x, SymmetryKind kind) {
  Symmetrize s(kind);
  const RealGrid y = s.apply(x);
  double m = 0.0;
  for (index_t n = 0; n < x.size(); ++n) m = std::max(m, std::abs(x[n] - y[n]));
  return m;
}

}  // namespace maps::param
