// Smoothed binarization projection (the standard tanh projection of
// topology optimization). beta is sharpened on a schedule during inverse
// design; eta is the threshold (0.5 nominal; litho corners shift it).
#pragma once

#include "param/transform.hpp"

namespace maps::param {

class TanhProject final : public Transform {
 public:
  explicit TanhProject(double beta = 8.0, double eta = 0.5);

  std::string name() const override { return "tanh_project"; }
  RealGrid forward(const RealGrid& x) override;
  RealGrid vjp(const RealGrid& grad_out) const override;
  std::unique_ptr<Transform> clone() const override {
    return std::make_unique<TanhProject>(*this);
  }

  double beta() const { return beta_; }
  double eta() const { return eta_; }
  /// Binarization schedule hook for the inverse-design loop.
  void set_beta(double beta);

  /// rho_bar = (tanh(beta*eta) + tanh(beta*(rho-eta))) / (tanh(beta*eta) + tanh(beta*(1-eta)))
  static double project(double rho, double beta, double eta);
  static double derivative(double rho, double beta, double eta);

 private:
  double beta_, eta_;
  RealGrid cached_x_;
};

}  // namespace maps::param
