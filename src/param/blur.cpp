#include "param/blur.hpp"

#include <cmath>

namespace maps::param {

BlurFilter::BlurFilter(double radius_cells, KernelShape shape)
    : radius_(radius_cells), shape_(shape) {
  maps::require(radius_cells >= 0.0, "BlurFilter: negative radius");
  half_ = static_cast<int>(std::ceil(radius_cells));
  const int w = 2 * half_ + 1;
  kernel_.assign(static_cast<std::size_t>(w) * w, 0.0);
  double total = 0.0;
  for (int dj = -half_; dj <= half_; ++dj) {
    for (int di = -half_; di <= half_; ++di) {
      const double r = std::hypot(static_cast<double>(di), static_cast<double>(dj));
      double v = 0.0;
      if (shape_ == KernelShape::Cone) {
        v = std::max(0.0, radius_ - r + 1.0);  // +1 keeps radius=0 the identity
      } else {
        const double sigma = std::max(radius_ / 2.0, 0.25);
        v = (r <= radius_ + 1e-12 || half_ == 0)
                ? std::exp(-0.5 * (r / sigma) * (r / sigma))
                : 0.0;
      }
      kernel_[static_cast<std::size_t>((dj + half_) * w + (di + half_))] = v;
      total += v;
    }
  }
  for (double& v : kernel_) v /= total;
}

RealGrid BlurFilter::convolve(const RealGrid& x) const {
  const index_t nx = x.nx(), ny = x.ny();
  const int w = 2 * half_ + 1;
  RealGrid y(nx, ny);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      double s = 0.0;
      for (int dj = -half_; dj <= half_; ++dj) {
        const index_t jj = j + dj;
        if (jj < 0 || jj >= ny) continue;
        for (int di = -half_; di <= half_; ++di) {
          const index_t ii = i + di;
          if (ii < 0 || ii >= nx) continue;
          s += kernel_[static_cast<std::size_t>((dj + half_) * w + (di + half_))] *
               x(ii, jj);
        }
      }
      y(i, j) = s;
    }
  }
  return y;
}

RealGrid BlurFilter::forward(const RealGrid& x) {
  if (mass_.nx() != x.nx() || mass_.ny() != x.ny()) {
    RealGrid ones(x.nx(), x.ny(), 1.0);
    mass_ = convolve(ones);
  }
  RealGrid y = convolve(x);
  for (index_t n = 0; n < y.size(); ++n) y[n] /= mass_[n];
  return y;
}

RealGrid BlurFilter::vjp(const RealGrid& grad_out) const {
  maps::require(mass_.same_shape(grad_out), "BlurFilter::vjp: call forward first");
  // y = (K x) ./ m  =>  dL/dx = K^T (dL/dy ./ m); K is symmetric.
  RealGrid scaled(grad_out.nx(), grad_out.ny());
  for (index_t n = 0; n < scaled.size(); ++n) scaled[n] = grad_out[n] / mass_[n];
  return convolve(scaled);
}

}  // namespace maps::param
