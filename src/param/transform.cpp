#include "param/transform.hpp"

#include "math/rng.hpp"

namespace maps::param {

double vjp_fd_error(Transform& t, const RealGrid& x, unsigned seed, int probes,
                    double step) {
  maps::math::Rng rng(seed);
  // Random downstream cotangent; analytic grad_x via vjp.
  const RealGrid y0 = t.forward(x);
  RealGrid cot(y0.nx(), y0.ny());
  for (index_t n = 0; n < cot.size(); ++n) cot[n] = rng.uniform(-1.0, 1.0);
  const RealGrid gx = t.vjp(cot);

  double max_err = 0.0;
  for (int p = 0; p < probes; ++p) {
    const index_t n = rng.randint(0, x.size() - 1);
    RealGrid xp = x, xm = x;
    xp[n] += step;
    xm[n] -= step;
    const RealGrid yp = t.forward(xp);
    const RealGrid ym = t.forward(xm);
    double fd = 0.0;
    for (index_t k = 0; k < yp.size(); ++k) fd += cot[k] * (yp[k] - ym[k]);
    fd /= 2.0 * step;
    max_err = std::max(max_err, std::abs(fd - gx[n]));
  }
  // Restore the cache for the original input (forward was called with xp/xm).
  (void)t.forward(x);
  return max_err;
}

}  // namespace maps::param
