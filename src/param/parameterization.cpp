#include "param/parameterization.hpp"

#include <algorithm>
#include <cmath>

#include "math/interpolate.hpp"

namespace maps::param {

RealGrid DirectDensity::to_density(const std::vector<double>& theta) {
  maps::require(static_cast<index_t>(theta.size()) == nx_ * ny_,
                "DirectDensity: theta size mismatch");
  return RealGrid(nx_, ny_, theta);
}

std::vector<double> DirectDensity::vjp(const RealGrid& grad_density) const {
  maps::require(grad_density.nx() == nx_ && grad_density.ny() == ny_,
                "DirectDensity::vjp: shape mismatch");
  return grad_density.data();
}

void DirectDensity::feasible(std::vector<double>& theta) const {
  for (double& t : theta) t = std::clamp(t, 0.0, 1.0);
}

LevelSet::LevelSet(index_t cx, index_t cy, index_t nx, index_t ny, double width)
    : cx_(cx), cy_(cy), nx_(nx), ny_(ny), width_(width) {
  maps::require(cx >= 2 && cy >= 2, "LevelSet: control grid too small");
  maps::require(nx >= cx && ny >= cy, "LevelSet: design grid smaller than control");
  maps::require(width > 0.0, "LevelSet: width must be positive");
}

RealGrid LevelSet::to_density(const std::vector<double>& theta) {
  maps::require(static_cast<index_t>(theta.size()) == cx_ * cy_,
                "LevelSet: theta size mismatch");
  const RealGrid control(cx_, cy_, theta);
  cached_phi_ = maps::math::bilinear_resample(control, nx_, ny_);
  RealGrid rho(nx_, ny_);
  for (index_t n = 0; n < rho.size(); ++n) {
    rho[n] = 0.5 * (1.0 + std::tanh(cached_phi_[n] / width_));
  }
  return rho;
}

std::vector<double> LevelSet::vjp(const RealGrid& grad_density) const {
  maps::require(grad_density.nx() == nx_ && grad_density.ny() == ny_,
                "LevelSet::vjp: shape mismatch");
  maps::require(cached_phi_.size() == grad_density.size(),
                "LevelSet::vjp: call to_density first");
  // d rho / d phi = 0.5 * (1 - tanh^2(phi/w)) / w, then the adjoint of the
  // bilinear upsample scatters back to the control grid.
  RealGrid grad_phi(nx_, ny_);
  for (index_t n = 0; n < grad_phi.size(); ++n) {
    const double t = std::tanh(cached_phi_[n] / width_);
    grad_phi[n] = grad_density[n] * 0.5 * (1.0 - t * t) / width_;
  }
  // Adjoint of bilinear_resample (cell-center convention): accumulate each
  // fine-cell weight onto its four coarse parents.
  std::vector<double> grad_theta(static_cast<std::size_t>(cx_ * cy_), 0.0);
  const double sx = static_cast<double>(cx_) / static_cast<double>(nx_);
  const double sy = static_cast<double>(cy_) / static_cast<double>(ny_);
  for (index_t j = 0; j < ny_; ++j) {
    const double fy = (static_cast<double>(j) + 0.5) * sy - 0.5;
    const index_t j0 = static_cast<index_t>(std::floor(fy));
    const double wy = fy - static_cast<double>(j0);
    const index_t j0c = std::clamp<index_t>(j0, 0, cy_ - 1);
    const index_t j1c = std::clamp<index_t>(j0 + 1, 0, cy_ - 1);
    for (index_t i = 0; i < nx_; ++i) {
      const double fx = (static_cast<double>(i) + 0.5) * sx - 0.5;
      const index_t i0 = static_cast<index_t>(std::floor(fx));
      const double wx = fx - static_cast<double>(i0);
      const index_t i0c = std::clamp<index_t>(i0, 0, cx_ - 1);
      const index_t i1c = std::clamp<index_t>(i0 + 1, 0, cx_ - 1);
      const double g = grad_phi(i, j);
      grad_theta[static_cast<std::size_t>(i0c + cx_ * j0c)] += g * (1 - wx) * (1 - wy);
      grad_theta[static_cast<std::size_t>(i1c + cx_ * j0c)] += g * wx * (1 - wy);
      grad_theta[static_cast<std::size_t>(i0c + cx_ * j1c)] += g * (1 - wx) * wy;
      grad_theta[static_cast<std::size_t>(i1c + cx_ * j1c)] += g * wx * wy;
    }
  }
  return grad_theta;
}

}  // namespace maps::param
