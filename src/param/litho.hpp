// Differentiable lithography / etch variation proxy (Sec. III-C.3).
//
// Models the pattern-transfer chain as defocus blur followed by a dose
// threshold: corner masks come from shifting the threshold (over-etch ->
// higher threshold -> shrunken features; under-etch -> lower threshold ->
// dilated features), the standard eroded/nominal/dilated triple of robust
// topology optimization. Each corner is a differentiable Transform, so
// corner FoMs backpropagate to the design like any other objective.
#pragma once

#include <array>
#include <memory>

#include "param/blur.hpp"
#include "param/project.hpp"
#include "param/transform.hpp"

namespace maps::param {

enum class LithoCorner { Nominal, OverEtch, UnderEtch };

struct LithoSpec {
  double defocus_sigma = 2.0;  // blur radius in design cells
  double dose_nominal = 0.5;   // nominal threshold eta
  double dose_delta = 0.08;    // corner threshold shift
  double beta = 24.0;          // resist sharpness
};

class LithoModel final : public Transform {
 public:
  LithoModel(LithoSpec spec, LithoCorner corner);

  std::string name() const override { return "litho"; }
  RealGrid forward(const RealGrid& x) override;
  RealGrid vjp(const RealGrid& grad_out) const override;
  std::unique_ptr<Transform> clone() const override;

  LithoCorner corner() const { return corner_; }
  double eta() const { return project_.eta(); }

  /// All three corners for a spec (robust optimization loops over these).
  static std::array<LithoCorner, 3> corners() {
    return {LithoCorner::Nominal, LithoCorner::OverEtch, LithoCorner::UnderEtch};
  }
  static const char* corner_name(LithoCorner c);

 private:
  LithoSpec spec_;
  LithoCorner corner_;
  BlurFilter blur_;
  TanhProject project_;
};

}  // namespace maps::param
