// Smoothing filters ("subpx blur" in Fig. 4): Gaussian and cone kernels with
// boundary-renormalized convolution.
//
// y = (K * x) / (K * 1): dividing by the kernel's local mass keeps densities
// near the design-region edge unbiased. The filter radius also underwrites
// the minimum-feature-size guarantee of the filter+project scheme.
#pragma once

#include <vector>

#include "param/transform.hpp"

namespace maps::param {

enum class KernelShape { Gaussian, Cone };

class BlurFilter final : public Transform {
 public:
  /// radius in cells; Gaussian sigma = radius/2 truncated at the radius.
  BlurFilter(double radius_cells, KernelShape shape = KernelShape::Cone);

  std::string name() const override { return "blur"; }
  RealGrid forward(const RealGrid& x) override;
  RealGrid vjp(const RealGrid& grad_out) const override;
  std::unique_ptr<Transform> clone() const override {
    return std::make_unique<BlurFilter>(*this);
  }

  double radius() const { return radius_; }

 private:
  RealGrid convolve(const RealGrid& x) const;  // plain zero-padded K * x

  double radius_;
  KernelShape shape_;
  int half_ = 0;
  std::vector<double> kernel_;  // (2*half_+1)^2 weights, normalized to sum 1
  RealGrid mass_;               // K * 1 for the cached input shape
};

}  // namespace maps::param
