#include "param/litho.hpp"

namespace maps::param {

namespace {
double corner_eta(const LithoSpec& s, LithoCorner c) {
  switch (c) {
    case LithoCorner::OverEtch:
      return s.dose_nominal + s.dose_delta;
    case LithoCorner::UnderEtch:
      return s.dose_nominal - s.dose_delta;
    case LithoCorner::Nominal:
    default:
      return s.dose_nominal;
  }
}
}  // namespace

LithoModel::LithoModel(LithoSpec spec, LithoCorner corner)
    : spec_(spec), corner_(corner),
      blur_(spec.defocus_sigma, KernelShape::Gaussian),
      project_(spec.beta, corner_eta(spec, corner)) {}

RealGrid LithoModel::forward(const RealGrid& x) {
  return project_.forward(blur_.forward(x));
}

RealGrid LithoModel::vjp(const RealGrid& grad_out) const {
  return blur_.vjp(project_.vjp(grad_out));
}

std::unique_ptr<Transform> LithoModel::clone() const {
  return std::make_unique<LithoModel>(spec_, corner_);
}

const char* LithoModel::corner_name(LithoCorner c) {
  switch (c) {
    case LithoCorner::Nominal:
      return "nominal";
    case LithoCorner::OverEtch:
      return "over_etch";
    case LithoCorner::UnderEtch:
      return "under_etch";
  }
  return "?";
}

}  // namespace maps::param
