// Differentiable density transforms — the projection chain `G` of Eq. (1).
//
// Every Transform maps a density grid in [0,1]-ish space to another grid of
// the same shape and provides the exact vector-Jacobian product for the
// adjoint chain rule ("transpose smooth" in the paper's Fig. 4). Transforms
// are stateful: forward() caches whatever vjp() needs, so a pipeline calls
// forward in order and vjp in reverse order within one iteration.
#pragma once

#include <memory>
#include <string>

#include "math/field2d.hpp"

namespace maps::param {

using maps::math::RealGrid;

class Transform {
 public:
  virtual ~Transform() = default;
  virtual std::string name() const = 0;
  virtual RealGrid forward(const RealGrid& x) = 0;
  /// d(loss)/d(input) given d(loss)/d(output); must follow a forward() call
  /// with the matching input.
  virtual RealGrid vjp(const RealGrid& grad_out) const = 0;
  virtual std::unique_ptr<Transform> clone() const = 0;
};

/// Finite-difference check utility shared by tests: max |analytic - fd|
/// over `probes` random entries. Exposed here so property tests across all
/// transforms share one implementation.
double vjp_fd_error(Transform& t, const RealGrid& x, unsigned seed, int probes,
                    double step = 1e-6);

}  // namespace maps::param
