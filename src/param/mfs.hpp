// Minimum-feature-size (MFS) control: differentiable gray-region penalty
// plus a non-differentiable morphological audit.
//
// The filter(radius R) + sharp-projection chain already guarantees an MFS on
// the order of R; the gray penalty sum 4*rho*(1-rho)/N pushes densities to
// {0,1} so that guarantee binds. The audit measures the realized MFS of a
// binarized mask with disk open/close — the manufacturability check a
// foundry DRC would run.
#pragma once

#include "math/field2d.hpp"

namespace maps::param {

using maps::math::RealGrid;

/// Mean gray-ness in [0,1]: 0 for a fully binary pattern, 1 at rho = 0.5.
double gray_indicator(const RealGrid& rho);

/// d(gray_indicator)/d(rho).
RealGrid gray_indicator_grad(const RealGrid& rho);

/// Binary morphology with a disk structuring element of radius r (cells).
using BinaryMask = maps::math::Grid2D<std::uint8_t>;
BinaryMask binarize(const RealGrid& rho, double threshold = 0.5);
BinaryMask erode(const BinaryMask& m, double radius);
BinaryMask dilate(const BinaryMask& m, double radius);
BinaryMask open_morph(const BinaryMask& m, double radius);   // erode then dilate
BinaryMask close_morph(const BinaryMask& m, double radius);  // dilate then erode

struct MfsReport {
  index_t solid_violations = 0;  // pixels lost by opening (features < 2r)
  index_t void_violations = 0;   // pixels gained by closing (gaps < 2r)
  bool ok() const { return solid_violations == 0 && void_violations == 0; }
};

/// Audit a binarized mask against minimum feature diameter 2*radius.
MfsReport mfs_audit(const BinaryMask& m, double radius);

/// Largest radius (in integer cell steps up to max_radius) whose audit
/// passes; this is the realized MFS/2 of the mask.
double measured_mfs_radius(const BinaryMask& m, double max_radius);

}  // namespace maps::param
