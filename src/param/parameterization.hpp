// Design-variable parameterizations `P` of Eq. (1): theta -> density grid.
//
// DirectDensity is one theta per design cell, clamped to [0,1].
// LevelSet parameterizes a coarse control grid whose bilinear upsample is a
// level-set function phi; the density is the smoothed Heaviside of phi
// ("param (e.g., levelset)" in Fig. 4). Both expose exact VJPs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/field2d.hpp"

namespace maps::param {

using maps::math::RealGrid;

class Parameterization {
 public:
  virtual ~Parameterization() = default;
  virtual std::string name() const = 0;
  virtual int num_params() const = 0;
  /// theta -> density grid (design-region shape).
  virtual RealGrid to_density(const std::vector<double>& theta) = 0;
  /// d(loss)/d(theta) from d(loss)/d(density); follows a to_density call.
  virtual std::vector<double> vjp(const RealGrid& grad_density) const = 0;
  /// Clamp / re-normalize theta after a gradient step (projection to the
  /// feasible box). Default: no-op.
  virtual void feasible(std::vector<double>& theta) const { (void)theta; }
};

class DirectDensity final : public Parameterization {
 public:
  DirectDensity(index_t nx, index_t ny) : nx_(nx), ny_(ny) {}

  std::string name() const override { return "direct_density"; }
  int num_params() const override { return static_cast<int>(nx_ * ny_); }
  RealGrid to_density(const std::vector<double>& theta) override;
  std::vector<double> vjp(const RealGrid& grad_density) const override;
  void feasible(std::vector<double>& theta) const override;

 private:
  index_t nx_, ny_;
};

class LevelSet final : public Parameterization {
 public:
  /// Control grid (cx x cy) upsampled to the design grid (nx x ny); the
  /// density is 0.5*(1 + tanh(phi / width)).
  LevelSet(index_t cx, index_t cy, index_t nx, index_t ny, double width = 0.2);

  std::string name() const override { return "level_set"; }
  int num_params() const override { return static_cast<int>(cx_ * cy_); }
  RealGrid to_density(const std::vector<double>& theta) override;
  std::vector<double> vjp(const RealGrid& grad_density) const override;

 private:
  index_t cx_, cy_, nx_, ny_;
  double width_;
  RealGrid cached_phi_;  // upsampled level-set values
};

}  // namespace maps::param
