#include "param/pipeline.hpp"

namespace maps::param {

DesignPipeline::DesignPipeline(std::unique_ptr<Parameterization> param, DesignMap map)
    : param_(std::move(param)), map_(std::move(map)) {
  maps::require(param_ != nullptr, "DesignPipeline: null parameterization");
  maps::require(map_.box.ni > 0 && map_.box.nj > 0, "DesignPipeline: empty box");
}

void DesignPipeline::add_transform(std::unique_ptr<Transform> t) {
  maps::require(t != nullptr, "DesignPipeline: null transform");
  transforms_.push_back(std::move(t));
}

RealGrid DesignPipeline::density(const std::vector<double>& theta) {
  RealGrid rho = param_->to_density(theta);
  maps::require(rho.nx() == map_.box.ni && rho.ny() == map_.box.nj,
                "DesignPipeline: parameterization shape does not match box");
  for (auto& t : transforms_) rho = t->forward(rho);
  return rho;
}

RealGrid DesignPipeline::eps_of(const std::vector<double>& theta) {
  return embed_density(map_, density(theta));
}

std::vector<double> DesignPipeline::backward(const RealGrid& grad_eps_full) const {
  return backward_density(extract_density_grad(map_, grad_eps_full));
}

std::vector<double> DesignPipeline::backward_density(const RealGrid& grad_rho_bar) const {
  RealGrid g = grad_rho_bar;
  for (auto it = transforms_.rbegin(); it != transforms_.rend(); ++it) {
    g = (*it)->vjp(g);
  }
  return param_->vjp(g);
}

void DesignPipeline::set_projection_beta(double beta) {
  for (auto& t : transforms_) {
    if (auto* p = dynamic_cast<TanhProject*>(t.get())) p->set_beta(beta);
  }
}

RealGrid embed_density(const DesignMap& map, const RealGrid& rho_bar) {
  maps::require(rho_bar.nx() == map.box.ni && rho_bar.ny() == map.box.nj,
                "embed_density: density/box mismatch");
  RealGrid eps = map.base_eps;
  for (index_t j = 0; j < map.box.nj; ++j) {
    for (index_t i = 0; i < map.box.ni; ++i) {
      eps(map.box.i0 + i, map.box.j0 + j) =
          map.eps_lo + rho_bar(i, j) * (map.eps_hi - map.eps_lo);
    }
  }
  return eps;
}

RealGrid extract_density_grad(const DesignMap& map, const RealGrid& grad_eps_full) {
  maps::require(grad_eps_full.nx() == map.base_eps.nx() &&
                    grad_eps_full.ny() == map.base_eps.ny(),
                "extract_density_grad: full-grid shape mismatch");
  RealGrid g(map.box.ni, map.box.nj);
  const double scale = map.eps_hi - map.eps_lo;
  for (index_t j = 0; j < map.box.nj; ++j) {
    for (index_t i = 0; i < map.box.ni; ++i) {
      g(i, j) = grad_eps_full(map.box.i0 + i, map.box.j0 + j) * scale;
    }
  }
  return g;
}

}  // namespace maps::param
