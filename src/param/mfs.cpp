#include "param/mfs.hpp"

#include <cmath>

namespace maps::param {

double gray_indicator(const RealGrid& rho) {
  if (rho.size() == 0) return 0.0;
  double s = 0.0;
  for (index_t n = 0; n < rho.size(); ++n) s += 4.0 * rho[n] * (1.0 - rho[n]);
  return s / static_cast<double>(rho.size());
}

RealGrid gray_indicator_grad(const RealGrid& rho) {
  RealGrid g(rho.nx(), rho.ny());
  const double inv_n = 1.0 / static_cast<double>(std::max<index_t>(1, rho.size()));
  for (index_t n = 0; n < rho.size(); ++n) g[n] = 4.0 * (1.0 - 2.0 * rho[n]) * inv_n;
  return g;
}

BinaryMask binarize(const RealGrid& rho, double threshold) {
  BinaryMask m(rho.nx(), rho.ny());
  for (index_t n = 0; n < rho.size(); ++n) m[n] = rho[n] >= threshold ? 1 : 0;
  return m;
}

namespace {
// Disk offsets within radius r.
std::vector<std::pair<index_t, index_t>> disk_offsets(double radius) {
  std::vector<std::pair<index_t, index_t>> offs;
  const auto r = static_cast<index_t>(std::floor(radius));
  for (index_t dj = -r; dj <= r; ++dj) {
    for (index_t di = -r; di <= r; ++di) {
      if (static_cast<double>(di * di + dj * dj) <= radius * radius + 1e-9) {
        offs.emplace_back(di, dj);
      }
    }
  }
  return offs;
}

// Erosion treating out-of-bounds as `border`; dilation is erosion duality.
BinaryMask erode_with_border(const BinaryMask& m, double radius, std::uint8_t border) {
  const auto offs = disk_offsets(radius);
  BinaryMask out(m.nx(), m.ny());
  for (index_t j = 0; j < m.ny(); ++j) {
    for (index_t i = 0; i < m.nx(); ++i) {
      std::uint8_t v = 1;
      for (const auto& [di, dj] : offs) {
        const index_t ii = i + di, jj = j + dj;
        const std::uint8_t s = m.in_bounds(ii, jj) ? m(ii, jj) : border;
        if (!s) {
          v = 0;
          break;
        }
      }
      out(i, j) = v;
    }
  }
  return out;
}
}  // namespace

BinaryMask erode(const BinaryMask& m, double radius) {
  // Outside the design region counts as solid so boundary-touching features
  // are not flagged (they continue into the waveguides).
  return erode_with_border(m, radius, 1);
}

BinaryMask dilate(const BinaryMask& m, double radius) {
  BinaryMask inv(m.nx(), m.ny());
  for (index_t n = 0; n < m.size(); ++n) inv[n] = m[n] ? 0 : 1;
  BinaryMask er = erode_with_border(inv, radius, 1);
  for (index_t n = 0; n < er.size(); ++n) er[n] = er[n] ? 0 : 1;
  return er;
}

BinaryMask open_morph(const BinaryMask& m, double radius) {
  return dilate(erode(m, radius), radius);
}

BinaryMask close_morph(const BinaryMask& m, double radius) {
  return erode(dilate(m, radius), radius);
}

MfsReport mfs_audit(const BinaryMask& m, double radius) {
  MfsReport rep;
  const BinaryMask opened = open_morph(m, radius);
  const BinaryMask closed = close_morph(m, radius);
  for (index_t n = 0; n < m.size(); ++n) {
    if (m[n] && !opened[n]) ++rep.solid_violations;
    if (!m[n] && closed[n]) ++rep.void_violations;
  }
  return rep;
}

double measured_mfs_radius(const BinaryMask& m, double max_radius) {
  double best = 0.0;
  for (double r = 1.0; r <= max_radius + 1e-9; r += 1.0) {
    if (mfs_audit(m, r).ok()) {
      best = r;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace maps::param
