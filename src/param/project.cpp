#include "param/project.hpp"

#include <cmath>

namespace maps::param {

TanhProject::TanhProject(double beta, double eta) : beta_(beta), eta_(eta) {
  maps::require(beta > 0.0, "TanhProject: beta must be positive");
  maps::require(eta > 0.0 && eta < 1.0, "TanhProject: eta must lie in (0,1)");
}

void TanhProject::set_beta(double beta) {
  maps::require(beta > 0.0, "TanhProject: beta must be positive");
  beta_ = beta;
}

double TanhProject::project(double rho, double beta, double eta) {
  const double denom = std::tanh(beta * eta) + std::tanh(beta * (1.0 - eta));
  return (std::tanh(beta * eta) + std::tanh(beta * (rho - eta))) / denom;
}

double TanhProject::derivative(double rho, double beta, double eta) {
  const double denom = std::tanh(beta * eta) + std::tanh(beta * (1.0 - eta));
  const double t = std::tanh(beta * (rho - eta));
  return beta * (1.0 - t * t) / denom;
}

RealGrid TanhProject::forward(const RealGrid& x) {
  cached_x_ = x;
  RealGrid y(x.nx(), x.ny());
  for (index_t n = 0; n < x.size(); ++n) y[n] = project(x[n], beta_, eta_);
  return y;
}

RealGrid TanhProject::vjp(const RealGrid& grad_out) const {
  maps::require(cached_x_.same_shape(grad_out), "TanhProject::vjp: call forward first");
  RealGrid gx(grad_out.nx(), grad_out.ny());
  for (index_t n = 0; n < gx.size(); ++n) {
    gx[n] = grad_out[n] * derivative(cached_x_[n], beta_, eta_);
  }
  return gx;
}

}  // namespace maps::param
