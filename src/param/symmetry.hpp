// Symmetry constraints as averaging projectors (exactly self-adjoint, so
// vjp == forward). Devices like the crossing impose C4; bends impose the
// diagonal mirror.
#pragma once

#include "param/transform.hpp"

namespace maps::param {

enum class SymmetryKind {
  MirrorX,    // left-right:   (i,j) <-> (nx-1-i, j)
  MirrorY,    // up-down:      (i,j) <-> (i, ny-1-j)
  Diagonal,   // transpose:    (i,j) <-> (j,i), requires square
  C4,         // 4-fold rotation average, requires square
};

class Symmetrize final : public Transform {
 public:
  explicit Symmetrize(SymmetryKind kind) : kind_(kind) {}

  std::string name() const override { return "symmetrize"; }
  RealGrid forward(const RealGrid& x) override { return apply(x); }
  RealGrid vjp(const RealGrid& grad_out) const override { return apply(grad_out); }
  std::unique_ptr<Transform> clone() const override {
    return std::make_unique<Symmetrize>(*this);
  }

  SymmetryKind kind() const { return kind_; }

  /// Residual asymmetry ||x - apply(x)||_inf (diagnostic).
  static double asymmetry(const RealGrid& x, SymmetryKind kind);

 private:
  RealGrid apply(const RealGrid& x) const;
  SymmetryKind kind_;
};

}  // namespace maps::param
