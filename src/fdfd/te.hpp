// TE (Hz) polarization FDFD: the second 2D polarization of the MAPS solver.
//
// Discretizes, with the same SC-PML stretch factors as the TM assembler,
//
//   (1/sc_x) d/dx ( (1/(eps se_x)) dHz/dx )
//     + (1/sc_y) d/dy ( (1/(eps se_y)) dHz/dy ) + omega^2 Hz = -i omega Mz
//
// where Mz is a magnetic current sheet. The permittivity enters through
// inverse-averaged *edge* coefficients g_e = (1/eps_a + 1/eps_b)/2, so the
// adjoint gradient lives on edges and is scattered back to cells with the
// exact d(g_e)/d(eps) = -1/(2 eps^2) chain factor — structurally different
// from the TM case (where eps sits on the diagonal) and verified against
// finite differences in the tests.
//
// The same row scaling W = sc_x sc_y symmetrizes the operator, so adjoint
// solves reuse the transposed-LU path.
#pragma once

#include <memory>
#include <optional>

#include "fdfd/assembler.hpp"
#include "fdfd/objective.hpp"
#include "fdfd/pml.hpp"
#include "fdfd/port.hpp"
#include "grid/yee_grid.hpp"
#include "math/banded.hpp"
#include "math/field2d.hpp"

namespace maps::fdfd {

/// TE field solution: Hz plus derived in-plane E.
struct TeFields {
  maps::math::CplxGrid Hz;
  maps::math::CplxGrid Ex;  // (i/(omega eps)) dHz/dy
  maps::math::CplxGrid Ey;  // -(i/(omega eps)) dHz/dx
};

/// Assemble the TE operator; W is the symmetrizing row scale.
FdfdOperator assemble_te(const grid::GridSpec& spec, const maps::math::RealGrid& eps,
                         double omega, const PmlSpec& pml);

class TeSimulation {
 public:
  TeSimulation(grid::GridSpec spec, maps::math::RealGrid eps, double omega,
               PmlSpec pml = {});

  const grid::GridSpec& spec() const { return spec_; }
  const maps::math::RealGrid& eps() const { return eps_; }
  double omega() const { return omega_; }
  const FdfdOperator& op() const { return op_; }
  const PmlSpec& pml_spec() const { return pml_; }

  /// Solve A Hz = -i omega Mz.
  maps::math::CplxGrid solve(const maps::math::CplxGrid& Mz);
  /// Solve A^T x = rhs (adjoint systems; shares the LU factors).
  maps::math::CplxGrid solve_transposed(const std::vector<cplx>& rhs);

  /// Derive the in-plane electric field from Hz.
  TeFields derive_fields(maps::math::CplxGrid Hz) const;
  TeFields run(const maps::math::CplxGrid& Mz) { return derive_fields(solve(Mz)); }

 private:
  void ensure_factorized();

  grid::GridSpec spec_;
  maps::math::RealGrid eps_;
  double omega_;
  PmlSpec pml_;
  FdfdOperator op_;
  // Split-complex banded LU by default; interleaved BandMatrix only under
  // the MAPS_SOLVER_INTERLEAVED fallback, latched at construction (same
  // convention as the TM solver layer's DirectBandedBackend, so the
  // setenv/construct/unsetenv toggle works for both).
  bool interleaved_ = false;
  std::optional<maps::math::SplitBandMatrix> split_;
  std::optional<maps::math::BandMatrix<cplx>> lu_;
};

/// Quadratic intensity objective T = sum_n w_n |Hz_n|^2 / norm over a box
/// (focusing objectives; also usable for TM fields). Wirtinger derivative
/// dT/dHz_n = w_n conj(Hz_n) / norm.
struct IntensityTerm {
  grid::BoxRegion box;
  maps::math::RealGrid weights;  // box-shaped; empty = uniform 1
  double norm = 1.0;
  double weight = 1.0;
  Goal goal = Goal::Maximize;
  std::string name = "intensity";

  double sign() const { return goal == Goal::Maximize ? 1.0 : -1.0; }
};

double intensity_value(const IntensityTerm& term, const maps::math::CplxGrid& Hz);

/// Signed objective over terms and its Wirtinger gradient dF/dHz.
double intensity_objective(const std::vector<IntensityTerm>& terms,
                           const maps::math::CplxGrid& Hz);
std::vector<cplx> intensity_dHz(const std::vector<IntensityTerm>& terms,
                                const maps::math::CplxGrid& Hz);

struct TeAdjointResult {
  maps::math::RealGrid grad_eps;  // dF/deps per cell
  maps::math::CplxGrid lambda;    // adjoint field
  double fom = 0.0;
};

/// Adjoint gradient for intensity objectives on a solved TE field. The
/// simulation must be the one that produced Hz.
TeAdjointResult compute_te_adjoint(TeSimulation& sim, const maps::math::CplxGrid& Hz,
                                   const std::vector<IntensityTerm>& terms);

/// Time-averaged Poynting flux of a TE solution through a port line, along
/// the port direction.
double te_port_flux(const TeFields& f, const Port& port, double dl);

}  // namespace maps::fdfd
