#include "fdfd/objective.hpp"

namespace maps::fdfd {

std::vector<std::pair<index_t, cplx>> mode_monitor_coeffs(const grid::GridSpec& spec,
                                                          const Port& port,
                                                          const Mode& mode) {
  maps::require(static_cast<index_t>(mode.profile.size()) == port.span(),
                "mode_monitor_coeffs: profile/span mismatch");
  std::vector<std::pair<index_t, cplx>> coeffs;
  coeffs.reserve(static_cast<std::size_t>(port.span()));
  for (index_t t = port.lo; t < port.hi; ++t) {
    const double phi = mode.profile[static_cast<std::size_t>(t - port.lo)];
    const index_t n = (port.normal == Axis::X) ? (port.pos + spec.nx * t)
                                               : (t + spec.nx * port.pos);
    coeffs.emplace_back(n, cplx{phi * spec.dl, 0.0});
  }
  return coeffs;
}

cplx term_amplitude(const FomTerm& term, const maps::math::CplxGrid& Ez) {
  cplx a{};
  for (const auto& [n, c] : term.coeffs) a += c * Ez[n];
  return a;
}

double term_transmission(const FomTerm& term, const maps::math::CplxGrid& Ez) {
  maps::require(term.norm > 0.0, "term_transmission: norm must be positive");
  return std::norm(term_amplitude(term, Ez)) / term.norm;
}

double objective_value(const std::vector<FomTerm>& terms,
                       const maps::math::CplxGrid& Ez) {
  double f = 0.0;
  for (const auto& t : terms) f += t.sign() * t.weight * term_transmission(t, Ez);
  return f;
}

std::vector<cplx> objective_dE(const std::vector<FomTerm>& terms,
                               const maps::math::CplxGrid& Ez) {
  std::vector<cplx> g(static_cast<std::size_t>(Ez.size()), cplx{});
  for (const auto& t : terms) {
    const cplx a_bar = std::conj(term_amplitude(t, Ez));
    const double scale = t.sign() * t.weight / t.norm;
    for (const auto& [n, c] : t.coeffs) {
      g[static_cast<std::size_t>(n)] += scale * a_bar * c;
    }
  }
  return g;
}

}  // namespace maps::fdfd
