#include "fdfd/pml.hpp"

#include <cmath>

namespace maps::fdfd {

namespace {
double sigma_profile(double x, double lo, double hi, double depth, double sigma_max,
                     double m) {
  // Distance into the PML measured from the inner interface.
  double d = 0.0;
  if (x < lo + depth) {
    d = (lo + depth - x) / depth;
  } else if (x > hi - depth) {
    d = (x - (hi - depth)) / depth;
  } else {
    return 0.0;
  }
  if (d > 1.0) d = 1.0;
  return sigma_max * std::pow(d, m);
}
}  // namespace

StretchProfile make_stretch(index_t n, double dl, double omega, const PmlSpec& pml) {
  maps::require(n > 0 && dl > 0 && omega > 0, "make_stretch: invalid arguments");
  maps::require(pml.ncells >= 0 && 2 * pml.ncells < n,
                "make_stretch: PML thicker than half the domain");

  StretchProfile sp;
  sp.centers.assign(static_cast<std::size_t>(n), cplx{1.0, 0.0});
  sp.edges.assign(static_cast<std::size_t>(n) + 1, cplx{1.0, 0.0});
  if (pml.ncells == 0) return sp;

  const double lo = 0.0;
  const double hi = static_cast<double>(n) * dl;
  const double depth = static_cast<double>(pml.ncells) * dl;
  const double sigma_max = -(pml.m + 1.0) * std::log(pml.R0) / (2.0 * depth);

  for (index_t i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * dl;
    const double s = sigma_profile(x, lo, hi, depth, sigma_max, pml.m);
    sp.centers[static_cast<std::size_t>(i)] = cplx{1.0, s / omega};
  }
  for (index_t e = 0; e <= n; ++e) {
    const double x = static_cast<double>(e) * dl;
    const double s = sigma_profile(x, lo, hi, depth, sigma_max, pml.m);
    sp.edges[static_cast<std::size_t>(e)] = cplx{1.0, s / omega};
  }
  return sp;
}

}  // namespace maps::fdfd
