// High-level FDFD simulation: assemble once, factorize once, solve many.
//
// A Simulation binds one (eps, omega, pml) configuration to a solver backend
// (src/solver/): forward solves (current sources), transposed solves
// (adjoint) and batched multi-RHS solves all share the backend's single
// preparation. The solver kind doubles as the fidelity axis — Direct is the
// High-fidelity exact path, Iterative the Medium tolerance path, CoarseGrid
// the Low-fidelity surrogate feed. When SimOptions carries a
// FactorizationCache, identical operators (wavelength sweeps, corner
// re-evaluations) reuse one prepared backend across Simulation instances.
// H fields are derived from Ez exactly as the paper derives its Hx/Hy labels.
#pragma once

#include <memory>

#include "fdfd/assembler.hpp"
#include "solver/cache.hpp"

namespace maps::fdfd {

using solver::FidelityLevel;
using solver::SolverKind;

struct SimOptions {
  PmlSpec pml;
  SolverKind solver = SolverKind::Direct;
  maps::math::BicgstabOptions iterative;
  int coarse_factor = 2;  // CoarseGrid backend coarsening
  /// Factor precision of the direct path: Double (exact) or Mixed (fp32
  /// factors + iterative refinement back to double accuracy). Defaults to
  /// the MAPS_SOLVER_PRECISION environment override, else Double.
  solver::SolverPrecision precision = solver::default_solver_precision();
  solver::RefinementOptions refinement;
  /// Optional shared cache: Simulations with identical (eps, omega, pml,
  /// solver) then share one factorization.
  std::shared_ptr<solver::FactorizationCache> cache;

  /// Select the solver by fidelity level (low -> coarse grid, medium ->
  /// iterative, high -> direct banded).
  void set_fidelity(FidelityLevel level) { solver = solver::solver_kind_for(level); }

  solver::SolverConfig solver_config() const {
    solver::SolverConfig cfg;
    cfg.kind = solver;
    cfg.iterative = iterative;
    cfg.coarse_factor = coarse_factor;
    cfg.precision = precision;
    cfg.refinement = refinement;
    return cfg;
  }
};

/// Full electromagnetic field solution on the simulation grid.
struct Fields {
  maps::math::CplxGrid Ez;
  maps::math::CplxGrid Hx;  // staggered at (i, j+1/2), stored at (i, j)
  maps::math::CplxGrid Hy;  // staggered at (i+1/2, j), stored at (i, j)
};

class Simulation {
 public:
  Simulation(grid::GridSpec spec, maps::math::RealGrid eps, double omega,
             SimOptions options = {});

  const grid::GridSpec& spec() const { return spec_; }
  const maps::math::RealGrid& eps() const { return eps_; }
  double omega() const { return omega_; }
  const SimOptions& options() const { return options_; }

  /// The assembled operator (also the "Maxwell matrices" label in MAPS-Data).
  const FdfdOperator& op() const { return backend_->op(); }

  /// The solver backend answering this simulation's solves.
  solver::SolverBackend& backend() { return *backend_; }

  /// Solve A Ez = -i omega J for a current source J.
  maps::math::CplxGrid solve(const maps::math::CplxGrid& J);

  /// Solve A x = rhs for a raw right-hand side.
  maps::math::CplxGrid solve_raw(const std::vector<cplx>& rhs);

  /// Solve A^T x = rhs (adjoint systems).
  maps::math::CplxGrid solve_transposed(const std::vector<cplx>& rhs);

  /// Batched multi-RHS solves against the shared preparation.
  std::vector<maps::math::CplxGrid> solve_batch(
      const std::vector<maps::math::CplxGrid>& Js);
  std::vector<maps::math::CplxGrid> solve_raw_batch(
      const std::vector<std::vector<cplx>>& rhs);
  std::vector<maps::math::CplxGrid> solve_transposed_batch(
      const std::vector<std::vector<cplx>>& rhs);

  /// Derive Hx, Hy from an Ez solution (forward differences / (i omega)).
  Fields derive_fields(maps::math::CplxGrid Ez) const;

  /// Convenience: solve + derive.
  Fields run(const maps::math::CplxGrid& J) { return derive_fields(solve(J)); }

  /// Number of LU factorizations performed by the backend (perf accounting in
  /// benches; cumulative across Simulations sharing a cached backend).
  int factorization_count() const { return backend_->factorization_count(); }

  /// Number of solves answered by the backend.
  int solve_count() const { return backend_->solve_count(); }

 private:
  grid::GridSpec spec_;
  maps::math::RealGrid eps_;
  double omega_;
  SimOptions options_;
  std::shared_ptr<solver::SolverBackend> backend_;
};

}  // namespace maps::fdfd
