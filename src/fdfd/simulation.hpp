// High-level FDFD simulation: assemble once, factorize once, solve many.
//
// A Simulation owns the operator for one (eps, omega, pml) configuration.
// Forward solves (current sources) and transposed solves (adjoint) share the
// same banded LU factors. H fields are derived from Ez exactly as the paper
// derives its Hx/Hy labels.
#pragma once

#include <memory>
#include <optional>

#include "fdfd/assembler.hpp"
#include "math/banded.hpp"
#include "math/bicgstab.hpp"

namespace maps::fdfd {

enum class SolverKind { Direct, Iterative };

struct SimOptions {
  PmlSpec pml;
  SolverKind solver = SolverKind::Direct;
  maps::math::BicgstabOptions iterative;
};

/// Full electromagnetic field solution on the simulation grid.
struct Fields {
  maps::math::CplxGrid Ez;
  maps::math::CplxGrid Hx;  // staggered at (i, j+1/2), stored at (i, j)
  maps::math::CplxGrid Hy;  // staggered at (i+1/2, j), stored at (i, j)
};

class Simulation {
 public:
  Simulation(grid::GridSpec spec, maps::math::RealGrid eps, double omega,
             SimOptions options = {});

  const grid::GridSpec& spec() const { return spec_; }
  const maps::math::RealGrid& eps() const { return eps_; }
  double omega() const { return omega_; }
  const SimOptions& options() const { return options_; }

  /// The assembled operator (also the "Maxwell matrices" label in MAPS-Data).
  const FdfdOperator& op() const { return op_; }

  /// Solve A Ez = -i omega J for a current source J.
  maps::math::CplxGrid solve(const maps::math::CplxGrid& J);

  /// Solve A x = rhs for a raw right-hand side.
  maps::math::CplxGrid solve_raw(const std::vector<cplx>& rhs);

  /// Solve A^T x = rhs (adjoint systems).
  maps::math::CplxGrid solve_transposed(const std::vector<cplx>& rhs);

  /// Derive Hx, Hy from an Ez solution (forward differences / (i omega)).
  Fields derive_fields(maps::math::CplxGrid Ez) const;

  /// Convenience: solve + derive.
  Fields run(const maps::math::CplxGrid& J) { return derive_fields(solve(J)); }

  /// Number of LU factorizations performed (perf accounting in benches).
  int factorization_count() const { return factorizations_; }

 private:
  void ensure_factorized();

  grid::GridSpec spec_;
  maps::math::RealGrid eps_;
  double omega_;
  SimOptions options_;
  FdfdOperator op_;
  std::optional<maps::math::BandMatrix<cplx>> lu_;
  int factorizations_ = 0;
};

}  // namespace maps::fdfd
