// 1D slab waveguide eigenmode solver ("mode solve" block of Fig. 4).
//
// On a port cross-section with permittivity profile eps(t), TM modes satisfy
//   d^2 phi/dt^2 + omega^2 eps(t) phi = beta^2 phi,
// a symmetric tridiagonal eigenproblem. Guided modes are the eigenpairs with
// beta^2 above the cladding light line; profiles are L2-normalized
// (sum phi^2 dl = 1).
#pragma once

#include <vector>

#include "fdfd/port.hpp"
#include "math/field2d.hpp"
#include "math/types.hpp"

namespace maps::fdfd {

struct Mode {
  double beta = 0.0;             // propagation constant
  double neff = 0.0;             // beta / omega
  std::vector<double> profile;   // phi over the port span, L2-normalized
};

/// Solve for up to `max_modes` guided modes of the 1D profile `eps_line`
/// (spacing dl) at angular frequency omega. Modes are ordered by descending
/// beta (fundamental first). Returns fewer modes if fewer are guided.
std::vector<Mode> solve_slab_modes(const std::vector<double>& eps_line, double dl,
                                   double omega, int max_modes);

/// Extract the eps profile along a port line from the 2D map.
std::vector<double> eps_along_port(const maps::math::RealGrid& eps, const Port& port);

}  // namespace maps::fdfd
