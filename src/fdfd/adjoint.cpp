#include "fdfd/adjoint.hpp"

namespace maps::fdfd {

using maps::math::CplxGrid;
using maps::math::RealGrid;

namespace {

/// Shared postprocessing: given the solved adjoint field lambda and the
/// objective gradient g, fill gradients and the equivalent forward source.
AdjointResult finish_adjoint(const grid::GridSpec& spec, double omega,
                             const std::vector<cplx>& W, const CplxGrid& Ez,
                             const std::vector<FomTerm>& terms,
                             const std::vector<cplx>& g, CplxGrid lambda) {
  AdjointResult out{RealGrid(spec.nx, spec.ny), std::move(lambda),
                    CplxGrid(spec.nx, spec.ny), objective_value(terms, Ez)};
  for (index_t n = 0; n < spec.cells(); ++n) {
    // J_adj = W^{-1} g / (-i omega): feeding this to a forward run yields
    // W^{-1} lambda (proof in the header; relies on W A = (W A)^T).
    out.adj_current[n] = g[static_cast<std::size_t>(n)] /
                         (W[static_cast<std::size_t>(n)] * (-kI * omega));
    out.grad_eps[n] = -2.0 * omega * omega * std::real(out.lambda[n] * Ez[n]);
  }
  return out;
}

}  // namespace

AdjointResult compute_adjoint(solver::SolverBackend& backend,
                              const grid::GridSpec& spec, double omega,
                              const CplxGrid& Ez, const std::vector<FomTerm>& terms) {
  maps::require(Ez.nx() == spec.nx && Ez.ny() == spec.ny,
                "compute_adjoint: field shape mismatch");
  const std::vector<cplx> g = objective_dE(terms, Ez);
  CplxGrid lambda(spec.nx, spec.ny, backend.solve_transposed(g));
  return finish_adjoint(spec, omega, backend.W(), Ez, terms, g, std::move(lambda));
}

AdjointResult compute_adjoint(Simulation& sim, const CplxGrid& Ez,
                              const std::vector<FomTerm>& terms) {
  return compute_adjoint(sim.backend(), sim.spec(), sim.omega(), Ez, terms);
}

std::vector<AdjointResult> compute_adjoint_batch(
    solver::SolverBackend& backend, const grid::GridSpec& spec, double omega,
    const std::vector<const CplxGrid*>& Ez,
    const std::vector<const std::vector<FomTerm>*>& terms) {
  maps::require(Ez.size() == terms.size(), "compute_adjoint_batch: size mismatch");
  std::vector<std::vector<cplx>> gs;
  gs.reserve(Ez.size());
  for (std::size_t k = 0; k < Ez.size(); ++k) {
    maps::require(Ez[k]->nx() == spec.nx && Ez[k]->ny() == spec.ny,
                  "compute_adjoint_batch: field shape mismatch");
    gs.push_back(objective_dE(*terms[k], *Ez[k]));
  }
  auto lambdas = backend.solve_transposed_batch(gs);
  const auto& W = backend.W();
  std::vector<AdjointResult> out;
  out.reserve(Ez.size());
  for (std::size_t k = 0; k < Ez.size(); ++k) {
    out.push_back(finish_adjoint(spec, omega, W, *Ez[k], *terms[k], gs[k],
                                 CplxGrid(spec.nx, spec.ny, std::move(lambdas[k]))));
  }
  return out;
}

RealGrid grad_from_fields(const CplxGrid& Ez, const CplxGrid& lambda_fwd,
                          const std::vector<cplx>& W, double omega) {
  maps::require(Ez.same_shape(lambda_fwd), "grad_from_fields: shape mismatch");
  maps::require(static_cast<index_t>(W.size()) == Ez.size(),
                "grad_from_fields: W size mismatch");
  RealGrid grad(Ez.nx(), Ez.ny());
  for (index_t n = 0; n < Ez.size(); ++n) {
    const cplx lambda = W[static_cast<std::size_t>(n)] * lambda_fwd[n];
    grad[n] = -2.0 * omega * omega * std::real(lambda * Ez[n]);
  }
  return grad;
}

}  // namespace maps::fdfd
