#include "fdfd/adjoint.hpp"

namespace maps::fdfd {

using maps::math::CplxGrid;
using maps::math::RealGrid;

AdjointResult compute_adjoint(Simulation& sim, const CplxGrid& Ez,
                              const std::vector<FomTerm>& terms) {
  const auto& spec = sim.spec();
  maps::require(Ez.nx() == spec.nx && Ez.ny() == spec.ny,
                "compute_adjoint: field shape mismatch");

  const std::vector<cplx> g = objective_dE(terms, Ez);
  const double omega = sim.omega();

  AdjointResult out{RealGrid(spec.nx, spec.ny), CplxGrid(spec.nx, spec.ny),
                    CplxGrid(spec.nx, spec.ny), objective_value(terms, Ez)};

  out.lambda = sim.solve_transposed(g);

  const auto& W = sim.op().W;
  for (index_t n = 0; n < spec.cells(); ++n) {
    // J_adj = W^{-1} g / (-i omega): feeding this to a forward run yields
    // W^{-1} lambda (proof in the header; relies on W A = (W A)^T).
    out.adj_current[n] = g[static_cast<std::size_t>(n)] /
                         (W[static_cast<std::size_t>(n)] * (-kI * omega));
    out.grad_eps[n] = -2.0 * omega * omega * std::real(out.lambda[n] * Ez[n]);
  }
  return out;
}

RealGrid grad_from_fields(const CplxGrid& Ez, const CplxGrid& lambda_fwd,
                          const std::vector<cplx>& W, double omega) {
  maps::require(Ez.same_shape(lambda_fwd), "grad_from_fields: shape mismatch");
  maps::require(static_cast<index_t>(W.size()) == Ez.size(),
                "grad_from_fields: W size mismatch");
  RealGrid grad(Ez.nx(), Ez.ny());
  for (index_t n = 0; n < Ez.size(); ++n) {
    const cplx lambda = W[static_cast<std::size_t>(n)] * lambda_fwd[n];
    grad[n] = -2.0 * omega * omega * std::real(lambda * Ez[n]);
  }
  return grad;
}

}  // namespace maps::fdfd
