// Current-source construction: point dipoles and (directional) mode sources.
//
// A directional mode source superposes two phased source lines one cell
// apart so the launch cancels in the backward direction; combined with a
// normalization run this gives clean transmission/reflection measurements.
#pragma once

#include "fdfd/mode_solver.hpp"
#include "fdfd/port.hpp"
#include "math/field2d.hpp"

namespace maps::fdfd {

/// Unit point current at cell (i, j).
maps::math::CplxGrid point_source(const grid::GridSpec& spec, index_t i, index_t j,
                                  cplx amplitude = cplx{1.0, 0.0});

/// Single-line mode source: J = phi on the port line (radiates both ways).
maps::math::CplxGrid mode_source_line(const grid::GridSpec& spec, const Port& port,
                                      const Mode& mode);

/// Two-line directional mode source launching along port.direction.
maps::math::CplxGrid mode_source_directional(const grid::GridSpec& spec,
                                             const Port& port, const Mode& mode);

}  // namespace maps::fdfd
