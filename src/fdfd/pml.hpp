// Stretched-coordinate PML (SC-PML) profiles for the FDFD assembler.
//
// Complex coordinate stretch s(x) = 1 + i sigma(x)/omega with polynomial
// grading sigma(d) = sigma_max (d/D)^m, sigma_max = -(m+1) ln(R0) / (2 D)
// in normalized units (eps0 = mu0 = c = 1). With the e^{-i omega t}
// convention a forward wave e^{+ikx} decays as e^{-k sigma x / omega}.
#pragma once

#include <vector>

#include "math/types.hpp"

namespace maps::fdfd {

struct PmlSpec {
  int ncells = 12;        // PML thickness per side [cells]
  double m = 3.0;         // polynomial grading order
  double R0 = 1e-8;       // target round-trip reflection
};

/// Stretch factors along one axis of length n cells with spacing dl.
///
/// `centers` has n entries (cell centers, where the outer Dxb divided
/// difference lives); `edges` has n+1 entries (cell edges, where the inner
/// Dxf difference lives). Both are 1 outside the PML.
struct StretchProfile {
  std::vector<cplx> centers;
  std::vector<cplx> edges;
};

StretchProfile make_stretch(index_t n, double dl, double omega, const PmlSpec& pml);

}  // namespace maps::fdfd
