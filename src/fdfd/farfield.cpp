#include "fdfd/farfield.hpp"

#include <cmath>

namespace maps::fdfd {

using maps::math::CplxGrid;

namespace {

/// Physical cell-center coordinate of the grid node (i, j).
void node_xy(const grid::GridSpec& spec, index_t i, index_t j, double* x, double* y) {
  *x = spec.x_of(i);
  *y = spec.y_of(j);
}

}  // namespace

std::vector<std::pair<index_t, cplx>> farfield_coeffs(const grid::GridSpec& spec,
                                                      const Port& port,
                                                      double angle_rad, double omega,
                                                      double eps_bg) {
  maps::require(eps_bg > 0.0, "farfield_coeffs: eps_bg must be > 0");
  maps::require(port.span() > 0, "farfield_coeffs: empty port span");
  const double k = omega * std::sqrt(eps_bg);
  const double rx = std::cos(angle_rad);
  const double ry = std::sin(angle_rad);

  // Outward normal of the capture line = the port's propagation direction.
  double nx = 0.0, ny = 0.0;
  if (port.normal == Axis::X) {
    nx = static_cast<double>(port.direction);
  } else {
    ny = static_cast<double>(port.direction);
  }
  const double rn = rx * nx + ry * ny;  // r_hat . n_hat

  std::vector<std::pair<index_t, cplx>> coeffs;
  coeffs.reserve(static_cast<std::size_t>(3 * port.span()));
  const double dl = spec.dl;
  const index_t span = port.span();
  const double ramp = kFarfieldTaperFraction * static_cast<double>(span);

  for (index_t t = port.lo; t < port.hi; ++t) {
    // cos^2 end taper: suppresses the diffraction ripple of the truncated
    // capture line (the line stands in for an infinite one).
    const double from_lo = static_cast<double>(t - port.lo) + 0.5;
    const double from_hi = static_cast<double>(port.hi - t) - 0.5;
    const double edge = std::min(from_lo, from_hi);
    double taper = 1.0;
    if (ramp > 0.0 && edge < ramp) {
      const double s = std::sin(0.5 * kPi * edge / ramp);
      taper = s * s;
    }
    index_t i = 0, j = 0;
    if (port.normal == Axis::X) {
      i = port.pos;
      j = t;
    } else {
      i = t;
      j = port.pos;
    }
    maps::require(i >= 1 && i < spec.nx - 1 && j >= 1 && j < spec.ny - 1,
                  "farfield_coeffs: port too close to the grid boundary for the "
                  "normal-derivative stencil");
    double x = 0.0, y = 0.0;
    node_xy(spec, i, j, &x, &y);
    const cplx phase = taper * std::exp(-maps::kI * (k * (rx * x + ry * y)));

    // Ez dG/dn' term on the line itself.
    coeffs.emplace_back(i + spec.nx * j, 0.25 * k * rn * phase * dl);

    // -G dEz/dn' term: central difference along the normal. The two
    // neighbour lines carry +-(i/8) * phase (dl from the line integral
    // cancels one dl of the 1/(2 dl) difference).
    index_t ip = i, jp = j, im = i, jm = j;
    if (port.normal == Axis::X) {
      ip += port.direction;
      im -= port.direction;
    } else {
      jp += port.direction;
      jm -= port.direction;
    }
    const cplx dcoef = -0.125 * maps::kI * phase;
    coeffs.emplace_back(ip + spec.nx * jp, dcoef);
    coeffs.emplace_back(im + spec.nx * jm, -dcoef);
  }
  return coeffs;
}

std::size_t FarFieldPattern::peak() const {
  std::size_t best = 0;
  for (std::size_t a = 1; a < intensity.size(); ++a) {
    if (intensity[a] > intensity[best]) best = a;
  }
  return best;
}

double FarFieldPattern::total_intensity() const {
  if (angles.size() < 2) return intensity.empty() ? 0.0 : intensity.front();
  double sum = 0.0;
  for (std::size_t a = 0; a + 1 < angles.size(); ++a) {
    sum += 0.5 * (intensity[a] + intensity[a + 1]) * (angles[a + 1] - angles[a]);
  }
  return sum;
}

double FarFieldPattern::directivity(double center, double half_width) const {
  const double total = total_intensity();
  if (total <= 0.0) return 0.0;
  double inside = 0.0;
  for (std::size_t a = 0; a + 1 < angles.size(); ++a) {
    const double mid = 0.5 * (angles[a] + angles[a + 1]);
    if (std::abs(mid - center) <= half_width) {
      inside += 0.5 * (intensity[a] + intensity[a + 1]) * (angles[a + 1] - angles[a]);
    }
  }
  return inside / total;
}

FarFieldPattern compute_far_field(const CplxGrid& Ez, const grid::GridSpec& spec,
                                  const Port& port, const std::vector<double>& angles,
                                  double omega, double eps_bg) {
  FarFieldPattern pat;
  pat.angles = angles;
  pat.amplitude.reserve(angles.size());
  pat.intensity.reserve(angles.size());
  for (const double theta : angles) {
    const auto coeffs = farfield_coeffs(spec, port, theta, omega, eps_bg);
    cplx f{0.0, 0.0};
    for (const auto& [n, c] : coeffs) f += c * Ez[n];
    pat.amplitude.push_back(f);
    pat.intensity.push_back(std::norm(f));
  }
  return pat;
}

std::vector<double> angle_sweep(double lo, double hi, int count) {
  maps::require(count >= 2 && hi > lo, "angle_sweep: need count >= 2 and hi > lo");
  std::vector<double> angles(static_cast<std::size_t>(count));
  for (int a = 0; a < count; ++a) {
    angles[static_cast<std::size_t>(a)] =
        lo + (hi - lo) * static_cast<double>(a) / static_cast<double>(count - 1);
  }
  return angles;
}

FomTerm far_field_term(const grid::GridSpec& spec, const Port& port, double angle_rad,
                       double omega, double eps_bg, double norm, double weight,
                       Goal goal, const std::string& name) {
  FomTerm term;
  term.coeffs = farfield_coeffs(spec, port, angle_rad, omega, eps_bg);
  term.norm = norm;
  term.weight = weight;
  term.goal = goal;
  term.name = name;
  return term;
}

}  // namespace maps::fdfd
