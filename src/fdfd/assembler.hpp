// FDFD operator assembly for the 2D TM (Ez) Helmholtz problem.
//
// Discretizes (with SC-PML stretch factors folded into the differences)
//
//   (1/sc_x) d/dx (1/se_x dEz/dx) + (1/sc_y) d/dy (1/se_y dEz/dy)
//     + omega^2 eps_r Ez = -i omega Jz
//
// on a uniform Yee grid with Dirichlet exterior, flattening n = i + nx*j.
//
// The assembler also exposes the diagonal row scaling W (w_n = sc_x(i)*sc_y(j))
// that symmetrizes the operator: W*A = (W*A)^T. MAPS uses this to express the
// adjoint solve A^T lambda = g as the *forward* solve A (W^{-1} lambda) =
// W^{-1} g, which is what lets a forward-field neural surrogate predict
// adjoint fields (paper Fig. 3, "adj src").
#pragma once

#include "fdfd/pml.hpp"
#include "grid/yee_grid.hpp"
#include "math/banded_split.hpp"
#include "math/csr.hpp"
#include "math/field2d.hpp"

namespace maps::fdfd {

struct FdfdOperator {
  maps::math::CsrCplx A;            // N x N Helmholtz operator
  std::vector<cplx> W;              // symmetrizing row scale, size N
  double omega = 0.0;
  grid::GridSpec spec;
};

/// Assemble the FDFD matrix for permittivity map `eps` at angular frequency
/// `omega` with the given PML. `eps` shape must match `spec`.
FdfdOperator assemble(const grid::GridSpec& spec, const maps::math::RealGrid& eps,
                      double omega, const PmlSpec& pml);

/// The same operator assembled directly into split-complex band storage
/// (kl = ku = nx under the natural n = i + nx*j ordering), skipping the
/// triplet -> CSR -> band conversion chain. This is the prepared-operator
/// fast path of the dataset-generation runtime: coefficient arithmetic is
/// identical to assemble(), so the banded system equals to_band(assemble().A)
/// entry-for-entry; only W and the band are produced (no CSR A).
///
/// The band scalar T is a template parameter so the mixed-precision solver
/// path (solver::SolverPrecision::Mixed) assembles straight into fp32 band
/// storage: coefficient arithmetic stays double (identical stretch/coupling
/// values), only the final store rounds to T — the same rounding a
/// double-assemble + convert would produce, without ever allocating or
/// writing the double-sized band.
template <typename T>
struct BandedOperatorT {
  maps::math::SplitBandMatrixT<T> AB;
  std::vector<cplx> W;              // symmetrizing row scale, size N
  double omega = 0.0;
  grid::GridSpec spec;
};

using BandedOperator = BandedOperatorT<double>;
using BandedOperatorF = BandedOperatorT<float>;

template <typename T>
BandedOperatorT<T> assemble_banded_t(const grid::GridSpec& spec,
                                     const maps::math::RealGrid& eps, double omega,
                                     const PmlSpec& pml);

extern template BandedOperatorT<double> assemble_banded_t<double>(
    const grid::GridSpec&, const maps::math::RealGrid&, double, const PmlSpec&);
extern template BandedOperatorT<float> assemble_banded_t<float>(
    const grid::GridSpec&, const maps::math::RealGrid&, double, const PmlSpec&);

inline BandedOperator assemble_banded(const grid::GridSpec& spec,
                                      const maps::math::RealGrid& eps, double omega,
                                      const PmlSpec& pml) {
  return assemble_banded_t<double>(spec, eps, omega, pml);
}

/// Right-hand side from a current source: b = -i omega J.
std::vector<cplx> rhs_from_current(const maps::math::CplxGrid& J, double omega);

}  // namespace maps::fdfd
