#include "fdfd/monitor.hpp"

namespace maps::fdfd {

cplx mode_overlap(const maps::math::CplxGrid& Ez, const Port& port, const Mode& mode,
                  double dl) {
  maps::require(static_cast<index_t>(mode.profile.size()) == port.span(),
                "mode_overlap: profile/span mismatch");
  cplx a{};
  for (index_t t = port.lo; t < port.hi; ++t) {
    const double phi = mode.profile[static_cast<std::size_t>(t - port.lo)];
    const cplx e = (port.normal == Axis::X) ? Ez(port.pos, t) : Ez(t, port.pos);
    a += e * phi * dl;
  }
  return a;
}

double port_flux(const Fields& f, const Port& port, double dl) {
  double p = 0.0;
  for (index_t t = port.lo; t < port.hi; ++t) {
    if (port.normal == Axis::X) {
      // S_x = -0.5 Re(Ez conj(Hy)); average staggered Hy onto the line.
      const cplx hy_w = (port.pos > 0) ? f.Hy(port.pos - 1, t) : f.Hy(port.pos, t);
      const cplx hy = 0.5 * (f.Hy(port.pos, t) + hy_w);
      p += -0.5 * std::real(f.Ez(port.pos, t) * std::conj(hy)) * dl;
    } else {
      // S_y = 0.5 Re(Ez conj(Hx)).
      const cplx hx_s = (port.pos > 0) ? f.Hx(t, port.pos - 1) : f.Hx(t, port.pos);
      const cplx hx = 0.5 * (f.Hx(t, port.pos) + hx_s);
      p += 0.5 * std::real(f.Ez(t, port.pos) * std::conj(hx)) * dl;
    }
  }
  return p * port.direction;
}

}  // namespace maps::fdfd
