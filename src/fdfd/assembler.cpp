#include "fdfd/assembler.hpp"

namespace maps::fdfd {

using maps::math::Triplet;

FdfdOperator assemble(const grid::GridSpec& spec, const maps::math::RealGrid& eps,
                      double omega, const PmlSpec& pml) {
  maps::require(eps.nx() == spec.nx && eps.ny() == spec.ny,
                "assemble: eps map does not match grid");
  maps::require(omega > 0, "assemble: omega must be positive");

  const index_t nx = spec.nx, ny = spec.ny;
  const double dl2 = spec.dl * spec.dl;
  const StretchProfile sx = make_stretch(nx, spec.dl, omega, pml);
  const StretchProfile sy = make_stretch(ny, spec.dl, omega, pml);

  std::vector<Triplet<cplx>> tris;
  tris.reserve(static_cast<std::size_t>(5 * nx * ny));

  FdfdOperator op;
  op.W.resize(static_cast<std::size_t>(nx * ny));
  op.omega = omega;
  op.spec = spec;

  auto flat = [nx](index_t i, index_t j) { return i + nx * j; };

  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t n = flat(i, j);
      const cplx scx = sx.centers[static_cast<std::size_t>(i)];
      const cplx scy = sy.centers[static_cast<std::size_t>(j)];
      op.W[static_cast<std::size_t>(n)] = scx * scy;

      // x-direction: east edge i+1, west edge i.
      const cplx ce = cplx{1.0} / (dl2 * scx * sx.edges[static_cast<std::size_t>(i) + 1]);
      const cplx cw = cplx{1.0} / (dl2 * scx * sx.edges[static_cast<std::size_t>(i)]);
      // y-direction: north edge j+1, south edge j.
      const cplx cn = cplx{1.0} / (dl2 * scy * sy.edges[static_cast<std::size_t>(j) + 1]);
      const cplx cs = cplx{1.0} / (dl2 * scy * sy.edges[static_cast<std::size_t>(j)]);

      cplx diag = -(ce + cw + cn + cs) + omega * omega * eps(i, j);
      if (i + 1 < nx) tris.push_back({n, flat(i + 1, j), ce});
      if (i > 0) tris.push_back({n, flat(i - 1, j), cw});
      if (j + 1 < ny) tris.push_back({n, flat(i, j + 1), cn});
      if (j > 0) tris.push_back({n, flat(i, j - 1), cs});
      tris.push_back({n, n, diag});
    }
  }
  op.A = maps::math::CsrCplx::from_triplets(nx * ny, nx * ny, std::move(tris));
  return op;
}

template <typename T>
BandedOperatorT<T> assemble_banded_t(const grid::GridSpec& spec,
                                     const maps::math::RealGrid& eps, double omega,
                                     const PmlSpec& pml) {
  maps::require(eps.nx() == spec.nx && eps.ny() == spec.ny,
                "assemble_banded: eps map does not match grid");
  maps::require(omega > 0, "assemble_banded: omega must be positive");

  const index_t nx = spec.nx, ny = spec.ny;
  const double dl2 = spec.dl * spec.dl;
  const StretchProfile sx = make_stretch(nx, spec.dl, omega, pml);
  const StretchProfile sy = make_stretch(ny, spec.dl, omega, pml);

  BandedOperatorT<T> op;
  // Natural ordering couples n to n±1 and n±nx; a single-row grid only
  // needs the i neighbors.
  const index_t bw = ny > 1 ? nx : 1;
  op.AB = maps::math::SplitBandMatrixT<T>(nx * ny, bw, bw);
  op.W.resize(static_cast<std::size_t>(nx * ny));
  op.omega = omega;
  op.spec = spec;

  auto flat = [nx](index_t i, index_t j) { return i + nx * j; };

  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t n = flat(i, j);
      const cplx scx = sx.centers[static_cast<std::size_t>(i)];
      const cplx scy = sy.centers[static_cast<std::size_t>(j)];
      op.W[static_cast<std::size_t>(n)] = scx * scy;

      const cplx ce = cplx{1.0} / (dl2 * scx * sx.edges[static_cast<std::size_t>(i) + 1]);
      const cplx cw = cplx{1.0} / (dl2 * scx * sx.edges[static_cast<std::size_t>(i)]);
      const cplx cn = cplx{1.0} / (dl2 * scy * sy.edges[static_cast<std::size_t>(j) + 1]);
      const cplx cs = cplx{1.0} / (dl2 * scy * sy.edges[static_cast<std::size_t>(j)]);

      cplx diag = -(ce + cw + cn + cs) + omega * omega * eps(i, j);
      if (i + 1 < nx) op.AB.set(n, flat(i + 1, j), ce);
      if (i > 0) op.AB.set(n, flat(i - 1, j), cw);
      if (j + 1 < ny) op.AB.set(n, flat(i, j + 1), cn);
      if (j > 0) op.AB.set(n, flat(i, j - 1), cs);
      op.AB.set(n, n, diag);
    }
  }
  return op;
}

template BandedOperatorT<double> assemble_banded_t<double>(
    const grid::GridSpec&, const maps::math::RealGrid&, double, const PmlSpec&);
template BandedOperatorT<float> assemble_banded_t<float>(
    const grid::GridSpec&, const maps::math::RealGrid&, double, const PmlSpec&);

std::vector<cplx> rhs_from_current(const maps::math::CplxGrid& J, double omega) {
  std::vector<cplx> b(static_cast<std::size_t>(J.size()));
  const cplx f = -kI * omega;
  for (index_t n = 0; n < J.size(); ++n) b[static_cast<std::size_t>(n)] = f * J[n];
  return b;
}

}  // namespace maps::fdfd
