// Adjoint gradient engine (Sec. II-A of the paper).
//
// With A(eps) Ez = b and real objective F(Ez), the adjoint system
// A^T lambda = dF/dEz gives dF/deps_n = -2 omega^2 Re(lambda_n Ez_n).
//
// Because the row scaling W (from the assembler) symmetrizes A, the adjoint
// field can equivalently be obtained from a *forward* solve:
//   lambda = W * A^{-1} (W^{-1} g),
// i.e. an ordinary simulation with current J_adj = W^{-1} g / (-i omega).
// That equivalent-forward-source form is what MAPS feeds to neural
// surrogates ("adj src" in Fig. 3), and it is exported here both ways.
//
// The adjoint consumes the same solver backend as the forward solve (one
// factorization serves both directions), and the batched entry point pushes
// every adjoint system of a device through one multi-RHS transposed solve.
#pragma once

#include "fdfd/objective.hpp"
#include "fdfd/simulation.hpp"

namespace maps::fdfd {

struct AdjointResult {
  maps::math::RealGrid grad_eps;     // dF/deps per cell
  maps::math::CplxGrid lambda;       // true adjoint field (A^T solve)
  maps::math::CplxGrid adj_current;  // J_adj: forward-source equivalent
  double fom = 0.0;                  // objective value at Ez
};

/// Run the adjoint for a solved forward field. The Simulation must be the one
/// that produced Ez (same operator / backend).
AdjointResult compute_adjoint(Simulation& sim, const maps::math::CplxGrid& Ez,
                              const std::vector<FomTerm>& terms);

/// Backend-level adjoint: identical math, expressed directly against the
/// solver layer (upper layers that manage their own backends use this form).
AdjointResult compute_adjoint(solver::SolverBackend& backend,
                              const grid::GridSpec& spec, double omega,
                              const maps::math::CplxGrid& Ez,
                              const std::vector<FomTerm>& terms);

/// Batched adjoint: one entry per (Ez, terms) pair, all transposed systems
/// solved in a single multi-RHS batch against the shared factorization.
std::vector<AdjointResult> compute_adjoint_batch(
    solver::SolverBackend& backend, const grid::GridSpec& spec, double omega,
    const std::vector<const maps::math::CplxGrid*>& Ez,
    const std::vector<const std::vector<FomTerm>*>& terms);

/// Gradient from separately predicted forward and adjoint-as-forward fields
/// (the paper's "Fwd & Adj Field" gradient mode, Table II). `lambda_fwd`
/// must be the field of a forward run with source `adj_current`; W restores
/// the true adjoint inside the PML (it is identity elsewhere).
maps::math::RealGrid grad_from_fields(const maps::math::CplxGrid& Ez,
                                      const maps::math::CplxGrid& lambda_fwd,
                                      const std::vector<cplx>& W, double omega);

}  // namespace maps::fdfd
