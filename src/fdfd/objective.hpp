// Composable figure-of-merit terms over FDFD field solutions.
//
// Each FomTerm is a normalized mode-power objective T = |c^T Ez|^2 / norm
// with a sign (maximize / minimize) and weight; the total objective of a
// simulation is the signed weighted sum. Terms carry everything the adjoint
// needs: value and the Wirtinger derivative dF/dEz.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fdfd/mode_solver.hpp"
#include "fdfd/port.hpp"
#include "math/field2d.hpp"

namespace maps::fdfd {

enum class Goal { Maximize, Minimize };

struct FomTerm {
  /// Sparse monitor row c: (flat node index, coefficient phi*dl).
  std::vector<std::pair<index_t, cplx>> coeffs;
  double norm = 1.0;      // |a_norm|^2 from the normalization run
  double weight = 1.0;
  Goal goal = Goal::Maximize;
  std::string name;

  double sign() const { return goal == Goal::Maximize ? 1.0 : -1.0; }
};

/// Build the sparse monitor row for (port, mode) on the given grid.
std::vector<std::pair<index_t, cplx>> mode_monitor_coeffs(const grid::GridSpec& spec,
                                                          const Port& port,
                                                          const Mode& mode);

/// a = c^T Ez.
cplx term_amplitude(const FomTerm& term, const maps::math::CplxGrid& Ez);

/// Normalized power into the monitor: T = |a|^2 / norm (unsigned).
double term_transmission(const FomTerm& term, const maps::math::CplxGrid& Ez);

/// Signed objective F = sum_k sign_k w_k T_k.
double objective_value(const std::vector<FomTerm>& terms,
                       const maps::math::CplxGrid& Ez);

/// Wirtinger gradient g_n = dF/dEz_n = sum_k sign_k (w_k / norm_k) conj(a_k) c_kn.
std::vector<cplx> objective_dE(const std::vector<FomTerm>& terms,
                               const maps::math::CplxGrid& Ez);

}  // namespace maps::fdfd
