#include "fdfd/te.hpp"

#include <cmath>

#include "math/bicgstab.hpp"
#include "math/csr.hpp"

namespace maps::fdfd {

using maps::math::CplxGrid;
using maps::math::RealGrid;
using maps::math::Triplet;

namespace {

/// Inverse-averaged edge coefficient between two cells (or one, at the
/// domain boundary): g = mean of 1/eps over the adjacent cells.
double edge_g(double eps_a, double eps_b) { return 0.5 * (1.0 / eps_a + 1.0 / eps_b); }

}  // namespace

FdfdOperator assemble_te(const grid::GridSpec& spec, const RealGrid& eps,
                         double omega, const PmlSpec& pml) {
  maps::require(eps.nx() == spec.nx && eps.ny() == spec.ny,
                "assemble_te: eps map does not match grid");
  maps::require(omega > 0, "assemble_te: omega must be positive");

  const index_t nx = spec.nx, ny = spec.ny;
  const double dl2 = spec.dl * spec.dl;
  const StretchProfile sx = make_stretch(nx, spec.dl, omega, pml);
  const StretchProfile sy = make_stretch(ny, spec.dl, omega, pml);

  std::vector<Triplet<cplx>> tris;
  tris.reserve(static_cast<std::size_t>(5 * nx * ny));

  FdfdOperator op;
  op.W.resize(static_cast<std::size_t>(nx * ny));
  op.omega = omega;
  op.spec = spec;

  auto flat = [nx](index_t i, index_t j) { return i + nx * j; };

  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t n = flat(i, j);
      const cplx scx = sx.centers[static_cast<std::size_t>(i)];
      const cplx scy = sy.centers[static_cast<std::size_t>(j)];
      op.W[static_cast<std::size_t>(n)] = scx * scy;

      const double ge = (i + 1 < nx) ? edge_g(eps(i, j), eps(i + 1, j))
                                     : 1.0 / eps(i, j);
      const double gw = (i > 0) ? edge_g(eps(i - 1, j), eps(i, j)) : 1.0 / eps(i, j);
      const double gn = (j + 1 < ny) ? edge_g(eps(i, j), eps(i, j + 1))
                                     : 1.0 / eps(i, j);
      const double gs = (j > 0) ? edge_g(eps(i, j - 1), eps(i, j)) : 1.0 / eps(i, j);

      const cplx ce = ge / (dl2 * scx * sx.edges[static_cast<std::size_t>(i) + 1]);
      const cplx cw = gw / (dl2 * scx * sx.edges[static_cast<std::size_t>(i)]);
      const cplx cn = gn / (dl2 * scy * sy.edges[static_cast<std::size_t>(j) + 1]);
      const cplx cs = gs / (dl2 * scy * sy.edges[static_cast<std::size_t>(j)]);

      const cplx diag = -(ce + cw + cn + cs) + omega * omega;
      if (i + 1 < nx) tris.push_back({n, flat(i + 1, j), ce});
      if (i > 0) tris.push_back({n, flat(i - 1, j), cw});
      if (j + 1 < ny) tris.push_back({n, flat(i, j + 1), cn});
      if (j > 0) tris.push_back({n, flat(i, j - 1), cs});
      tris.push_back({n, n, diag});
    }
  }
  op.A = maps::math::CsrCplx::from_triplets(nx * ny, nx * ny, std::move(tris));
  return op;
}

TeSimulation::TeSimulation(grid::GridSpec spec, RealGrid eps, double omega,
                           PmlSpec pml)
    : spec_(spec), eps_(std::move(eps)), omega_(omega), pml_(pml),
      op_(assemble_te(spec_, eps_, omega_, pml_)),
      interleaved_(maps::math::interleaved_fallback_requested()) {}

void TeSimulation::ensure_factorized() {
  if (split_ || lu_) return;
  if (interleaved_) {
    lu_ = maps::math::to_band(op_.A);
    lu_->factorize();
  } else {
    split_ = maps::math::to_split_band(op_.A);
    split_->factorize();
  }
}

CplxGrid TeSimulation::solve(const CplxGrid& Mz) {
  maps::require(Mz.nx() == spec_.nx && Mz.ny() == spec_.ny,
                "TeSimulation::solve: source shape mismatch");
  ensure_factorized();
  std::vector<cplx> x = rhs_from_current(Mz, omega_);
  if (split_) {
    split_->solve_inplace(x);
  } else {
    lu_->solve_inplace(x);
  }
  return CplxGrid(spec_.nx, spec_.ny, std::move(x));
}

CplxGrid TeSimulation::solve_transposed(const std::vector<cplx>& rhs) {
  maps::require(static_cast<index_t>(rhs.size()) == spec_.cells(),
                "TeSimulation::solve_transposed: rhs size mismatch");
  ensure_factorized();
  std::vector<cplx> x = rhs;
  if (split_) {
    split_->solve_transposed_inplace(x);
  } else {
    lu_->solve_transposed_inplace(x);
  }
  return CplxGrid(spec_.nx, spec_.ny, std::move(x));
}

TeFields TeSimulation::derive_fields(CplxGrid Hz) const {
  TeFields f{std::move(Hz), CplxGrid(spec_.nx, spec_.ny), CplxGrid(spec_.nx, spec_.ny)};
  const cplx i_over_w = kI / omega_;
  for (index_t j = 0; j < spec_.ny; ++j) {
    for (index_t i = 0; i < spec_.nx; ++i) {
      const cplx h = f.Hz(i, j);
      const cplx h_n = (j + 1 < spec_.ny) ? f.Hz(i, j + 1) : cplx{};
      const cplx h_e = (i + 1 < spec_.nx) ? f.Hz(i + 1, j) : cplx{};
      // Edge permittivities match the assembly's inverse averaging.
      const double ge_y = (j + 1 < spec_.ny) ? edge_g(eps_(i, j), eps_(i, j + 1))
                                             : 1.0 / eps_(i, j);
      const double ge_x = (i + 1 < spec_.nx) ? edge_g(eps_(i, j), eps_(i + 1, j))
                                             : 1.0 / eps_(i, j);
      // Ex = (i/(w eps)) dHz/dy ; Ey = -(i/(w eps)) dHz/dx.
      f.Ex(i, j) = i_over_w * ge_y * (h_n - h) / spec_.dl;
      f.Ey(i, j) = -i_over_w * ge_x * (h_e - h) / spec_.dl;
    }
  }
  return f;
}

double intensity_value(const IntensityTerm& term, const CplxGrid& Hz) {
  maps::require(term.box.fits(grid::GridSpec{Hz.nx(), Hz.ny(), 1.0}),
                "intensity_value: box outside field");
  const bool weighted = term.weights.size() > 0;
  if (weighted) {
    maps::require(term.weights.nx() == term.box.ni && term.weights.ny() == term.box.nj,
                  "intensity_value: weights must be box-shaped");
  }
  double sum = 0.0;
  for (index_t bj = 0; bj < term.box.nj; ++bj) {
    for (index_t bi = 0; bi < term.box.ni; ++bi) {
      const double w = weighted ? term.weights(bi, bj) : 1.0;
      sum += w * std::norm(Hz(term.box.i0 + bi, term.box.j0 + bj));
    }
  }
  return sum / term.norm;
}

double intensity_objective(const std::vector<IntensityTerm>& terms,
                           const CplxGrid& Hz) {
  double f = 0.0;
  for (const auto& t : terms) f += t.sign() * t.weight * intensity_value(t, Hz);
  return f;
}

std::vector<cplx> intensity_dHz(const std::vector<IntensityTerm>& terms,
                                const CplxGrid& Hz) {
  std::vector<cplx> g(static_cast<std::size_t>(Hz.size()));
  for (const auto& t : terms) {
    const bool weighted = t.weights.size() > 0;
    const double scale = t.sign() * t.weight / t.norm;
    for (index_t bj = 0; bj < t.box.nj; ++bj) {
      for (index_t bi = 0; bi < t.box.ni; ++bi) {
        const index_t i = t.box.i0 + bi, j = t.box.j0 + bj;
        const double w = weighted ? t.weights(bi, bj) : 1.0;
        const index_t n = i + Hz.nx() * j;
        // d|h|^2/dh (Wirtinger, conj(h) fixed) = conj(h).
        g[static_cast<std::size_t>(n)] += scale * w * std::conj(Hz(i, j));
      }
    }
  }
  return g;
}

TeAdjointResult compute_te_adjoint(TeSimulation& sim, const CplxGrid& Hz,
                                   const std::vector<IntensityTerm>& terms) {
  const auto& spec = sim.spec();
  maps::require(Hz.nx() == spec.nx && Hz.ny() == spec.ny,
                "compute_te_adjoint: field shape mismatch");
  const auto& eps = sim.eps();
  const double omega = sim.omega();

  TeAdjointResult out{RealGrid(spec.nx, spec.ny), CplxGrid(spec.nx, spec.ny),
                      intensity_objective(terms, Hz)};
  const std::vector<cplx> g = intensity_dHz(terms, Hz);
  out.lambda = sim.solve_transposed(g);

  // dF/deps_c = -2 Re( lambda^T (dA/deps_c) Hz ). A depends on eps through
  // the edge coefficients g_e; each edge contributes
  //   lambda^T L_e Hz = (Hz_b - Hz_a) (a_coef lambda_a - b_coef lambda_b)
  // where a_coef / b_coef are the PML prefactors of the two rows, and
  // d(g_e)/d(eps_cell) = -1/(2 eps_cell^2) for each adjacent cell.
  const index_t nx = spec.nx, ny = spec.ny;
  const double dl2 = spec.dl * spec.dl;
  const StretchProfile sx = make_stretch(nx, spec.dl, omega, sim.pml_spec());
  const StretchProfile sy = make_stretch(ny, spec.dl, omega, sim.pml_spec());

  auto flat = [nx](index_t i, index_t j) { return i + nx * j; };

  // Interior x-edges between (i, j) and (i+1, j).
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i + 1 < nx; ++i) {
      const index_t na = flat(i, j), nb = flat(i + 1, j);
      const cplx se = sx.edges[static_cast<std::size_t>(i) + 1];
      const cplx a_coef = cplx{1.0} / (dl2 * sx.centers[static_cast<std::size_t>(i)] * se);
      const cplx b_coef =
          cplx{1.0} / (dl2 * sx.centers[static_cast<std::size_t>(i) + 1] * se);
      const cplx t = (Hz[nb] - Hz[na]) * (a_coef * out.lambda[na] - b_coef * out.lambda[nb]);
      const double re = std::real(t);
      out.grad_eps(i, j) += -2.0 * re * (-0.5 / (eps(i, j) * eps(i, j)));
      out.grad_eps(i + 1, j) += -2.0 * re * (-0.5 / (eps(i + 1, j) * eps(i + 1, j)));
    }
    // Boundary x-edges: L_e = -coef e_n e_n^T with g = 1/eps of the cell.
    {
      const index_t n0 = flat(0, j);
      const cplx coef =
          cplx{1.0} / (dl2 * sx.centers[0] * sx.edges[0]);
      const double re = std::real(-coef * out.lambda[n0] * Hz[n0]);
      out.grad_eps(0, j) += -2.0 * re * (-1.0 / (eps(0, j) * eps(0, j)));
      const index_t n1 = flat(nx - 1, j);
      const cplx coef1 = cplx{1.0} / (dl2 * sx.centers[static_cast<std::size_t>(nx) - 1] *
                                      sx.edges[static_cast<std::size_t>(nx)]);
      const double re1 = std::real(-coef1 * out.lambda[n1] * Hz[n1]);
      out.grad_eps(nx - 1, j) += -2.0 * re1 * (-1.0 / (eps(nx - 1, j) * eps(nx - 1, j)));
    }
  }
  // Interior y-edges between (i, j) and (i, j+1).
  for (index_t i = 0; i < nx; ++i) {
    for (index_t j = 0; j + 1 < ny; ++j) {
      const index_t na = flat(i, j), nb = flat(i, j + 1);
      const cplx se = sy.edges[static_cast<std::size_t>(j) + 1];
      const cplx a_coef = cplx{1.0} / (dl2 * sy.centers[static_cast<std::size_t>(j)] * se);
      const cplx b_coef =
          cplx{1.0} / (dl2 * sy.centers[static_cast<std::size_t>(j) + 1] * se);
      const cplx t = (Hz[nb] - Hz[na]) * (a_coef * out.lambda[na] - b_coef * out.lambda[nb]);
      const double re = std::real(t);
      out.grad_eps(i, j) += -2.0 * re * (-0.5 / (eps(i, j) * eps(i, j)));
      out.grad_eps(i, j + 1) += -2.0 * re * (-0.5 / (eps(i, j + 1) * eps(i, j + 1)));
    }
    {
      const index_t n0 = flat(i, 0);
      const cplx coef = cplx{1.0} / (dl2 * sy.centers[0] * sy.edges[0]);
      const double re = std::real(-coef * out.lambda[n0] * Hz[n0]);
      out.grad_eps(i, 0) += -2.0 * re * (-1.0 / (eps(i, 0) * eps(i, 0)));
      const index_t n1 = flat(i, ny - 1);
      const cplx coef1 = cplx{1.0} / (dl2 * sy.centers[static_cast<std::size_t>(ny) - 1] *
                                      sy.edges[static_cast<std::size_t>(ny)]);
      const double re1 = std::real(-coef1 * out.lambda[n1] * Hz[n1]);
      out.grad_eps(i, ny - 1) += -2.0 * re1 * (-1.0 / (eps(i, ny - 1) * eps(i, ny - 1)));
    }
  }
  return out;
}

double te_port_flux(const TeFields& f, const Port& port, double dl) {
  // S = 0.5 Re(E x H*) with H = Hz z_hat: S_x = 0.5 Re(Ey conj(Hz)),
  // S_y = -0.5 Re(Ex conj(Hz)) (signs fixed by the +x plane wave
  // Hz = Ey = e^{ikx} carrying power toward +x).
  double flux = 0.0;
  if (port.normal == Axis::X) {
    for (index_t j = port.lo; j < port.hi; ++j) {
      flux += 0.5 * std::real(f.Ey(port.pos, j) * std::conj(f.Hz(port.pos, j))) * dl;
    }
  } else {
    for (index_t i = port.lo; i < port.hi; ++i) {
      flux += -0.5 * std::real(f.Ex(i, port.pos) * std::conj(f.Hz(i, port.pos))) * dl;
    }
  }
  return flux * port.direction;
}

}  // namespace maps::fdfd
