// Near-to-far-field projection ("controlling far-field intensity
// distributions", Sec. III-C.4).
//
// The radiated field above/beside a device is projected to the far zone by
// the 2D equivalence integral over a straight monitor line C (a Port):
//
//   Ez(r) = int_C [ Ez dG/dn' - G dEz/dn' ] dl',   G = (i/4) H0^(1)(k|r-r'|)
//
// In the far zone G reduces to a plane-wave kernel, so the angular far-field
// amplitude F(theta), defined by Ez -> sqrt(2/(pi k r)) e^{i(kr - pi/4)}
// F(theta), is a *linear* functional of Ez sampled on three grid lines (the
// monitor line and its two neighbours, which carry the normal-derivative
// stencil). Linearity is the point: a far-field direction becomes an
// ordinary sparse FomTerm row, so the whole adjoint/inverse-design machinery
// (and the neural gradient providers) apply to far-field objectives without
// modification.
//
// Angles are measured from the +x axis; the monitor only captures radiation
// leaving through it along its `direction`, so request angles within the
// open half-space the port faces.
#pragma once

#include <vector>

#include "fdfd/objective.hpp"
#include "fdfd/port.hpp"
#include "grid/yee_grid.hpp"
#include "math/field2d.hpp"

namespace maps::fdfd {

/// Fraction of each window end over which the capture line is cos^2-tapered
/// (suppresses truncation ripple of the finite line).
inline constexpr double kFarfieldTaperFraction = 0.25;

/// Sparse row c with F(theta) = c^T Ez for radiation crossing `port` into
/// the half-space it faces. `eps_bg` is the (uniform) background relative
/// permittivity along the monitor, k = omega * sqrt(eps_bg).
std::vector<std::pair<index_t, cplx>> farfield_coeffs(const grid::GridSpec& spec,
                                                      const Port& port,
                                                      double angle_rad, double omega,
                                                      double eps_bg);

struct FarFieldPattern {
  std::vector<double> angles;      // radians
  std::vector<cplx> amplitude;     // F(theta)
  std::vector<double> intensity;   // |F|^2

  /// Index of the strongest direction.
  std::size_t peak() const;
  /// Total (trapezoidal) intensity over the angular window.
  double total_intensity() const;
  /// Fraction of total intensity within +-half_width of `center` (radians).
  double directivity(double center, double half_width) const;
};

/// Evaluate the far-field pattern of a solved Ez over a set of angles.
FarFieldPattern compute_far_field(const maps::math::CplxGrid& Ez,
                                  const grid::GridSpec& spec, const Port& port,
                                  const std::vector<double>& angles, double omega,
                                  double eps_bg);

/// Uniformly spaced angles in [lo, hi] (inclusive).
std::vector<double> angle_sweep(double lo, double hi, int count);

/// Far-field intensity FomTerm: T = |F(theta)|^2 / norm. Drops straight into
/// objective_value / objective_dE / compute_adjoint like any mode monitor.
FomTerm far_field_term(const grid::GridSpec& spec, const Port& port, double angle_rad,
                       double omega, double eps_bg, double norm = 1.0,
                       double weight = 1.0, Goal goal = Goal::Maximize,
                       const std::string& name = "farfield");

}  // namespace maps::fdfd
