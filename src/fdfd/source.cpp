#include "fdfd/source.hpp"

#include <cmath>

namespace maps::fdfd {

using maps::math::CplxGrid;

CplxGrid point_source(const grid::GridSpec& spec, index_t i, index_t j, cplx amplitude) {
  maps::require(i >= 0 && i < spec.nx && j >= 0 && j < spec.ny,
                "point_source: out of grid");
  CplxGrid J(spec.nx, spec.ny);
  J(i, j) = amplitude;
  return J;
}

namespace {
void add_line(CplxGrid& J, const Port& port, const Mode& mode, index_t pos, cplx amp) {
  maps::require(static_cast<index_t>(mode.profile.size()) == port.span(),
                "mode source: profile/span mismatch");
  for (index_t t = port.lo; t < port.hi; ++t) {
    const double phi = mode.profile[static_cast<std::size_t>(t - port.lo)];
    if (port.normal == Axis::X) {
      maps::require(J.in_bounds(pos, t), "mode source: line outside grid");
      J(pos, t) += amp * phi;
    } else {
      maps::require(J.in_bounds(t, pos), "mode source: line outside grid");
      J(t, pos) += amp * phi;
    }
  }
}
}  // namespace

CplxGrid mode_source_line(const grid::GridSpec& spec, const Port& port,
                          const Mode& mode) {
  CplxGrid J(spec.nx, spec.ny);
  add_line(J, port, mode, port.pos, cplx{1.0, 0.0});
  return J;
}

CplxGrid mode_source_directional(const grid::GridSpec& spec, const Port& port,
                                 const Mode& mode) {
  CplxGrid J(spec.nx, spec.ny);
  add_line(J, port, mode, port.pos, cplx{1.0, 0.0});
  // Backward-cancelling companion line one cell behind the launch direction.
  const cplx phase = std::exp(kI * mode.beta * spec.dl);
  add_line(J, port, mode, port.pos - port.direction, -phase);
  return J;
}

}  // namespace maps::fdfd
