#include "fdfd/mode_solver.hpp"

#include <algorithm>
#include <cmath>

#include "math/tridiag_eig.hpp"

namespace maps::fdfd {

std::vector<Mode> solve_slab_modes(const std::vector<double>& eps_line, double dl,
                                   double omega, int max_modes) {
  maps::require(eps_line.size() >= 3, "solve_slab_modes: profile too short");
  maps::require(dl > 0 && omega > 0, "solve_slab_modes: invalid dl/omega");
  const std::size_t n = eps_line.size();

  std::vector<double> diag(n), off(n - 1, 1.0 / (dl * dl));
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = -2.0 / (dl * dl) + omega * omega * eps_line[i];
  }
  const auto eig = maps::math::tridiag_eigh(std::move(diag), std::move(off));

  // Guided window: beta^2 must exceed the cladding light line (edge eps, the
  // profile is assumed clad at both ends) and stay below the core light line.
  const double eps_clad = std::max(eps_line.front(), eps_line.back());
  const double beta2_min = omega * omega * eps_clad;

  std::vector<Mode> modes;
  for (std::size_t k = n; k-- > 0 && static_cast<int>(modes.size()) < max_modes;) {
    const double beta2 = eig.eigenvalues[k];
    if (beta2 <= beta2_min) break;  // eigenvalues ascending: all further are radiative
    Mode m;
    m.beta = std::sqrt(beta2);
    m.neff = m.beta / omega;
    m.profile = eig.vectors[k];
    // L2 normalization with the dl measure; fix sign so the peak is positive.
    double nrm = 0.0;
    for (double v : m.profile) nrm += v * v * dl;
    nrm = std::sqrt(nrm);
    const auto peak = std::max_element(m.profile.begin(), m.profile.end(),
                                       [](double a, double b) {
                                         return std::abs(a) < std::abs(b);
                                       });
    const double sign = (*peak >= 0.0) ? 1.0 : -1.0;
    for (double& v : m.profile) v *= sign / nrm;
    modes.push_back(std::move(m));
  }
  return modes;
}

std::vector<double> eps_along_port(const maps::math::RealGrid& eps, const Port& port) {
  maps::require(port.hi > port.lo, "eps_along_port: empty span");
  std::vector<double> line(static_cast<std::size_t>(port.span()));
  for (index_t t = port.lo; t < port.hi; ++t) {
    if (port.normal == Axis::X) {
      maps::require(port.pos >= 0 && port.pos < eps.nx() && t < eps.ny(),
                    "eps_along_port: port outside grid");
      line[static_cast<std::size_t>(t - port.lo)] = eps(port.pos, t);
    } else {
      maps::require(port.pos >= 0 && port.pos < eps.ny() && t < eps.nx(),
                    "eps_along_port: port outside grid");
      line[static_cast<std::size_t>(t - port.lo)] = eps(t, port.pos);
    }
  }
  return line;
}

}  // namespace maps::fdfd
