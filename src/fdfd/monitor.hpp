// Field monitors: mode-overlap amplitudes and Poynting flux through ports.
//
// Transmissions in MAPS are ratios |a_port|^2 / |a_norm|^2 against a
// normalization run (straight waveguide), so mode normalization constants
// cancel. Flux monitors provide the model-free cross-check and the
// "radiation" label (1 - sum of port powers).
#pragma once

#include "fdfd/mode_solver.hpp"
#include "fdfd/port.hpp"
#include "fdfd/simulation.hpp"

namespace maps::fdfd {

/// Mode-overlap amplitude a = sum_t Ez(line_t) * phi_t * dl.
cplx mode_overlap(const maps::math::CplxGrid& Ez, const Port& port, const Mode& mode,
                  double dl);

/// Time-averaged power through the port line in its propagation direction.
/// Uses S = 0.5 Re(E x H*) with H derived from Ez on the staggered grid.
double port_flux(const Fields& f, const Port& port, double dl);

}  // namespace maps::fdfd
