#include "fdfd/simulation.hpp"

namespace maps::fdfd {

using maps::math::CplxGrid;

Simulation::Simulation(grid::GridSpec spec, maps::math::RealGrid eps, double omega,
                       SimOptions options)
    : spec_(spec), eps_(std::move(eps)), omega_(omega), options_(std::move(options)),
      backend_(solver::make_cached_backend(options_.cache.get(), spec_, eps_, omega_,
                                           options_.pml, options_.solver_config())) {}

CplxGrid Simulation::solve(const CplxGrid& J) {
  maps::require(J.nx() == spec_.nx && J.ny() == spec_.ny,
                "Simulation::solve: source shape mismatch");
  return solve_raw(rhs_from_current(J, omega_));
}

CplxGrid Simulation::solve_raw(const std::vector<cplx>& rhs) {
  maps::require(static_cast<index_t>(rhs.size()) == spec_.cells(),
                "Simulation::solve_raw: rhs size mismatch");
  return CplxGrid(spec_.nx, spec_.ny, backend_->solve(rhs));
}

CplxGrid Simulation::solve_transposed(const std::vector<cplx>& rhs) {
  maps::require(static_cast<index_t>(rhs.size()) == spec_.cells(),
                "Simulation::solve_transposed: rhs size mismatch");
  return CplxGrid(spec_.nx, spec_.ny, backend_->solve_transposed(rhs));
}

std::vector<CplxGrid> Simulation::solve_batch(const std::vector<CplxGrid>& Js) {
  std::vector<std::vector<cplx>> rhs;
  rhs.reserve(Js.size());
  for (const auto& J : Js) {
    maps::require(J.nx() == spec_.nx && J.ny() == spec_.ny,
                  "Simulation::solve_batch: source shape mismatch");
    rhs.push_back(rhs_from_current(J, omega_));
  }
  return solve_raw_batch(rhs);
}

std::vector<CplxGrid> Simulation::solve_raw_batch(
    const std::vector<std::vector<cplx>>& rhs) {
  for (const auto& b : rhs) {
    maps::require(static_cast<index_t>(b.size()) == spec_.cells(),
                  "Simulation::solve_raw_batch: rhs size mismatch");
  }
  auto xs = backend_->solve_batch(rhs);
  std::vector<CplxGrid> out;
  out.reserve(xs.size());
  for (auto& x : xs) out.emplace_back(spec_.nx, spec_.ny, std::move(x));
  return out;
}

std::vector<CplxGrid> Simulation::solve_transposed_batch(
    const std::vector<std::vector<cplx>>& rhs) {
  for (const auto& b : rhs) {
    maps::require(static_cast<index_t>(b.size()) == spec_.cells(),
                  "Simulation::solve_transposed_batch: rhs size mismatch");
  }
  auto xs = backend_->solve_transposed_batch(rhs);
  std::vector<CplxGrid> out;
  out.reserve(xs.size());
  for (auto& x : xs) out.emplace_back(spec_.nx, spec_.ny, std::move(x));
  return out;
}

Fields Simulation::derive_fields(CplxGrid Ez) const {
  Fields f{std::move(Ez), CplxGrid(spec_.nx, spec_.ny), CplxGrid(spec_.nx, spec_.ny)};
  const cplx inv_iw_dl = cplx{1.0} / (kI * omega_ * spec_.dl);
  for (index_t j = 0; j < spec_.ny; ++j) {
    for (index_t i = 0; i < spec_.nx; ++i) {
      const cplx e = f.Ez(i, j);
      const cplx e_n = (j + 1 < spec_.ny) ? f.Ez(i, j + 1) : cplx{};
      const cplx e_e = (i + 1 < spec_.nx) ? f.Ez(i + 1, j) : cplx{};
      // Hx = (1/(i w)) dEz/dy ; Hy = -(1/(i w)) dEz/dx.
      f.Hx(i, j) = (e_n - e) * inv_iw_dl;
      f.Hy(i, j) = -(e_e - e) * inv_iw_dl;
    }
  }
  return f;
}

}  // namespace maps::fdfd
