#include "fdfd/simulation.hpp"

namespace maps::fdfd {

using maps::math::CplxGrid;

Simulation::Simulation(grid::GridSpec spec, maps::math::RealGrid eps, double omega,
                       SimOptions options)
    : spec_(spec), eps_(std::move(eps)), omega_(omega), options_(options),
      op_(assemble(spec_, eps_, omega_, options_.pml)) {}

void Simulation::ensure_factorized() {
  if (!lu_) {
    lu_ = maps::math::to_band(op_.A);
    lu_->factorize();
    ++factorizations_;
  }
}

CplxGrid Simulation::solve(const CplxGrid& J) {
  maps::require(J.nx() == spec_.nx && J.ny() == spec_.ny,
                "Simulation::solve: source shape mismatch");
  return solve_raw(rhs_from_current(J, omega_));
}

CplxGrid Simulation::solve_raw(const std::vector<cplx>& rhs) {
  maps::require(static_cast<index_t>(rhs.size()) == spec_.cells(),
                "Simulation::solve_raw: rhs size mismatch");
  if (options_.solver == SolverKind::Direct) {
    ensure_factorized();
    return CplxGrid(spec_.nx, spec_.ny, lu_->solve(rhs));
  }
  auto res = maps::math::bicgstab(op_.A, rhs, options_.iterative);
  if (!res.converged) {
    throw MapsError("Simulation: BiCGSTAB did not converge (rel res " +
                    std::to_string(res.relative_residual) + ")");
  }
  return CplxGrid(spec_.nx, spec_.ny, std::move(res.x));
}

CplxGrid Simulation::solve_transposed(const std::vector<cplx>& rhs) {
  maps::require(static_cast<index_t>(rhs.size()) == spec_.cells(),
                "Simulation::solve_transposed: rhs size mismatch");
  if (options_.solver == SolverKind::Direct) {
    ensure_factorized();
    return CplxGrid(spec_.nx, spec_.ny, lu_->solve_transposed(rhs));
  }
  // Iterative fallback: solve with the explicitly transposed operator.
  const auto At = op_.A.transposed();
  auto res = maps::math::bicgstab(At, rhs, options_.iterative);
  if (!res.converged) {
    throw MapsError("Simulation: transposed BiCGSTAB did not converge");
  }
  return CplxGrid(spec_.nx, spec_.ny, std::move(res.x));
}

Fields Simulation::derive_fields(CplxGrid Ez) const {
  Fields f{std::move(Ez), CplxGrid(spec_.nx, spec_.ny), CplxGrid(spec_.nx, spec_.ny)};
  const cplx inv_iw_dl = cplx{1.0} / (kI * omega_ * spec_.dl);
  for (index_t j = 0; j < spec_.ny; ++j) {
    for (index_t i = 0; i < spec_.nx; ++i) {
      const cplx e = f.Ez(i, j);
      const cplx e_n = (j + 1 < spec_.ny) ? f.Ez(i, j + 1) : cplx{};
      const cplx e_e = (i + 1 < spec_.nx) ? f.Ez(i + 1, j) : cplx{};
      // Hx = (1/(i w)) dEz/dy ; Hy = -(1/(i w)) dEz/dx.
      f.Hx(i, j) = (e_n - e) * inv_iw_dl;
      f.Hy(i, j) = -(e_e - e) * inv_iw_dl;
    }
  }
  return f;
}

}  // namespace maps::fdfd
