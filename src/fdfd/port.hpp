// Port: a waveguide cross-section where sources are injected and
// transmission/reflection are measured (mode-overlap monitors).
#pragma once

#include <string>

#include "grid/yee_grid.hpp"
#include "math/types.hpp"

namespace maps::fdfd {

enum class Axis { X, Y };  // the port's *normal* (propagation) axis

struct Port {
  Axis normal = Axis::X;
  index_t pos = 0;       // index along the normal axis (i for X, j for Y)
  index_t lo = 0;        // inclusive start of the transverse span
  index_t hi = 0;        // exclusive end of the transverse span
  int direction = +1;    // +1 = propagates toward +axis, -1 = toward -axis
  std::string name;

  index_t span() const { return hi - lo; }

  /// A port line shifted along its normal by `cells * direction`.
  Port shifted(index_t cells) const {
    Port p = *this;
    p.pos += direction * cells;
    return p;
  }
  /// Same physical port on a grid refined by `factor`.
  Port refined(int factor) const {
    Port p = *this;
    p.pos *= factor;
    p.lo *= factor;
    p.hi *= factor;
    return p;
  }
};

}  // namespace maps::fdfd
