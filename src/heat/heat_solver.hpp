// Steady-state 2D heat diffusion: the thermal substrate for the active
// thermo-optic switch (TOS) device.
//
// Solves div(kappa grad T) = -Q with Dirichlet T = 0 on the domain walls
// (heat-sunk chip boundary). kappa varies per cell (silicon conducts ~100x
// better than oxide); face conductivities use the harmonic mean. The
// resulting banded SPD-ish system reuses the math::BandMatrix direct solver.
#pragma once

#include "grid/yee_grid.hpp"
#include "math/field2d.hpp"

namespace maps::heat {

struct HeatProblem {
  grid::GridSpec spec;
  maps::math::RealGrid kappa;  // thermal conductivity per cell [W/(m K)], > 0
  maps::math::RealGrid power;  // volumetric heat source Q per cell [W/m^3]
};

/// Temperature rise above the boundary, same grid as the problem.
maps::math::RealGrid solve_steady_heat(const HeatProblem& problem);

/// Convenience: uniform-background kappa with a rectangular heater patch.
maps::math::RealGrid heater_power_map(const grid::GridSpec& spec,
                                      const grid::BoxRegion& heater, double power);

/// Typical thermal conductivities [W/(m K)].
inline constexpr double kKappaSilicon = 148.0;
inline constexpr double kKappaSilica = 1.4;

}  // namespace maps::heat
