#include "heat/heat_solver.hpp"

#include "math/banded.hpp"

namespace maps::heat {

using maps::math::RealGrid;

namespace {
double harmonic_mean(double a, double b) {
  maps::require(a > 0 && b > 0, "heat: kappa must be positive");
  return 2.0 * a * b / (a + b);
}
}  // namespace

RealGrid solve_steady_heat(const HeatProblem& p) {
  const auto& spec = p.spec;
  maps::require(p.kappa.nx() == spec.nx && p.kappa.ny() == spec.ny,
                "heat: kappa map mismatch");
  maps::require(p.power.nx() == spec.nx && p.power.ny() == spec.ny,
                "heat: power map mismatch");
  const index_t nx = spec.nx, ny = spec.ny, n = spec.cells();
  const double inv_dl2 = 1.0 / (spec.dl * spec.dl);

  maps::math::BandMatrix<double> A(n, nx, nx);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  auto flat = [nx](index_t i, index_t j) { return i + nx * j; };

  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = flat(i, j);
      const double kc = p.kappa(i, j);
      // Dirichlet walls: virtual exterior cell with the same kappa (T = 0).
      const double ke = (i + 1 < nx) ? harmonic_mean(kc, p.kappa(i + 1, j)) : kc;
      const double kw = (i > 0) ? harmonic_mean(kc, p.kappa(i - 1, j)) : kc;
      const double kn = (j + 1 < ny) ? harmonic_mean(kc, p.kappa(i, j + 1)) : kc;
      const double ks = (j > 0) ? harmonic_mean(kc, p.kappa(i, j - 1)) : kc;

      double diag = -(ke + kw + kn + ks) * inv_dl2;
      if (i + 1 < nx) A.add(row, flat(i + 1, j), ke * inv_dl2);
      if (i > 0) A.add(row, flat(i - 1, j), kw * inv_dl2);
      if (j + 1 < ny) A.add(row, flat(i, j + 1), kn * inv_dl2);
      if (j > 0) A.add(row, flat(i, j - 1), ks * inv_dl2);
      A.add(row, row, diag);
      b[static_cast<std::size_t>(row)] = -p.power(i, j);
    }
  }
  A.factorize();
  A.solve_inplace(b);
  return RealGrid(nx, ny, std::move(b));
}

RealGrid heater_power_map(const grid::GridSpec& spec, const grid::BoxRegion& heater,
                          double power) {
  maps::require(heater.fits(spec), "heater_power_map: heater outside grid");
  RealGrid q(spec.nx, spec.ny, 0.0);
  for (index_t j = heater.j0; j < heater.j0 + heater.nj; ++j) {
    for (index_t i = heater.i0; i < heater.i0 + heater.ni; ++i) {
      q(i, j) = power;
    }
  }
  return q;
}

}  // namespace maps::heat
