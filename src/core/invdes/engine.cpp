#include "core/invdes/engine.hpp"

#include <cmath>

#include "nn/optim.hpp"
#include "param/mfs.hpp"

namespace maps::invdes {

using maps::math::RealGrid;

GradEval NumericalProvider::evaluate(const RealGrid& eps) {
  auto ge = device_.evaluate_with_gradient(eps);
  GradEval out;
  out.fom = ge.fom;
  out.grad_eps = std::move(ge.grad_eps);
  out.factorizations = ge.factorizations;
  out.solves = ge.solves;
  for (const auto& exc : ge.per_excitation) {
    for (double t : exc.transmissions) out.transmissions.push_back(t);
  }
  return out;
}

double beta_schedule(double beta_start, double beta_end, int iter, int total) {
  if (total <= 1) return beta_end;
  const double f = static_cast<double>(iter) / static_cast<double>(total - 1);
  return beta_start * std::pow(beta_end / beta_start, f);
}

InverseDesigner::InverseDesigner(const devices::DeviceProblem& device,
                                 param::DesignPipeline pipeline, InvDesOptions options)
    : device_(device), pipeline_(std::move(pipeline)), options_(options) {
  maps::require(options_.iterations > 0, "InverseDesigner: iterations must be > 0");
}

InvDesResult InverseDesigner::run(std::vector<double> theta0,
                                  GradientProvider& provider) {
  maps::require(static_cast<int>(theta0.size()) == pipeline_.num_params(),
                "InverseDesigner: theta0 size mismatch");
  std::vector<double> theta = std::move(theta0);
  pipeline_.feasible(theta);

  maps::nn::AdamOptions adam_opt;
  adam_opt.lr = options_.lr;
  maps::nn::AdamVector adam(theta.size(), adam_opt);

  InvDesResult res;
  for (int it = 0; it < options_.iterations; ++it) {
    const double beta =
        beta_schedule(options_.beta_start, options_.beta_end, it, options_.iterations);
    pipeline_.set_projection_beta(beta);

    const RealGrid rho = pipeline_.density(theta);
    const RealGrid eps = param::embed_density(pipeline_.map(), rho);
    GradEval ge = provider.evaluate(eps);
    res.total_factorizations += ge.factorizations;
    res.total_solves += ge.solves;

    std::vector<double> grad_theta = pipeline_.backward(ge.grad_eps);
    double fom = ge.fom;
    if (options_.gray_penalty > 0.0) {
      // Maximize F - w * gray(rho_bar).
      fom -= options_.gray_penalty * param::gray_indicator(rho);
      RealGrid gpen = param::gray_indicator_grad(rho);
      const std::vector<double> gt = pipeline_.backward_density(gpen);
      for (std::size_t i = 0; i < grad_theta.size(); ++i) {
        grad_theta[i] -= options_.gray_penalty * gt[i];
      }
    }

    IterationRecord rec;
    rec.iteration = it;
    rec.fom = fom;
    rec.beta = beta;
    rec.transmissions = ge.transmissions;
    if (options_.record_density) {
      rec.density = rho;
      rec.theta = theta;
    }
    res.history.push_back(std::move(rec));
    if (options_.progress) options_.progress(it, fom);

    adam.step(theta, grad_theta, /*maximize=*/true);
    pipeline_.feasible(theta);
  }

  pipeline_.set_projection_beta(options_.beta_end);
  res.theta = theta;
  res.density = pipeline_.density(theta);
  res.eps = param::embed_density(pipeline_.map(), res.density);
  res.fom = res.history.empty() ? 0.0 : res.history.back().fom;
  return res;
}

InvDesResult InverseDesigner::run(std::vector<double> theta0) {
  NumericalProvider provider(device_);
  return run(std::move(theta0), provider);
}

}  // namespace maps::invdes
