#include "core/invdes/engine.hpp"

#include <cmath>

#include "nn/optim.hpp"
#include "param/mfs.hpp"

namespace maps::invdes {

using maps::math::RealGrid;

GradEval NumericalProvider::evaluate(const RealGrid& eps) {
  auto ge = device_.evaluate_with_gradient(eps);
  GradEval out;
  out.fom = ge.fom;
  out.grad_eps = std::move(ge.grad_eps);
  out.factorizations = ge.factorizations;
  out.solves = ge.solves;
  for (const auto& exc : ge.per_excitation) {
    for (double t : exc.transmissions) out.transmissions.push_back(t);
  }
  return out;
}

double beta_schedule(double beta_start, double beta_end, int iter, int total) {
  if (total <= 1) return beta_end;
  const double f = static_cast<double>(iter) / static_cast<double>(total - 1);
  return beta_start * std::pow(beta_end / beta_start, f);
}

namespace {

maps::nn::AdamOptions adam_options_for(const InvDesOptions& options) {
  maps::nn::AdamOptions adam_opt;
  adam_opt.lr = options.lr;
  return adam_opt;
}

}  // namespace

InvDesStepper::InvDesStepper(param::DesignPipeline& pipeline, InvDesOptions options,
                             std::vector<double> theta0)
    : pipeline_(pipeline),
      options_(options),
      adam_(theta0.size(), adam_options_for(options)) {
  maps::require(options_.iterations > 0, "InvDesStepper: iterations must be > 0");
  maps::require(static_cast<int>(theta0.size()) == pipeline_.num_params(),
                "InvDesStepper: theta0 size mismatch");
  state_.theta = std::move(theta0);
  pipeline_.feasible(state_.theta);
  state_.adam = adam_.state();
}

InvDesStepper::InvDesStepper(param::DesignPipeline& pipeline, InvDesOptions options,
                             StepperState resume)
    : pipeline_(pipeline),
      options_(options),
      adam_(resume.theta.size(), adam_options_for(options)) {
  maps::require(options_.iterations > 0, "InvDesStepper: iterations must be > 0");
  maps::require(static_cast<int>(resume.theta.size()) == pipeline_.num_params(),
                "InvDesStepper: resume theta size mismatch");
  maps::require(resume.step >= 0, "InvDesStepper: resume step must be >= 0");
  adam_.restore(resume.adam);
  state_ = std::move(resume);
}

IterationRecord InvDesStepper::step(GradientProvider& provider) {
  maps::require(!done(), "InvDesStepper::step: optimization already finished");
  const int it = state_.step;
  const double beta =
      beta_schedule(options_.beta_start, options_.beta_end, it, options_.iterations);
  pipeline_.set_projection_beta(beta);

  const RealGrid rho = pipeline_.density(state_.theta);
  const RealGrid eps = param::embed_density(pipeline_.map(), rho);
  GradEval ge = provider.evaluate(eps);
  state_.total_factorizations += ge.factorizations;
  state_.total_solves += ge.solves;

  std::vector<double> grad_theta = pipeline_.backward(ge.grad_eps);
  double fom = ge.fom;
  if (options_.gray_penalty > 0.0) {
    // Maximize F - w * gray(rho_bar).
    fom -= options_.gray_penalty * param::gray_indicator(rho);
    RealGrid gpen = param::gray_indicator_grad(rho);
    const std::vector<double> gt = pipeline_.backward_density(gpen);
    for (std::size_t i = 0; i < grad_theta.size(); ++i) {
      grad_theta[i] -= options_.gray_penalty * gt[i];
    }
  }

  IterationRecord rec;
  rec.iteration = it;
  rec.fom = fom;
  rec.beta = beta;
  rec.transmissions = ge.transmissions;
  if (options_.record_density) {
    rec.density = rho;
    rec.theta = state_.theta;
  }
  if (options_.progress) options_.progress(it, fom);

  adam_.step(state_.theta, grad_theta, /*maximize=*/true);
  pipeline_.feasible(state_.theta);
  state_.adam = adam_.state();
  state_.fom = fom;
  ++state_.step;
  return rec;
}

InvDesResult InvDesStepper::finalize(std::vector<IterationRecord> history) {
  pipeline_.set_projection_beta(options_.beta_end);
  InvDesResult res;
  res.theta = state_.theta;
  res.density = pipeline_.density(res.theta);
  res.eps = param::embed_density(pipeline_.map(), res.density);
  res.fom = state_.fom;
  res.history = std::move(history);
  res.total_factorizations = state_.total_factorizations;
  res.total_solves = state_.total_solves;
  return res;
}

InverseDesigner::InverseDesigner(const devices::DeviceProblem& device,
                                 param::DesignPipeline pipeline, InvDesOptions options)
    : device_(device), pipeline_(std::move(pipeline)), options_(options) {
  maps::require(options_.iterations > 0, "InverseDesigner: iterations must be > 0");
}

InvDesResult InverseDesigner::run(std::vector<double> theta0,
                                  GradientProvider& provider) {
  InvDesStepper stepper(pipeline_, options_, std::move(theta0));
  std::vector<IterationRecord> history;
  history.reserve(static_cast<std::size_t>(options_.iterations));
  while (!stepper.done()) history.push_back(stepper.step(provider));
  return stepper.finalize(std::move(history));
}

InvDesResult InverseDesigner::run(std::vector<double> theta0) {
  NumericalProvider provider(device_);
  return run(std::move(theta0), provider);
}

}  // namespace maps::invdes
