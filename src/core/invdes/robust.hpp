// Variation-aware (corner-robust) inverse design (Sec. III-C.3).
//
// Each lithography corner gets its own pipeline (same theta, different
// defocus/dose transform); the robust objective is a weighted sum or the
// soft worst case across corners. After optimization, evaluate_corners gives
// the post-fab transmission at every corner — the quantity the robustness
// ablation reports.
#pragma once

#include "core/invdes/engine.hpp"
#include "devices/builders.hpp"
#include "param/litho.hpp"

namespace maps::invdes {

struct RobustOptions {
  InvDesOptions base;
  param::LithoSpec litho;
  bool worst_case = false;    // false: mean across corners; true: soft-min
  double softmin_tau = 0.05;  // temperature of the soft worst-case
};

struct CornerReport {
  param::LithoCorner corner;
  double fom = 0.0;
  std::vector<double> transmissions;
};

struct RobustResult {
  std::vector<double> theta;
  double robust_fom = 0.0;
  std::vector<CornerReport> corners;
  std::vector<double> history;  // robust FoM per iteration
  /// Device solver-cache counters over the run: the post-optimization corner
  /// report re-visits the final iteration's operators, so hits > 0 whenever
  /// the device cache is enabled.
  solver::CacheStats cache;
  int total_factorizations = 0;
  int total_solves = 0;
};

class RobustInverseDesigner {
 public:
  RobustInverseDesigner(const devices::DeviceProblem& device, devices::DeviceKind kind,
                        RobustOptions options);

  RobustResult run(std::vector<double> theta0, GradientProvider& provider);
  RobustResult run(std::vector<double> theta0);

  /// Corner-by-corner evaluation of a fixed theta (no optimization).
  std::vector<CornerReport> evaluate_corners(const std::vector<double>& theta,
                                             GradientProvider& provider);

 private:
  param::DesignPipeline make_corner_pipeline(param::LithoCorner corner) const;

  const devices::DeviceProblem& device_;
  devices::DeviceKind kind_;
  RobustOptions options_;
};

}  // namespace maps::invdes
