#include "core/invdes/robust.hpp"

#include <algorithm>
#include <cmath>

#include "nn/optim.hpp"
#include "param/blur.hpp"

namespace maps::invdes {

using maps::math::RealGrid;
using param::LithoCorner;

RobustInverseDesigner::RobustInverseDesigner(const devices::DeviceProblem& device,
                                             devices::DeviceKind kind,
                                             RobustOptions options)
    : device_(device), kind_(kind), options_(std::move(options)) {}

param::DesignPipeline RobustInverseDesigner::make_corner_pipeline(
    LithoCorner corner) const {
  auto p = std::make_unique<param::DirectDensity>(device_.design_map.box.ni,
                                                  device_.design_map.box.nj);
  param::DesignPipeline pipe(std::move(p), device_.design_map);
  pipe.add_transform(std::make_unique<param::BlurFilter>(1.5));
  param::SymmetryKind sym;
  if (devices::device_symmetry(kind_, &sym)) {
    pipe.add_transform(std::make_unique<param::Symmetrize>(sym));
  }
  pipe.add_transform(std::make_unique<param::LithoModel>(options_.litho, corner));
  return pipe;
}

std::vector<CornerReport> RobustInverseDesigner::evaluate_corners(
    const std::vector<double>& theta, GradientProvider& provider) {
  std::vector<CornerReport> reports;
  for (LithoCorner corner : param::LithoModel::corners()) {
    param::DesignPipeline pipe = make_corner_pipeline(corner);
    const RealGrid eps = pipe.eps_of(theta);
    GradEval ge = provider.evaluate(eps);
    reports.push_back({corner, ge.fom, ge.transmissions});
  }
  return reports;
}

RobustResult RobustInverseDesigner::run(std::vector<double> theta0,
                                        GradientProvider& provider) {
  const auto corners = param::LithoModel::corners();
  std::vector<param::DesignPipeline> pipes;
  pipes.reserve(corners.size());
  for (LithoCorner c : corners) pipes.push_back(make_corner_pipeline(c));

  // Size the device's factorization cache so one full corner sweep (every
  // corner times every excitation operator) stays resident: the closing
  // evaluate_corners pass then reuses the last iteration's factorizations.
  solver::CacheStats cache_before;
  if (device_.solver_cache) {
    const std::size_t per_sweep =
        corners.size() * std::max<std::size_t>(1, device_.excitations.size());
    if (device_.solver_cache->capacity() < per_sweep) {
      device_.solver_cache->set_capacity(per_sweep);
    }
    cache_before = device_.solver_cache->stats();
  }

  maps::require(static_cast<int>(theta0.size()) == pipes[0].num_params(),
                "RobustInverseDesigner: theta0 size mismatch");
  std::vector<double> theta = std::move(theta0);
  pipes[0].feasible(theta);

  maps::nn::AdamOptions adam_opt;
  adam_opt.lr = options_.base.lr;
  maps::nn::AdamVector adam(theta.size(), adam_opt);

  RobustResult res;
  const int iters = options_.base.iterations;
  for (int it = 0; it < iters; ++it) {
    // Per-corner FoM and theta-gradient.
    std::vector<double> foms(corners.size());
    std::vector<std::vector<double>> grads(corners.size());
    for (std::size_t c = 0; c < corners.size(); ++c) {
      const RealGrid eps = pipes[c].eps_of(theta);
      GradEval ge = provider.evaluate(eps);
      foms[c] = ge.fom;
      grads[c] = pipes[c].backward(ge.grad_eps);
      res.total_factorizations += ge.factorizations;
      res.total_solves += ge.solves;
    }

    // Robust aggregate: mean or soft worst-case (softmin weights).
    std::vector<double> w(corners.size(), 1.0 / static_cast<double>(corners.size()));
    double robust_fom = 0.0;
    if (options_.worst_case) {
      double wsum = 0.0;
      for (std::size_t c = 0; c < corners.size(); ++c) {
        w[c] = std::exp(-foms[c] / options_.softmin_tau);
        wsum += w[c];
      }
      for (auto& v : w) v /= wsum;
      for (std::size_t c = 0; c < corners.size(); ++c) robust_fom += w[c] * foms[c];
    } else {
      for (std::size_t c = 0; c < corners.size(); ++c) robust_fom += w[c] * foms[c];
    }

    std::vector<double> grad(theta.size(), 0.0);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += w[c] * grads[c][i];
    }

    res.history.push_back(robust_fom);
    adam.step(theta, grad, /*maximize=*/true);
    pipes[0].feasible(theta);
  }

  res.theta = theta;
  res.corners = evaluate_corners(theta, provider);
  double agg = 0.0;
  for (const auto& rep : res.corners) {
    agg = options_.worst_case ? std::min(agg == 0.0 ? rep.fom : agg, rep.fom)
                              : agg + rep.fom / static_cast<double>(res.corners.size());
  }
  res.robust_fom = agg;
  if (device_.solver_cache) {
    const auto after = device_.solver_cache->stats();
    res.cache.hits = after.hits - cache_before.hits;
    res.cache.misses = after.misses - cache_before.misses;
    res.cache.evictions = after.evictions - cache_before.evictions;
  }
  return res;
}

RobustResult RobustInverseDesigner::run(std::vector<double> theta0) {
  NumericalProvider provider(device_);
  return run(std::move(theta0), provider);
}

}  // namespace maps::invdes
