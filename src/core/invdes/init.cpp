#include "core/invdes/init.hpp"

#include <cmath>

namespace maps::invdes {

using fdfd::Axis;
using fdfd::Port;
using maps::math::RealGrid;

const char* init_name(InitKind kind) {
  switch (kind) {
    case InitKind::Gray: return "gray";
    case InitKind::Random: return "random";
    case InitKind::PathSeed: return "path_seed";
  }
  return "?";
}

namespace {

// Design-box coordinates (design-grid cells) of the point where a port's
// waveguide axis crosses the box boundary.
std::pair<double, double> port_anchor(const devices::DeviceProblem& dev,
                                      const Port& port) {
  const auto& box = dev.design_map.box;
  const double t_center = 0.5 * static_cast<double>(port.lo + port.hi);
  if (port.normal == Axis::X) {
    // Port plane at x = pos: the feed enters the box from the west or east.
    const double x_edge = (port.pos < box.i0 + box.ni / 2)
                              ? 0.0
                              : static_cast<double>(box.ni - 1);
    return {x_edge, t_center - static_cast<double>(box.j0)};
  }
  const double y_edge = (port.pos < box.j0 + box.nj / 2)
                            ? 0.0
                            : static_cast<double>(box.nj - 1);
  return {t_center - static_cast<double>(box.i0), y_edge};
}

// Rasterize an L-shaped path (horizontal then vertical) of the given
// half-width onto the density.
void draw_l_path(RealGrid& rho, double x0, double y0, double x1, double y1,
                 double half_width) {
  auto stamp = [&](double x, double y) {
    const index_t ilo = std::max<index_t>(0, static_cast<index_t>(x - half_width));
    const index_t ihi =
        std::min<index_t>(rho.nx() - 1, static_cast<index_t>(x + half_width));
    const index_t jlo = std::max<index_t>(0, static_cast<index_t>(y - half_width));
    const index_t jhi =
        std::min<index_t>(rho.ny() - 1, static_cast<index_t>(y + half_width));
    for (index_t j = jlo; j <= jhi; ++j) {
      for (index_t i = ilo; i <= ihi; ++i) rho(i, j) = 1.0;
    }
  };
  const int steps = static_cast<int>(std::abs(x1 - x0) + std::abs(y1 - y0)) + 2;
  for (int s = 0; s <= steps; ++s) {
    const double f = static_cast<double>(s) / steps;
    // Move horizontally first, then vertically (an L-bend).
    const double total = std::abs(x1 - x0) + std::abs(y1 - y0);
    const double walked = f * total;
    double x, y;
    if (walked <= std::abs(x1 - x0)) {
      x = x0 + (x1 > x0 ? walked : -walked);
      y = y0;
    } else {
      x = x1;
      const double rem = walked - std::abs(x1 - x0);
      y = y0 + (y1 > y0 ? rem : -rem);
    }
    stamp(x, y);
  }
}

}  // namespace

std::vector<double> make_initial_theta(const devices::DeviceProblem& dev,
                                       InitKind kind, unsigned seed) {
  const auto& box = dev.design_map.box;
  const std::size_t n = static_cast<std::size_t>(box.ni * box.nj);
  switch (kind) {
    case InitKind::Gray:
      return std::vector<double>(n, 0.5);
    case InitKind::Random: {
      maps::math::Rng rng(seed);
      std::vector<double> theta(n);
      for (auto& t : theta) t = rng.uniform();
      return theta;
    }
    case InitKind::PathSeed: {
      RealGrid rho(box.ni, box.nj, 0.0);
      // Path half-width ~ half the waveguide width (0.2 um) in design cells.
      const double half_w = std::max(1.0, 0.2 / dev.spec.dl);
      for (const auto& exc : dev.excitations) {
        const auto [sx, sy] = port_anchor(dev, exc.source_port);
        for (const auto& term : exc.terms) {
          if (term.goal != fdfd::Goal::Maximize) continue;
          // Recover the monitor port geometry from its first/last coefficient.
          Port approx;
          const index_t first = term.coeffs.front().first;
          const index_t last = term.coeffs.back().first;
          const index_t nx = dev.spec.nx;
          const index_t fi = first % nx, fj = first / nx;
          const index_t li = last % nx, lj = last / nx;
          if (fi == li) {  // x-normal port (column)
            approx.normal = Axis::X;
            approx.pos = fi;
            approx.lo = fj;
            approx.hi = lj + 1;
          } else {  // y-normal port (row)
            approx.normal = Axis::Y;
            approx.pos = fj;
            approx.lo = fi;
            approx.hi = li + 1;
          }
          const auto [tx, ty] = port_anchor(dev, approx);
          draw_l_path(rho, sx, sy, tx, ty, half_w);
        }
      }
      // Seed at 0.8 (solid-ish) instead of hard 1 so the optimizer can carve.
      std::vector<double> theta(n);
      for (index_t i = 0; i < rho.size(); ++i) theta[static_cast<std::size_t>(i)] =
          0.15 + 0.65 * rho[i];
      return theta;
    }
  }
  throw MapsError("make_initial_theta: unknown kind");
}

}  // namespace maps::invdes
