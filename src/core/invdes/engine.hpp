// MAPS-InvDes: the adjoint inverse-design engine (Sec. III-C).
//
// The engine is agnostic to where gradients come from: a GradientProvider
// returns (FoM, dF/deps) for a candidate permittivity. The numerical provider
// wraps the FDFD adjoint; neural providers (MAPS-Train integration, Table II)
// implement the same interface from predicted fields. The engine owns the
// theta -> eps pipeline, the binarization schedule, optional gray penalty,
// and Adam ascent on the design variables.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "devices/device.hpp"
#include "param/pipeline.hpp"

namespace maps::invdes {

/// One gradient evaluation at a candidate permittivity.
struct GradEval {
  double fom = 0.0;
  maps::math::RealGrid grad_eps;
  std::vector<double> transmissions;  // flattened per excitation/term
  int factorizations = 0;  // solver work this evaluation cost (0 for NN providers)
  int solves = 0;
};

class GradientProvider {
 public:
  virtual ~GradientProvider() = default;
  virtual GradEval evaluate(const maps::math::RealGrid& eps) = 0;
  virtual std::string name() const = 0;
};

/// Ground-truth provider: FDFD forward + adjoint per excitation.
class NumericalProvider final : public GradientProvider {
 public:
  explicit NumericalProvider(const devices::DeviceProblem& device) : device_(device) {}
  GradEval evaluate(const maps::math::RealGrid& eps) override;
  std::string name() const override { return "fdfd_adjoint"; }

 private:
  const devices::DeviceProblem& device_;
};

struct InvDesOptions {
  int iterations = 60;
  double lr = 0.03;
  double beta_start = 8.0;   // binarization schedule (exponential ramp)
  double beta_end = 64.0;
  double gray_penalty = 0.0; // weight on the gray-region penalty
  bool record_density = false;  // keep per-iteration densities (for sampling)
  std::function<void(int, double)> progress;  // optional callback(iter, fom)
};

struct IterationRecord {
  int iteration = 0;
  double fom = 0.0;
  double beta = 0.0;
  std::vector<double> transmissions;
  maps::math::RealGrid density;          // recorded if record_density
  std::vector<double> theta;             // ditto
};

struct InvDesResult {
  std::vector<double> theta;
  maps::math::RealGrid density;
  maps::math::RealGrid eps;
  double fom = 0.0;
  std::vector<IterationRecord> history;
  int total_factorizations = 0;  // solver work across the whole run
  int total_solves = 0;
};

class InverseDesigner {
 public:
  InverseDesigner(const devices::DeviceProblem& device, param::DesignPipeline pipeline,
                  InvDesOptions options = {});

  InvDesResult run(std::vector<double> theta0, GradientProvider& provider);
  /// Convenience: numerical (FDFD adjoint) gradients.
  InvDesResult run(std::vector<double> theta0);

  param::DesignPipeline& pipeline() { return pipeline_; }
  const InvDesOptions& options() const { return options_; }

 private:
  const devices::DeviceProblem& device_;
  param::DesignPipeline pipeline_;
  InvDesOptions options_;
};

/// Exponential beta ramp between the schedule endpoints.
double beta_schedule(double beta_start, double beta_end, int iter, int total);

}  // namespace maps::invdes
