// MAPS-InvDes: the adjoint inverse-design engine (Sec. III-C).
//
// The engine is agnostic to where gradients come from: a GradientProvider
// returns (FoM, dF/deps) for a candidate permittivity. The numerical provider
// wraps the FDFD adjoint; neural providers (MAPS-Train integration, Table II)
// implement the same interface from predicted fields. The engine owns the
// theta -> eps pipeline, the binarization schedule, optional gray penalty,
// and Adam ascent on the design variables.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "devices/device.hpp"
#include "nn/optim.hpp"
#include "param/pipeline.hpp"

namespace maps::invdes {

/// One gradient evaluation at a candidate permittivity.
struct GradEval {
  double fom = 0.0;
  maps::math::RealGrid grad_eps;
  std::vector<double> transmissions;  // flattened per excitation/term
  int factorizations = 0;  // solver work this evaluation cost (0 for NN providers)
  int solves = 0;
};

class GradientProvider {
 public:
  virtual ~GradientProvider() = default;
  virtual GradEval evaluate(const maps::math::RealGrid& eps) = 0;
  virtual std::string name() const = 0;
};

/// Ground-truth provider: FDFD forward + adjoint per excitation.
class NumericalProvider final : public GradientProvider {
 public:
  explicit NumericalProvider(const devices::DeviceProblem& device) : device_(device) {}
  GradEval evaluate(const maps::math::RealGrid& eps) override;
  std::string name() const override { return "fdfd_adjoint"; }

 private:
  const devices::DeviceProblem& device_;
};

struct InvDesOptions {
  int iterations = 60;
  double lr = 0.03;
  double beta_start = 8.0;   // binarization schedule (exponential ramp)
  double beta_end = 64.0;
  double gray_penalty = 0.0; // weight on the gray-region penalty
  bool record_density = false;  // keep per-iteration densities (for sampling)
  std::function<void(int, double)> progress;  // optional callback(iter, fom)
};

struct IterationRecord {
  int iteration = 0;
  double fom = 0.0;
  double beta = 0.0;
  std::vector<double> transmissions;
  maps::math::RealGrid density;          // recorded if record_density
  std::vector<double> theta;             // ditto
};

struct InvDesResult {
  std::vector<double> theta;
  maps::math::RealGrid density;
  maps::math::RealGrid eps;
  double fom = 0.0;
  std::vector<IterationRecord> history;
  int total_factorizations = 0;  // solver work across the whole run
  int total_solves = 0;
};

/// Serializable mid-run snapshot of an optimization: everything needed to
/// continue an interrupted run on the exact same trajectory. `step` is the
/// next iteration to execute; the beta schedule is a pure function of the
/// step index, and any per-step stochastic draw is derived from
/// math::stream_seed(seed, step), so the step counter doubles as the RNG
/// stream position.
struct StepperState {
  int step = 0;
  std::vector<double> theta;
  nn::AdamVectorState adam;
  double fom = 0.0;  // objective of the last completed step
  int total_factorizations = 0;
  int total_solves = 0;
};

/// Step-wise re-entrant form of the optimization loop: one `step()` call per
/// iteration, with a checkpointable StepperState between any two. This is
/// what lets a served inverse-design job yield the worker between steps
/// (cancellation points, progress, crash-safe journaling) — run() below is
/// this loop driven to completion. The pipeline is borrowed, not owned; the
/// caller keeps it alive for the stepper's lifetime.
class InvDesStepper {
 public:
  InvDesStepper(param::DesignPipeline& pipeline, InvDesOptions options,
                std::vector<double> theta0);
  /// Resume form: continue from a journaled mid-run snapshot.
  InvDesStepper(param::DesignPipeline& pipeline, InvDesOptions options,
                StepperState resume);

  bool done() const { return state_.step >= options_.iterations; }
  /// One optimization iteration (gradient eval + Adam ascent). Pre: !done().
  IterationRecord step(GradientProvider& provider);
  const StepperState& state() const { return state_; }
  const InvDesOptions& options() const { return options_; }

  /// Final projection at the schedule's beta_end. `history` — the
  /// caller-accumulated per-step records — is moved into the result.
  InvDesResult finalize(std::vector<IterationRecord> history = {});

 private:
  param::DesignPipeline& pipeline_;
  InvDesOptions options_;
  nn::AdamVector adam_;
  StepperState state_;
};

class InverseDesigner {
 public:
  InverseDesigner(const devices::DeviceProblem& device, param::DesignPipeline pipeline,
                  InvDesOptions options = {});

  InvDesResult run(std::vector<double> theta0, GradientProvider& provider);
  /// Convenience: numerical (FDFD adjoint) gradients.
  InvDesResult run(std::vector<double> theta0);

  param::DesignPipeline& pipeline() { return pipeline_; }
  const InvDesOptions& options() const { return options_; }

 private:
  const devices::DeviceProblem& device_;
  param::DesignPipeline pipeline_;
  InvDesOptions options_;
};

/// Exponential beta ramp between the schedule endpoints.
double beta_schedule(double beta_start, double beta_end, int iter, int total);

}  // namespace maps::invdes
