// Initialization library (Sec. III-C.1): predefined starting points for the
// design variables — uniform gray, random, and a transmission-encouraging
// seed that rasterizes waveguide paths between the source port and every
// maximize-target port.
#pragma once

#include <vector>

#include "devices/device.hpp"
#include "math/rng.hpp"

namespace maps::invdes {

enum class InitKind { Gray, Random, PathSeed };

const char* init_name(InitKind kind);

/// theta for a DirectDensity parameterization over the device's design box.
std::vector<double> make_initial_theta(const devices::DeviceProblem& device,
                                       InitKind kind, unsigned seed = 7);

}  // namespace maps::invdes
