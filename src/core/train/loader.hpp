// Hierarchical data loading (Sec. III-B feature 1).
//
// Splits are made at *pattern* granularity (pattern_id), so no design lineage
// straddles train and test — the leak-prevention the paper highlights. Each
// record expands into a forward field sample and (optionally) an adjoint
// field sample; both answer to the same pattern id. Superposition Mixup
// exploits linearity of Maxwell's equations: for a fixed permittivity,
// J1 + g*J2 must map to E1 + g*E2, so mixing the forward and adjoint pairs of
// one record creates physically exact virtual samples.
#pragma once

#include "core/data/dataset.hpp"
#include "core/train/encoding.hpp"
#include "math/rng.hpp"

namespace maps::train {

struct LoaderOptions {
  double test_fraction = 0.25;
  bool include_adjoint_samples = true;
  unsigned seed = 5;
};

class DataLoader {
 public:
  DataLoader(const data::Dataset& dataset, LoaderOptions options = {});

  /// Pre-split variant: train on one dataset, test on another (Table I
  /// trains on a sampling strategy but always tests on the opt-trajectory
  /// distribution an inverse-design surrogate actually sees).
  DataLoader(const data::Dataset& train_set, const data::Dataset& test_set,
             LoaderOptions options);

  const std::vector<FieldSample>& train() const { return train_; }
  const std::vector<FieldSample>& test() const { return test_; }
  const Standardizer& standardizer() const { return standardizer_; }

  /// Test-split records viewed as forward samples only (metrics that need
  /// the adjoint labels work on records, not field samples).
  std::vector<const data::SampleRecord*> test_records() const;

  /// Shuffled copy of the training split for one epoch.
  std::vector<FieldSample> epoch_order(maps::math::Rng& rng) const;

  /// Physically exact Mixup: returns a virtual (source, field) pair
  /// J1 + g*J2 -> E1 + g*E2 from the record's forward and adjoint pairs.
  static std::pair<maps::math::CplxGrid, maps::math::CplxGrid> mixup_pair(
      const data::SampleRecord& rec, double gamma);

 private:
  const data::Dataset& dataset_;
  std::vector<FieldSample> train_, test_;
  Standardizer standardizer_;
};

}  // namespace maps::train
