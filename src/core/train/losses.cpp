#include "core/train/losses.hpp"

#include <cmath>

#include "fdfd/assembler.hpp"

namespace maps::train {

using maps::math::CplxGrid;

LossValue nmse_loss(const nn::Tensor& pred, const nn::Tensor& target) {
  maps::require(pred.same_shape(target), "nmse_loss: shape mismatch");
  const index_t N = pred.size(0);
  const index_t per = pred.numel() / N;
  LossValue lv;
  lv.grad = nn::Tensor::zeros_like(pred);
  for (index_t n = 0; n < N; ++n) {
    double num = 0, den = 0;
    for (index_t i = 0; i < per; ++i) {
      const double d = pred[n * per + i] - target[n * per + i];
      num += d * d;
      den += static_cast<double>(target[n * per + i]) * target[n * per + i];
    }
    den = std::max(den, 1e-12);
    lv.value += num / den;
    const double scale = 2.0 / (den * static_cast<double>(N));
    for (index_t i = 0; i < per; ++i) {
      lv.grad[n * per + i] = static_cast<float>(
          scale * (pred[n * per + i] - target[n * per + i]));
    }
  }
  lv.value /= static_cast<double>(N);
  return lv;
}

namespace {
fdfd::FdfdOperator assemble_for(const data::SampleRecord& rec) {
  grid::GridSpec spec{rec.nx(), rec.ny(), rec.dl};
  fdfd::PmlSpec pml;
  pml.ncells = rec.pml_cells;
  return fdfd::assemble(spec, rec.eps, rec.omega, pml);
}
}  // namespace

double maxwell_residual_norm(const data::SampleRecord& rec, const CplxGrid& field) {
  const auto op = assemble_for(rec);
  const auto b = fdfd::rhs_from_current(rec.J, rec.omega);
  double bn = 0;
  for (const auto& v : b) bn += std::norm(v);
  return op.A.residual_norm(field.data(), b) / std::sqrt(std::max(bn, 1e-300));
}

double add_maxwell_residual(const data::SampleRecord& rec, const nn::Tensor& pred,
                            index_t n, const Standardizer& std_, double weight,
                            index_t batch, nn::Tensor& grad) {
  const auto op = assemble_for(rec);
  const CplxGrid E = decode_field(pred, n, std_);
  const auto b = fdfd::rhs_from_current(rec.J, rec.omega);

  std::vector<cplx> r = op.A.matvec(E.data());
  double bn = 0;
  for (std::size_t k = 0; k < b.size(); ++k) {
    r[k] -= b[k];
    bn += std::norm(b[k]);
  }
  bn = std::max(bn, 1e-300);
  double rn = 0;
  for (const auto& v : r) rn += std::norm(v);
  const double loss = rn / bn;

  // dL/dE = 2 A^H r / ||b||^2; A^H x = conj(A^T conj(x)).
  std::vector<cplx> rc(r.size());
  for (std::size_t k = 0; k < r.size(); ++k) rc[k] = std::conj(r[k]);
  std::vector<cplx> aH_r = op.A.matvec_transposed(rc);
  const double scale = weight * 2.0 / (bn * static_cast<double>(batch));
  const index_t H = pred.size(2), W = pred.size(3);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) {
      const cplx g = std::conj(aH_r[static_cast<std::size_t>(w + W * h)]);
      // Chain through E = field_scale * (p_re + i p_im).
      grad.at(n, 0, h, w) += static_cast<float>(scale * g.real() * std_.field_scale);
      grad.at(n, 1, h, w) += static_cast<float>(scale * g.imag() * std_.field_scale);
    }
  }
  return weight * loss / static_cast<double>(batch);
}

}  // namespace maps::train
