#include "core/train/providers.hpp"

#include "core/train/metrics.hpp"
#include "fdfd/adjoint.hpp"
#include "fdfd/assembler.hpp"
#include "nn/optim.hpp"

namespace maps::train {

using maps::math::CplxGrid;
using maps::math::RealGrid;

namespace {

/// dF/d(output tensor) for a real objective with Wirtinger derivative g:
/// out stores (Re E, Im E)/field_scale, so dF/dout_re = 2 Re(g) * fs and
/// dF/dout_im = -2 Im(g) * fs... with the sign convention F(E, conj E):
/// dF/dRe(E) = 2 Re(g), dF/dIm(E) = -2 Im(g).
nn::Tensor objective_output_grad(const std::vector<cplx>& g, index_t nx, index_t ny,
                                 double field_scale) {
  nn::Tensor grad({1, 2, ny, nx});
  for (index_t h = 0; h < ny; ++h) {
    for (index_t w = 0; w < nx; ++w) {
      const cplx gv = g[static_cast<std::size_t>(w + nx * h)];
      grad.at(0, 0, h, w) = static_cast<float>(2.0 * gv.real() * field_scale);
      grad.at(0, 1, h, w) = static_cast<float>(-2.0 * gv.imag() * field_scale);
    }
  }
  return grad;
}

/// Extract dF/deps from the input-channel gradient (channel 0 holds the
/// normalized permittivity). Wave-prior channels also depend on eps; that
/// second-order pathway is deliberately ignored (standard practice — the AD
/// path differentiates the network inputs the optimizer actually controls).
RealGrid eps_grad_from_input(const nn::Tensor& gin, const Standardizer& std_) {
  const index_t H = gin.size(2), W = gin.size(3);
  RealGrid g(W, H);
  const double chain = 1.0 / (std_.eps_hi - std_.eps_lo);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) {
      g(w, h) = gin.at(0, 0, h, w) * chain;
    }
  }
  return g;
}

}  // namespace

index_t total_terms(const devices::DeviceProblem& device) {
  index_t n = 0;
  for (const auto& exc : device.excitations) {
    n += static_cast<index_t>(exc.terms.size());
  }
  return n;
}

invdes::GradEval FwdAdjFieldProvider::evaluate(const RealGrid& eps) {
  invdes::GradEval out;
  out.grad_eps = RealGrid(eps.nx(), eps.ny(), 0.0);
  for (const auto& exc : device_.excitations) {
    const RealGrid eps_exc = device_.excitation_eps(eps, exc);
    const auto op = fdfd::assemble(device_.spec, eps_exc, exc.omega,
                                   device_.sim_options.pml);

    const CplxGrid E_hat = predict_field(model_, eps_exc, exc.J, exc.omega,
                                         device_.spec.dl, std_, enc_);
    out.fom += exc.weight * fdfd::objective_value(exc.terms, E_hat);
    for (const auto& t : exc.terms) {
      out.transmissions.push_back(fdfd::term_transmission(t, E_hat));
    }

    const auto g = fdfd::objective_dE(exc.terms, E_hat);
    CplxGrid adj_J(eps.nx(), eps.ny());
    double j_max = 0.0, adj_max = 0.0;
    for (index_t n = 0; n < adj_J.size(); ++n) {
      adj_J[n] = g[static_cast<std::size_t>(n)] /
                 (op.W[static_cast<std::size_t>(n)] * (-kI * exc.omega));
      adj_max = std::max(adj_max, std::abs(adj_J[n]));
      j_max = std::max(j_max, std::abs(exc.J[n]));
    }
    // Normalize the adjoint query to the magnitude the surrogate was
    // trained on, undo after prediction (exact by linearity).
    const double q = (adj_max > 1e-300 && j_max > 0.0) ? j_max / adj_max : 1.0;
    for (index_t n = 0; n < adj_J.size(); ++n) adj_J[n] *= q;
    CplxGrid L_hat = predict_field(model_, eps_exc, adj_J, exc.omega,
                                   device_.spec.dl, std_, enc_);
    for (index_t n = 0; n < L_hat.size(); ++n) L_hat[n] /= q;
    const RealGrid grad = fdfd::grad_from_fields(E_hat, L_hat, op.W, exc.omega);
    for (index_t n = 0; n < grad.size(); ++n) {
      out.grad_eps[n] += exc.weight * grad[n];
    }
  }
  return out;
}

invdes::GradEval AutodiffFieldProvider::evaluate(const RealGrid& eps) {
  invdes::GradEval out;
  out.grad_eps = RealGrid(eps.nx(), eps.ny(), 0.0);
  for (const auto& exc : device_.excitations) {
    const RealGrid eps_exc = device_.excitation_eps(eps, exc);
    nn::Tensor in = make_input_batch(1, eps.nx(), eps.ny(), enc_);
    encode_input(in, 0, eps_exc, exc.J, exc.omega, device_.spec.dl, std_, enc_);
    const nn::Tensor pred = model_.forward(in);
    const CplxGrid E_hat = decode_field(pred, 0, std_);

    out.fom += exc.weight * fdfd::objective_value(exc.terms, E_hat);
    for (const auto& t : exc.terms) {
      out.transmissions.push_back(fdfd::term_transmission(t, E_hat));
    }

    const auto g = fdfd::objective_dE(exc.terms, E_hat);
    model_.zero_grad();
    const nn::Tensor gin = model_.backward(
        objective_output_grad(g, eps.nx(), eps.ny(), std_.field_scale));
    const RealGrid grad = eps_grad_from_input(gin, std_);
    for (index_t n = 0; n < grad.size(); ++n) {
      out.grad_eps[n] += exc.weight * grad[n];
    }
  }
  return out;
}

invdes::GradEval BlackBoxProvider::evaluate(const RealGrid& eps) {
  invdes::GradEval out;
  out.grad_eps = RealGrid(eps.nx(), eps.ny(), 0.0);
  index_t term_offset = 0;
  for (const auto& exc : device_.excitations) {
    const RealGrid eps_exc = device_.excitation_eps(eps, exc);
    nn::Tensor in = make_input_batch(1, eps.nx(), eps.ny(), enc_);
    encode_input(in, 0, eps_exc, exc.J, exc.omega, device_.spec.dl, std_, enc_);
    const nn::Tensor pred = model_.forward(in);  // (1, total_terms)
    maps::require(pred.ndim() == 2 && pred.size(1) >= term_offset +
                      static_cast<index_t>(exc.terms.size()),
                  "BlackBoxProvider: model output too small");

    nn::Tensor gout({pred.size(0), pred.size(1)});
    for (std::size_t t = 0; t < exc.terms.size(); ++t) {
      const double t_hat = pred[term_offset + static_cast<index_t>(t)];
      out.transmissions.push_back(t_hat);
      const auto& term = exc.terms[t];
      out.fom += exc.weight * term.sign() * term.weight * t_hat;
      gout[term_offset + static_cast<index_t>(t)] =
          static_cast<float>(term.sign() * term.weight);
    }
    model_.zero_grad();
    const nn::Tensor gin = model_.backward(gout);
    const RealGrid grad = eps_grad_from_input(gin, std_);
    for (index_t n = 0; n < grad.size(); ++n) {
      out.grad_eps[n] += exc.weight * grad[n];
    }
    term_offset += static_cast<index_t>(exc.terms.size());
  }
  return out;
}

double train_blackbox(nn::Module& model, const DataLoader& loader,
                      const devices::DeviceProblem& device, int epochs, double lr,
                      const EncodingOptions& enc, unsigned seed) {
  // Forward samples only; target = the record's transmission vector placed
  // at its excitation's slot (other slots masked out of the loss).
  std::vector<const data::SampleRecord*> train_recs, test_recs;
  for (const auto& fs : loader.train()) {
    if (!fs.adjoint) train_recs.push_back(fs.record);
  }
  for (const auto& fs : loader.test()) {
    if (!fs.adjoint) test_recs.push_back(fs.record);
  }
  maps::require(!train_recs.empty(), "train_blackbox: no training records");

  // Excitation name -> slot offset.
  auto slot_of = [&](const std::string& name) -> index_t {
    index_t off = 0;
    for (const auto& exc : device.excitations) {
      if (exc.name == name) return off;
      off += static_cast<index_t>(exc.terms.size());
    }
    throw MapsError("train_blackbox: unknown excitation " + name);
  };
  const index_t n_out = total_terms(device);

  maps::math::Rng rng(seed);
  nn::AdamOptions ao;
  ao.lr = lr;
  nn::Adam adam(model.parameters(), ao);
  const auto& std_ = loader.standardizer();

  for (int e = 0; e < epochs; ++e) {
    auto order = train_recs;
    rng.shuffle(order);
    for (std::size_t done = 0; done < order.size();) {
      const index_t bs =
          static_cast<index_t>(std::min<std::size_t>(8, order.size() - done));
      nn::Tensor in = make_input_batch(bs, order[done]->nx(), order[done]->ny(), enc);
      std::vector<const data::SampleRecord*> rows;
      for (index_t k = 0; k < bs; ++k) {
        const auto* rec = order[done + static_cast<std::size_t>(k)];
        rows.push_back(rec);
        encode_input(in, k, rec->eps, rec->J, rec->omega, rec->dl, std_, enc);
      }
      model.zero_grad();
      nn::Tensor pred = model.forward(in);
      nn::Tensor gout({bs, n_out});
      for (index_t k = 0; k < bs; ++k) {
        const auto* rec = rows[static_cast<std::size_t>(k)];
        const index_t off = slot_of(rec->excitation);
        for (std::size_t t = 0; t < rec->transmissions.size(); ++t) {
          const index_t col = off + static_cast<index_t>(t);
          const double d = pred[k * n_out + col] - rec->transmissions[t];
          gout[k * n_out + col] = static_cast<float>(2.0 * d / bs);
        }
      }
      model.backward(gout);
      adam.step();
      done += static_cast<std::size_t>(bs);
    }
  }

  // Mean absolute test error on the predicted slots.
  double err = 0.0;
  int count = 0;
  for (const auto* rec : test_recs) {
    nn::Tensor in = make_input_batch(1, rec->nx(), rec->ny(), enc);
    encode_input(in, 0, rec->eps, rec->J, rec->omega, rec->dl, std_, enc);
    nn::Tensor pred = model.forward(in);
    const index_t off = slot_of(rec->excitation);
    for (std::size_t t = 0; t < rec->transmissions.size(); ++t) {
      err += std::abs(pred[off + static_cast<index_t>(t)] - rec->transmissions[t]);
      ++count;
    }
  }
  return count > 0 ? err / count : 0.0;
}

}  // namespace maps::train
