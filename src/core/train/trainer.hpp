// Training loop (customizable procedures, Sec. III-B feature 3): Adam with
// cosine decay, NMSE data loss, optional Maxwell-residual physics loss,
// optional superposition Mixup augmentation, standardized final metrics.
#pragma once

#include "core/train/loader.hpp"
#include "core/train/losses.hpp"
#include "core/train/metrics.hpp"
#include "nn/optim.hpp"

namespace maps::train {

struct TrainOptions {
  int epochs = 30;
  index_t batch = 8;
  double lr = 2e-3;
  double lr_min = 2e-4;
  double maxwell_weight = 0.0;  // physics-loss weight (0 = data loss only)
  double mixup_prob = 0.0;      // per-row probability of a superposition mix
  EncodingOptions encoding;
  unsigned seed = 11;
  bool verbose = false;
};

struct TrainReport {
  double train_nl2 = 0.0;
  double test_nl2 = 0.0;
  double grad_similarity = 0.0;  // filled when a device is provided
  double sparam_err = 0.0;       // ditto
  std::vector<double> epoch_losses;
};

class Trainer {
 public:
  Trainer(nn::Module& model, const DataLoader& loader, TrainOptions options = {});

  /// Train and compute N-L2 metrics; device-dependent metrics (grad
  /// similarity, S-param error) are evaluated when `device` is non-null.
  TrainReport fit(const devices::DeviceProblem* device = nullptr);

  /// One epoch over the training split; returns the mean batch loss.
  double run_epoch(maps::math::Rng& rng, double lr);

 private:
  nn::Module& model_;
  const DataLoader& loader_;
  TrainOptions options_;
  nn::Adam optimizer_;
};

}  // namespace maps::train
