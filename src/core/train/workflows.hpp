// Additional training workflows of MAPS-Train (Sec. III-B feature 3):
// knowledge distillation and pretrain/fine-tune schedules on top of the
// plain Trainer loop.
//
// Distillation for field surrogates: the student regresses a convex blend of
// the teacher's predicted field and the ground-truth label. alpha = 1
// reproduces classic response distillation (teacher only); alpha = 0
// degenerates to ordinary supervised training.
#pragma once

#include "core/train/trainer.hpp"

namespace maps::train {

struct DistillOptions {
  int epochs = 20;
  index_t batch = 8;
  double lr = 2e-3;
  double lr_min = 2e-4;
  double alpha = 0.7;  // weight of the teacher signal in the blended target
  EncodingOptions encoding;  // must match both models' input channels
  unsigned seed = 23;
};

/// Train `student` against teacher-predicted fields blended with labels.
/// Teacher parameters are not updated. Returns the student's standard
/// metrics (grad similarity/S-param filled when `device` is non-null).
TrainReport distill(nn::Module& teacher, nn::Module& student,
                    const DataLoader& loader, const DistillOptions& options,
                    const devices::DeviceProblem* device = nullptr);

struct FinetuneOptions {
  int epochs = 10;
  index_t batch = 8;
  double lr = 5e-4;   // reduced step size: the point of fine-tuning
  double lr_min = 5e-5;
  double maxwell_weight = 0.0;
  double mixup_prob = 0.0;
  EncodingOptions encoding;
  unsigned seed = 29;
};

/// Continue training an already-initialized model on a (new) loader —
/// the pretrain -> fine-tune workflow (e.g. pretrain on abundant lo-fi
/// data, fine-tune on scarce hi-fi data).
TrainReport finetune(nn::Module& model, const DataLoader& loader,
                     const FinetuneOptions& options,
                     const devices::DeviceProblem* device = nullptr);

}  // namespace maps::train
