// Standardized evaluation metrics (Sec. III-B feature 4):
//   * N-L2 norm on (Ez, Hx, Hy) with H derived from the predicted Ez,
//   * gradient similarity (cosine of predicted vs true adjoint gradient,
//     restricted to the design region) — the paper's key InvDes metric,
//   * S-parameter (transmission) prediction error.
#pragma once

#include "core/train/encoding.hpp"
#include "devices/device.hpp"
#include "nn/module.hpp"

namespace maps::train {

/// Run the model on one (eps, J) query; returns the de-normalized field.
maps::math::CplxGrid predict_field(nn::Module& model, const maps::math::RealGrid& eps,
                                   const maps::math::CplxGrid& J, double omega,
                                   double dl, const Standardizer& std_,
                                   const EncodingOptions& enc);

/// Mean relative L2 over samples, on stacked (Ez, Hx, Hy); H fields are
/// derived from Ez exactly as the paper derives its labels.
double evaluate_nl2(nn::Module& model, const std::vector<FieldSample>& samples,
                    const Standardizer& std_, const EncodingOptions& enc,
                    index_t batch = 8);

/// Gradient similarity via the "Fwd & Adj Field" rule for one record:
/// predict the forward and adjoint fields, form the adjoint gradient, and
/// compare (cosine) with the stored ground-truth gradient on the design box.
/// The excitation's FoM terms come from the device (matched by name).
double grad_similarity_fwd_adj(nn::Module& model, const devices::DeviceProblem& device,
                               const data::SampleRecord& rec, const Standardizer& std_,
                               const EncodingOptions& enc);

/// Mean grad similarity over records (skips records whose excitation is
/// missing from the device).
double mean_grad_similarity(nn::Module& model, const devices::DeviceProblem& device,
                            const std::vector<const data::SampleRecord*>& records,
                            const Standardizer& std_, const EncodingOptions& enc);

/// Mean absolute transmission error |T_hat - T| using mode monitors applied
/// to predicted fields.
double sparam_error(nn::Module& model, const devices::DeviceProblem& device,
                    const std::vector<const data::SampleRecord*>& records,
                    const Standardizer& std_, const EncodingOptions& enc);

/// Cosine similarity between two gradient maps over a box region.
double box_cosine(const maps::math::RealGrid& a, const maps::math::RealGrid& b,
                  const grid::BoxRegion& box);

/// Derive (Hx, Hy) from Ez (forward differences / i omega) — standalone
/// version of Simulation::derive_fields for metric use.
void derive_h_fields(const maps::math::CplxGrid& Ez, double omega, double dl,
                     maps::math::CplxGrid& Hx, maps::math::CplxGrid& Hy);

}  // namespace maps::train
