#include "core/train/encoding.hpp"

#include <cmath>

namespace maps::train {

using maps::math::CplxGrid;
using maps::math::RealGrid;

Standardizer fit_standardizer(const std::vector<FieldSample>& train_samples) {
  maps::require(!train_samples.empty(), "fit_standardizer: empty training split");
  Standardizer s;
  double eps_lo = 1e300, eps_hi = -1e300, field_sq = 0.0, j_max = 0.0;
  std::size_t field_count = 0;
  for (const auto& fs : train_samples) {
    const auto& eps = fs.record->eps;
    for (index_t n = 0; n < eps.size(); ++n) {
      eps_lo = std::min(eps_lo, eps[n]);
      eps_hi = std::max(eps_hi, eps[n]);
    }
    const auto& f = fs.field();
    for (index_t n = 0; n < f.size(); ++n) field_sq += std::norm(f[n]);
    field_count += static_cast<std::size_t>(f.size());
    const auto& J = fs.source();
    for (index_t n = 0; n < J.size(); ++n) j_max = std::max(j_max, std::abs(J[n]));
  }
  s.eps_lo = eps_lo;
  s.eps_hi = std::max(eps_hi, eps_lo + 1e-9);
  s.field_scale = std::max(1e-12, std::sqrt(field_sq / static_cast<double>(field_count)));
  s.j_scale = std::max(1e-12, j_max);
  return s;
}

void encode_input(nn::Tensor& batch, index_t n, const RealGrid& eps, const CplxGrid& J,
                  double omega, double dl, const Standardizer& std_,
                  const EncodingOptions& opt) {
  const index_t H = batch.size(2), W = batch.size(3);
  maps::require(eps.nx() == W && eps.ny() == H, "encode_input: eps shape mismatch");
  maps::require(batch.size(1) == opt.channels(), "encode_input: channel mismatch");
  const double lambda = 2.0 * kPi / omega;
  const float lam_norm = static_cast<float>((lambda - std_.lambda_ref) / 0.1);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) {
      const double e = eps(w, h);
      batch.at(n, 0, h, w) =
          static_cast<float>((e - std_.eps_lo) / (std_.eps_hi - std_.eps_lo));
      const cplx j = J(w, h) / std_.j_scale;
      batch.at(n, 1, h, w) = static_cast<float>(j.real());
      batch.at(n, 2, h, w) = static_cast<float>(j.imag());
      batch.at(n, 3, h, w) = lam_norm;
      if (opt.wave_prior) {
        const double k = omega * std::sqrt(std::max(0.0, e));
        const double px = k * (static_cast<double>(w) + 0.5) * dl;
        const double py = k * (static_cast<double>(h) + 0.5) * dl;
        batch.at(n, 4, h, w) = static_cast<float>(std::cos(px));
        batch.at(n, 5, h, w) = static_cast<float>(std::sin(px));
        batch.at(n, 6, h, w) = static_cast<float>(std::cos(py));
        batch.at(n, 7, h, w) = static_cast<float>(std::sin(py));
      }
    }
  }
}

void encode_target(nn::Tensor& batch, index_t n, const CplxGrid& Ez,
                   const Standardizer& std_) {
  const index_t H = batch.size(2), W = batch.size(3);
  maps::require(Ez.nx() == W && Ez.ny() == H, "encode_target: field shape mismatch");
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) {
      const cplx e = Ez(w, h) / std_.field_scale;
      batch.at(n, 0, h, w) = static_cast<float>(e.real());
      batch.at(n, 1, h, w) = static_cast<float>(e.imag());
    }
  }
}

CplxGrid decode_field(const nn::Tensor& out, index_t n, const Standardizer& std_) {
  const index_t H = out.size(2), W = out.size(3);
  CplxGrid f(W, H);
  for (index_t h = 0; h < H; ++h) {
    for (index_t w = 0; w < W; ++w) {
      f(w, h) = std_.field_scale *
                cplx{out.at(n, 0, h, w), out.at(n, 1, h, w)};
    }
  }
  return f;
}

nn::Tensor make_input_batch(index_t count, index_t nx, index_t ny,
                            const EncodingOptions& opt) {
  return nn::Tensor({count, opt.channels(), ny, nx});
}

}  // namespace maps::train
