// Data-driven and physics-driven training losses (Sec. III-B feature 3).
//
// NMSE: per-sample normalized squared error, the paper's data loss.
// Maxwell residual: || A(eps) E_hat - b ||^2 / ||b||^2 with the exact FDFD
// operator — a self-supervised physics loss that needs no field label.
#pragma once

#include "core/data/dataset.hpp"
#include "core/train/encoding.hpp"
#include "nn/tensor.hpp"

namespace maps::train {

struct LossValue {
  double value = 0.0;
  nn::Tensor grad;  // dL/d(prediction), same shape as the prediction
};

/// Mean over batch of ||pred_n - target_n||^2 / ||target_n||^2.
LossValue nmse_loss(const nn::Tensor& pred, const nn::Tensor& target);

/// Physics residual for batch row n of `pred` against the sample's operator.
/// Assembles A from (eps, omega, pml_cells); returns the loss contribution
/// and accumulates dL/dpred into `grad` (same shape as pred), scaled by
/// `weight / batch`.
double add_maxwell_residual(const data::SampleRecord& rec, const nn::Tensor& pred,
                            index_t n, const Standardizer& std_, double weight,
                            index_t batch, nn::Tensor& grad);

/// Standalone residual diagnostic: ||A E - b|| / ||b|| for any field.
double maxwell_residual_norm(const data::SampleRecord& rec,
                             const maps::math::CplxGrid& field);

}  // namespace maps::train
