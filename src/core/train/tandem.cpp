#include "core/train/tandem.hpp"

#include <algorithm>
#include <cmath>

namespace maps::train {

using maps::math::RealGrid;
using nn::Tensor;

TandemGenerator::TandemGenerator(index_t spec_dim, index_t out_h, index_t out_w,
                                 index_t width, maps::math::Rng& rng)
    : spec_dim_(spec_dim), h_(out_h), w_(out_w), width_(width),
      fc1_(spec_dim, 4 * width, rng, "g_fc1"),
      fc2_(4 * width, width * (out_h / 4) * (out_w / 4), rng, "g_fc2"),
      conv1_(width, width, 3, rng, "g_conv1"), conv2_(width, 1, 3, rng, "g_conv2") {
  maps::require(out_h % 4 == 0 && out_w % 4 == 0,
                "TandemGenerator: output dims must be divisible by 4");
  maps::require(spec_dim >= 1, "TandemGenerator: spec_dim must be >= 1");
}

Tensor TandemGenerator::forward(const Tensor& spec) {
  maps::require(spec.ndim() == 2 && spec.size(1) == spec_dim_,
                "TandemGenerator: spec must be (N, spec_dim)");
  const index_t N = spec.size(0);
  Tensor y = act1_.forward(fc1_.forward(spec));
  y = act2_.forward(fc2_.forward(y));
  y = y.reshaped({N, width_, h_ / 4, w_ / 4});
  y = act3_.forward(conv1_.forward(up1_.forward(y)));
  y = conv2_.forward(up2_.forward(y));
  return out_act_.forward(y);
}

Tensor TandemGenerator::backward(const Tensor& grad_out) {
  Tensor g = out_act_.backward(grad_out);
  g = up2_.backward(conv2_.backward(g));
  g = up1_.backward(conv1_.backward(act3_.backward(g)));
  const index_t N = g.size(0);
  g = g.reshaped({N, width_ * (h_ / 4) * (w_ / 4)});
  g = fc2_.backward(act2_.backward(g));
  return fc1_.backward(act1_.backward(g));
}

std::vector<nn::Param*> TandemGenerator::parameters() {
  std::vector<nn::Param*> ps;
  for (nn::Module* m :
       std::initializer_list<nn::Module*>{&fc1_, &fc2_, &conv1_, &conv2_}) {
    for (nn::Param* p : m->parameters()) ps.push_back(p);
  }
  return ps;
}

std::vector<std::pair<RealGrid, double>> density_spec_pairs(
    const data::Dataset& dataset) {
  std::vector<std::pair<RealGrid, double>> out;
  out.reserve(dataset.size());
  for (const auto& rec : dataset.samples) {
    if (rec.density.size() == 0 || rec.transmissions.empty()) continue;
    out.emplace_back(rec.density, rec.transmissions.front());
  }
  return out;
}

namespace {

void encode_density(Tensor& batch, index_t n, const RealGrid& rho) {
  for (index_t j = 0; j < rho.ny(); ++j) {
    for (index_t i = 0; i < rho.nx(); ++i) {
      batch.at(n, 0, j, i) = static_cast<float>(rho(i, j));
    }
  }
}

}  // namespace

double train_density_regressor(
    nn::Module& f, const std::vector<std::pair<RealGrid, double>>& data,
    const RegressorTrainOptions& options) {
  maps::require(!data.empty(), "train_density_regressor: empty data");
  const index_t H = data.front().first.ny(), W = data.front().first.nx();
  maps::math::Rng rng(options.seed);
  nn::Adam opt(f.parameters(), [&] {
    nn::AdamOptions ao;
    ao.lr = options.lr;
    return ao;
  }());

  std::vector<std::size_t> order(data.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;

  double last_mae = 0.0;
  for (int e = 0; e < options.epochs; ++e) {
    rng.shuffle(order);
    double mae = 0.0;
    std::size_t count = 0, done = 0;
    while (done < order.size()) {
      const index_t bs = static_cast<index_t>(std::min<std::size_t>(
          static_cast<std::size_t>(options.batch), order.size() - done));
      Tensor in({bs, 1, H, W});
      Tensor target({bs, 1});
      for (index_t k = 0; k < bs; ++k) {
        const auto& [rho, t] = data[order[done + static_cast<std::size_t>(k)]];
        maps::require(rho.ny() == H && rho.nx() == W,
                      "train_density_regressor: inconsistent density shapes");
        encode_density(in, k, rho);
        target[k] = static_cast<float>(t);
      }
      f.zero_grad();
      const Tensor pred = f.forward(in);
      maps::require(pred.ndim() == 2 && pred.size(1) == 1,
                    "train_density_regressor: f must output (N, 1)");
      Tensor grad = Tensor::zeros_like(pred);
      for (index_t k = 0; k < bs; ++k) {
        const float err = pred[k] - target[k];
        grad[k] = 2.0f * err / static_cast<float>(bs);
        mae += std::abs(static_cast<double>(err));
        ++count;
      }
      f.backward(grad);
      opt.step();
      done += static_cast<std::size_t>(bs);
    }
    last_mae = count > 0 ? mae / static_cast<double>(count) : 0.0;
  }
  return last_mae;
}

TandemReport train_tandem(nn::Module& f_frozen, TandemGenerator& g,
                          const std::vector<double>& target_specs,
                          const TandemOptions& options) {
  maps::require(!target_specs.empty(), "train_tandem: no target specs");
  maps::require(g.spec_dim() == 1, "train_tandem: scalar-spec generators only");
  maps::math::Rng rng(options.seed);
  nn::Adam opt(g.parameters(), [&] {
    nn::AdamOptions ao;
    ao.lr = options.lr;
    return ao;
  }());

  std::vector<double> specs = target_specs;
  TandemReport rep;

  for (int e = 0; e < options.epochs; ++e) {
    rng.shuffle(specs);
    double epoch_loss = 0.0;
    int batches = 0;
    std::size_t done = 0;
    while (done < specs.size()) {
      const index_t bs = static_cast<index_t>(std::min<std::size_t>(
          static_cast<std::size_t>(options.batch), specs.size() - done));
      Tensor spec({bs, 1});
      for (index_t k = 0; k < bs; ++k) {
        spec[k] = static_cast<float>(specs[done + static_cast<std::size_t>(k)]);
      }

      g.zero_grad();
      f_frozen.zero_grad();  // discard any teacher grads; f is never stepped
      const Tensor rho = g.forward(spec);
      const Tensor pred = f_frozen.forward(rho);

      double loss = 0.0;
      Tensor dpred = Tensor::zeros_like(pred);
      for (index_t k = 0; k < bs; ++k) {
        const float err = pred[k] - spec[k];
        loss += static_cast<double>(err) * err;
        dpred[k] = 2.0f * err / static_cast<float>(bs);
      }
      loss /= static_cast<double>(bs);

      // Chain rule through the frozen forward model to the generator.
      Tensor drho = f_frozen.backward(dpred);
      if (options.gray_weight > 0.0) {
        // d/drho of mean 4 rho (1 - rho): pushes densities to {0, 1}.
        const float scale = static_cast<float>(options.gray_weight) /
                            static_cast<float>(rho.numel());
        for (index_t n = 0; n < rho.numel(); ++n) {
          loss += options.gray_weight * 4.0 * rho[n] * (1.0 - rho[n]) /
                  static_cast<double>(rho.numel());
          drho[n] += scale * (4.0f - 8.0f * rho[n]);
        }
      }
      g.backward(drho);
      opt.step();

      epoch_loss += loss;
      ++batches;
      done += static_cast<std::size_t>(bs);
    }
    rep.epoch_losses.push_back(batches > 0 ? epoch_loss / batches : 0.0);
  }

  for (const double t : target_specs) {
    const RealGrid rho = tandem_generate(g, t);
    rep.residuals.push_back(std::abs(forward_predict(f_frozen, rho) - t));
  }
  return rep;
}

RealGrid tandem_generate(TandemGenerator& g, double target_spec) {
  Tensor spec({1, 1});
  spec[0] = static_cast<float>(target_spec);
  const Tensor rho = g.forward(spec);
  RealGrid out(g.out_w(), g.out_h());
  for (index_t j = 0; j < out.ny(); ++j) {
    for (index_t i = 0; i < out.nx(); ++i) {
      out(i, j) = static_cast<double>(rho.at(0, 0, j, i));
    }
  }
  return out;
}

double forward_predict(nn::Module& f, const RealGrid& density) {
  Tensor in({1, 1, density.ny(), density.nx()});
  encode_density(in, 0, density);
  const Tensor pred = f.forward(in);
  return static_cast<double>(pred[0]);
}

}  // namespace maps::train
