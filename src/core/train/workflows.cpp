#include "core/train/workflows.hpp"

namespace maps::train {

TrainReport distill(nn::Module& teacher, nn::Module& student,
                    const DataLoader& loader, const DistillOptions& options,
                    const devices::DeviceProblem* device) {
  maps::require(options.alpha >= 0.0 && options.alpha <= 1.0,
                "distill: alpha must be in [0, 1]");
  maps::math::Rng rng(options.seed);
  const auto& std_ = loader.standardizer();

  nn::Adam optimizer(student.parameters(), [&] {
    nn::AdamOptions ao;
    ao.lr = options.lr;
    return ao;
  }());

  TrainReport rep;
  for (int e = 0; e < options.epochs; ++e) {
    optimizer.set_lr(nn::cosine_lr(options.lr, options.lr_min, e, options.epochs));
    const auto order = loader.epoch_order(rng);
    double epoch_loss = 0.0;
    int batches = 0;
    std::size_t done = 0;
    while (done < order.size()) {
      const index_t bs = static_cast<index_t>(std::min<std::size_t>(
          static_cast<std::size_t>(options.batch), order.size() - done));
      const auto& first = *order[done].record;
      nn::Tensor in = make_input_batch(bs, first.nx(), first.ny(), options.encoding);
      nn::Tensor target({bs, 2, first.ny(), first.nx()});
      for (index_t k = 0; k < bs; ++k) {
        const auto& fs = order[done + static_cast<std::size_t>(k)];
        encode_input(in, k, fs.record->eps, fs.source(), fs.record->omega,
                     fs.record->dl, std_, options.encoding);
        encode_target(target, k, fs.field(), std_);
      }

      // Soft targets: the teacher's forward pass (no teacher backward).
      const nn::Tensor soft = teacher.forward(in);
      maps::require(soft.same_shape(target), "distill: teacher output shape");
      nn::Tensor blended = target;
      const float a = static_cast<float>(options.alpha);
      for (index_t n = 0; n < blended.numel(); ++n) {
        blended[n] = a * soft[n] + (1.0f - a) * target[n];
      }

      student.zero_grad();
      const nn::Tensor pred = student.forward(in);
      LossValue lv = nmse_loss(pred, blended);
      student.backward(lv.grad);
      optimizer.step();

      epoch_loss += lv.value;
      ++batches;
      done += static_cast<std::size_t>(bs);
    }
    rep.epoch_losses.push_back(batches > 0 ? epoch_loss / batches : 0.0);
  }

  rep.train_nl2 = evaluate_nl2(student, loader.train(), std_, options.encoding);
  rep.test_nl2 = evaluate_nl2(student, loader.test(), std_, options.encoding);
  if (device != nullptr) {
    const auto recs = loader.test_records();
    rep.grad_similarity =
        mean_grad_similarity(student, *device, recs, std_, options.encoding);
    rep.sparam_err = sparam_error(student, *device, recs, std_, options.encoding);
  }
  return rep;
}

TrainReport finetune(nn::Module& model, const DataLoader& loader,
                     const FinetuneOptions& options,
                     const devices::DeviceProblem* device) {
  TrainOptions topt;
  topt.epochs = options.epochs;
  topt.batch = options.batch;
  topt.lr = options.lr;
  topt.lr_min = options.lr_min;
  topt.maxwell_weight = options.maxwell_weight;
  topt.mixup_prob = options.mixup_prob;
  topt.encoding = options.encoding;
  topt.seed = options.seed;
  Trainer trainer(model, loader, topt);
  return trainer.fit(device);
}

}  // namespace maps::train
