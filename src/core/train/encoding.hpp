// Standardized model inputs (Sec. III-B.2): permittivity eps and source J,
// plus optional NeurOLight-style wave-prior channels.
//
// Channels: [eps_norm, Re J, Im J, lambda_norm] and, with wave_prior,
// [cos(k x), sin(k x), cos(k y), sin(k y)] where k = omega * sqrt(eps(x,y))
// — the local propagating-phase ansatz. Targets are (Re Ez, Im Ez) scaled by
// a dataset-level field scale so losses are O(1).
#pragma once

#include <optional>

#include "core/data/dataset.hpp"
#include "nn/tensor.hpp"

namespace maps::train {

struct EncodingOptions {
  bool wave_prior = false;
  index_t channels() const { return wave_prior ? 8 : 4; }
};

/// Dataset-level normalization constants (fit on the training split only).
struct Standardizer {
  double eps_lo = 1.0;
  double eps_hi = 13.0;
  double field_scale = 1.0;  // RMS of |Ez| over the training split
  double j_scale = 1.0;      // max |J| over the training split
  double lambda_ref = 1.55;  // wavelength normalization center
};

/// One supervised unit: a record viewed either as the forward pair (J -> Ez)
/// or the adjoint pair (adj_J -> lambda_fwd).
struct FieldSample {
  const data::SampleRecord* record = nullptr;
  bool adjoint = false;

  const maps::math::CplxGrid& source() const {
    return adjoint ? record->adj_J : record->J;
  }
  const maps::math::CplxGrid& field() const {
    return adjoint ? record->lambda_fwd : record->Ez;
  }
};

Standardizer fit_standardizer(const std::vector<FieldSample>& train_samples);

/// Per-field standardizer overrides: a set field replaces whatever value the
/// base standardizer carries (serving layers values as config-explicit >
/// checkpoint-provenance > defaults).
struct StandardizerOverrides {
  std::optional<double> eps_lo, eps_hi, field_scale, j_scale, lambda_ref;

  void apply(Standardizer& s) const {
    if (eps_lo) s.eps_lo = *eps_lo;
    if (eps_hi) s.eps_hi = *eps_hi;
    if (field_scale) s.field_scale = *field_scale;
    if (j_scale) s.j_scale = *j_scale;
    if (lambda_ref) s.lambda_ref = *lambda_ref;
  }
  bool any() const {
    return eps_lo || eps_hi || field_scale || j_scale || lambda_ref;
  }
};

/// Write one sample's input channels into batch row n.
void encode_input(nn::Tensor& batch, index_t n, const maps::math::RealGrid& eps,
                  const maps::math::CplxGrid& J, double omega, double dl,
                  const Standardizer& std_, const EncodingOptions& opt);

/// Write one sample's target channels (Re Ez, Im Ez) into batch row n.
void encode_target(nn::Tensor& batch, index_t n, const maps::math::CplxGrid& Ez,
                   const Standardizer& std_);

/// Model output row n -> complex field (de-normalized).
maps::math::CplxGrid decode_field(const nn::Tensor& out, index_t n,
                                  const Standardizer& std_);

/// Allocate an input batch of the right shape for `count` samples on a grid.
nn::Tensor make_input_batch(index_t count, index_t nx, index_t ny,
                            const EncodingOptions& opt);

}  // namespace maps::train
