#include "core/train/trainer.hpp"

#include <cstdio>

namespace maps::train {

using maps::math::CplxGrid;

Trainer::Trainer(nn::Module& model, const DataLoader& loader, TrainOptions options)
    : model_(model), loader_(loader), options_(options),
      optimizer_(model.parameters(), [&] {
        nn::AdamOptions ao;
        ao.lr = options.lr;
        return ao;
      }()) {}

double Trainer::run_epoch(maps::math::Rng& rng, double lr) {
  optimizer_.set_lr(lr);
  const auto order = loader_.epoch_order(rng);
  const auto& std_ = loader_.standardizer();
  const index_t B = options_.batch;

  double epoch_loss = 0.0;
  int batches = 0;
  std::size_t done = 0;
  while (done < order.size()) {
    const index_t bs = static_cast<index_t>(
        std::min<std::size_t>(static_cast<std::size_t>(B), order.size() - done));
    const auto& first = *order[done].record;
    nn::Tensor in = make_input_batch(bs, first.nx(), first.ny(), options_.encoding);
    nn::Tensor target({bs, 2, first.ny(), first.nx()});
    std::vector<const data::SampleRecord*> row_recs(static_cast<std::size_t>(bs));
    std::vector<bool> row_mixed(static_cast<std::size_t>(bs), false);

    for (index_t k = 0; k < bs; ++k) {
      const auto& fs = order[done + static_cast<std::size_t>(k)];
      row_recs[static_cast<std::size_t>(k)] = fs.record;
      if (options_.mixup_prob > 0.0 && rng.uniform() < options_.mixup_prob) {
        // Physically exact source superposition within the record.
        const double gamma = rng.uniform(-1.0, 1.0);
        auto [J_mix, E_mix] = DataLoader::mixup_pair(*fs.record, gamma);
        encode_input(in, k, fs.record->eps, J_mix, fs.record->omega, fs.record->dl,
                     std_, options_.encoding);
        encode_target(target, k, E_mix, std_);
        row_mixed[static_cast<std::size_t>(k)] = true;
      } else {
        encode_input(in, k, fs.record->eps, fs.source(), fs.record->omega,
                     fs.record->dl, std_, options_.encoding);
        encode_target(target, k, fs.field(), std_);
      }
    }

    model_.zero_grad();
    const nn::Tensor pred = model_.forward(in);
    LossValue lv = nmse_loss(pred, target);
    double loss = lv.value;
    if (options_.maxwell_weight > 0.0) {
      for (index_t k = 0; k < bs; ++k) {
        if (row_mixed[static_cast<std::size_t>(k)]) continue;  // J differs
        loss += add_maxwell_residual(*row_recs[static_cast<std::size_t>(k)], pred, k,
                                     std_, options_.maxwell_weight, bs, lv.grad);
      }
    }
    model_.backward(lv.grad);
    optimizer_.step();

    epoch_loss += loss;
    ++batches;
    done += static_cast<std::size_t>(bs);
  }
  return batches > 0 ? epoch_loss / batches : 0.0;
}

TrainReport Trainer::fit(const devices::DeviceProblem* device) {
  maps::math::Rng rng(options_.seed);
  TrainReport rep;
  for (int e = 0; e < options_.epochs; ++e) {
    const double lr = nn::cosine_lr(options_.lr, options_.lr_min, e, options_.epochs);
    const double loss = run_epoch(rng, lr);
    rep.epoch_losses.push_back(loss);
    if (options_.verbose) {
      std::printf("  epoch %3d/%d  loss %.4f  lr %.2e\n", e + 1, options_.epochs,
                  loss, lr);
    }
  }
  rep.train_nl2 = evaluate_nl2(model_, loader_.train(), loader_.standardizer(),
                               options_.encoding);
  rep.test_nl2 = evaluate_nl2(model_, loader_.test(), loader_.standardizer(),
                              options_.encoding);
  if (device != nullptr) {
    const auto recs = loader_.test_records();
    rep.grad_similarity = mean_grad_similarity(model_, *device, recs,
                                               loader_.standardizer(),
                                               options_.encoding);
    rep.sparam_err = sparam_error(model_, *device, recs, loader_.standardizer(),
                                  options_.encoding);
  }
  return rep;
}

}  // namespace maps::train
