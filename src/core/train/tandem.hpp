// Tandem neural network for inverse generation (the "multi-model setup"
// MAPS-Train calls out in Sec. III-B feature 2).
//
// The classic tandem scheme sidesteps the one-to-many inverse ambiguity:
//   1. train a forward surrogate f: design density -> FoM (frozen after);
//   2. train a generator g: target spec -> density through the frozen f,
//      minimizing || f(g(t*)) - t* ||^2 (+ optional binarization pressure).
// Gradients flow *through* f to g — exactly the input-gradient machinery the
// layer framework exposes for Table II's autodiff modes.
#pragma once

#include <utility>
#include <vector>

#include "core/data/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"

namespace maps::train {

/// Generator: spec vector (N, spec_dim) -> density map (N, 1, H, W) in
/// (0, 1). H and W must be divisible by 4 (two upsampling stages).
class TandemGenerator final : public nn::Module {
 public:
  TandemGenerator(index_t spec_dim, index_t out_h, index_t out_w, index_t width,
                  maps::math::Rng& rng);

  std::string name() const override { return "tandem_generator"; }
  nn::Tensor forward(const nn::Tensor& spec) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Param*> parameters() override;

  index_t spec_dim() const { return spec_dim_; }
  index_t out_h() const { return h_; }
  index_t out_w() const { return w_; }

 private:
  index_t spec_dim_, h_, w_, width_;
  nn::Linear fc1_, fc2_;
  nn::Activation act1_{nn::Act::Gelu}, act2_{nn::Act::Gelu}, act3_{nn::Act::Gelu};
  nn::Upsample2x up1_, up2_;
  nn::Conv2d conv1_, conv2_;
  nn::Activation out_act_{nn::Act::Sigmoid};
};

/// (density, FoM) supervision pairs extracted from dataset records (the
/// design-region density and the primary-term transmission label).
std::vector<std::pair<maps::math::RealGrid, double>> density_spec_pairs(
    const data::Dataset& dataset);

struct RegressorTrainOptions {
  int epochs = 40;
  index_t batch = 8;
  double lr = 2e-3;
  unsigned seed = 31;
};

/// Supervised training of a forward surrogate f: (N,1,H,W) density ->
/// (N, 1) FoM (e.g. an SParamCnn with c_in = 1). Returns the final-epoch
/// mean absolute error.
double train_density_regressor(
    nn::Module& f, const std::vector<std::pair<maps::math::RealGrid, double>>& data,
    const RegressorTrainOptions& options);

struct TandemOptions {
  int epochs = 60;
  index_t batch = 8;
  double lr = 2e-3;
  double gray_weight = 0.0;  // optional pressure toward binary densities
  unsigned seed = 37;
};

struct TandemReport {
  std::vector<double> epoch_losses;
  /// |f(g(t)) - t| per requested spec after training.
  std::vector<double> residuals;
};

/// Train the generator through the frozen forward model on a set of target
/// specs (each epoch shuffles the specs).
TandemReport train_tandem(nn::Module& f_frozen, TandemGenerator& g,
                          const std::vector<double>& target_specs,
                          const TandemOptions& options);

/// Generate the density for one target spec.
maps::math::RealGrid tandem_generate(TandemGenerator& g, double target_spec);

/// Run the frozen forward model on one density.
double forward_predict(nn::Module& f, const maps::math::RealGrid& density);

}  // namespace maps::train
