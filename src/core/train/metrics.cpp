#include "core/train/metrics.hpp"

#include <cmath>

#include "fdfd/adjoint.hpp"
#include "fdfd/assembler.hpp"

namespace maps::train {

using maps::math::CplxGrid;
using maps::math::RealGrid;

CplxGrid predict_field(nn::Module& model, const RealGrid& eps, const CplxGrid& J,
                       double omega, double dl, const Standardizer& std_,
                       const EncodingOptions& enc) {
  nn::Tensor in = make_input_batch(1, eps.nx(), eps.ny(), enc);
  encode_input(in, 0, eps, J, omega, dl, std_, enc);
  const nn::Tensor out = model.forward(in);
  return decode_field(out, 0, std_);
}

void derive_h_fields(const CplxGrid& Ez, double omega, double dl, CplxGrid& Hx,
                     CplxGrid& Hy) {
  const index_t nx = Ez.nx(), ny = Ez.ny();
  Hx = CplxGrid(nx, ny);
  Hy = CplxGrid(nx, ny);
  const cplx inv_iw_dl = cplx{1.0} / (kI * omega * dl);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const cplx e = Ez(i, j);
      const cplx e_n = (j + 1 < ny) ? Ez(i, j + 1) : cplx{};
      const cplx e_e = (i + 1 < nx) ? Ez(i + 1, j) : cplx{};
      Hx(i, j) = (e_n - e) * inv_iw_dl;
      Hy(i, j) = -(e_e - e) * inv_iw_dl;
    }
  }
}

namespace {
double stacked_nl2(const CplxGrid& pred, const CplxGrid& truth, double omega,
                   double dl) {
  CplxGrid phx, phy, thx, thy;
  derive_h_fields(pred, omega, dl, phx, phy);
  derive_h_fields(truth, omega, dl, thx, thy);
  double num = 0, den = 0;
  for (index_t n = 0; n < pred.size(); ++n) {
    num += std::norm(pred[n] - truth[n]) + std::norm(phx[n] - thx[n]) +
           std::norm(phy[n] - thy[n]);
    den += std::norm(truth[n]) + std::norm(thx[n]) + std::norm(thy[n]);
  }
  return std::sqrt(num / std::max(den, 1e-300));
}
}  // namespace

double evaluate_nl2(nn::Module& model, const std::vector<FieldSample>& samples,
                    const Standardizer& std_, const EncodingOptions& enc,
                    index_t batch) {
  maps::require(!samples.empty(), "evaluate_nl2: no samples");
  double total = 0.0;
  std::size_t done = 0;
  while (done < samples.size()) {
    const index_t bs = static_cast<index_t>(
        std::min<std::size_t>(static_cast<std::size_t>(batch), samples.size() - done));
    const auto& first = *samples[done].record;
    nn::Tensor in = make_input_batch(bs, first.nx(), first.ny(), enc);
    for (index_t k = 0; k < bs; ++k) {
      const auto& fs = samples[done + static_cast<std::size_t>(k)];
      encode_input(in, k, fs.record->eps, fs.source(), fs.record->omega,
                   fs.record->dl, std_, enc);
    }
    const nn::Tensor out = model.forward(in);
    for (index_t k = 0; k < bs; ++k) {
      const auto& fs = samples[done + static_cast<std::size_t>(k)];
      const CplxGrid pred = decode_field(out, k, std_);
      total += stacked_nl2(pred, fs.field(), fs.record->omega, fs.record->dl);
    }
    done += static_cast<std::size_t>(bs);
  }
  return total / static_cast<double>(samples.size());
}

double box_cosine(const RealGrid& a, const RealGrid& b, const grid::BoxRegion& box) {
  double dot = 0, na = 0, nb = 0;
  for (index_t j = box.j0; j < box.j0 + box.nj; ++j) {
    for (index_t i = box.i0; i < box.i0 + box.ni; ++i) {
      dot += a(i, j) * b(i, j);
      na += a(i, j) * a(i, j);
      nb += b(i, j) * b(i, j);
    }
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

namespace {
const devices::Excitation* find_excitation(const devices::DeviceProblem& device,
                                           const std::string& name) {
  for (const auto& exc : device.excitations) {
    if (exc.name == name) return &exc;
  }
  return nullptr;
}
}  // namespace

double grad_similarity_fwd_adj(nn::Module& model, const devices::DeviceProblem& device,
                               const data::SampleRecord& rec, const Standardizer& std_,
                               const EncodingOptions& enc) {
  const auto* exc = find_excitation(device, rec.excitation);
  maps::require(exc != nullptr, "grad_similarity: excitation not found: " +
                                    rec.excitation);
  // W from a fresh assembly (no factorization needed).
  grid::GridSpec spec{rec.nx(), rec.ny(), rec.dl};
  fdfd::PmlSpec pml;
  pml.ncells = rec.pml_cells;
  const auto op = fdfd::assemble(spec, rec.eps, rec.omega, pml);

  const CplxGrid E_hat =
      predict_field(model, rec.eps, rec.J, rec.omega, rec.dl, std_, enc);
  // Adjoint source from the *predicted* field (that is what an NN-driven
  // optimizer would have available).
  const auto g = fdfd::objective_dE(exc->terms, E_hat);
  CplxGrid adj_J(rec.nx(), rec.ny());
  double j_max = 0.0, adj_max = 0.0;
  for (index_t n = 0; n < adj_J.size(); ++n) {
    adj_J[n] = g[static_cast<std::size_t>(n)] /
               (op.W[static_cast<std::size_t>(n)] * (-kI * rec.omega));
    adj_max = std::max(adj_max, std::abs(adj_J[n]));
    j_max = std::max(j_max, std::abs(rec.J[n]));
  }
  // Normalize the adjoint query into the training distribution (datasets
  // store adjoint pairs at forward-source magnitude) and undo afterwards —
  // exact by linearity.
  const double q = (adj_max > 1e-300 && j_max > 0.0) ? j_max / adj_max : 1.0;
  for (index_t n = 0; n < adj_J.size(); ++n) adj_J[n] *= q;
  CplxGrid L_hat = predict_field(model, rec.eps, adj_J, rec.omega, rec.dl, std_, enc);
  for (index_t n = 0; n < L_hat.size(); ++n) L_hat[n] /= q;
  const RealGrid grad_hat = fdfd::grad_from_fields(E_hat, L_hat, op.W, rec.omega);
  return box_cosine(grad_hat, rec.grad_eps, rec.design_box);
}

double mean_grad_similarity(nn::Module& model, const devices::DeviceProblem& device,
                            const std::vector<const data::SampleRecord*>& records,
                            const Standardizer& std_, const EncodingOptions& enc) {
  double total = 0.0;
  int count = 0;
  for (const auto* rec : records) {
    if (find_excitation(device, rec->excitation) == nullptr) continue;
    total += grad_similarity_fwd_adj(model, device, *rec, std_, enc);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double sparam_error(nn::Module& model, const devices::DeviceProblem& device,
                    const std::vector<const data::SampleRecord*>& records,
                    const Standardizer& std_, const EncodingOptions& enc) {
  double total = 0.0;
  int count = 0;
  for (const auto* rec : records) {
    const auto* exc = find_excitation(device, rec->excitation);
    if (exc == nullptr) continue;
    const CplxGrid E_hat =
        predict_field(model, rec->eps, rec->J, rec->omega, rec->dl, std_, enc);
    for (std::size_t t = 0; t < exc->terms.size(); ++t) {
      const double t_hat = fdfd::term_transmission(exc->terms[t], E_hat);
      total += std::abs(t_hat - rec->transmissions[t]);
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace maps::train
