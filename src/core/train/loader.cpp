#include "core/train/loader.hpp"

#include <algorithm>
#include <unordered_set>

namespace maps::train {

using maps::math::CplxGrid;

DataLoader::DataLoader(const data::Dataset& train_set, const data::Dataset& test_set,
                       LoaderOptions options)
    : dataset_(train_set) {
  maps::require(!train_set.empty() && !test_set.empty(),
                "DataLoader: empty dataset");
  for (const auto& rec : train_set.samples) {
    train_.push_back(FieldSample{&rec, false});
    if (options.include_adjoint_samples) train_.push_back(FieldSample{&rec, true});
  }
  for (const auto& rec : test_set.samples) {
    test_.push_back(FieldSample{&rec, false});
    if (options.include_adjoint_samples) test_.push_back(FieldSample{&rec, true});
  }
  standardizer_ = fit_standardizer(train_);
}

DataLoader::DataLoader(const data::Dataset& dataset, LoaderOptions options)
    : dataset_(dataset) {
  maps::require(!dataset.empty(), "DataLoader: empty dataset");

  // Deterministic pattern-level split: shuffle pattern ids, take the tail
  // fraction as test.
  std::vector<std::uint64_t> ids = dataset.pattern_ids();
  maps::math::Rng rng(options.seed);
  rng.shuffle(ids);
  const std::size_t n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.test_fraction * static_cast<double>(ids.size())));
  maps::require(ids.size() >= 2, "DataLoader: need at least two patterns to split");
  std::unordered_set<std::uint64_t> test_ids(ids.end() - static_cast<long>(n_test),
                                             ids.end());

  for (const auto& rec : dataset_.samples) {
    const bool is_test = test_ids.count(rec.pattern_id) > 0;
    auto& dst = is_test ? test_ : train_;
    dst.push_back(FieldSample{&rec, false});
    if (options.include_adjoint_samples) {
      dst.push_back(FieldSample{&rec, true});
    }
  }
  maps::require(!train_.empty() && !test_.empty(),
                "DataLoader: degenerate split (adjust test_fraction)");
  standardizer_ = fit_standardizer(train_);
}

std::vector<const data::SampleRecord*> DataLoader::test_records() const {
  std::vector<const data::SampleRecord*> recs;
  for (const auto& fs : test_) {
    if (!fs.adjoint) recs.push_back(fs.record);
  }
  return recs;
}

std::vector<FieldSample> DataLoader::epoch_order(maps::math::Rng& rng) const {
  std::vector<FieldSample> order = train_;
  rng.shuffle(order);
  return order;
}

std::pair<CplxGrid, CplxGrid> DataLoader::mixup_pair(const data::SampleRecord& rec,
                                                     double gamma) {
  CplxGrid J = rec.J;
  CplxGrid E = rec.Ez;
  for (index_t n = 0; n < J.size(); ++n) {
    J[n] += gamma * rec.adj_J[n];
    E[n] += gamma * rec.lambda_fwd[n];
  }
  return {std::move(J), std::move(E)};
}

}  // namespace maps::train
