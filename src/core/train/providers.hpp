// Neural gradient providers — the three gradient-computation modes of
// Table II, all implementing invdes::GradientProvider so MAPS-InvDes can
// swap them for the numerical adjoint transparently (Fig. 6).
//
//   FwdAdjFieldProvider ("Fwd & Adj Field"): two field predictions (forward
//     source, then adjoint source derived from the predicted forward field);
//     gradient from the adjoint product rule. No network differentiation.
//   AutodiffFieldProvider ("AD-Pred Field"): one field prediction; the FoM is
//     computed from the predicted field and differentiated *through the
//     network* to its eps input channel.
//   BlackBoxProvider ("AD-Black Box"): a CNN regressor predicts the
//     transmissions directly; gradient via network input backprop.
#pragma once

#include "core/invdes/engine.hpp"
#include "core/train/encoding.hpp"
#include "core/train/loader.hpp"
#include "nn/models.hpp"

namespace maps::train {

class FwdAdjFieldProvider final : public invdes::GradientProvider {
 public:
  FwdAdjFieldProvider(nn::Module& model, const devices::DeviceProblem& device,
                      Standardizer std_, EncodingOptions enc)
      : model_(model), device_(device), std_(std_), enc_(enc) {}
  invdes::GradEval evaluate(const maps::math::RealGrid& eps) override;
  std::string name() const override { return "nn_fwd_adj_field"; }

 private:
  nn::Module& model_;
  const devices::DeviceProblem& device_;
  Standardizer std_;
  EncodingOptions enc_;
};

class AutodiffFieldProvider final : public invdes::GradientProvider {
 public:
  AutodiffFieldProvider(nn::Module& model, const devices::DeviceProblem& device,
                        Standardizer std_, EncodingOptions enc)
      : model_(model), device_(device), std_(std_), enc_(enc) {}
  invdes::GradEval evaluate(const maps::math::RealGrid& eps) override;
  std::string name() const override { return "nn_ad_pred_field"; }

 private:
  nn::Module& model_;
  const devices::DeviceProblem& device_;
  Standardizer std_;
  EncodingOptions enc_;
};

class BlackBoxProvider final : public invdes::GradientProvider {
 public:
  /// `model` must output one scalar per FoM term of each excitation, in
  /// excitation-major order (the layout train_blackbox produces).
  BlackBoxProvider(nn::Module& model, const devices::DeviceProblem& device,
                   Standardizer std_, EncodingOptions enc)
      : model_(model), device_(device), std_(std_), enc_(enc) {}
  invdes::GradEval evaluate(const maps::math::RealGrid& eps) override;
  std::string name() const override { return "nn_ad_black_box"; }

 private:
  nn::Module& model_;
  const devices::DeviceProblem& device_;
  Standardizer std_;
  EncodingOptions enc_;
};

/// Count of FoM terms across a device's excitations (BlackBox output size).
index_t total_terms(const devices::DeviceProblem& device);

/// Train an SParamCNN-style regressor eps,J -> transmissions on a dataset
/// (forward samples only). Returns mean absolute test error.
double train_blackbox(nn::Module& model, const DataLoader& loader,
                      const devices::DeviceProblem& device, int epochs, double lr,
                      const EncodingOptions& enc, unsigned seed = 17);

}  // namespace maps::train
