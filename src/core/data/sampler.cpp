#include "core/data/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "core/invdes/engine.hpp"
#include "core/invdes/init.hpp"
#include "math/parallel.hpp"
#include "param/blur.hpp"

namespace maps::data {

using maps::math::RealGrid;
using maps::math::Rng;

const char* strategy_name(SamplingStrategy s) {
  switch (s) {
    case SamplingStrategy::Random: return "random";
    case SamplingStrategy::OptTraj: return "opt_traj";
    case SamplingStrategy::PerturbOptTraj: return "perturb_opt_traj";
  }
  return "?";
}

namespace {

RealGrid random_binary_pattern(index_t nx, index_t ny, const SamplerOptions& opt,
                               Rng& rng) {
  RealGrid noise(nx, ny);
  for (index_t n = 0; n < noise.size(); ++n) noise[n] = rng.uniform();
  param::BlurFilter blur(rng.uniform(opt.blur_min, opt.blur_max));
  RealGrid smooth = blur.forward(noise);
  const double tau = rng.uniform(opt.threshold_min, opt.threshold_max);
  // Normalize the blurred field's spread before thresholding so tau is
  // meaningful regardless of the blur radius.
  double mn = 1e300, mx = -1e300;
  for (index_t n = 0; n < smooth.size(); ++n) {
    mn = std::min(mn, smooth[n]);
    mx = std::max(mx, smooth[n]);
  }
  RealGrid rho(nx, ny);
  for (index_t n = 0; n < rho.size(); ++n) {
    const double v = (smooth[n] - mn) / std::max(1e-12, mx - mn);
    rho[n] = v >= tau ? 1.0 : 0.0;
  }
  return rho;
}

RealGrid perturb_pattern(const RealGrid& rho, double sigma, Rng& rng) {
  // Perturb in "soft" space, then lightly re-smooth and clamp: mirrors the
  // paper's perturbation of intermediate designs.
  RealGrid noisy(rho.nx(), rho.ny());
  for (index_t n = 0; n < rho.size(); ++n) {
    noisy[n] = std::clamp(rho[n] + rng.normal(0.0, sigma), 0.0, 1.0);
  }
  param::BlurFilter blur(1.0);
  return blur.forward(noisy);
}

}  // namespace

PatternSet sample_patterns(const devices::DeviceProblem& device,
                           devices::DeviceKind kind, const SamplerOptions& opt) {
  PatternSet out;
  out.strategy = strategy_name(opt.strategy);
  const auto& box = device.design_map.box;

  if (opt.strategy == SamplingStrategy::Random) {
    // One independent RNG stream per pattern, seeded from (seed, pattern
    // id): pattern p's content never depends on how many patterns precede
    // it or which shard renders it, so an N-shard run reproduces the
    // single-process dataset bit-for-bit and a num_patterns extension is a
    // strict superset.
    for (int p = 0; p < opt.num_patterns; ++p) {
      const auto id = static_cast<std::uint64_t>(p);
      Rng rng(maps::math::stream_seed(opt.seed, id));
      out.densities.push_back(random_binary_pattern(box.ni, box.nj, opt, rng));
      out.ids.push_back(id);
    }
    return out;
  }

  // Trajectory strategies: run adjoint optimizations, snapshot densities.
  const int n_traj = std::max(1, opt.num_trajectories);
  std::vector<std::vector<RealGrid>> traj_densities(static_cast<std::size_t>(n_traj));

  maps::math::parallel_for(0, static_cast<std::size_t>(n_traj), [&](std::size_t t) {
    invdes::InvDesOptions io;
    io.iterations = opt.traj_iterations;
    io.record_density = true;
    devices::PipelineOptions po;
    auto pipeline = devices::make_default_pipeline(device, kind, po);
    invdes::InverseDesigner designer(device, std::move(pipeline), io);
    // Alternate gray / random starts across trajectories for diversity.
    const auto init_kind = (t % 2 == 0) ? invdes::InitKind::Gray
                                        : invdes::InitKind::Random;
    auto theta0 = invdes::make_initial_theta(device, init_kind,
                                             opt.seed + static_cast<unsigned>(t) * 101);
    auto res = designer.run(std::move(theta0));
    for (const auto& rec : res.history) {
      if (rec.iteration % opt.record_every == 0) {
        traj_densities[t].push_back(rec.density);
      }
    }
    traj_densities[t].push_back(res.density);  // converged design
  });

  for (int t = 0; t < n_traj; ++t) {
    const std::uint64_t id = static_cast<std::uint64_t>(t) << 32;
    const auto& snapshots = traj_densities[static_cast<std::size_t>(t)];
    for (std::size_t snap = 0; snap < snapshots.size(); ++snap) {
      out.densities.push_back(snapshots[snap]);
      out.ids.push_back(id);
      if (opt.strategy == SamplingStrategy::PerturbOptTraj) {
        // Per-snapshot perturbation streams, seeded from (seed, lineage,
        // snapshot, k): like the random strategy, deterministic regardless
        // of trajectory count or recording cadence.
        for (int k = 0; k < opt.perturbs_per_snapshot; ++k) {
          Rng rng(maps::math::stream_seed(
              maps::math::stream_seed(opt.seed ^ 0xABCDEFull, id | snap),
              static_cast<std::uint64_t>(k)));
          out.densities.push_back(
              perturb_pattern(snapshots[snap], opt.perturb_sigma, rng));
          out.ids.push_back(id);
        }
      }
    }
  }
  return out;
}

}  // namespace maps::data
