#include "core/data/dataset.hpp"

#include <fstream>
#include <unordered_set>

namespace maps::data {

using maps::math::CplxGrid;
using maps::math::RealGrid;

std::vector<std::uint64_t> Dataset::pattern_ids() const {
  std::vector<std::uint64_t> ids;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& s : samples) {
    if (seen.insert(s.pattern_id).second) ids.push_back(s.pattern_id);
  }
  return ids;
}

std::vector<double> Dataset::primary_transmissions() const {
  std::vector<double> t;
  for (const auto& s : samples) {
    if (!s.transmissions.empty()) t.push_back(s.transmissions.front());
  }
  return t;
}

void Dataset::append(const Dataset& other) {
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

// ------------------------------------------------------------- binary IO --

namespace {
constexpr std::uint32_t kMagic = 0x4D445331;  // "MDS1"

void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
void put_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
double get_f64(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
void put_str(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string get_str(std::istream& is) {
  std::string s(get_u64(is), '\0');
  is.read(s.data(), static_cast<std::streamsize>(s.size()));
  return s;
}
void put_real_grid(std::ostream& os, const RealGrid& g) {
  put_u64(os, static_cast<std::uint64_t>(g.nx()));
  put_u64(os, static_cast<std::uint64_t>(g.ny()));
  os.write(reinterpret_cast<const char*>(g.data().data()),
           static_cast<std::streamsize>(g.data().size() * sizeof(double)));
}
RealGrid get_real_grid(std::istream& is) {
  const auto nx = static_cast<index_t>(get_u64(is));
  const auto ny = static_cast<index_t>(get_u64(is));
  RealGrid g(nx, ny);
  is.read(reinterpret_cast<char*>(g.data().data()),
          static_cast<std::streamsize>(g.data().size() * sizeof(double)));
  return g;
}
void put_cplx_grid(std::ostream& os, const CplxGrid& g) {
  put_u64(os, static_cast<std::uint64_t>(g.nx()));
  put_u64(os, static_cast<std::uint64_t>(g.ny()));
  os.write(reinterpret_cast<const char*>(g.data().data()),
           static_cast<std::streamsize>(g.data().size() * sizeof(cplx)));
}
CplxGrid get_cplx_grid(std::istream& is) {
  const auto nx = static_cast<index_t>(get_u64(is));
  const auto ny = static_cast<index_t>(get_u64(is));
  CplxGrid g(nx, ny);
  is.read(reinterpret_cast<char*>(g.data().data()),
          static_cast<std::streamsize>(g.data().size() * sizeof(cplx)));
  return g;
}
}  // namespace

void write_sample(std::ostream& os, const SampleRecord& s) {
  put_str(os, s.device);
  put_str(os, s.excitation);
  put_str(os, s.strategy);
  put_u64(os, s.pattern_id);
  put_u64(os, static_cast<std::uint64_t>(s.fidelity));
  put_u64(os, static_cast<std::uint64_t>(s.pml_cells));
  put_f64(os, s.dl);
  put_f64(os, s.omega);
  put_real_grid(os, s.eps);
  put_cplx_grid(os, s.J);
  put_cplx_grid(os, s.Ez);
  put_cplx_grid(os, s.adj_J);
  put_cplx_grid(os, s.lambda_fwd);
  put_real_grid(os, s.grad_eps);
  put_real_grid(os, s.density);
  put_u64(os, static_cast<std::uint64_t>(s.design_box.i0));
  put_u64(os, static_cast<std::uint64_t>(s.design_box.j0));
  put_u64(os, static_cast<std::uint64_t>(s.design_box.ni));
  put_u64(os, static_cast<std::uint64_t>(s.design_box.nj));
  put_f64(os, s.fom);
  put_f64(os, s.input_norm);
  put_f64(os, s.adj_scale);
  put_u64(os, s.transmissions.size());
  for (double t : s.transmissions) put_f64(os, t);
}

SampleRecord read_sample(std::istream& is) {
  SampleRecord s;
  s.device = get_str(is);
  s.excitation = get_str(is);
  s.strategy = get_str(is);
  s.pattern_id = get_u64(is);
  s.fidelity = static_cast<int>(get_u64(is));
  s.pml_cells = static_cast<int>(get_u64(is));
  s.dl = get_f64(is);
  s.omega = get_f64(is);
  s.eps = get_real_grid(is);
  s.J = get_cplx_grid(is);
  s.Ez = get_cplx_grid(is);
  s.adj_J = get_cplx_grid(is);
  s.lambda_fwd = get_cplx_grid(is);
  s.grad_eps = get_real_grid(is);
  s.density = get_real_grid(is);
  s.design_box.i0 = static_cast<index_t>(get_u64(is));
  s.design_box.j0 = static_cast<index_t>(get_u64(is));
  s.design_box.ni = static_cast<index_t>(get_u64(is));
  s.design_box.nj = static_cast<index_t>(get_u64(is));
  s.fom = get_f64(is);
  s.input_norm = get_f64(is);
  s.adj_scale = get_f64(is);
  const std::uint64_t nt = get_u64(is);
  for (std::uint64_t t = 0; t < nt; ++t) s.transmissions.push_back(get_f64(is));
  require(is.good(), "read_sample: truncated file");
  return s;
}

void Dataset::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "Dataset::save: cannot open " + path);
  put_u64(os, kMagic);
  put_str(os, name);
  put_u64(os, samples.size());
  for (const auto& s : samples) write_sample(os, s);
  require(os.good(), "Dataset::save: write failed");
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "Dataset::load: cannot open " + path);
  require(get_u64(is) == kMagic, "Dataset::load: bad magic");
  Dataset d;
  d.name = get_str(is);
  const std::uint64_t count = get_u64(is);
  d.samples.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    d.samples.push_back(read_sample(is));
  }
  return d;
}

}  // namespace maps::data
