#include "core/data/generator.hpp"

#include "fdfd/adjoint.hpp"
#include "math/interpolate.hpp"
#include "math/parallel.hpp"
#include "runtime/datagen.hpp"
#include "solver/backend.hpp"

namespace maps::data {

using maps::math::CplxGrid;
using maps::math::RealGrid;

namespace {

/// Metadata + inputs common to every solve of one (density, excitation).
SampleRecord record_shell(const devices::DeviceProblem& device, const RealGrid& density,
                          const RealGrid& base_eps, const devices::Excitation& exc,
                          std::uint64_t pattern_id, const std::string& strategy) {
  SampleRecord s;
  s.device = device.name;
  s.excitation = exc.name;
  s.strategy = strategy;
  s.pattern_id = pattern_id;
  s.pml_cells = device.sim_options.pml.ncells;
  s.dl = device.spec.dl;
  s.omega = exc.omega;
  s.design_box = device.design_map.box;
  s.density = density;
  s.input_norm = exc.input_norm;
  s.eps = device.excitation_eps(base_eps, exc);
  s.J = exc.J;
  return s;
}

/// Labels derived from a solved forward field + adjoint pair.
void finish_record(SampleRecord& s, const devices::Excitation& exc,
                   const std::vector<cplx>& W, CplxGrid Ez,
                   fdfd::AdjointResult adj) {
  s.Ez = std::move(Ez);
  for (const auto& term : exc.terms) {
    s.transmissions.push_back(fdfd::term_transmission(term, s.Ez));
  }
  s.fom = adj.fom;
  s.grad_eps = std::move(adj.grad_eps);
  s.adj_J = std::move(adj.adj_current);
  // lambda_fwd = W^{-1} lambda: the adjoint field in forward-run convention
  // (what a forward-field surrogate should predict for the adjoint query).
  s.lambda_fwd = CplxGrid(s.Ez.nx(), s.Ez.ny());
  for (index_t n = 0; n < s.lambda_fwd.size(); ++n) {
    s.lambda_fwd[n] = adj.lambda[n] / W[static_cast<std::size_t>(n)];
  }
  // Canonicalize the adjoint pair's magnitude to the forward source's. The
  // raw adjoint source is orders of magnitude weaker than J, which would
  // poison per-sample-normalized losses (tiny targets -> huge NMSE weight).
  // Maxwell's equations are linear, so scaling source and field together is
  // exact; consumers renormalize their adjoint queries the same way.
  double j_max = 0.0, adj_max = 0.0;
  for (index_t n = 0; n < s.J.size(); ++n) {
    j_max = std::max(j_max, std::abs(s.J[n]));
    adj_max = std::max(adj_max, std::abs(s.adj_J[n]));
  }
  if (adj_max > 1e-300 && j_max > 0.0) {
    s.adj_scale = j_max / adj_max;
    for (index_t n = 0; n < s.adj_J.size(); ++n) {
      s.adj_J[n] *= s.adj_scale;
      s.lambda_fwd[n] *= s.adj_scale;
    }
  }
}

}  // namespace

SampleRecord simulate_sample(const devices::DeviceProblem& device,
                             const RealGrid& density, std::size_t excitation_index,
                             std::uint64_t pattern_id, const std::string& strategy) {
  maps::require(excitation_index < device.excitations.size(),
                "simulate_sample: excitation index out of range");
  const auto& exc = device.excitations[excitation_index];
  const RealGrid base_eps = param::embed_density(device.design_map, density);
  SampleRecord s = record_shell(device, density, base_eps, exc, pattern_id, strategy);

  fdfd::Simulation sim(device.spec, s.eps, exc.omega, device.sim_options);
  CplxGrid Ez = sim.solve(exc.J);
  auto adj = fdfd::compute_adjoint(sim, Ez, exc.terms);
  finish_record(s, exc, sim.backend().W(), std::move(Ez), std::move(adj));
  return s;
}

std::vector<SampleRecord> simulate_pattern(const devices::DeviceProblem& device,
                                           const RealGrid& density,
                                           std::uint64_t pattern_id,
                                           const std::string& strategy) {
  const RealGrid base_eps = param::embed_density(device.design_map, density);
  std::vector<SampleRecord> records(device.excitations.size());

  for (const auto& group : device.excitation_groups()) {
    // Patterns are unique per call, so the device cache would only thrash:
    // solve the group against a throwaway backend (use_cache = false).
    auto gs = device.solve_excitation_group(base_eps, group, /*with_adjoint=*/true,
                                            /*use_cache=*/false);
    const auto& W = gs.sim.backend().W();
    for (std::size_t k = 0; k < group.size(); ++k) {
      const auto& exc = device.excitations[group[k]];
      SampleRecord s =
          record_shell(device, density, base_eps, exc, pattern_id, strategy);
      finish_record(s, exc, W, std::move(gs.fields[k]), std::move(gs.adjoints[k]));
      records[group[k]] = std::move(s);
    }
  }
  return records;
}

PreparedPattern prepare_pattern(const devices::DeviceProblem& device,
                                const RealGrid& density, std::size_t position,
                                std::uint64_t pattern_id) {
  PreparedPattern pp;
  pp.position = position;
  pp.pattern_id = pattern_id;
  pp.density = density;
  pp.base_eps = param::embed_density(device.design_map, density);
  pp.groups = device.excitation_groups();
  pp.group_backends.reserve(pp.groups.size());
  for (const auto& group : pp.groups) {
    const auto& first = device.excitations[group.front()];
    const RealGrid eps = device.excitation_eps(pp.base_eps, first);
    // Direct backends take the split-complex band-direct path by default, so
    // one make_backend call covers every solver kind.
    std::shared_ptr<solver::SolverBackend> backend =
        solver::make_backend(device.spec, eps, first.omega, device.sim_options.pml,
                             device.sim_options.solver_config());
    backend->factorize();
    pp.group_backends.push_back(std::move(backend));
  }
  return pp;
}

std::vector<SampleRecord> solve_prepared(const devices::DeviceProblem& device,
                                         const PreparedPattern& prepared,
                                         const std::string& strategy) {
  maps::require(prepared.groups.size() == prepared.group_backends.size(),
                "solve_prepared: prepared pattern is inconsistent");
  std::vector<SampleRecord> records(device.excitations.size());

  for (std::size_t g = 0; g < prepared.groups.size(); ++g) {
    const auto& group = prepared.groups[g];
    auto& backend = *prepared.group_backends[g];
    const double omega = device.excitations[group.front()].omega;

    std::vector<std::vector<cplx>> rhs;
    rhs.reserve(group.size());
    for (const std::size_t e : group) {
      rhs.push_back(fdfd::rhs_from_current(device.excitations[e].J, omega));
    }
    auto xs = backend.solve_batch(rhs);
    std::vector<CplxGrid> fields;
    fields.reserve(xs.size());
    for (auto& x : xs) fields.emplace_back(device.spec.nx, device.spec.ny, std::move(x));

    std::vector<const CplxGrid*> ez_ptrs;
    std::vector<const std::vector<fdfd::FomTerm>*> term_ptrs;
    for (std::size_t k = 0; k < group.size(); ++k) {
      ez_ptrs.push_back(&fields[k]);
      term_ptrs.push_back(&device.excitations[group[k]].terms);
    }
    auto adjoints =
        fdfd::compute_adjoint_batch(backend, device.spec, omega, ez_ptrs, term_ptrs);

    const auto& W = backend.W();
    for (std::size_t k = 0; k < group.size(); ++k) {
      const auto& exc = device.excitations[group[k]];
      SampleRecord s = record_shell(device, prepared.density, prepared.base_eps, exc,
                                    prepared.pattern_id, strategy);
      finish_record(s, exc, W, std::move(fields[k]), std::move(adjoints[k]));
      records[group[k]] = std::move(s);
    }
  }
  return records;
}

Dataset generate_dataset(const devices::DeviceProblem& device,
                         const PatternSet& patterns) {
  maps::require(patterns.densities.size() == patterns.ids.size(),
                "generate_dataset: pattern/ids mismatch");
  runtime::DatagenPhase phase{&device, &patterns, 1};
  return runtime::generate_pipelined({phase}, device.name + ":" + patterns.strategy);
}

Dataset generate_dataset_reference(const devices::DeviceProblem& device,
                                   const PatternSet& patterns) {
  maps::require(patterns.densities.size() == patterns.ids.size(),
                "generate_dataset_reference: pattern/ids mismatch");
  Dataset ds;
  ds.name = device.name + ":" + patterns.strategy;
  const std::size_t n_exc = device.excitations.size();
  ds.samples.resize(patterns.densities.size() * n_exc);

  maps::math::parallel_for(0, patterns.densities.size(), [&](std::size_t p) {
    auto records = simulate_pattern(device, patterns.densities[p], patterns.ids[p],
                                    patterns.strategy);
    for (std::size_t e = 0; e < n_exc; ++e) {
      ds.samples[p * n_exc + e] = std::move(records[e]);
    }
  });
  return ds;
}

PatternSet upsample_patterns(const PatternSet& patterns,
                             const devices::DeviceProblem& device) {
  PatternSet out;
  out.strategy = patterns.strategy;
  out.ids = patterns.ids;
  for (const auto& rho : patterns.densities) {
    out.densities.push_back(maps::math::bilinear_resample(
        rho, device.design_map.box.ni, device.design_map.box.nj));
  }
  return out;
}

Dataset generate_multifidelity(const devices::DeviceProblem& device_lo,
                               const devices::DeviceProblem& device_hi,
                               const PatternSet& patterns) {
  // Upsample each design pattern onto the high-fidelity design grid.
  PatternSet hi_patterns = upsample_patterns(patterns, device_hi);
  const int factor = static_cast<int>(device_hi.spec.nx / device_lo.spec.nx);

  // Both fidelity levels ride one pipeline: the prep stage of the first
  // high-fidelity pattern overlaps the tail of the low-fidelity solves.
  const std::vector<runtime::DatagenPhase> phases = {
      {&device_lo, &patterns, 1}, {&device_hi, &hi_patterns, factor}};
  Dataset ds = runtime::generate_pipelined(
      phases, device_lo.name + ":" + patterns.strategy + ":multifidelity");
  return ds;
}

}  // namespace maps::data
