#include "core/data/generator.hpp"

#include <mutex>

#include "fdfd/adjoint.hpp"
#include "math/interpolate.hpp"
#include "math/parallel.hpp"

namespace maps::data {

using maps::math::CplxGrid;
using maps::math::RealGrid;

SampleRecord simulate_sample(const devices::DeviceProblem& device,
                             const RealGrid& density, std::size_t excitation_index,
                             std::uint64_t pattern_id, const std::string& strategy) {
  maps::require(excitation_index < device.excitations.size(),
                "simulate_sample: excitation index out of range");
  const auto& exc = device.excitations[excitation_index];

  SampleRecord s;
  s.device = device.name;
  s.excitation = exc.name;
  s.strategy = strategy;
  s.pattern_id = pattern_id;
  s.pml_cells = device.sim_options.pml.ncells;
  s.dl = device.spec.dl;
  s.omega = exc.omega;
  s.design_box = device.design_map.box;
  s.density = density;
  s.input_norm = exc.input_norm;

  const RealGrid base_eps = param::embed_density(device.design_map, density);
  s.eps = device.excitation_eps(base_eps, exc);
  s.J = exc.J;

  fdfd::Simulation sim(device.spec, s.eps, exc.omega, device.sim_options);
  s.Ez = sim.solve(exc.J);
  for (const auto& term : exc.terms) {
    s.transmissions.push_back(fdfd::term_transmission(term, s.Ez));
  }

  const auto adj = fdfd::compute_adjoint(sim, s.Ez, exc.terms);
  s.fom = adj.fom;
  s.grad_eps = adj.grad_eps;
  s.adj_J = adj.adj_current;
  // lambda_fwd = W^{-1} lambda: the adjoint field in forward-run convention
  // (what a forward-field surrogate should predict for the adjoint query).
  s.lambda_fwd = CplxGrid(s.Ez.nx(), s.Ez.ny());
  const auto& W = sim.op().W;
  for (index_t n = 0; n < s.lambda_fwd.size(); ++n) {
    s.lambda_fwd[n] = adj.lambda[n] / W[static_cast<std::size_t>(n)];
  }
  // Canonicalize the adjoint pair's magnitude to the forward source's. The
  // raw adjoint source is orders of magnitude weaker than J, which would
  // poison per-sample-normalized losses (tiny targets -> huge NMSE weight).
  // Maxwell's equations are linear, so scaling source and field together is
  // exact; consumers renormalize their adjoint queries the same way.
  double j_max = 0.0, adj_max = 0.0;
  for (index_t n = 0; n < s.J.size(); ++n) {
    j_max = std::max(j_max, std::abs(s.J[n]));
    adj_max = std::max(adj_max, std::abs(s.adj_J[n]));
  }
  if (adj_max > 1e-300 && j_max > 0.0) {
    s.adj_scale = j_max / adj_max;
    for (index_t n = 0; n < s.adj_J.size(); ++n) {
      s.adj_J[n] *= s.adj_scale;
      s.lambda_fwd[n] *= s.adj_scale;
    }
  }
  return s;
}

Dataset generate_dataset(const devices::DeviceProblem& device,
                         const PatternSet& patterns) {
  maps::require(patterns.densities.size() == patterns.ids.size(),
                "generate_dataset: pattern/ids mismatch");
  Dataset ds;
  ds.name = device.name + ":" + patterns.strategy;
  const std::size_t n_exc = device.excitations.size();
  ds.samples.resize(patterns.densities.size() * n_exc);

  maps::math::parallel_for(0, patterns.densities.size(), [&](std::size_t p) {
    for (std::size_t e = 0; e < n_exc; ++e) {
      ds.samples[p * n_exc + e] = simulate_sample(
          device, patterns.densities[p], e, patterns.ids[p], patterns.strategy);
    }
  });
  return ds;
}

Dataset generate_multifidelity(const devices::DeviceProblem& device_lo,
                               const devices::DeviceProblem& device_hi,
                               const PatternSet& patterns) {
  Dataset ds = generate_dataset(device_lo, patterns);
  for (auto& s : ds.samples) s.fidelity = 1;

  // Upsample each design pattern onto the high-fidelity design grid.
  PatternSet hi_patterns;
  hi_patterns.strategy = patterns.strategy;
  hi_patterns.ids = patterns.ids;
  for (const auto& rho : patterns.densities) {
    hi_patterns.densities.push_back(maps::math::bilinear_resample(
        rho, device_hi.design_map.box.ni, device_hi.design_map.box.nj));
  }
  Dataset hi = generate_dataset(device_hi, hi_patterns);
  const int factor = static_cast<int>(device_hi.spec.nx / device_lo.spec.nx);
  for (auto& s : hi.samples) s.fidelity = factor;

  ds.append(hi);
  ds.name = device_lo.name + ":" + patterns.strategy + ":multifidelity";
  return ds;
}

}  // namespace maps::data
