// Sampling strategies (Sec. III-A.1 / Fig. 5).
//
// Random: blurred-noise thresholded binary patterns — the conventional
// baseline, which lands almost entirely in the low-transmission regime.
// OptTraj: densities recorded along adjoint optimization trajectories — the
// structures an inverse-design-time surrogate actually gets queried on.
// PerturbOptTraj: trajectory snapshots plus random perturbations, balancing
// the transmission distribution (the paper's best strategy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "devices/builders.hpp"
#include "math/field2d.hpp"

namespace maps::data {

enum class SamplingStrategy { Random, OptTraj, PerturbOptTraj };

const char* strategy_name(SamplingStrategy s);

struct SamplerOptions {
  SamplingStrategy strategy = SamplingStrategy::Random;
  int num_patterns = 48;   // approximate target (trajectory strategies round)
  unsigned seed = 1;

  // Random strategy.
  double blur_min = 1.0, blur_max = 3.0;
  double threshold_min = 0.35, threshold_max = 0.65;

  // Trajectory strategies.
  int num_trajectories = 4;
  int traj_iterations = 36;
  int record_every = 4;
  double perturb_sigma = 0.2;
  int perturbs_per_snapshot = 1;
};

struct PatternSet {
  std::vector<maps::math::RealGrid> densities;  // design-grid rho_bar in [0,1]
  std::vector<std::uint64_t> ids;               // lineage ids (split unit)
  std::string strategy;
};

/// Produce design-region density patterns for a device under a strategy.
/// Trajectory strategies run real adjoint optimizations (parallel across
/// trajectories); ids group each trajectory's snapshots and perturbations.
PatternSet sample_patterns(const devices::DeviceProblem& device,
                           devices::DeviceKind kind, const SamplerOptions& options);

}  // namespace maps::data
