// Dataset generation driver: pattern -> FDFD forward + adjoint -> rich
// labels, parallel across patterns, with multi-fidelity pairing
// (Sec. III-A.3: the same physical pattern simulated at both resolutions).
#pragma once

#include "core/data/dataset.hpp"
#include "core/data/sampler.hpp"
#include "devices/builders.hpp"

namespace maps::data {

/// Simulate every (pattern, excitation) pair of a device. Labels include the
/// forward field, adjoint pair, adjoint gradient and transmissions.
Dataset generate_dataset(const devices::DeviceProblem& device,
                         const PatternSet& patterns);

/// Simulate one density through one excitation (exposed for tests and for
/// on-the-fly verification in the NN-in-the-loop case study).
SampleRecord simulate_sample(const devices::DeviceProblem& device,
                             const maps::math::RealGrid& density,
                             std::size_t excitation_index, std::uint64_t pattern_id,
                             const std::string& strategy);

/// Simulate one density through *every* excitation of the device (records in
/// excitation order). Excitations sharing an operator are pushed through one
/// batched multi-RHS forward solve and one batched transposed adjoint solve,
/// so a K-excitation device costs one factorization + 2K back-substitutions
/// instead of K factorizations.
std::vector<SampleRecord> simulate_pattern(const devices::DeviceProblem& device,
                                           const maps::math::RealGrid& density,
                                           std::uint64_t pattern_id,
                                           const std::string& strategy);

/// Multi-fidelity pairing: render each (coarse design-grid) pattern on both
/// the low- and high-fidelity device and simulate both. Samples share
/// pattern ids; `fidelity` distinguishes the levels.
Dataset generate_multifidelity(const devices::DeviceProblem& device_lo,
                               const devices::DeviceProblem& device_hi,
                               const PatternSet& patterns);

}  // namespace maps::data
