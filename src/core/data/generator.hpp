// Dataset generation driver: pattern -> FDFD forward + adjoint -> rich
// labels, with multi-fidelity pairing (Sec. III-A.3: the same physical
// pattern simulated at both resolutions).
//
// generate_dataset / generate_multifidelity ride the async pipeline in
// src/runtime/datagen.hpp (stage-parallel prep -> solve -> collect, with the
// split-complex prepared-operator fast path for direct solves). The seed
// per-pattern parallel_for implementation is preserved as
// generate_dataset_reference for equivalence tests and as the baseline of
// bench_datagen_throughput.
#pragma once

#include <memory>

#include "core/data/dataset.hpp"
#include "core/data/sampler.hpp"
#include "devices/builders.hpp"

namespace maps::data {

/// Simulate every (pattern, excitation) pair of a device. Labels include the
/// forward field, adjoint pair, adjoint gradient and transmissions.
Dataset generate_dataset(const devices::DeviceProblem& device,
                         const PatternSet& patterns);

/// The seed implementation (blocking parallel_for over simulate_pattern,
/// interleaved-complex direct solver): kept as the regression baseline the
/// pipelined path is benchmarked against. Labels agree with
/// generate_dataset to rounding (~1e-12 relative on fields).
Dataset generate_dataset_reference(const devices::DeviceProblem& device,
                                   const PatternSet& patterns);

/// ------------------------- pipeline stage units --------------------------
/// The runtime pipeline (src/runtime/datagen.cpp) splits a pattern's
/// simulation into two stages so factorization of pattern i+1 overlaps
/// back-substitution of pattern i.

/// Stage 1 output: the pattern rendered onto the device grid plus one
/// *factorized* solver backend per excitation group. Direct-solver devices
/// ride the split-complex band-direct kernel, which is the default
/// DirectBandedBackend path (solver/direct.hpp).
struct PreparedPattern {
  std::size_t position = 0;   // index into the PatternSet
  std::uint64_t pattern_id = 0;
  maps::math::RealGrid density;
  maps::math::RealGrid base_eps;
  std::vector<std::vector<std::size_t>> groups;  // excitation index groups
  std::vector<std::shared_ptr<solver::SolverBackend>> group_backends;
};

PreparedPattern prepare_pattern(const devices::DeviceProblem& device,
                                const maps::math::RealGrid& density,
                                std::size_t position, std::uint64_t pattern_id);

/// Stage 2: batched forward + adjoint solves against the prepared backends
/// and label extraction; records in excitation order. Equivalent to
/// simulate_pattern modulo solver rounding.
std::vector<SampleRecord> solve_prepared(const devices::DeviceProblem& device,
                                         const PreparedPattern& prepared,
                                         const std::string& strategy);

/// Simulate one density through one excitation (exposed for tests and for
/// on-the-fly verification in the NN-in-the-loop case study).
SampleRecord simulate_sample(const devices::DeviceProblem& device,
                             const maps::math::RealGrid& density,
                             std::size_t excitation_index, std::uint64_t pattern_id,
                             const std::string& strategy);

/// Simulate one density through *every* excitation of the device (records in
/// excitation order). Excitations sharing an operator are pushed through one
/// batched multi-RHS forward solve and one batched transposed adjoint solve,
/// so a K-excitation device costs one factorization + 2K back-substitutions
/// instead of K factorizations.
std::vector<SampleRecord> simulate_pattern(const devices::DeviceProblem& device,
                                           const maps::math::RealGrid& density,
                                           std::uint64_t pattern_id,
                                           const std::string& strategy);

/// Multi-fidelity pairing: render each (coarse design-grid) pattern on both
/// the low- and high-fidelity device and simulate both. Samples share
/// pattern ids; `fidelity` distinguishes the levels.
Dataset generate_multifidelity(const devices::DeviceProblem& device_lo,
                               const devices::DeviceProblem& device_hi,
                               const PatternSet& patterns);

/// Bilinearly resample a pattern set onto `device`'s design grid (the
/// high-fidelity phase of a multi-fidelity run; ids and strategy carry over).
PatternSet upsample_patterns(const PatternSet& patterns,
                             const devices::DeviceProblem& device);

}  // namespace maps::data
