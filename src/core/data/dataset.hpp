// MAPS-Data sample schema and dataset container (Sec. III-A).
//
// Every sample carries the *rich labels* the paper calls for: the solved
// field, transmissions, the adjoint gradient under the device objective, and
// the adjoint source/field pair in forward-simulation convention (so field
// predictors can be trained to answer adjoint queries). The Maxwell operator
// itself is reproducible from (eps, omega, pml_cells) via fdfd::assemble and
// is therefore not stored.
//
// pattern_id groups samples derived from the same design lineage (an
// optimization trajectory and its perturbations share an id); MAPS-Train
// splits at pattern granularity to prevent test-set leakage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "grid/yee_grid.hpp"
#include "math/field2d.hpp"

namespace maps::data {

struct SampleRecord {
  std::string device;
  std::string excitation;
  std::string strategy;
  std::uint64_t pattern_id = 0;
  int fidelity = 1;     // resolution multiplier (1 = 64x64 base)
  int pml_cells = 0;
  double dl = 0.0;
  double omega = 0.0;

  maps::math::RealGrid eps;          // permittivity the solver saw
  maps::math::CplxGrid J;            // forward source
  maps::math::CplxGrid Ez;           // forward field
  maps::math::CplxGrid adj_J;        // adjoint source (forward convention)
  maps::math::CplxGrid lambda_fwd;   // adjoint field (forward convention)
  maps::math::RealGrid grad_eps;     // dF/deps under the device objective
  maps::math::RealGrid density;      // design-region density rho_bar

  grid::BoxRegion design_box;
  double fom = 0.0;
  double input_norm = 1.0;
  /// Canonicalization factor of the stored adjoint pair: (adj_J, lambda_fwd)
  /// are the raw adjoint quantities multiplied by adj_scale so their
  /// magnitude matches the forward source (loss-friendly). Divide by it to
  /// recover the physical pair; grad_eps corresponds to the *raw* pair.
  double adj_scale = 1.0;
  std::vector<double> transmissions;

  index_t nx() const { return eps.nx(); }
  index_t ny() const { return eps.ny(); }
};

class Dataset {
 public:
  std::string name;
  std::vector<SampleRecord> samples;

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }

  /// Distinct pattern ids, in first-appearance order.
  std::vector<std::uint64_t> pattern_ids() const;

  /// Transmission of each sample's primary (first) objective term.
  std::vector<double> primary_transmissions() const;

  void save(const std::string& path) const;
  static Dataset load(const std::string& path);

  /// Concatenate (e.g. multi-fidelity pairs or strategy mixes).
  void append(const Dataset& other);
};

/// Streaming sample IO: the exact per-sample byte layout of Dataset::save.
/// The runtime shard writer appends samples one at a time with these (the
/// shard manifest, not the file, carries the count), which is what makes a
/// merged shard set byte-identical to a single-process save.
void write_sample(std::ostream& os, const SampleRecord& s);
SampleRecord read_sample(std::istream& is);

}  // namespace maps::data
