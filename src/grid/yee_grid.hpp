// Uniform 2D Yee grid specification.
//
// Ez unknowns sit at cell centers (i + 0.5, j + 0.5)*dl physically; the FDFD
// flattening convention n = i + nx*j follows math::Grid2D. All MAPS field
// maps, permittivity maps and design densities share this layout.
#pragma once

#include "math/types.hpp"

namespace maps::grid {

struct GridSpec {
  index_t nx = 0;     // cells along x
  index_t ny = 0;     // cells along y
  double dl = 0.05;   // cell size [um], uniform in x and y

  double width() const { return static_cast<double>(nx) * dl; }
  double height() const { return static_cast<double>(ny) * dl; }
  index_t cells() const { return nx * ny; }

  /// Physical coordinate of cell center (i, j).
  double x_of(index_t i) const { return (static_cast<double>(i) + 0.5) * dl; }
  double y_of(index_t j) const { return (static_cast<double>(j) + 0.5) * dl; }

  /// Nearest cell index of physical coordinate (clamped into range).
  index_t i_of(double x) const {
    const auto i = static_cast<index_t>(x / dl);
    return i < 0 ? 0 : (i >= nx ? nx - 1 : i);
  }
  index_t j_of(double y) const {
    const auto j = static_cast<index_t>(y / dl);
    return j < 0 ? 0 : (j >= ny ? ny - 1 : j);
  }

  /// Same physical domain at a scaled resolution (multi-fidelity pairing):
  /// factor 2 doubles nx/ny and halves dl.
  GridSpec refined(int factor) const {
    maps::require(factor >= 1, "GridSpec::refined: factor must be >= 1");
    return GridSpec{nx * factor, ny * factor, dl / static_cast<double>(factor)};
  }
};

/// Axis-aligned index-space box (design regions, monitors, extraction).
struct BoxRegion {
  index_t i0 = 0, j0 = 0;  // lower corner (inclusive)
  index_t ni = 0, nj = 0;  // extent in cells

  index_t cells() const { return ni * nj; }
  bool contains(index_t i, index_t j) const {
    return i >= i0 && i < i0 + ni && j >= j0 && j < j0 + nj;
  }
  bool fits(const GridSpec& g) const {
    return i0 >= 0 && j0 >= 0 && ni >= 0 && nj >= 0 && i0 + ni <= g.nx &&
           j0 + nj <= g.ny;
  }
  /// Same physical box when the grid is refined by `factor`.
  BoxRegion refined(int factor) const {
    return BoxRegion{i0 * factor, j0 * factor, ni * factor, nj * factor};
  }
};

}  // namespace maps::grid
