#include "grid/geometry.hpp"

namespace maps::grid {

bool Polygon::contains(double x, double y) const {
  // Even-odd rule ray cast along +x.
  bool inside = false;
  const std::size_t n = pts_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const auto [xi, yi] = pts_[i];
    const auto [xj, yj] = pts_[j];
    const bool crosses = (yi > y) != (yj > y);
    if (crosses) {
      const double x_int = xj + (y - yj) / (yi - yj) * (xi - xj);
      if (x < x_int) inside = !inside;
    }
  }
  return inside;
}

double coverage(const GridSpec& g, const Shape& shape, index_t i, index_t j, int ss) {
  maps::require(ss >= 1, "coverage: supersampling must be >= 1");
  int hit = 0;
  const double x0 = static_cast<double>(i) * g.dl;
  const double y0 = static_cast<double>(j) * g.dl;
  const double step = g.dl / static_cast<double>(ss);
  for (int a = 0; a < ss; ++a) {
    for (int b = 0; b < ss; ++b) {
      const double x = x0 + (static_cast<double>(a) + 0.5) * step;
      const double y = y0 + (static_cast<double>(b) + 0.5) * step;
      if (shape.contains(x, y)) ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(ss * ss);
}

void paint(maps::math::RealGrid& eps_map, const GridSpec& g, const Shape& shape,
           double eps, int ss) {
  maps::require(eps_map.nx() == g.nx && eps_map.ny() == g.ny,
                "paint: grid/map mismatch");
  for (index_t j = 0; j < g.ny; ++j) {
    for (index_t i = 0; i < g.nx; ++i) {
      const double frac = coverage(g, shape, i, j, ss);
      if (frac > 0.0) {
        eps_map(i, j) = (1.0 - frac) * eps_map(i, j) + frac * eps;
      }
    }
  }
}

}  // namespace maps::grid
