// Material library for the MAPS device set.
//
// Refractive indices at the 1.55 um telecom band; the thermo-optic
// coefficient drives the TOS (thermo-optic switch) active device.
#pragma once

namespace maps::grid {

struct Material {
  double n = 1.0;        // refractive index
  double dn_dT = 0.0;    // thermo-optic coefficient [1/K]
  double eps() const { return n * n; }
};

/// Silicon (c-Si) at 1.55 um.
inline constexpr Material kSilicon{3.48, 1.8e-4};
/// Silica cladding.
inline constexpr Material kSilica{1.44, 1.0e-5};
/// Air / vacuum.
inline constexpr Material kAir{1.0, 0.0};

/// Permittivity of silicon heated by dT kelvin (linearized thermo-optic).
inline double silicon_eps_at(double dT) {
  const double n = kSilicon.n + kSilicon.dn_dT * dT;
  return n * n;
}

}  // namespace maps::grid
