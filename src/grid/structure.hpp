// Structure: a device's static geometry on a Yee grid.
//
// Holds the background permittivity map built from painted shapes plus the
// (mutable) design-region overlay written by the inverse-design pipeline.
// Keeping geometry resolution-independent (shapes in physical um) lets one
// Structure render at any fidelity (GridSpec::refined), which MAPS-Data uses
// to emit paired multi-fidelity samples.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "grid/geometry.hpp"
#include "grid/materials.hpp"
#include "grid/yee_grid.hpp"

namespace maps::grid {

class Structure {
 public:
  Structure(GridSpec spec, double background_eps)
      : spec_(spec), background_eps_(background_eps) {}

  const GridSpec& spec() const { return spec_; }
  double background_eps() const { return background_eps_; }

  /// Paint a shape (recorded; rendering happens on demand).
  void add(const Shape& shape, double eps) {
    shapes_.push_back({shape.clone(), eps});
  }

  /// Axis-aligned waveguide strips (the bread and butter of the device set).
  void add_waveguide_x(double y_center, double width, double x0, double x1,
                       double eps = kSilicon.eps()) {
    add(Rect(x0, y_center - width / 2, x1, y_center + width / 2), eps);
  }
  void add_waveguide_y(double x_center, double width, double y0, double y1,
                       double eps = kSilicon.eps()) {
    add(Rect(x_center - width / 2, y0, x_center + width / 2, y1), eps);
  }

  /// Render the permittivity map at the Structure's own resolution.
  maps::math::RealGrid render() const { return render(spec_); }

  /// Render at an arbitrary resolution of the same physical domain.
  maps::math::RealGrid render(const GridSpec& at) const {
    maps::require(std::abs(at.width() - spec_.width()) < 1e-9 &&
                      std::abs(at.height() - spec_.height()) < 1e-9,
                  "Structure::render: physical domain mismatch");
    maps::math::RealGrid eps(at.nx, at.ny, background_eps_);
    for (const auto& [shape, value] : shapes_) {
      paint(eps, at, *shape, value);
    }
    return eps;
  }

  std::size_t shape_count() const { return shapes_.size(); }

 private:
  struct Painted {
    std::unique_ptr<Shape> shape;
    double eps;
  };
  GridSpec spec_;
  double background_eps_;
  std::vector<Painted> shapes_;
};

}  // namespace maps::grid
