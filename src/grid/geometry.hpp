// Geometric primitives and subpixel-averaged rasterization.
//
// Shapes are painted onto a permittivity map in order; each cell receives a
// coverage-weighted blend between its current value and the shape's value
// (4x4 supersampling), which is the standard "subpixel smoothing" that keeps
// device FoMs differentiable w.r.t. geometry at the half-cell level.
#pragma once

#include <memory>
#include <vector>

#include "grid/yee_grid.hpp"
#include "math/field2d.hpp"

namespace maps::grid {

class Shape {
 public:
  virtual ~Shape() = default;
  /// True if physical point (x, y) in um lies inside the shape.
  virtual bool contains(double x, double y) const = 0;
  virtual std::unique_ptr<Shape> clone() const = 0;
};

class Rect final : public Shape {
 public:
  Rect(double xmin, double ymin, double xmax, double ymax)
      : xmin_(xmin), ymin_(ymin), xmax_(xmax), ymax_(ymax) {
    maps::require(xmax >= xmin && ymax >= ymin, "Rect: inverted bounds");
  }
  bool contains(double x, double y) const override {
    return x >= xmin_ && x <= xmax_ && y >= ymin_ && y <= ymax_;
  }
  std::unique_ptr<Shape> clone() const override { return std::make_unique<Rect>(*this); }
  double xmin() const { return xmin_; }
  double ymin() const { return ymin_; }
  double xmax() const { return xmax_; }
  double ymax() const { return ymax_; }

 private:
  double xmin_, ymin_, xmax_, ymax_;
};

class Circle final : public Shape {
 public:
  Circle(double cx, double cy, double r) : cx_(cx), cy_(cy), r_(r) {
    maps::require(r >= 0.0, "Circle: negative radius");
  }
  bool contains(double x, double y) const override {
    const double dx = x - cx_, dy = y - cy_;
    return dx * dx + dy * dy <= r_ * r_;
  }
  std::unique_ptr<Shape> clone() const override {
    return std::make_unique<Circle>(*this);
  }

 private:
  double cx_, cy_, r_;
};

/// Simple polygon (possibly non-convex); even-odd rule point test.
class Polygon final : public Shape {
 public:
  explicit Polygon(std::vector<std::pair<double, double>> pts) : pts_(std::move(pts)) {
    maps::require(pts_.size() >= 3, "Polygon: needs at least 3 vertices");
  }
  bool contains(double x, double y) const override;
  std::unique_ptr<Shape> clone() const override {
    return std::make_unique<Polygon>(*this);
  }

 private:
  std::vector<std::pair<double, double>> pts_;
};

/// Paint `shape` with permittivity value `eps` onto `eps_map` (subpixel
/// coverage blending, `ss` x `ss` supersampling).
void paint(maps::math::RealGrid& eps_map, const GridSpec& g, const Shape& shape,
           double eps, int ss = 4);

/// Coverage fraction of a cell (diagnostic / tests).
double coverage(const GridSpec& g, const Shape& shape, index_t i, index_t j, int ss = 4);

}  // namespace maps::grid
