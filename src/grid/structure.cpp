#include "grid/structure.hpp"

// Header-only today; translation unit anchors the library target.
namespace maps::grid {}
