#include "analysis/pca.hpp"

#include <algorithm>
#include <cmath>

namespace maps::analysis {

namespace {

// Jacobi eigendecomposition of a dense symmetric matrix (n is small: the
// number of samples, a few hundred at most).
void jacobi_eigh(std::vector<std::vector<double>>& a, std::vector<double>& eigvals,
                 std::vector<std::vector<double>>& eigvecs) {
  const std::size_t n = a.size();
  eigvecs.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) eigvecs[i][i] = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-22) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-300) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = eigvecs[k][p], vkq = eigvecs[k][q];
          eigvecs[k][p] = c * vkp - s * vkq;
          eigvecs[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigvals.resize(n);
  for (std::size_t i = 0; i < n; ++i) eigvals[i] = a[i][i];
}

}  // namespace

PcaResult pca(const std::vector<std::vector<double>>& rows, int k) {
  maps::require(!rows.empty(), "pca: no samples");
  const std::size_t n = rows.size();
  const std::size_t d = rows[0].size();
  for (const auto& r : rows) maps::require(r.size() == d, "pca: ragged rows");

  PcaResult res;
  res.mean.assign(d, 0.0);
  for (const auto& r : rows) {
    for (std::size_t j = 0; j < d; ++j) res.mean[j] += r[j];
  }
  for (auto& m : res.mean) m /= static_cast<double>(n);

  // Centered Gram matrix G = X X^T (n x n).
  std::vector<std::vector<double>> centered(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) centered[i][j] = rows[i][j] - res.mean[j];
  }
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < d; ++t) s += centered[i][t] * centered[j][t];
      gram[i][j] = gram[j][i] = s;
    }
  }

  std::vector<double> eigvals;
  std::vector<std::vector<double>> eigvecs;
  jacobi_eigh(gram, eigvals, eigvecs);

  // Sort descending.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return eigvals[a] > eigvals[b]; });

  const int kk = std::min<int>(k, static_cast<int>(std::min(n > 0 ? n - 1 : 0, d)));
  res.projected.assign(n, std::vector<double>(static_cast<std::size_t>(kk), 0.0));
  for (int c = 0; c < kk; ++c) {
    const std::size_t idx = order[static_cast<std::size_t>(c)];
    const double lam = std::max(eigvals[idx], 0.0);
    res.explained_variance.push_back(lam / static_cast<double>(n));
    // Projection of sample i onto component c is sqrt(lam) * v_i.
    const double scale = std::sqrt(lam);
    for (std::size_t i = 0; i < n; ++i) {
      res.projected[i][static_cast<std::size_t>(c)] = scale * eigvecs[i][idx];
    }
  }
  return res;
}

}  // namespace maps::analysis
