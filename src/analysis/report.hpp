// CSV writers and small table formatting used by the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

#include "math/types.hpp"

namespace maps::analysis {

/// Write rows as CSV with a header line. Throws on IO failure.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

/// Fixed-width text table (printed by the table benches).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

  static std::string fmt(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maps::analysis
