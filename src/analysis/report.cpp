#include "analysis/report.hpp"

#include <cstdio>
#include <fstream>

namespace maps::analysis {

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream os(path);
  maps::require(os.good(), "write_csv: cannot open " + path);
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << header[c] << (c + 1 < header.size() ? "," : "\n");
  }
  for (const auto& row : rows) {
    maps::require(row.size() == header.size(), "write_csv: ragged row");
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  maps::require(os.good(), "write_csv: write failed");
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  maps::require(cells.size() == header_.size(), "TextTable: column count mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < width.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + emit_row(header_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

}  // namespace maps::analysis
