// Principal component analysis via the Gram trick: for n samples of
// dimension d with n << d (flattened device patterns), eigendecompose the
// n x n Gram matrix instead of the d x d covariance. Used to pre-reduce
// patterns before t-SNE (the standard pipeline for Fig. 5b).
#pragma once

#include <vector>

#include "math/types.hpp"

namespace maps::analysis {

struct PcaResult {
  std::vector<std::vector<double>> projected;  // n rows x k components
  std::vector<double> explained_variance;      // k eigenvalues (descending)
  std::vector<double> mean;                    // d (for reprojection)
};

/// rows: n samples x d features. Returns min(k, n-1, d) components.
PcaResult pca(const std::vector<std::vector<double>>& rows, int k);

}  // namespace maps::analysis
