// Exact t-SNE (van der Maaten & Hinton 2008) for Fig. 5b's pattern
// embedding. O(n^2) per iteration — intended for a few hundred patterns,
// after PCA pre-reduction.
#pragma once

#include <vector>

#include "math/types.hpp"

namespace maps::analysis {

struct TsneOptions {
  int output_dims = 2;
  double perplexity = 20.0;
  int iterations = 400;
  double learning_rate = 0.0;  // 0 = auto: max(1, n / (4 * early_exaggeration))
  double early_exaggeration = 4.0;
  int exaggeration_iters = 80;
  unsigned seed = 3;
};

/// rows: n x d input points. Returns n x output_dims embedding.
std::vector<std::vector<double>> tsne(const std::vector<std::vector<double>>& rows,
                                      const TsneOptions& options = {});

/// Mean silhouette-like separation of labeled groups in an embedding:
/// (mean inter-group distance - mean intra-group distance) / inter. Used to
/// quantify the low/high-performance cluster structure the paper shows
/// visually.
double cluster_separation(const std::vector<std::vector<double>>& embedding,
                          const std::vector<int>& labels);

}  // namespace maps::analysis
