// Fixed-bin histograms (Fig. 5a: transmission-ratio distributions).
#pragma once

#include <string>
#include <vector>

#include "math/types.hpp"

namespace maps::analysis {

struct Histogram {
  double lo = 0.0, hi = 1.0;
  std::vector<index_t> counts;
  index_t total = 0;
  index_t below = 0, above = 0;  // out-of-range tallies

  double bin_width() const {
    return (hi - lo) / static_cast<double>(counts.size());
  }
  double fraction(std::size_t bin) const {
    return total > 0 ? static_cast<double>(counts[bin]) / static_cast<double>(total)
                     : 0.0;
  }
};

Histogram make_histogram(const std::vector<double>& values, double lo, double hi,
                         int bins);

/// Multi-line ASCII rendering (bench/report output).
std::string ascii_histogram(const Histogram& h, const std::string& title,
                            int max_bar = 48);

}  // namespace maps::analysis
