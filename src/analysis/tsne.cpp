#include "analysis/tsne.hpp"

#include <algorithm>
#include <cmath>

#include "math/rng.hpp"

namespace maps::analysis {

namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t k = 0; k < a.size(); ++k) s += (a[k] - b[k]) * (a[k] - b[k]);
  return s;
}

// Binary-search the Gaussian bandwidth of row i to hit the target perplexity.
void row_affinities(const std::vector<std::vector<double>>& d2, std::size_t i,
                    double perplexity, std::vector<double>& p_row) {
  const std::size_t n = d2.size();
  double beta_lo = 1e-20, beta_hi = 1e20, beta = 1.0;
  const double log_perp = std::log(perplexity);
  for (int it = 0; it < 64; ++it) {
    double sum = 0.0, sum_dp = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      p_row[j] = std::exp(-beta * d2[i][j]);
      sum += p_row[j];
      sum_dp += beta * d2[i][j] * p_row[j];
    }
    if (sum <= 1e-300) {
      beta_hi = beta;
      beta = 0.5 * (beta_lo + beta_hi);
      continue;
    }
    const double entropy = std::log(sum) + sum_dp / sum;
    if (std::abs(entropy - log_perp) < 1e-5) break;
    if (entropy > log_perp) {
      beta_lo = beta;
      beta = (beta_hi > 1e19) ? beta * 2.0 : 0.5 * (beta_lo + beta_hi);
    } else {
      beta_hi = beta;
      beta = (beta_lo < 1e-19) ? beta / 2.0 : 0.5 * (beta_lo + beta_hi);
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) sum += p_row[j];
  if (sum > 0) {
    for (auto& v : p_row) v /= sum;
  }
}

}  // namespace

std::vector<std::vector<double>> tsne(const std::vector<std::vector<double>>& rows,
                                      const TsneOptions& opt) {
  maps::require(rows.size() >= 4, "tsne: need at least 4 points");
  const std::size_t n = rows.size();
  const double perplexity = std::min(opt.perplexity, static_cast<double>(n - 1) / 3.0);

  // Pairwise squared distances.
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d2[i][j] = d2[j][i] = sq_dist(rows[i], rows[j]);
    }
  }

  // Symmetrized affinities P.
  std::vector<std::vector<double>> P(n, std::vector<double>(n, 0.0));
  {
    std::vector<double> row(n);
    for (std::size_t i = 0; i < n; ++i) {
      row_affinities(d2, i, perplexity, row);
      for (std::size_t j = 0; j < n; ++j) P[i][j] = row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = std::max((P[i][j] + P[j][i]) / (2.0 * static_cast<double>(n)),
                                1e-12);
      P[i][j] = P[j][i] = v;
    }
    P[i][i] = 0.0;
  }

  // Init embedding.
  maps::math::Rng rng(opt.seed);
  const auto dims = static_cast<std::size_t>(opt.output_dims);
  std::vector<std::vector<double>> Y(n, std::vector<double>(dims));
  std::vector<std::vector<double>> vel(n, std::vector<double>(dims, 0.0));
  std::vector<std::vector<double>> gains(n, std::vector<double>(dims, 1.0));
  for (auto& y : Y) {
    for (auto& v : y) v = rng.normal(0.0, 1e-4);
  }

  // Auto learning rate (sklearn convention); unbounded adaptive gains at
  // large rates make the embedding diverge on concentrated affinities.
  const double lr = opt.learning_rate > 0.0
                        ? opt.learning_rate
                        : std::max(1.0, static_cast<double>(n) /
                                            (4.0 * opt.early_exaggeration));

  std::vector<std::vector<double>> Q(n, std::vector<double>(n, 0.0));
  for (int it = 0; it < opt.iterations; ++it) {
    const double exag = (it < opt.exaggeration_iters) ? opt.early_exaggeration : 1.0;
    const double momentum = (it < 100) ? 0.5 : 0.8;

    // Student-t affinities Q.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double q = 1.0 / (1.0 + sq_dist(Y[i], Y[j]));
        Q[i][j] = Q[j][i] = q;
        q_sum += 2.0 * q;
      }
    }
    q_sum = std::max(q_sum, 1e-300);

    // Gradient + momentum step with adaptive gains.
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> grad(dims, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double mult = (exag * P[i][j] - Q[i][j] / q_sum) * Q[i][j];
        for (std::size_t k = 0; k < dims; ++k) {
          grad[k] += 4.0 * mult * (Y[i][k] - Y[j][k]);
        }
      }
      for (std::size_t k = 0; k < dims; ++k) {
        gains[i][k] = (std::signbit(grad[k]) != std::signbit(vel[i][k]))
                          ? std::min(4.0, gains[i][k] + 0.2)
                          : std::max(0.01, gains[i][k] * 0.8);
        vel[i][k] = momentum * vel[i][k] - lr * gains[i][k] * grad[k];
        Y[i][k] += vel[i][k];
      }
    }

    // Re-center.
    std::vector<double> mean(dims, 0.0);
    for (const auto& y : Y) {
      for (std::size_t k = 0; k < dims; ++k) mean[k] += y[k];
    }
    for (auto& m : mean) m /= static_cast<double>(n);
    for (auto& y : Y) {
      for (std::size_t k = 0; k < dims; ++k) y[k] -= mean[k];
    }
  }
  return Y;
}

double cluster_separation(const std::vector<std::vector<double>>& embedding,
                          const std::vector<int>& labels) {
  maps::require(embedding.size() == labels.size(), "cluster_separation: size mismatch");
  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < embedding.size(); ++i) {
    for (std::size_t j = i + 1; j < embedding.size(); ++j) {
      const double dist = std::sqrt(sq_dist(embedding[i], embedding[j]));
      if (labels[i] == labels[j]) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  if (n_intra == 0 || n_inter == 0) return 0.0;
  intra /= static_cast<double>(n_intra);
  inter /= static_cast<double>(n_inter);
  return inter > 0.0 ? (inter - intra) / inter : 0.0;
}

}  // namespace maps::analysis
