#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace maps::analysis {

Histogram make_histogram(const std::vector<double>& values, double lo, double hi,
                         int bins) {
  maps::require(bins > 0 && hi > lo, "make_histogram: bad bins/range");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(static_cast<std::size_t>(bins), 0);
  for (double v : values) {
    if (v < lo) {
      ++h.below;
    } else if (v >= hi) {
      if (v == hi) {
        ++h.counts.back();
        ++h.total;
      } else {
        ++h.above;
      }
    } else {
      const auto bin = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                                static_cast<double>(bins));
      ++h.counts[std::min(bin, h.counts.size() - 1)];
      ++h.total;
    }
  }
  return h;
}

std::string ascii_histogram(const Histogram& h, const std::string& title,
                            int max_bar) {
  std::string out = title + "\n";
  index_t peak = 1;
  for (index_t c : h.counts) peak = std::max(peak, c);
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const double b_lo = h.lo + static_cast<double>(b) * h.bin_width();
    const double b_hi = b_lo + h.bin_width();
    const int len = static_cast<int>(std::lround(
        static_cast<double>(h.counts[b]) / static_cast<double>(peak) * max_bar));
    char line[64];
    std::snprintf(line, sizeof(line), "  [%4.2f,%4.2f) %5lld |",
                  b_lo, b_hi, static_cast<long long>(h.counts[b]));
    out += line;
    out.append(static_cast<std::size_t>(len), '#');
    out += '\n';
  }
  return out;
}

}  // namespace maps::analysis
