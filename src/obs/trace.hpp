// Request tracing: a trace context created at ingress (HTTP/TCP/stdio),
// carried by shared_ptr through the serving pipeline, and recorded as
// named per-stage spans on the steady clock.
//
// A Trace is cheap and self-contained: an id (the client's X-Request-Id
// when supplied, else a generated `r-<hex>-<n>`), a creation timestamp and
// a bounded span list (kMaxSpans, overflow counted in dropped()). Spans
// are half-open [start_ms, end_ms] on runtime::now_steady_ms().
//
// Two recording styles:
//   * plumbed  — the serve layer threads `obs::TracePtr` through
//     ServeRequest / BatchJob / coalescing waiters and calls add_span
//     (or ScopedSpan) at stage boundaries;
//   * ambient  — deep code with no trace parameter (DirectBandedBackend
//     factorize/solve/refine) records against the thread-local
//     current_trace(), installed by TraceScope on the worker thread that
//     runs the solver tier. Same pattern as runtime/deadline.hpp.
//
// Coalesced requests: the leader's trace accumulates the real work spans;
// at fan-out each attached waiter's trace `adopt()`s the leader's spans so
// every client's slow-request dump names the solver work it actually
// waited on.
//
// Disabled-path cost: traces are only allocated at ingress when metrics
// are enabled or a slow-request threshold is armed; every recording site
// first checks a null pointer (plumbed) or a thread-local load (ambient).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maps::obs {

class Histogram;

struct Span {
  std::string name;
  double start_ms = 0.0;  // steady clock, runtime::now_steady_ms()
  double end_ms = 0.0;
};

class Trace {
 public:
  static constexpr std::size_t kMaxSpans = 128;

  /// `id` empty => generate one. Stamps created_ms from the steady clock.
  explicit Trace(std::string id = {});

  const std::string& id() const { return id_; }
  double created_ms() const { return created_ms_; }

  void add_span(std::string_view name, double start_ms, double end_ms);

  /// Copy every span of `other` into this trace (coalescing fan-out:
  /// attacher adopts the leader's work). Self-adopt is a no-op.
  void adopt(const Trace& other);

  std::vector<Span> spans() const;
  std::uint64_t dropped() const;

  /// One-shot latch for the slow-request dump: first caller gets true.
  bool claim_dump();

 private:
  std::string id_;
  double created_ms_ = 0.0;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  bool dumped_ = false;
};

using TracePtr = std::shared_ptr<Trace>;

/// Process-unique request id: `r-<boot hex>-<counter>`. Monotone within a
/// process, collision-resistant across processes (seeded from the steady
/// clock at first call + this process's address-space layout).
std::string next_request_id();

/// Ambient trace for the calling thread (null when none installed).
Trace* current_trace();

/// Install `trace` (may be null) as the calling thread's ambient trace for
/// the scope; restores the previous one on destruction. Nests.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* previous_;
};

/// RAII span: reads the clock on construction only when there is somewhere
/// to record (a live trace, or a histogram while metrics are enabled);
/// otherwise both ends are no-ops. `trace` and `hist` may each be null.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Trace* trace, Histogram* hist = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Trace* trace_;
  Histogram* hist_;
  double start_ms_ = 0.0;
  bool active_ = false;
};

/// The slow-request NDJSON line: one object with the trace id, total
/// latency, outcome and the whole span tree (names + relative offsets).
/// Rendered with the io JSON writer; callers write it to the log sink.
std::string render_span_tree(const Trace& trace, double total_ms,
                             std::string_view outcome);

}  // namespace maps::obs
