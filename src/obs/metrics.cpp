#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace maps::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Per-thread shard slot, round-robin assigned on first use so threads
/// spread across banks without hashing a thread id per record().
unsigned thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards;
  return slot;
}

}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) { g_metrics_enabled.store(on, std::memory_order_relaxed); }

double Histogram::bucket_bound(int i) {
  return 0.001 * std::exp2(static_cast<double>(i) * 0.5);
}

void Histogram::record(double ms) {
  if (ms < 0.0) ms = 0.0;
  // Index from the closed form, then nudge so boundary values land
  // deterministically in the first bucket whose bound covers them (fp
  // log2 can be off by one ulp at an exact bound).
  int idx = 0;
  if (ms > 0.001) {
    idx = static_cast<int>(std::ceil(2.0 * std::log2(ms / 0.001)));
    idx = std::clamp(idx, 0, kBuckets);
    while (idx > 0 && ms <= bucket_bound(idx - 1)) --idx;
    while (idx < kBuckets && ms > bucket_bound(idx)) ++idx;
  }
  Shard& s = shards_[thread_shard()];
  s.counts[idx].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(ms, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.counts.assign(kBuckets + 1, 0);
  for (const Shard& s : shards_) {
    for (int i = 0; i <= kBuckets; ++i) {
      const std::uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      snap.counts[i] += c;
      snap.count += c;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int i = 0; i < static_cast<int>(counts.size()); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      const double lo = (i == 0) ? 0.0 : Histogram::bucket_bound(i - 1);
      // Overflow bucket has no upper bound; report its lower edge.
      if (i >= Histogram::kBuckets) return lo;
      const double hi = Histogram::bucket_bound(i);
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return Histogram::bucket_bound(Histogram::kBuckets - 1);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map keeps visitation name-sorted; unique_ptr keeps addresses
  // stable across rehash-free inserts so call sites may cache references.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl* instance = new Impl();  // leaked: outlives static dtors
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void Registry::visit_counters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& [name, c] : im.counters) fn(name, *c);
}

void Registry::visit_gauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& [name, g] : im.gauges) fn(name, *g);
}

void Registry::visit_histograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& [name, h] : im.histograms) fn(name, *h);
}

void Registry::reset_for_test() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.counters.clear();
  im.gauges.clear();
  im.histograms.clear();
}

std::string prometheus_name(std::string_view name) {
  std::string out = "maps_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void format_number(std::ostringstream& os, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os << v;
  }
}

}  // namespace

std::string Registry::render_prometheus() const {
  std::ostringstream os;
  os.precision(9);
  visit_counters([&os](const std::string& name, const Counter& c) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << "_total counter\n";
    os << p << "_total " << c.value() << "\n";
  });
  visit_gauges([&os](const std::string& name, const Gauge& g) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n";
    os << p << " ";
    format_number(os, g.value());
    os << "\n";
  });
  visit_histograms([&os](const std::string& name, const Histogram& h) {
    const std::string p = prometheus_name(name);
    const Histogram::Snapshot snap = h.snapshot();
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cum += snap.counts[i];
      // Only emit buckets up to the last non-empty one to keep the page
      // readable; +Inf always carries the total.
      if (cum == snap.count && snap.counts[i] == 0 && i > 0) continue;
      os << p << "_bucket{le=\"";
      format_number(os, Histogram::bucket_bound(i));
      os << "\"} " << cum << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
    os << p << "_sum ";
    format_number(os, snap.sum);
    os << "\n";
    os << p << "_count " << snap.count << "\n";
    for (const auto& [label, q] : {std::pair<const char*, double>{"p50", 0.50},
                                   {"p90", 0.90},
                                   {"p99", 0.99}}) {
      os << "# TYPE " << p << "_" << label << " gauge\n";
      os << p << "_" << label << " ";
      format_number(os, snap.percentile(q));
      os << "\n";
    }
  });
  return os.str();
}

Registry& registry() {
  static Registry* instance = new Registry();  // stateless facade, leaked
  return *instance;
}

}  // namespace maps::obs
