// Leveled structured logging for the serve/jobs/datagen components.
//
// Two output formats, switched process-wide by the serve config
// (`log_format`: `text` | `json`):
//
//   text  `[component] message trace=<id>`           (the historical shape;
//         operator greps and the CI smoke assertions keep working)
//   json  `{"component":"serve","level":"info","msg":"...",
//          "trace":"r-...","ts":1754640000123}`      (one NDJSON object per
//         line, epoch-milliseconds timestamp)
//
// Levels: debug < info < warn < error < off. `log_enabled(level)` is one
// relaxed atomic load — call sites that format expensive messages guard on
// it; plain `log_to` calls filter internally.
//
// Streams: components that already own an output stream (serve_tcp's
// per-connection buffer, run_serve's log stream) pass it to `log_to` /
// `format_line` and keep their existing locking. Code with no stream at
// hand (the slow-request dump, ambient warnings) uses `log_global`, which
// writes to the process sink (default stderr, redirected by run_serve to
// its log stream) under an internal mutex so concurrent lines never
// interleave.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace maps::obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };
enum class LogFormat { Text = 0, Json = 1 };

LogLevel log_level();
void set_log_level(LogLevel level);
LogFormat log_format();
void set_log_format(LogFormat format);

/// "debug"/"info"/"warn"/"error"/"off".
const char* level_name(LogLevel level);
/// Parse a level name; throws MapsError on anything else.
LogLevel parse_log_level(std::string_view name);
/// Parse "text"/"json"; throws MapsError on anything else.
LogFormat parse_log_format(std::string_view name);

/// True when `level` passes the process filter (one relaxed load).
bool log_enabled(LogLevel level);

/// One finished log line (including the trailing newline) in the current
/// format. Does not filter — pair with log_enabled for buffered writers.
std::string format_line(LogLevel level, std::string_view component,
                        std::string_view message, std::string_view trace_id = {});

/// Filtered write to `out` (null-safe, no locking — the caller owns the
/// stream and its synchronization, exactly like the ostream code it
/// replaces).
void log_to(std::ostream* out, LogLevel level, std::string_view component,
            std::string_view message, std::string_view trace_id = {});

/// The process-wide sink for stream-less call sites. Default: stderr.
void set_log_sink(std::ostream* out);

/// Filtered write to the process sink under an internal mutex.
void log_global(LogLevel level, std::string_view component,
                std::string_view message, std::string_view trace_id = {});

/// Write one pre-rendered NDJSON line (no trailing newline in `line`) to
/// the process sink under the same mutex — the slow-request span dump.
void write_raw_line(const std::string& line);

}  // namespace maps::obs
