#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <ostream>

#include "io/json.hpp"
#include "math/types.hpp"

namespace maps::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::atomic<int> g_format{static_cast<int>(LogFormat::Text)};

std::mutex g_sink_mu;
std::ostream* g_sink = nullptr;  // null => std::cerr

std::ostream& sink_locked() { return g_sink != nullptr ? *g_sink : std::cerr; }

std::int64_t epoch_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogFormat log_format() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  throw MapsError("log_level must be one of debug|info|warn|error|off, got '" +
                  std::string(name) + "'");
}

LogFormat parse_log_format(std::string_view name) {
  if (name == "text") return LogFormat::Text;
  if (name == "json") return LogFormat::Json;
  throw MapsError("log_format must be 'text' or 'json', got '" +
                  std::string(name) + "'");
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::Off;
}

std::string format_line(LogLevel level, std::string_view component,
                        std::string_view message, std::string_view trace_id) {
  if (log_format() == LogFormat::Text) {
    std::string line;
    line.reserve(component.size() + message.size() + trace_id.size() + 16);
    line.push_back('[');
    line.append(component);
    line.append("] ");
    line.append(message);
    if (!trace_id.empty()) {
      line.append(" trace=");
      line.append(trace_id);
    }
    line.push_back('\n');
    return line;
  }
  io::JsonObject obj;
  obj["component"] = io::JsonValue(std::string(component));
  obj["level"] = io::JsonValue(level_name(level));
  obj["msg"] = io::JsonValue(std::string(message));
  if (!trace_id.empty()) obj["trace"] = io::JsonValue(std::string(trace_id));
  obj["ts"] = io::JsonValue(static_cast<double>(epoch_ms()));
  return io::JsonValue(std::move(obj)).dump() + "\n";
}

void log_to(std::ostream* out, LogLevel level, std::string_view component,
            std::string_view message, std::string_view trace_id) {
  if (out == nullptr || !log_enabled(level)) return;
  *out << format_line(level, component, message, trace_id);
  out->flush();
}

void set_log_sink(std::ostream* out) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = out;
}

void log_global(LogLevel level, std::string_view component,
                std::string_view message, std::string_view trace_id) {
  if (!log_enabled(level)) return;
  const std::string line = format_line(level, component, message, trace_id);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  sink_locked() << line;
  sink_locked().flush();
}

void write_raw_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  sink_locked() << line << "\n";
  sink_locked().flush();
}

}  // namespace maps::obs
