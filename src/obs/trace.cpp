#include "obs/trace.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/deadline.hpp"

namespace maps::obs {

namespace {

thread_local Trace* t_current_trace = nullptr;

}  // namespace

Trace::Trace(std::string id)
    : id_(id.empty() ? next_request_id() : std::move(id)),
      created_ms_(runtime::now_steady_ms()) {}

void Trace::add_span(std::string_view name, double start_ms, double end_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  spans_.push_back(Span{std::string(name), start_ms, end_ms});
}

void Trace::adopt(const Trace& other) {
  if (&other == this) return;
  const std::vector<Span> theirs = other.spans();
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : theirs) {
    if (spans_.size() >= kMaxSpans) {
      dropped_ += 1;
      continue;
    }
    spans_.push_back(s);
  }
}

std::vector<Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t Trace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool Trace::claim_dump() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dumped_) return false;
  dumped_ = true;
  return true;
}

std::string next_request_id() {
  // Boot tag: steady-clock microseconds at first call XORed with an
  // address-space cookie — distinct across processes without wall-clock
  // or /dev/urandom dependencies.
  static const std::uint64_t boot = [] {
    const auto t = static_cast<std::uint64_t>(runtime::now_steady_ms() * 1000.0);
    static int anchor;
    return (t * 0x9e3779b97f4a7c15ULL) ^
           reinterpret_cast<std::uintptr_t>(&anchor);
  }();
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "r-%08llx-%llu",
                static_cast<unsigned long long>(boot & 0xffffffffULL),
                static_cast<unsigned long long>(n));
  return buf;
}

Trace* current_trace() { return t_current_trace; }

TraceScope::TraceScope(Trace* trace) : previous_(t_current_trace) {
  t_current_trace = trace;
}

TraceScope::~TraceScope() { t_current_trace = previous_; }

ScopedSpan::ScopedSpan(const char* name, Trace* trace, Histogram* hist)
    : name_(name), trace_(trace), hist_(hist) {
  if (trace_ == nullptr && (hist_ == nullptr || !metrics_enabled())) return;
  active_ = true;
  start_ms_ = runtime::now_steady_ms();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double end = runtime::now_steady_ms();
  if (trace_ != nullptr) trace_->add_span(name_, start_ms_, end);
  if (hist_ != nullptr && metrics_enabled()) hist_->record(end - start_ms_);
}

std::string render_span_tree(const Trace& trace, double total_ms,
                             std::string_view outcome) {
  using io::JsonArray;
  using io::JsonObject;
  using io::JsonValue;
  JsonObject root;
  root["event"] = JsonValue("slow_request");
  root["trace"] = JsonValue(trace.id());
  root["total_ms"] = JsonValue(total_ms);
  root["outcome"] = JsonValue(std::string(outcome));
  JsonArray spans;
  const double origin = trace.created_ms();
  for (const Span& s : trace.spans()) {
    JsonObject span;
    span["name"] = JsonValue(s.name);
    span["start_ms"] = JsonValue(s.start_ms - origin);
    span["dur_ms"] = JsonValue(s.end_ms - s.start_ms);
    spans.push_back(JsonValue(std::move(span)));
  }
  root["spans"] = JsonValue(std::move(spans));
  if (trace.dropped() > 0) {
    root["spans_dropped"] = JsonValue(static_cast<double>(trace.dropped()));
  }
  return JsonValue(std::move(root)).dump();
}

}  // namespace maps::obs
