// Process-wide metrics registry: named counters, gauges and log-scale
// latency histograms, built for instrumentation of the serve hot path.
//
// Discipline (same as runtime/fault.hpp): instrumentation is always
// compiled in, and when disabled costs one relaxed atomic load per site —
// no clock reads, no allocation, no locks. `metrics_enabled()` is the
// master switch (default on; the serve config `metrics` key and tests flip
// it). Call sites cache the `Counter&`/`Histogram&` reference once (the
// registry hands out stable pointers for the process lifetime) so the hot
// path never touches the registry map.
//
// Naming convention (see src/obs/README.md): dot-separated lowercase
// `<subsystem>.<thing>.<unit>` — e.g. `serve.cache.lookup_ms`,
// `solver.factorize_ms`, `jobs.step_ms`. Latency histograms always end in
// `_ms`. The Prometheus renderer prefixes `maps_` and rewrites dots to
// underscores (`maps_serve_cache_lookup_ms_bucket{le="..."}`).
//
// Histogram: 64 fixed log-scale buckets covering 1µs..~50min (upper bound
// of bucket i is 0.001ms * 2^(i/2)) plus an overflow bucket, sharded over
// 8 banks of atomics selected by thread id so concurrent recording does
// not bounce one cache line. Recording is exact: count and sum never lose
// an update (fp sum uses atomic fetch_add). Percentiles interpolate
// linearly inside the bucket that crosses the target rank.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace maps::obs {

/// Master instrumentation switch — one relaxed load. Default: enabled.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, breaker state, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale latency histogram. All methods are thread-safe.
class Histogram {
 public:
  static constexpr int kBuckets = 64;   // +1 overflow bucket internally
  static constexpr int kShards = 8;

  /// Upper bound (inclusive) of bucket `i` in milliseconds:
  /// 0.001 * 2^(i/2). Monotone increasing; bucket 0 is (0, 0.001].
  static double bucket_bound(int i);

  /// Record one observation (milliseconds; negative clamps to 0).
  void record(double ms);

  struct Snapshot {
    std::vector<std::uint64_t> counts;  // kBuckets + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile in [0,1] with linear interpolation inside the crossing
    /// bucket. Returns 0 when empty.
    double percentile(double q) const;
    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  };

  /// Merged view across shards. Monotone per-shard reads: concurrent
  /// recording may be partially visible but never double-counted.
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[kBuckets + 1];
    std::atomic<double> sum{0.0};
  };
  Shard shards_[kShards];
};

/// Process-wide registry. `counter`/`gauge`/`histogram` create on first
/// use and return a stable reference (mutex held only for the map lookup —
/// cache the reference at the call site). Names must follow the dotted
/// convention above.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Visit every metric, name-sorted (for renderers).
  void visit_counters(const std::function<void(const std::string&, const Counter&)>& fn) const;
  void visit_gauges(const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void visit_histograms(const std::function<void(const std::string&, const Histogram&)>& fn) const;

  /// Prometheus text exposition (version 0.0.4) of everything registered:
  /// counters as `maps_<name>_total`, gauges as `maps_<name>`, histograms
  /// as `_bucket{le=...}/_sum/_count` plus `_p50/_p90/_p99` gauge lines.
  std::string render_prometheus() const;

  /// Drop every registered metric (tests only — invalidates cached refs).
  void reset_for_test();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry (never destroyed; safe from static dtors).
Registry& registry();

/// `maps_serve_cache_lookup_ms` from `serve.cache.lookup_ms`.
std::string prometheus_name(std::string_view name);

}  // namespace maps::obs
