#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace maps::io {

namespace {

[[noreturn]] void type_error(const char* want, JsonType got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw MapsError(std::string("json: expected ") + want + ", have " +
                  names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != JsonType::Bool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != JsonType::Number) type_error("number", type_);
  return num_;
}

long long JsonValue::as_int() const {
  const double n = as_number();
  const double r = std::nearbyint(n);
  if (std::abs(n - r) > 1e-9 || std::abs(n) > 9.007199254740992e15) {
    throw MapsError("json: number is not an exact integer: " + std::to_string(n));
  }
  return static_cast<long long>(r);
}

const std::string& JsonValue::as_string() const {
  if (type_ != JsonType::String) type_error("string", type_);
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (type_ != JsonType::Array) type_error("array", type_);
  return arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (type_ != JsonType::Object) type_error("object", type_);
  return obj_;
}

JsonArray& JsonValue::as_array() {
  if (type_ != JsonType::Array) type_error("array", type_);
  return arr_;
}

JsonObject& JsonValue::as_object() {
  if (type_ != JsonType::Object) type_error("object", type_);
  return obj_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw MapsError("json: missing key '" + key + "'");
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != JsonType::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == JsonType::Null) type_ = JsonType::Object;
  if (type_ != JsonType::Object) type_error("object", type_);
  return obj_[key];
}

const JsonValue& JsonValue::at(std::size_t i) const {
  const auto& a = as_array();
  if (i >= a.size()) {
    throw MapsError("json: array index " + std::to_string(i) + " out of range " +
                    std::to_string(a.size()));
  }
  return a[i];
}

std::size_t JsonValue::size() const {
  if (type_ == JsonType::Array) return arr_.size();
  if (type_ == JsonType::Object) return obj_.size();
  type_error("array or object", type_);
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case JsonType::Null: return true;
    case JsonType::Bool: return bool_ == o.bool_;
    case JsonType::Number: return num_ == o.num_;
    case JsonType::String: return str_ == o.str_;
    case JsonType::Array: return arr_ == o.arr_;
    case JsonType::Object: return obj_ == o.obj_;
  }
  return false;
}

// ------------------------------------------------------------- serialization

namespace {

void dump_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double n) {
  if (n == std::nearbyint(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case JsonType::Null: out += "null"; break;
    case JsonType::Bool: out += bool_ ? "true" : "false"; break;
    case JsonType::Number: dump_number(out, num_); break;
    case JsonType::String: dump_string(out, str_); break;
    case JsonType::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case JsonType::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        dump_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// -------------------------------------------------------- streaming writer

void JsonWriter::comma() {
  // A value directly after its key is never comma-separated; siblings within
  // one object/array are.
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      *out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  *out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  *out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  *out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  *out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  dump_string(*out_, k);
  *out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double n) {
  comma();
  dump_number(*out_, n);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  *out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  dump_string(*out_, s);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  *out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(const JsonValue& v) {
  comma();
  v.dump_to(*out_, /*indent=*/0, /*depth=*/0);
  return *this;
}

// ------------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t k = 0; k < pos_ && k < text_.size(); ++k) {
      if (text_[k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw MapsError("json parse error at " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        parse_literal("true");
        return JsonValue(true);
      case 'f':
        parse_literal("false");
        return JsonValue(false);
      case 'n':
        parse_literal("null");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    if (peek() == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zeros are not valid JSON");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digit after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("exponent digit");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return JsonValue(std::strtod(text_.c_str() + start, nullptr));
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    for (;;) {
      const char c = take();
      if (c == '"') return s;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        s += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'n': s += '\n'; break;
        case 't': s += '\t'; break;
        case 'r': s += '\r'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'u': {
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = take();
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs out of scope
          // for config files; rejected explicitly).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate pairs unsupported");
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(a));
    }
    for (;;) {
      skip_ws();
      a.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return JsonValue(std::move(a));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(o));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (o.count(key)) fail("duplicate key '" + key + "'");
      o.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return JsonValue(std::move(o));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) { return Parser(text).parse_document(); }

JsonValue json_load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw MapsError("json_load: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return json_parse(ss.str());
}

void json_save(const JsonValue& v, const std::string& path, int indent) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw MapsError("json_save: cannot open " + path);
  out << v.dump(indent) << '\n';
  if (!out) throw MapsError("json_save: write failed for " + path);
}

}  // namespace maps::io
