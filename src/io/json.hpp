// Minimal JSON document model + parser/serializer for MAPS configuration
// files and experiment manifests.
//
// Scope: full JSON syntax (objects, arrays, strings with escapes incl.
// \uXXXX basic-plane code points, numbers, bools, null). All numbers are
// stored as double (the usual JSON-in-practice contract); integers round-
// trip exactly up to 2^53. Parse errors throw MapsError with line/column.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "math/types.hpp"

namespace maps::io {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted — serialization is deterministic, which keeps
/// experiment manifests diffable.
using JsonObject = std::map<std::string, JsonValue>;

enum class JsonType { Null, Bool, Number, String, Array, Object };

class JsonValue {
 public:
  JsonValue() : type_(JsonType::Null) {}
  JsonValue(std::nullptr_t) : type_(JsonType::Null) {}
  JsonValue(bool b) : type_(JsonType::Bool), bool_(b) {}
  JsonValue(double n) : type_(JsonType::Number), num_(n) {}
  JsonValue(int n) : type_(JsonType::Number), num_(n) {}
  JsonValue(index_t n) : type_(JsonType::Number), num_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(JsonType::String), str_(s) {}
  JsonValue(std::string s) : type_(JsonType::String), str_(std::move(s)) {}
  JsonValue(JsonArray a) : type_(JsonType::Array), arr_(std::move(a)) {}
  JsonValue(JsonObject o) : type_(JsonType::Object), obj_(std::move(o)) {}

  JsonType type() const { return type_; }
  bool is_null() const { return type_ == JsonType::Null; }
  bool is_bool() const { return type_ == JsonType::Bool; }
  bool is_number() const { return type_ == JsonType::Number; }
  bool is_string() const { return type_ == JsonType::String; }
  bool is_array() const { return type_ == JsonType::Array; }
  bool is_object() const { return type_ == JsonType::Object; }

  /// Typed accessors; throw MapsError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number, checked to be integral and in range.
  long long as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object field access; `at` throws on missing key, `find` returns
  /// nullptr. `has` tests presence.
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Mutable object insertion (creates an object from a Null value).
  JsonValue& operator[](const std::string& key);

  /// Array element access (bounds-checked).
  const JsonValue& at(std::size_t i) const;
  std::size_t size() const;

  /// Serialize; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const JsonValue& o) const;

 private:
  friend class JsonWriter;
  void dump_to(std::string& out, int indent, int depth) const;

  JsonType type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Streaming serializer: appends compact JSON — byte-identical to what
/// JsonValue::dump(0) would produce for the same document — directly onto a
/// caller-owned string. Hot reply paths (the serve wire layer emitting
/// nx*ny-element field arrays per prediction) use it to skip building a
/// JsonValue tree per reply; string escaping and number formatting are the
/// same single implementations dump() uses, so wire escaping lives in one
/// place. The writer tracks nesting only to place commas — callers are
/// trusted to emit a well-formed sequence (keys only inside objects, every
/// key followed by exactly one value).
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key (escaped), followed by ':'.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double n);
  JsonWriter& value(int n) { return value(static_cast<double>(n)); }
  JsonWriter& value(index_t n) { return value(static_cast<double>(n)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  /// Exact-match overload: without it a std::string argument is ambiguous
  /// between string_view and the implicit JsonValue constructor.
  JsonWriter& value(const std::string& s) { return value(std::string_view(s)); }
  JsonWriter& null();
  /// Splice an already-built document subtree (e.g. an echoed request id).
  JsonWriter& value(const JsonValue& v);

 private:
  void comma();

  std::string* out_;
  std::vector<bool> first_;  // per nesting level: no element emitted yet
  bool pending_key_ = false;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws MapsError with line:column context.
JsonValue json_parse(const std::string& text);

/// File convenience wrappers.
JsonValue json_load(const std::string& path);
void json_save(const JsonValue& v, const std::string& path, int indent = 2);

}  // namespace maps::io
