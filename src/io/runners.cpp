#include "io/runners.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>

#include <iostream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

#include "core/data/generator.hpp"
#include "core/invdes/init.hpp"
#include "core/train/trainer.hpp"
#include "nn/serialize.hpp"
#include "runtime/datagen.hpp"
#include "serve/http_server.hpp"
#include "serve/jobs.hpp"
#include "serve/server.hpp"

namespace maps::io {

namespace {

invdes::InitKind init_kind_from_name(const std::string& name) {
  if (name == "gray") return invdes::InitKind::Gray;
  if (name == "random") return invdes::InitKind::Random;
  if (name == "path_seed") return invdes::InitKind::PathSeed;
  throw MapsError("init must be gray | random | path_seed, got '" + name + "'");
}

JsonValue transmission_stats(const std::vector<double>& ts) {
  JsonValue v;
  if (ts.empty()) {
    v["count"] = 0;
    return v;
  }
  double lo = ts.front(), hi = ts.front(), sum = 0.0;
  for (const double t : ts) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    sum += t;
  }
  v["count"] = static_cast<int>(ts.size());
  v["min"] = lo;
  v["max"] = hi;
  v["mean"] = sum / static_cast<double>(ts.size());
  return v;
}

}  // namespace

void write_density_csv(const maps::math::RealGrid& density, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw MapsError("write_density_csv: cannot open " + path);
  for (index_t j = 0; j < density.ny(); ++j) {
    for (index_t i = 0; i < density.nx(); ++i) {
      out << density(i, j) << (i + 1 == density.nx() ? '\n' : ',');
    }
  }
  if (!out) throw MapsError("write_density_csv: write failed for " + path);
}

namespace {

/// Fail fast on an unwritable output path: a bad path must surface before
/// hours of simulation, and as a clear error rather than a post-hoc one.
/// The probe leaves no trace — a file it had to create is removed again, so
/// a later failure cannot strand an empty dataset that retry scripts would
/// mistake for output.
void probe_writable(const std::string& path) {
  const bool existed = std::filesystem::exists(path);
  {
    std::ofstream probe(path, std::ios::binary | std::ios::app);
    if (!probe.good()) {
      throw MapsError("datagen: output path is not writable: " + path);
    }
  }
  if (!existed) std::remove(path.c_str());
}

/// Aggregate hit/miss counters of the (deduplicated) device caches. The
/// pipeline's prepared backends bypass the cache on purpose (every pattern
/// is a fresh operator), so the job-wide delta reflects the phases that do
/// reuse operators — trajectory sampling above all.
solver::CacheStats device_cache_stats(
    std::initializer_list<const devices::DeviceProblem*> devs) {
  solver::CacheStats total;
  std::set<const solver::FactorizationCache*> seen;
  for (const auto* dev : devs) {
    const auto* cache = dev == nullptr ? nullptr : dev->solver_cache.get();
    if (cache == nullptr || !seen.insert(cache).second) continue;
    const auto s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
  }
  return total;
}

}  // namespace

JsonValue run_datagen(const DataGenConfig& config, std::ostream& log) {
  probe_writable(config.output);

  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);
  const runtime::ShardPlan plan{config.shard_index, config.shard_count};
  {
    std::ostringstream msg;
    msg << "device=" << devices::device_name(config.device)
        << " strategy=" << data::strategy_name(config.sampler.strategy)
        << " fidelity=" << config.fidelity
        << " solver=" << solver::solver_kind_name(config.solver.config.kind)
        << " shard=" << plan.index << "/" << plan.count
        << (config.resume ? " resume" : "");
    obs::log_to(&log, obs::LogLevel::Info, "datagen", msg.str());
  }

  // Job-wide cache accounting: trajectory sampling runs real inverse
  // designs through the device cache; snapshot before it, not around the
  // generation pipeline only.
  const auto cache_before = device_cache_stats({&device});
  const auto patterns = data::sample_patterns(device, config.device, config.sampler);
  obs::log_to(&log, obs::LogLevel::Info, "datagen",
              "sampled " + std::to_string(patterns.densities.size()) +
                  " patterns");

  // Phase lineup (the high-fidelity pass rides the same pipeline).
  std::vector<runtime::DatagenPhase> phases = {{&device, &patterns, 1}};
  devices::DeviceProblem device_hi;
  data::PatternSet hi_patterns;
  if (config.multi_fidelity) {
    devices::BuildOptions hi = build;
    hi.fidelity = config.fidelity * 2;
    device_hi = devices::make_device(config.device, hi);
    apply_solver_settings(device_hi, config.solver);
    hi_patterns = data::upsample_patterns(patterns, device_hi);
    const int factor = static_cast<int>(device_hi.spec.nx / device.spec.nx);
    phases.push_back({&device_hi, &hi_patterns, factor});
  }
  const std::string name = std::string(devices::device_name(config.device)) + "/" +
                           data::strategy_name(config.sampler.strategy);

  runtime::DatagenOptions opts;
  opts.shard = plan;
  opts.resume = config.resume;
  opts.memory_budget_mb = static_cast<std::size_t>(config.memory_budget_mb);
  opts.progress_every_s = 5.0;
  opts.log = &log;

  JsonValue report;
  report["task"] = "datagen";
  report["output"] = config.output;
  report["patterns"] = static_cast<int>(patterns.densities.size());

  runtime::DatagenStats stats;
  if (plan.single() && !config.resume) {
    // Single-process job: pipeline in memory, save directly.
    data::Dataset dataset = runtime::generate_pipelined(phases, name, opts, &stats);
    dataset.save(config.output);
    obs::log_to(&log, obs::LogLevel::Info, "datagen",
                "wrote " + std::to_string(dataset.size()) + " samples to " +
                    config.output);
    report["samples"] = static_cast<int>(dataset.size());
    report["transmission"] = transmission_stats(dataset.primary_transmissions());
  } else {
    // Sharded / resumable job: append to this shard's part file, then merge
    // once every shard reports done.
    stats = runtime::generate_sharded(phases, name, config.output, opts);
    JsonValue shard;
    shard["index"] = plan.index;
    shard["count"] = plan.count;
    // Per-phase pattern blocks (a multi-fidelity pattern counts per phase).
    shard["resumed_blocks"] = static_cast<int>(stats.skipped);
    shard["part"] = runtime::shard_part_path(config.output, plan.index, plan.count);
    bool merged = false;
    if (runtime::all_shards_done(config.output, plan.count)) {
      const auto dataset = runtime::merge_shards(config.output, plan.count);
      obs::log_to(&log, obs::LogLevel::Info, "datagen",
                  "merged " + std::to_string(plan.count) + " shard(s): " +
                      std::to_string(dataset.size()) + " samples -> " +
                      config.output);
      report["samples"] = static_cast<int>(dataset.size());
      report["transmission"] = transmission_stats(dataset.primary_transmissions());
      merged = true;
    } else {
      obs::log_to(&log, obs::LogLevel::Info, "datagen",
                  "shard " + std::to_string(plan.index) + "/" +
                      std::to_string(plan.count) +
                      " complete; waiting on other shards before merge");
      report["samples"] = static_cast<int>(stats.samples);
    }
    shard["merged"] = merged;
    report["shard"] = shard;
  }

  const auto cache_after = device_cache_stats({&device, &device_hi});
  stats.cache_hits = cache_after.hits - cache_before.hits;
  stats.cache_misses = cache_after.misses - cache_before.misses;
  report["throughput"] = stats.to_json();
  {
    std::ostringstream msg;
    msg << "throughput: " << stats.patterns_per_s() << " patterns/s, "
        << stats.solves_per_s() << " solves/s, cache hit-rate "
        << stats.cache_hit_rate();
    obs::log_to(&log, obs::LogLevel::Info, "datagen", msg.str());
  }
  report["config"] = config.to_json();
  return report;
}

JsonValue run_datagen_merge(const DataGenConfig& config, std::ostream& log) {
  // The config's shard_count is authoritative when sharded; a config driven
  // by --shard flags still says 1, so fall back to the manifests on disk.
  int count = config.shard_count;
  if (count <= 1) {
    const int detected = runtime::detect_shard_count(config.output);
    if (detected > 0) count = detected;
  }
  const auto dataset = runtime::merge_shards(config.output, count);
  obs::log_to(&log, obs::LogLevel::Info, "datagen",
              "merged " + std::to_string(count) + " shard(s): " +
                  std::to_string(dataset.size()) + " samples -> " +
                  config.output);
  JsonValue report;
  report["task"] = "datagen-merge";
  report["output"] = config.output;
  report["shards"] = count;
  report["samples"] = static_cast<int>(dataset.size());
  report["transmission"] = transmission_stats(dataset.primary_transmissions());
  return report;
}

JsonValue run_train(const TrainConfig& config, std::ostream& log) {
  const auto train_set = data::Dataset::load(config.dataset);
  log << "[train] dataset " << config.dataset << ": " << train_set.size()
      << " samples\n";

  train::LoaderOptions lopt;
  lopt.test_fraction = config.test_fraction;

  std::unique_ptr<train::DataLoader> loader;
  data::Dataset test_set;
  if (!config.test_dataset.empty()) {
    test_set = data::Dataset::load(config.test_dataset);
    log << "[train] held-out set " << config.test_dataset << ": " << test_set.size()
        << " samples\n";
    loader = std::make_unique<train::DataLoader>(train_set, test_set, lopt);
  } else {
    loader = std::make_unique<train::DataLoader>(train_set, lopt);
  }

  nn::ModelConfig mcfg = config.model;
  mcfg.in_channels = config.train.encoding.channels();
  auto model = nn::make_model(mcfg);
  log << "[train] model " << nn::model_name(mcfg.kind) << " ("
      << model->num_parameters() << " parameters), " << config.train.epochs
      << " epochs\n";

  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);

  train::Trainer trainer(*model, *loader, config.train);
  const auto result = trainer.fit(&device);

  if (!config.checkpoint.empty()) {
    // Embed the fitted standardizer as checkpoint provenance: serving loads
    // these "std_*" keys back so the constants no longer need to be copied
    // into the serve config by hand.
    const auto& std_ = loader->standardizer();
    const std::map<std::string, double> meta = {
        {"std_eps_lo", std_.eps_lo},
        {"std_eps_hi", std_.eps_hi},
        {"std_field_scale", std_.field_scale},
        {"std_j_scale", std_.j_scale},
        {"std_lambda_ref", std_.lambda_ref},
    };
    nn::save_parameters(*model, config.checkpoint, meta);
    log << "[train] checkpoint -> " << config.checkpoint << "\n";
  }

  JsonValue report;
  report["task"] = "train";
  report["model"] = nn::model_name(mcfg.kind);
  report["train_nl2"] = result.train_nl2;
  report["test_nl2"] = result.test_nl2;
  report["grad_similarity"] = result.grad_similarity;
  report["sparam_error"] = result.sparam_err;
  report["epochs"] = config.train.epochs;
  report["final_epoch_loss"] =
      result.epoch_losses.empty() ? 0.0 : result.epoch_losses.back();
  report["config"] = config.to_json();
  if (!config.report.empty()) json_save(report, config.report);
  log << "[train] train N-L2 " << result.train_nl2 << ", test N-L2 "
      << result.test_nl2 << ", grad sim " << result.grad_similarity << "\n";
  return report;
}

JsonValue run_invdes(const InvDesConfig& config, std::ostream& log) {
  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);
  auto pipeline = devices::make_default_pipeline(device, config.device, config.pipeline);

  auto theta0 =
      invdes::make_initial_theta(device, init_kind_from_name(config.init), config.seed);
  log << "[invdes] device=" << devices::device_name(config.device) << " init="
      << config.init << " iterations=" << config.options.iterations
      << " solver=" << solver::solver_kind_name(config.solver.config.kind) << "\n";

  invdes::InverseDesigner designer(device, std::move(pipeline), config.options);
  const auto result = designer.run(std::move(theta0));
  log << "[invdes] final FoM " << result.fom << " ("
      << result.total_factorizations << " factorizations / "
      << result.total_solves << " solves)\n";

  if (!config.density_out.empty()) {
    write_density_csv(result.density, config.density_out);
    log << "[invdes] density -> " << config.density_out << "\n";
  }
  if (!config.history_out.empty()) {
    std::ofstream out(config.history_out);
    if (!out) throw MapsError("run_invdes: cannot open " + config.history_out);
    out << "iteration,fom,beta\n";
    for (const auto& it : result.history) {
      out << it.iteration << ',' << it.fom << ',' << it.beta << '\n';
    }
    log << "[invdes] history -> " << config.history_out << "\n";
  }

  JsonValue report;
  report["task"] = "invdes";
  report["device"] = devices::device_name(config.device);
  report["fom"] = result.fom;
  report["iterations"] = static_cast<int>(result.history.size());
  report["factorizations"] = result.total_factorizations;
  report["solves"] = result.total_solves;
  JsonArray ts;
  if (!result.history.empty()) {
    for (const double t : result.history.back().transmissions) ts.push_back(t);
  }
  report["final_transmissions"] = JsonValue(std::move(ts));
  report["config"] = config.to_json();
  if (!config.report.empty()) json_save(report, config.report);
  return report;
}

JsonValue run_serve(const ServeConfig& config, std::istream& in, std::ostream& out,
                    std::ostream& log, const std::atomic<bool>* stop) {
  // Apply the process-wide observability knobs first so every line below —
  // including model-load warnings — already honors the configured level and
  // format. The sink redirect routes stream-less emitters (the slow-request
  // span dump, log_global warnings) into this runner's log stream; restore
  // the default on every exit path so a later run_serve (tests run several
  // per process) never writes into a dead stream.
  obs::set_metrics_enabled(config.metrics);
  obs::set_log_level(obs::parse_log_level(config.log_level));
  obs::set_log_format(obs::parse_log_format(config.log_format));
  obs::set_log_sink(&log);
  struct SinkReset {
    ~SinkReset() { obs::set_log_sink(nullptr); }
  } sink_reset;

  auto registry = std::make_shared<serve::ModelRegistry>();
  maps::train::EncodingOptions encoding;
  encoding.wave_prior = config.wave_prior;
  const auto served = registry->load(config.model_id, config.model, config.checkpoint,
                                     encoding, config.standardizer,
                                     config.std_overrides);
  {
    std::ostringstream msg;
    msg << "model " << served->id << " v" << served->version << " ("
        << nn::model_name(config.model.kind) << ", " << served->param_count
        << " parameters" << (config.checkpoint.empty() ? ", RANDOM WEIGHTS" : "")
        << ")";
    obs::log_to(&log, obs::LogLevel::Info, "serve", msg.str());
  }
  if (config.checkpoint.empty()) {
    obs::log_to(&log, obs::LogLevel::Warn, "serve",
                "warning: no checkpoint configured — serving fresh random "
                "weights (dev mode)");
  }

  serve::PredictionService service(registry, config.serve);
  const auto defaults = config.wire_defaults();
  {
    std::ostringstream msg;
    msg << "max_batch=" << config.serve.max_batch
        << " max_delay_ms=" << config.serve.max_delay_ms
        << " cache=" << config.serve.cache_capacity << "x"
        << config.serve.cache_shards << " workers=" << config.serve.workers
        << " fidelity_default=" << config.fidelity;
    obs::log_to(&log, obs::LogLevel::Info, "serve", msg.str());
  }

  serve::StreamOptions stream = config.stream;
  stream.stop = stop;
  // The jobs API shares the service's TaskQueue, so one optimization step
  // interleaves with predict batches instead of pinning a worker.
  std::unique_ptr<serve::JobManager> jobs;
  if (config.http && config.jobs) {
    serve::JobsOptions jobs_options;
    jobs_options.max_running = config.jobs_max_running;
    jobs_options.max_queued = config.jobs_max_queued;
    jobs_options.journal_dir = config.jobs_dir;
    jobs = std::make_unique<serve::JobManager>(service.task_queue(),
                                               jobs_options, &log);
    {
      std::ostringstream msg;
      msg << "jobs API mounted at /v1/jobs (max_running="
          << jobs_options.max_running << " max_queued=" << jobs_options.max_queued
          << (config.jobs_dir.empty() ? ", no journal"
                                      : ", journal " + config.jobs_dir)
          << ")";
      obs::log_to(&log, obs::LogLevel::Info, "serve", msg.str());
    }
    const int requeued = jobs->resume_journaled();
    if (requeued > 0) {
      obs::log_to(&log, obs::LogLevel::Info, "serve",
                  "resumed " + std::to_string(requeued) + " journaled job(s)");
    }
  }
  JsonValue http_report;
  if (config.http) {
    serve::HttpOptions http;
    http.port = config.port;
    http.stream = stream;
    http.jobs = jobs.get();
    const auto hr = serve::serve_http(service, defaults, http, &log, nullptr);
    http_report["requests"] = static_cast<double>(hr.requests);
    http_report["errors"] = static_cast<double>(hr.errors);
    http_report["connections"] = static_cast<double>(hr.connections);
  } else if (config.port > 0) {
    serve::serve_tcp(service, defaults, config.port, &log, config.max_connections,
                     nullptr, stream);
  } else {
    serve::serve_stream(service, defaults, in, out, &log, stream);
  }
  if (stop != nullptr && stop->load()) {
    obs::log_to(&log, obs::LogLevel::Info, "serve",
                "graceful shutdown: in-flight work drained");
  }

  JsonValue report;
  report["task"] = "serve";
  report["model"] = served->id;
  report["model_version"] = served->version;
  if (jobs != nullptr) {
    const serve::JobsStatsSnapshot jobs_stats = jobs->stats();
    report["serve_stats"] = serve::stats_to_json(service.stats(), &jobs_stats);
  } else {
    report["serve_stats"] = serve::stats_to_json(service.stats());
  }
  if (config.http) report["http"] = http_report;
  report["config"] = config.to_json();
  if (!config.report.empty()) json_save(report, config.report);
  return report;
}

JsonValue run_config_json(const JsonValue& doc, std::ostream& log) {
  const std::string task = doc.at("task").as_string();
  // The "task" key routes; the runner configs reject unknown fields, so
  // strip it before handing over.
  JsonValue body = doc;
  body.as_object().erase("task");

  if (task == "datagen") return run_datagen(DataGenConfig::from_json(body), log);
  if (task == "train") return run_train(TrainConfig::from_json(body), log);
  if (task == "invdes") return run_invdes(InvDesConfig::from_json(body), log);
  if (task == "serve") {
    // The serve wire protocol owns stdout; running it through the generic
    // dispatch would append the report to the reply stream and corrupt it.
    throw MapsError(
        "run_config_file: task 'serve' must run via `maps_cli serve <config>` "
        "(replies on stdout, report on stderr)");
  }
  throw MapsError("run_config_file: unknown task '" + task + "'");
}

JsonValue run_config_file(const std::string& path, std::ostream& log) {
  return run_config_json(json_load(path), log);
}

}  // namespace maps::io
