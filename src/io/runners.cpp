#include "io/runners.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "core/data/generator.hpp"
#include "core/invdes/init.hpp"
#include "core/train/trainer.hpp"
#include "nn/serialize.hpp"

namespace maps::io {

namespace {

invdes::InitKind init_kind_from_name(const std::string& name) {
  if (name == "gray") return invdes::InitKind::Gray;
  if (name == "random") return invdes::InitKind::Random;
  if (name == "path_seed") return invdes::InitKind::PathSeed;
  throw MapsError("init must be gray | random | path_seed, got '" + name + "'");
}

JsonValue transmission_stats(const std::vector<double>& ts) {
  JsonValue v;
  if (ts.empty()) {
    v["count"] = 0;
    return v;
  }
  double lo = ts.front(), hi = ts.front(), sum = 0.0;
  for (const double t : ts) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    sum += t;
  }
  v["count"] = static_cast<int>(ts.size());
  v["min"] = lo;
  v["max"] = hi;
  v["mean"] = sum / static_cast<double>(ts.size());
  return v;
}

}  // namespace

void write_density_csv(const maps::math::RealGrid& density, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw MapsError("write_density_csv: cannot open " + path);
  for (index_t j = 0; j < density.ny(); ++j) {
    for (index_t i = 0; i < density.nx(); ++i) {
      out << density(i, j) << (i + 1 == density.nx() ? '\n' : ',');
    }
  }
  if (!out) throw MapsError("write_density_csv: write failed for " + path);
}

JsonValue run_datagen(const DataGenConfig& config, std::ostream& log) {
  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);
  log << "[datagen] device=" << devices::device_name(config.device)
      << " strategy=" << data::strategy_name(config.sampler.strategy)
      << " fidelity=" << config.fidelity
      << " solver=" << solver::solver_kind_name(config.solver.config.kind) << "\n";

  const auto patterns = data::sample_patterns(device, config.device, config.sampler);
  log << "[datagen] sampled " << patterns.densities.size() << " patterns\n";

  data::Dataset dataset;
  if (config.multi_fidelity) {
    devices::BuildOptions hi = build;
    hi.fidelity = config.fidelity * 2;
    auto device_hi = devices::make_device(config.device, hi);
    apply_solver_settings(device_hi, config.solver);
    dataset = data::generate_multifidelity(device, device_hi, patterns);
  } else {
    dataset = data::generate_dataset(device, patterns);
  }
  dataset.name = std::string(devices::device_name(config.device)) + "/" +
                 data::strategy_name(config.sampler.strategy);
  dataset.save(config.output);
  log << "[datagen] wrote " << dataset.size() << " samples to " << config.output
      << "\n";

  JsonValue report;
  report["task"] = "datagen";
  report["output"] = config.output;
  report["samples"] = static_cast<int>(dataset.size());
  report["patterns"] = static_cast<int>(patterns.densities.size());
  report["transmission"] = transmission_stats(dataset.primary_transmissions());
  report["config"] = config.to_json();
  return report;
}

JsonValue run_train(const TrainConfig& config, std::ostream& log) {
  const auto train_set = data::Dataset::load(config.dataset);
  log << "[train] dataset " << config.dataset << ": " << train_set.size()
      << " samples\n";

  train::LoaderOptions lopt;
  lopt.test_fraction = config.test_fraction;

  std::unique_ptr<train::DataLoader> loader;
  data::Dataset test_set;
  if (!config.test_dataset.empty()) {
    test_set = data::Dataset::load(config.test_dataset);
    log << "[train] held-out set " << config.test_dataset << ": " << test_set.size()
        << " samples\n";
    loader = std::make_unique<train::DataLoader>(train_set, test_set, lopt);
  } else {
    loader = std::make_unique<train::DataLoader>(train_set, lopt);
  }

  nn::ModelConfig mcfg = config.model;
  mcfg.in_channels = config.train.encoding.channels();
  auto model = nn::make_model(mcfg);
  log << "[train] model " << nn::model_name(mcfg.kind) << " ("
      << model->num_parameters() << " parameters), " << config.train.epochs
      << " epochs\n";

  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);

  train::Trainer trainer(*model, *loader, config.train);
  const auto result = trainer.fit(&device);

  if (!config.checkpoint.empty()) {
    nn::save_parameters(*model, config.checkpoint);
    log << "[train] checkpoint -> " << config.checkpoint << "\n";
  }

  JsonValue report;
  report["task"] = "train";
  report["model"] = nn::model_name(mcfg.kind);
  report["train_nl2"] = result.train_nl2;
  report["test_nl2"] = result.test_nl2;
  report["grad_similarity"] = result.grad_similarity;
  report["sparam_error"] = result.sparam_err;
  report["epochs"] = config.train.epochs;
  report["final_epoch_loss"] =
      result.epoch_losses.empty() ? 0.0 : result.epoch_losses.back();
  report["config"] = config.to_json();
  if (!config.report.empty()) json_save(report, config.report);
  log << "[train] train N-L2 " << result.train_nl2 << ", test N-L2 "
      << result.test_nl2 << ", grad sim " << result.grad_similarity << "\n";
  return report;
}

JsonValue run_invdes(const InvDesConfig& config, std::ostream& log) {
  devices::BuildOptions build;
  build.fidelity = config.fidelity;
  auto device = devices::make_device(config.device, build);
  apply_solver_settings(device, config.solver);
  auto pipeline = devices::make_default_pipeline(device, config.device, config.pipeline);

  auto theta0 =
      invdes::make_initial_theta(device, init_kind_from_name(config.init), config.seed);
  log << "[invdes] device=" << devices::device_name(config.device) << " init="
      << config.init << " iterations=" << config.options.iterations
      << " solver=" << solver::solver_kind_name(config.solver.config.kind) << "\n";

  invdes::InverseDesigner designer(device, std::move(pipeline), config.options);
  const auto result = designer.run(std::move(theta0));
  log << "[invdes] final FoM " << result.fom << " ("
      << result.total_factorizations << " factorizations / "
      << result.total_solves << " solves)\n";

  if (!config.density_out.empty()) {
    write_density_csv(result.density, config.density_out);
    log << "[invdes] density -> " << config.density_out << "\n";
  }
  if (!config.history_out.empty()) {
    std::ofstream out(config.history_out);
    if (!out) throw MapsError("run_invdes: cannot open " + config.history_out);
    out << "iteration,fom,beta\n";
    for (const auto& it : result.history) {
      out << it.iteration << ',' << it.fom << ',' << it.beta << '\n';
    }
    log << "[invdes] history -> " << config.history_out << "\n";
  }

  JsonValue report;
  report["task"] = "invdes";
  report["device"] = devices::device_name(config.device);
  report["fom"] = result.fom;
  report["iterations"] = static_cast<int>(result.history.size());
  report["factorizations"] = result.total_factorizations;
  report["solves"] = result.total_solves;
  JsonArray ts;
  if (!result.history.empty()) {
    for (const double t : result.history.back().transmissions) ts.push_back(t);
  }
  report["final_transmissions"] = JsonValue(std::move(ts));
  report["config"] = config.to_json();
  if (!config.report.empty()) json_save(report, config.report);
  return report;
}

JsonValue run_config_file(const std::string& path, std::ostream& log) {
  const JsonValue doc = json_load(path);
  const std::string task = doc.at("task").as_string();
  // The "task" key routes; the runner configs reject unknown fields, so
  // strip it before handing over.
  JsonValue body = doc;
  body.as_object().erase("task");

  if (task == "datagen") return run_datagen(DataGenConfig::from_json(body), log);
  if (task == "train") return run_train(TrainConfig::from_json(body), log);
  if (task == "invdes") return run_invdes(InvDesConfig::from_json(body), log);
  throw MapsError("run_config_file: unknown task '" + task + "'");
}

}  // namespace maps::io
