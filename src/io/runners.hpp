// Library entry points behind the CLI tools. Each runner executes one
// config end-to-end and returns a JSON report (also written to the config's
// report path when set), so the tools stay one-line mains and the full CLI
// behaviour is unit-testable.
#pragma once

#include <atomic>
#include <iosfwd>

#include "io/config.hpp"

namespace maps::io {

/// Generate a dataset per config, save it to config.output, return a
/// summary (sample count, transmission stats, per-strategy metadata, and a
/// "throughput" block with patterns/s, solves/s and cache hit-rate).
/// Sharded configs (shard_count > 1, or resume) write the shard's .part
/// file + manifest through the runtime pipeline; once every shard's
/// manifest reports done, the full dataset is merged to config.output.
JsonValue run_datagen(const DataGenConfig& config, std::ostream& log);

/// Merge the completed shards of a datagen config into config.output
/// (byte-identical to a single-process run). Throws if shards are missing
/// or unfinished.
JsonValue run_datagen_merge(const DataGenConfig& config, std::ostream& log);

/// Train a model per config; returns the standardized metric report
/// (train/test N-L2, gradient similarity, S-param error).
JsonValue run_train(const TrainConfig& config, std::ostream& log);

/// Run adjoint inverse design per config; returns the final FoM,
/// transmissions, and iteration history summary.
JsonValue run_invdes(const InvDesConfig& config, std::ostream& log);

/// Run the prediction server (src/serve/): load the configured model into a
/// ModelRegistry and serve ndjson requests from `in` to `out` (stdio mode)
/// or over TCP when config.port > 0 (`in`/`out` unused then). Returns the
/// ServeStats report once the stream closes / the connection budget is
/// spent. `stop`, when non-null, is the graceful-shutdown flag (flipped by
/// the CLI's SIGTERM/SIGINT handler): in-flight replies drain under
/// config.stream.drain_deadline_ms and the final stats report is still
/// produced.
JsonValue run_serve(const ServeConfig& config, std::istream& in, std::ostream& out,
                    std::ostream& log,
                    const std::atomic<bool>* stop = nullptr);

/// Dispatch on the config's "task" field ("datagen" | "train" | "invdes").
JsonValue run_config_file(const std::string& path, std::ostream& log);

/// Same dispatch for an already-parsed document (the CLI applies --shard /
/// --resume overrides to the document before dispatching).
JsonValue run_config_json(const JsonValue& doc, std::ostream& log);

/// Write a density grid as CSV (one row per y line).
void write_density_csv(const maps::math::RealGrid& density, const std::string& path);

}  // namespace maps::io
