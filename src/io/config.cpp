#include "io/config.hpp"

#include <arpa/inet.h>

#include <cctype>
#include <cmath>
#include <set>

#include "obs/log.hpp"

namespace maps::io {

namespace {

/// Strict field reader: tracks which keys were consumed so from_json can
/// reject typos.
class FieldReader {
 public:
  explicit FieldReader(const JsonValue& v, std::string scope)
      : obj_(v.as_object()), scope_(std::move(scope)) {}

  bool has(const std::string& key) {
    seen_.insert(key);
    return obj_.count(key) > 0;
  }
  const JsonValue& get(const std::string& key) {
    seen_.insert(key);
    const auto it = obj_.find(key);
    if (it == obj_.end()) {
      throw MapsError(scope_ + ": missing required field '" + key + "'");
    }
    return it->second;
  }
  double number(const std::string& key, double fallback) {
    return has(key) ? obj_.at(key).as_number() : fallback;
  }
  int integer(const std::string& key, int fallback) {
    return has(key) ? static_cast<int>(obj_.at(key).as_int()) : fallback;
  }
  bool boolean(const std::string& key, bool fallback) {
    return has(key) ? obj_.at(key).as_bool() : fallback;
  }
  std::string string(const std::string& key, const std::string& fallback) {
    return has(key) ? obj_.at(key).as_string() : fallback;
  }

  /// Call after reading every supported field.
  void reject_unknown() const {
    for (const auto& [k, v] : obj_) {
      if (!seen_.count(k)) {
        throw MapsError(scope_ + ": unknown field '" + k + "'");
      }
    }
  }

 private:
  const JsonObject& obj_;
  std::string scope_;
  std::set<std::string> seen_;
};

void check_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw MapsError(std::string("config: ") + what + " must be positive");
  }
}

solver::SolverKind solver_kind_from_name(const std::string& name) {
  if (name == "direct") return solver::SolverKind::Direct;
  if (name == "iterative") return solver::SolverKind::Iterative;
  if (name == "coarse_grid" || name == "coarse") return solver::SolverKind::CoarseGrid;
  throw MapsError("config: solver must be direct | iterative | coarse_grid, got '" +
                  name + "'");
}

/// Shared solver-selection block. The "fidelity" key itself is read by the
/// caller (it is dual-typed with the legacy resolution multiplier); this
/// reads the explicit overrides. Returns the resolution multiplier.
int read_solver_settings(FieldReader& r, SolverSettings& s, const char* scope) {
  int resolution = 1;
  if (r.has("fidelity")) {
    const JsonValue& f = r.get("fidelity");
    if (f.is_string()) {
      s.fidelity = solver::fidelity_from_name(f.as_string());
    } else {
      resolution = static_cast<int>(f.as_int());
    }
  }
  if (r.has("solver_fidelity")) {
    s.fidelity = solver::fidelity_from_name(r.get("solver_fidelity").as_string());
  }
  s.config = solver::SolverConfig::for_fidelity(s.fidelity);
  if (r.has("solver")) {
    s.config.kind = solver_kind_from_name(r.get("solver").as_string());
  }
  s.config.iterative.rtol = r.number("solver_rtol", s.config.iterative.rtol);
  s.config.iterative.max_iters =
      r.integer("solver_max_iters", s.config.iterative.max_iters);
  s.config.coarse_factor = r.integer("coarse_factor", s.config.coarse_factor);
  // Explicit key wins over the MAPS_SOLVER_PRECISION environment default
  // SolverConfig was constructed with.
  if (r.has("solver_precision")) {
    s.config.precision =
        solver::solver_precision_from_name(r.get("solver_precision").as_string());
  }
  s.config.refinement.rtol = r.number("refine_rtol", s.config.refinement.rtol);
  s.config.refinement.max_iters =
      r.integer("refine_max_iters", s.config.refinement.max_iters);
  s.cache_capacity = r.integer("cache_capacity", s.cache_capacity);
  s.cache_capacity_mb = r.integer("cache_capacity_mb", s.cache_capacity_mb);
  if (s.config.coarse_factor < 2) {
    throw MapsError(std::string(scope) + ": coarse_factor must be >= 2");
  }
  if (s.cache_capacity < 1) {
    throw MapsError(std::string(scope) + ": cache_capacity must be >= 1");
  }
  if (s.cache_capacity_mb < 0) {
    throw MapsError(std::string(scope) + ": cache_capacity_mb must be >= 0");
  }
  check_positive(s.config.iterative.rtol, "solver_rtol");
  check_positive(s.config.iterative.max_iters, "solver_max_iters");
  check_positive(s.config.refinement.rtol, "refine_rtol");
  if (s.config.refinement.max_iters < 0) {
    // 0 is legal: it forces the double fallback on the first refined solve
    // (the deterministic stall-path test hook).
    throw MapsError(std::string(scope) + ": refine_max_iters must be >= 0");
  }
  return resolution;
}

void write_solver_settings(JsonValue& v, const SolverSettings& s) {
  v["solver_fidelity"] = solver::fidelity_name(s.fidelity);
  v["solver"] = solver::solver_kind_name(s.config.kind);
  v["solver_rtol"] = s.config.iterative.rtol;
  v["solver_max_iters"] = s.config.iterative.max_iters;
  v["coarse_factor"] = s.config.coarse_factor;
  v["solver_precision"] = solver::solver_precision_name(s.config.precision);
  v["refine_rtol"] = s.config.refinement.rtol;
  v["refine_max_iters"] = s.config.refinement.max_iters;
  v["cache_capacity"] = s.cache_capacity;
  v["cache_capacity_mb"] = s.cache_capacity_mb;
}

}  // namespace

void apply_solver_settings(devices::DeviceProblem& device,
                           const SolverSettings& settings) {
  device.sim_options.solver = settings.config.kind;
  device.sim_options.iterative = settings.config.iterative;
  device.sim_options.coarse_factor = settings.config.coarse_factor;
  device.sim_options.precision = settings.config.precision;
  device.sim_options.refinement = settings.config.refinement;
  if (device.solver_cache) {
    device.solver_cache->set_capacity(static_cast<std::size_t>(settings.cache_capacity));
  } else {
    device.solver_cache = std::make_shared<solver::FactorizationCache>(
        static_cast<std::size_t>(settings.cache_capacity));
  }
  device.solver_cache->set_capacity_bytes(
      static_cast<std::size_t>(settings.cache_capacity_mb) * (std::size_t{1} << 20));
}

devices::DeviceKind device_kind_from_name(const std::string& name) {
  for (const auto kind : devices::all_device_kinds()) {
    if (name == devices::device_name(kind)) return kind;
  }
  throw MapsError("config: unknown device '" + name + "'");
}

data::SamplingStrategy strategy_from_name(const std::string& name) {
  for (const auto s : {data::SamplingStrategy::Random, data::SamplingStrategy::OptTraj,
                       data::SamplingStrategy::PerturbOptTraj}) {
    if (name == data::strategy_name(s)) return s;
  }
  throw MapsError("config: unknown sampling strategy '" + name + "'");
}

nn::ModelKind model_kind_from_name(const std::string& name) {
  // Accept the display name in any case, with or without punctuation
  // ("F-FNO", "ffno", "f-fno" all work).
  auto canon = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '-' || c == '_' || c == ' ') continue;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  };
  const std::string want = canon(name);
  for (const auto kind : {nn::ModelKind::Fno, nn::ModelKind::Ffno,
                          nn::ModelKind::UNetKind, nn::ModelKind::NeurOLight,
                          nn::ModelKind::SParam}) {
    if (want == canon(nn::model_name(kind))) return kind;
  }
  throw MapsError("config: unknown model '" + name + "'");
}

const char* model_kind_name(nn::ModelKind kind) { return nn::model_name(kind); }

// ----------------------------------------------------------------- datagen

DataGenConfig DataGenConfig::from_json(const JsonValue& v) {
  FieldReader r(v, "datagen");
  DataGenConfig cfg;
  cfg.device = device_kind_from_name(r.string("device", "bending"));
  cfg.fidelity = read_solver_settings(r, cfg.solver, "datagen");
  if (cfg.fidelity < 1 || cfg.fidelity > 4) {
    throw MapsError("datagen: fidelity must be in [1, 4]");
  }
  cfg.multi_fidelity = r.boolean("multi_fidelity", false);
  cfg.memory_budget_mb = r.integer("memory_budget_mb", 0);
  if (cfg.memory_budget_mb < 0) {
    throw MapsError("datagen: memory_budget_mb must be >= 0");
  }
  cfg.output = r.string("output", "dataset.mapsd");
  cfg.shard_index = r.integer("shard_index", 0);
  cfg.shard_count = r.integer("shard_count", 1);
  cfg.resume = r.boolean("resume", false);
  if (cfg.shard_count < 1) {
    throw MapsError("datagen: shard_count must be >= 1");
  }
  if (cfg.shard_index < 0 || cfg.shard_index >= cfg.shard_count) {
    throw MapsError("datagen: shard_index must be in [0, shard_count)");
  }

  auto& s = cfg.sampler;
  s.strategy = strategy_from_name(r.string("strategy", "random"));
  s.num_patterns = r.integer("num_patterns", s.num_patterns);
  s.seed = static_cast<unsigned>(r.integer("seed", 1));
  s.blur_min = r.number("blur_min", s.blur_min);
  s.blur_max = r.number("blur_max", s.blur_max);
  s.threshold_min = r.number("threshold_min", s.threshold_min);
  s.threshold_max = r.number("threshold_max", s.threshold_max);
  s.num_trajectories = r.integer("num_trajectories", s.num_trajectories);
  s.traj_iterations = r.integer("traj_iterations", s.traj_iterations);
  s.record_every = r.integer("record_every", s.record_every);
  s.perturb_sigma = r.number("perturb_sigma", s.perturb_sigma);
  s.perturbs_per_snapshot = r.integer("perturbs_per_snapshot", s.perturbs_per_snapshot);
  r.reject_unknown();

  check_positive(s.num_patterns, "num_patterns");
  check_positive(s.num_trajectories, "num_trajectories");
  check_positive(s.traj_iterations, "traj_iterations");
  check_positive(s.record_every, "record_every");
  if (s.blur_max < s.blur_min || s.threshold_max < s.threshold_min) {
    throw MapsError("datagen: blur/threshold ranges must be ordered");
  }
  return cfg;
}

JsonValue DataGenConfig::to_json() const {
  JsonValue v;
  v["device"] = devices::device_name(device);
  v["fidelity"] = fidelity;
  write_solver_settings(v, solver);
  v["multi_fidelity"] = multi_fidelity;
  v["memory_budget_mb"] = memory_budget_mb;
  v["output"] = output;
  v["shard_index"] = shard_index;
  v["shard_count"] = shard_count;
  v["resume"] = resume;
  v["strategy"] = data::strategy_name(sampler.strategy);
  v["num_patterns"] = sampler.num_patterns;
  v["seed"] = static_cast<int>(sampler.seed);
  v["blur_min"] = sampler.blur_min;
  v["blur_max"] = sampler.blur_max;
  v["threshold_min"] = sampler.threshold_min;
  v["threshold_max"] = sampler.threshold_max;
  v["num_trajectories"] = sampler.num_trajectories;
  v["traj_iterations"] = sampler.traj_iterations;
  v["record_every"] = sampler.record_every;
  v["perturb_sigma"] = sampler.perturb_sigma;
  v["perturbs_per_snapshot"] = sampler.perturbs_per_snapshot;
  return v;
}

// ------------------------------------------------------------------- train

TrainConfig TrainConfig::from_json(const JsonValue& v) {
  FieldReader r(v, "train");
  TrainConfig cfg;
  cfg.dataset = r.get("dataset").as_string();
  cfg.test_dataset = r.string("test_dataset", "");
  cfg.device = device_kind_from_name(r.string("device", "bending"));
  cfg.fidelity = read_solver_settings(r, cfg.solver, "train");
  cfg.test_fraction = r.number("test_fraction", 0.25);
  cfg.checkpoint = r.string("checkpoint", "");
  cfg.report = r.string("report", "");

  cfg.model.kind = model_kind_from_name(r.string("model", "fno"));
  cfg.model.width = r.integer("width", static_cast<int>(cfg.model.width));
  cfg.model.modes = r.integer("modes", static_cast<int>(cfg.model.modes));
  cfg.model.depth = r.integer("depth", cfg.model.depth);
  cfg.model.seed = static_cast<unsigned>(r.integer("model_seed", 42));

  cfg.train.epochs = r.integer("epochs", cfg.train.epochs);
  cfg.train.batch = r.integer("batch", static_cast<int>(cfg.train.batch));
  cfg.train.lr = r.number("lr", cfg.train.lr);
  cfg.train.lr_min = r.number("lr_min", cfg.train.lr_min);
  cfg.train.maxwell_weight = r.number("maxwell_weight", 0.0);
  cfg.train.mixup_prob = r.number("mixup_prob", 0.0);
  cfg.train.encoding.wave_prior =
      r.boolean("wave_prior", cfg.model.kind == nn::ModelKind::NeurOLight);
  cfg.train.seed = static_cast<unsigned>(r.integer("train_seed", 11));
  cfg.train.verbose = r.boolean("verbose", false);
  r.reject_unknown();

  cfg.model.in_channels = cfg.train.encoding.channels();
  check_positive(cfg.train.epochs, "epochs");
  check_positive(static_cast<double>(cfg.train.batch), "batch");
  check_positive(cfg.train.lr, "lr");
  if (cfg.test_fraction <= 0.0 || cfg.test_fraction >= 1.0) {
    throw MapsError("train: test_fraction must be in (0, 1)");
  }
  return cfg;
}

JsonValue TrainConfig::to_json() const {
  JsonValue v;
  v["dataset"] = dataset;
  if (!test_dataset.empty()) v["test_dataset"] = test_dataset;
  v["device"] = devices::device_name(device);
  v["fidelity"] = fidelity;
  write_solver_settings(v, solver);
  v["model"] = nn::model_name(model.kind);
  v["width"] = model.width;
  v["modes"] = model.modes;
  v["depth"] = model.depth;
  v["model_seed"] = static_cast<int>(model.seed);
  v["epochs"] = train.epochs;
  v["batch"] = train.batch;
  v["lr"] = train.lr;
  v["lr_min"] = train.lr_min;
  v["maxwell_weight"] = train.maxwell_weight;
  v["mixup_prob"] = train.mixup_prob;
  v["wave_prior"] = train.encoding.wave_prior;
  v["train_seed"] = static_cast<int>(train.seed);
  v["verbose"] = train.verbose;
  v["test_fraction"] = test_fraction;
  if (!checkpoint.empty()) v["checkpoint"] = checkpoint;
  if (!report.empty()) v["report"] = report;
  return v;
}

// ------------------------------------------------------------------- serve

serve::WireDefaults ServeConfig::wire_defaults() const {
  serve::WireDefaults d;
  d.dl = dl;
  d.wavelength = wavelength;
  d.pml = pml;
  d.fidelity = solver::fidelity_from_name(fidelity);
  return d;
}

ServeConfig ServeConfig::from_json(const JsonValue& v) {
  FieldReader r(v, "serve");
  ServeConfig cfg;
  cfg.model.kind = model_kind_from_name(r.string("model", "fno"));
  cfg.model.width = r.integer("width", static_cast<int>(cfg.model.width));
  cfg.model.modes = r.integer("modes", static_cast<int>(cfg.model.modes));
  cfg.model.depth = r.integer("depth", cfg.model.depth);
  cfg.model.seed = static_cast<unsigned>(r.integer("model_seed", 42));
  cfg.wave_prior =
      r.boolean("wave_prior", cfg.model.kind == nn::ModelKind::NeurOLight);
  cfg.model.in_channels =
      maps::train::EncodingOptions{cfg.wave_prior}.channels();
  cfg.model_id = r.string("model_id", "default");
  cfg.checkpoint = r.string("checkpoint", "");

  // std_* keys are optional overrides: the checkpoint's embedded provenance
  // normally supplies these, and an explicitly configured value outranks it.
  // Track presence before reading so the registry knows which fields the
  // operator pinned.
  auto std_override = [&r](const char* key) -> std::optional<double> {
    if (!r.has(key)) return std::nullopt;
    return r.number(key, 0.0);
  };
  cfg.std_overrides.eps_lo = std_override("std_eps_lo");
  cfg.std_overrides.eps_hi = std_override("std_eps_hi");
  cfg.std_overrides.field_scale = std_override("std_field_scale");
  cfg.std_overrides.j_scale = std_override("std_j_scale");
  cfg.std_overrides.lambda_ref = std_override("std_lambda_ref");
  cfg.std_overrides.apply(cfg.standardizer);

  cfg.serve.max_batch = r.integer("max_batch", cfg.serve.max_batch);
  cfg.serve.max_delay_ms = r.number("max_delay_ms", cfg.serve.max_delay_ms);
  // The size_t knobs reject negatives before the cast — a config with
  // "workers": -1 must be a clean error, not a 2^64-thread TaskQueue.
  const auto non_negative = [](int v, const char* what) {
    if (v < 0) {
      throw MapsError(std::string("serve: ") + what + " must be >= 0");
    }
    return static_cast<std::size_t>(v);
  };
  cfg.serve.workers =
      non_negative(r.integer("workers", static_cast<int>(cfg.serve.workers)),
                   "workers");
  cfg.serve.cache_capacity = non_negative(
      r.integer("cache_capacity", static_cast<int>(cfg.serve.cache_capacity)),
      "cache_capacity");
  cfg.serve.cache_shards = non_negative(
      r.integer("cache_shards", static_cast<int>(cfg.serve.cache_shards)),
      "cache_shards");
  cfg.serve.escalate_rms_factor =
      r.number("escalate_rms_factor", cfg.serve.escalate_rms_factor);
  cfg.serve.solver_cache_capacity = non_negative(
      r.integer("solver_cache_capacity",
                static_cast<int>(cfg.serve.solver_cache_capacity)),
      "solver_cache_capacity");
  if (r.has("solver_precision")) {
    cfg.serve.solver_precision =
        solver::solver_precision_from_name(r.get("solver_precision").as_string());
  }

  // Reliability layer: admission control, escalation circuit breaker, and
  // stream limits / graceful-shutdown drain.
  cfg.serve.max_inflight = non_negative(
      r.integer("max_inflight", static_cast<int>(cfg.serve.max_inflight)),
      "max_inflight");
  cfg.serve.max_queue_ms = r.number("max_queue_ms", cfg.serve.max_queue_ms);
  cfg.serve.breaker_failures =
      r.integer("breaker_failures", cfg.serve.breaker_failures);
  cfg.serve.breaker_backoff_ms =
      r.number("breaker_backoff_ms", cfg.serve.breaker_backoff_ms);
  cfg.serve.breaker_backoff_max_ms =
      r.number("breaker_backoff_max_ms", cfg.serve.breaker_backoff_max_ms);
  cfg.serve.breaker_half_open_probes =
      r.integer("breaker_half_open_probes", cfg.serve.breaker_half_open_probes);
  const int max_request_mb = r.integer(
      "max_request_mb", static_cast<int>(cfg.stream.max_request_bytes >> 20));
  cfg.stream.max_request_bytes =
      non_negative(max_request_mb, "max_request_mb") << 20;
  cfg.stream.conn_max_inflight = non_negative(
      r.integer("conn_max_inflight", static_cast<int>(cfg.stream.conn_max_inflight)),
      "conn_max_inflight");
  cfg.stream.drain_deadline_ms =
      r.number("drain_deadline_ms", cfg.stream.drain_deadline_ms);
  cfg.stream.bind_address = r.string("bind_address", cfg.stream.bind_address);
  cfg.serve.coalesce = r.boolean("coalesce", cfg.serve.coalesce);

  cfg.dl = r.number("dl", cfg.dl);
  cfg.wavelength = r.number("wavelength", cfg.wavelength);
  cfg.pml.ncells = r.integer("pml_ncells", cfg.pml.ncells);
  cfg.fidelity = r.string("fidelity", "low");
  cfg.port = r.integer("port", 0);
  cfg.http = r.boolean("http", false);
  cfg.max_connections = r.integer("max_connections", -1);
  cfg.report = r.string("report", "");
  cfg.jobs_dir = r.string("jobs_dir", "");
  // A journal directory implies the jobs API: configuring where jobs persist
  // while leaving the endpoints unmounted would be a silent misconfiguration.
  cfg.jobs = r.boolean("jobs", !cfg.jobs_dir.empty());
  cfg.jobs_max_running = r.integer("jobs_max_running", cfg.jobs_max_running);
  cfg.jobs_max_queued = r.integer("jobs_max_queued", cfg.jobs_max_queued);
  cfg.metrics = r.boolean("metrics", cfg.metrics);
  cfg.slow_request_ms = r.number("slow_request_ms", cfg.slow_request_ms);
  cfg.serve.slow_request_ms = cfg.slow_request_ms;
  cfg.log_level = r.string("log_level", cfg.log_level);
  cfg.log_format = r.string("log_format", cfg.log_format);
  r.reject_unknown();

  // Validate the spellings now (throws MapsError on anything else); the
  // parsed values are applied process-wide by run_serve, not here.
  (void)obs::parse_log_level(cfg.log_level);
  (void)obs::parse_log_format(cfg.log_format);

  (void)solver::fidelity_from_name(cfg.fidelity);  // validate the spelling
  if (cfg.serve.max_batch < 1) throw MapsError("serve: max_batch must be >= 1");
  if (cfg.serve.max_delay_ms < 0.0) {
    throw MapsError("serve: max_delay_ms must be >= 0");
  }
  if (cfg.serve.cache_shards < 1) throw MapsError("serve: cache_shards must be >= 1");
  if (cfg.port < 0 || cfg.port > 65535) {
    throw MapsError("serve: port must be in [0, 65535]");
  }
  if (cfg.serve.max_queue_ms < 0.0) {
    throw MapsError("serve: max_queue_ms must be >= 0");
  }
  if (cfg.serve.breaker_failures > 0) {
    if (cfg.serve.breaker_backoff_ms <= 0.0) {
      throw MapsError("serve: breaker_backoff_ms must be > 0");
    }
    if (cfg.serve.breaker_backoff_max_ms < cfg.serve.breaker_backoff_ms) {
      throw MapsError("serve: breaker_backoff_max_ms must be >= breaker_backoff_ms");
    }
    if (cfg.serve.breaker_half_open_probes < 1) {
      throw MapsError("serve: breaker_half_open_probes must be >= 1");
    }
  }
  if (cfg.stream.drain_deadline_ms < 0.0) {
    throw MapsError("serve: drain_deadline_ms must be >= 0");
  }
  if (cfg.jobs && !cfg.http) {
    throw MapsError("serve: jobs requires the HTTP front end (\"http\": true)");
  }
  if (cfg.jobs_max_running < 1) {
    throw MapsError("serve: jobs_max_running must be >= 1");
  }
  if (cfg.jobs_max_queued < 0) {
    throw MapsError("serve: jobs_max_queued must be >= 0");
  }
  {
    // Fail at config-parse time, not bind time: a typo'd bind_address must
    // not get as far as loading models and opening sockets.
    in_addr parsed{};
    if (::inet_pton(AF_INET, cfg.stream.bind_address.c_str(), &parsed) != 1) {
      throw MapsError("serve: invalid bind_address '" + cfg.stream.bind_address +
                      "' (expected an IPv4 literal such as 127.0.0.1 or "
                      "0.0.0.0)");
    }
  }
  check_positive(cfg.dl, "dl");
  check_positive(cfg.wavelength, "wavelength");
  check_positive(cfg.standardizer.field_scale, "std_field_scale");
  check_positive(cfg.standardizer.j_scale, "std_j_scale");
  return cfg;
}

JsonValue ServeConfig::to_json() const {
  JsonValue v;
  v["model"] = nn::model_name(model.kind);
  v["width"] = model.width;
  v["modes"] = model.modes;
  v["depth"] = model.depth;
  v["model_seed"] = static_cast<int>(model.seed);
  v["wave_prior"] = wave_prior;
  v["model_id"] = model_id;
  if (!checkpoint.empty()) v["checkpoint"] = checkpoint;
  v["std_eps_lo"] = standardizer.eps_lo;
  v["std_eps_hi"] = standardizer.eps_hi;
  v["std_field_scale"] = standardizer.field_scale;
  v["std_j_scale"] = standardizer.j_scale;
  v["std_lambda_ref"] = standardizer.lambda_ref;
  v["max_batch"] = serve.max_batch;
  v["max_delay_ms"] = serve.max_delay_ms;
  v["workers"] = static_cast<int>(serve.workers);
  v["cache_capacity"] = static_cast<int>(serve.cache_capacity);
  v["cache_shards"] = static_cast<int>(serve.cache_shards);
  v["escalate_rms_factor"] = serve.escalate_rms_factor;
  v["solver_cache_capacity"] = static_cast<int>(serve.solver_cache_capacity);
  v["solver_precision"] = solver::solver_precision_name(serve.solver_precision);
  v["max_inflight"] = static_cast<int>(serve.max_inflight);
  v["max_queue_ms"] = serve.max_queue_ms;
  v["breaker_failures"] = serve.breaker_failures;
  v["breaker_backoff_ms"] = serve.breaker_backoff_ms;
  v["breaker_backoff_max_ms"] = serve.breaker_backoff_max_ms;
  v["breaker_half_open_probes"] = serve.breaker_half_open_probes;
  v["max_request_mb"] = static_cast<int>(stream.max_request_bytes >> 20);
  v["conn_max_inflight"] = static_cast<int>(stream.conn_max_inflight);
  v["drain_deadline_ms"] = stream.drain_deadline_ms;
  v["bind_address"] = stream.bind_address;
  v["coalesce"] = serve.coalesce;
  v["dl"] = dl;
  v["wavelength"] = wavelength;
  v["pml_ncells"] = pml.ncells;
  v["fidelity"] = fidelity;
  v["port"] = port;
  v["http"] = http;
  v["max_connections"] = max_connections;
  if (!report.empty()) v["report"] = report;
  v["jobs"] = jobs;
  if (!jobs_dir.empty()) v["jobs_dir"] = jobs_dir;
  v["jobs_max_running"] = jobs_max_running;
  v["jobs_max_queued"] = jobs_max_queued;
  v["metrics"] = metrics;
  v["slow_request_ms"] = slow_request_ms;
  v["log_level"] = log_level;
  v["log_format"] = log_format;
  return v;
}

// ------------------------------------------------------------------ invdes

InvDesConfig InvDesConfig::from_json(const JsonValue& v) {
  FieldReader r(v, "invdes");
  InvDesConfig cfg;
  cfg.device = device_kind_from_name(r.string("device", "bending"));
  cfg.fidelity = read_solver_settings(r, cfg.solver, "invdes");
  cfg.options.iterations = r.integer("iterations", cfg.options.iterations);
  cfg.options.lr = r.number("lr", cfg.options.lr);
  cfg.options.beta_start = r.number("beta_start", cfg.options.beta_start);
  cfg.options.beta_end = r.number("beta_end", cfg.options.beta_end);
  cfg.options.gray_penalty = r.number("gray_penalty", cfg.options.gray_penalty);
  cfg.pipeline.blur_radius = r.number("blur_radius", cfg.pipeline.blur_radius);
  cfg.pipeline.beta = r.number("projection_beta", cfg.pipeline.beta);
  cfg.pipeline.eta = r.number("projection_eta", cfg.pipeline.eta);
  cfg.init = r.string("init", "path_seed");
  cfg.seed = static_cast<unsigned>(r.integer("seed", 7));
  cfg.density_out = r.string("density_out", "");
  cfg.history_out = r.string("history_out", "");
  cfg.report = r.string("report", "");
  r.reject_unknown();

  if (cfg.init != "gray" && cfg.init != "random" && cfg.init != "path_seed") {
    throw MapsError("invdes: init must be gray | random | path_seed");
  }
  check_positive(cfg.options.iterations, "iterations");
  check_positive(cfg.options.lr, "lr");
  check_positive(cfg.options.beta_start, "beta_start");
  if (cfg.options.beta_end < cfg.options.beta_start) {
    throw MapsError("invdes: beta_end must be >= beta_start");
  }
  return cfg;
}

JsonValue InvDesConfig::to_json() const {
  JsonValue v;
  v["device"] = devices::device_name(device);
  v["fidelity"] = fidelity;
  write_solver_settings(v, solver);
  v["iterations"] = options.iterations;
  v["lr"] = options.lr;
  v["beta_start"] = options.beta_start;
  v["beta_end"] = options.beta_end;
  v["gray_penalty"] = options.gray_penalty;
  v["blur_radius"] = pipeline.blur_radius;
  v["projection_beta"] = pipeline.beta;
  v["projection_eta"] = pipeline.eta;
  v["init"] = init;
  v["seed"] = static_cast<int>(seed);
  if (!density_out.empty()) v["density_out"] = density_out;
  if (!history_out.empty()) v["history_out"] = history_out;
  if (!report.empty()) v["report"] = report;
  return v;
}

// ------------------------------------------------------------------- sweep

SweepJobConfig SweepJobConfig::from_json(const JsonValue& v) {
  FieldReader r(v, "sweep");
  SweepJobConfig cfg;
  cfg.device = device_kind_from_name(r.string("device", "bending"));
  cfg.fidelity = read_solver_settings(r, cfg.solver, "sweep");
  cfg.sweep = r.string("sweep", "corners");
  if (r.has("theta")) {
    for (const auto& t : r.get("theta").as_array()) {
      cfg.theta.push_back(t.as_number());
    }
  }
  cfg.init = r.string("init", "path_seed");
  cfg.seed = static_cast<unsigned>(r.integer("seed", 7));
  if (r.has("wavelengths")) {
    for (const auto& w : r.get("wavelengths").as_array()) {
      cfg.wavelengths.push_back(w.as_number());
    }
  }
  if (cfg.wavelengths.empty()) cfg.wavelengths.push_back(1.55);
  r.reject_unknown();

  if (cfg.sweep != "corners" && cfg.sweep != "sparams") {
    throw MapsError("sweep: sweep must be corners | sparams");
  }
  if (cfg.init != "gray" && cfg.init != "random" && cfg.init != "path_seed") {
    throw MapsError("sweep: init must be gray | random | path_seed");
  }
  for (const double w : cfg.wavelengths) check_positive(w, "wavelengths");
  for (const double t : cfg.theta) {
    if (!std::isfinite(t)) throw MapsError("sweep: theta must be finite");
  }
  return cfg;
}

JsonValue SweepJobConfig::to_json() const {
  JsonValue v;
  v["device"] = devices::device_name(device);
  v["fidelity"] = fidelity;
  write_solver_settings(v, solver);
  v["sweep"] = sweep;
  if (!theta.empty()) {
    JsonArray t(theta.begin(), theta.end());
    v["theta"] = JsonValue(std::move(t));
  }
  v["init"] = init;
  v["seed"] = static_cast<int>(seed);
  JsonArray w(wavelengths.begin(), wavelengths.end());
  v["wavelengths"] = JsonValue(std::move(w));
  return v;
}

}  // namespace maps::io
