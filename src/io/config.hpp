// Typed experiment configurations: the JSON schema of the MAPS CLI tools.
//
// Each config struct mirrors one tool (maps_datagen / maps_train /
// maps_invdes) and carries exactly the knobs its pipeline exposes. from_json
// validates field names strictly — an unknown key is an error, because a
// silently ignored typo ("epochs " vs "epochs") is the classic way an
// infrastructure benchmark stops being reproducible.
#pragma once

#include <string>
#include <vector>

#include "core/data/sampler.hpp"
#include "core/invdes/engine.hpp"
#include "core/train/trainer.hpp"
#include "devices/builders.hpp"
#include "io/json.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "solver/backend.hpp"

namespace maps::io {

/// Name <-> enum mappings shared by configs and report writers.
devices::DeviceKind device_kind_from_name(const std::string& name);
data::SamplingStrategy strategy_from_name(const std::string& name);
nn::ModelKind model_kind_from_name(const std::string& name);
const char* model_kind_name(nn::ModelKind kind);

/// Solver backend selection shared by every tool config. In JSON the
/// "fidelity" key is dual-typed: a number is the legacy grid-resolution
/// multiplier, a string ("low" | "medium" | "high") selects the solver
/// fidelity level (low = coarse-grid, medium = iterative, high = direct).
/// "solver" overrides the kind directly; "solver_rtol" / "solver_max_iters"
/// tune the iterative backend, "coarse_factor" the coarse-grid backend and
/// "cache_capacity" (entries) / "cache_capacity_mb" (factor-byte budget,
/// 0 = unlimited) the device factorization cache. "solver_precision"
/// ("double" | "mixed") selects the direct path's factor precision —
/// mixed = fp32 factors + iterative refinement to double accuracy — and
/// "refine_rtol" / "refine_max_iters" tune the refinement loop.
struct SolverSettings {
  solver::FidelityLevel fidelity = solver::FidelityLevel::High;
  solver::SolverConfig config;  // kind follows fidelity unless "solver" given
  int cache_capacity = 8;
  int cache_capacity_mb = 0;  // memory-aware eviction budget; 0 = unlimited
};

/// Push parsed solver settings into a built device (backend kind, iterative
/// tolerances, coarse factor, cache capacity).
void apply_solver_settings(devices::DeviceProblem& device,
                           const SolverSettings& settings);

/// maps_datagen: sample patterns for a device and simulate rich labels.
/// Sharding (src/runtime/): "shard_index" / "shard_count" select this
/// process's slice of the pattern set (every shard derives the identical
/// patterns; positions are round-robined); "resume" re-adopts a killed
/// shard's committed prefix from its manifest instead of restarting.
struct DataGenConfig {
  devices::DeviceKind device = devices::DeviceKind::Bend;
  int fidelity = 1;
  bool multi_fidelity = false;  // pair each pattern at fidelity and 2x
  SolverSettings solver;
  /// Soft cap on the memory the pipeline's in-flight window may commit to
  /// resident LU factors (MB). 0 keeps the fixed workers+2 window; a budget
  /// derives max_inflight from the per-pattern factor_bytes() estimate so
  /// large grids stop over-committing memory.
  int memory_budget_mb = 0;
  data::SamplerOptions sampler;
  std::string output = "dataset.mapsd";
  int shard_index = 0;
  int shard_count = 1;
  bool resume = false;

  static DataGenConfig from_json(const JsonValue& v);
  JsonValue to_json() const;
};

/// maps_train: train a field model on a dataset and report metrics.
struct TrainConfig {
  std::string dataset;            // training dataset path (required)
  std::string test_dataset;       // optional held-out set (else split)
  devices::DeviceKind device = devices::DeviceKind::Bend;
  int fidelity = 1;
  SolverSettings solver;
  nn::ModelConfig model;
  train::TrainOptions train;
  double test_fraction = 0.25;
  std::string checkpoint;         // optional parameter output path
  std::string report;             // optional metrics JSON output path

  static TrainConfig from_json(const JsonValue& v);
  JsonValue to_json() const;
};

/// maps_cli serve: the multi-fidelity surrogate prediction server
/// (src/serve/). "model"/"width"/"modes"/"depth" describe the architecture,
/// "checkpoint" the trainer-saved parameter file (empty = fresh random
/// weights, a dev mode), and the "standardizer" block carries the training
/// normalization constants the input encoder needs. "max_batch" /
/// "max_delay_ms" tune the micro-batcher, "cache_capacity"/"cache_shards"
/// the result cache, "workers" the inference worker pool (0 = shared
/// queue), "port" selects TCP mode (0 = stdin/stdout), and
/// "escalate_rms_factor" arms the low-confidence solver escalation screen.
struct ServeConfig {
  nn::ModelConfig model;
  bool wave_prior = false;
  std::string model_id = "default";
  std::string checkpoint;
  maps::train::Standardizer standardizer;
  /// Which std_* keys were explicitly present in the JSON: these outrank the
  /// checkpoint's embedded standardizer provenance at registry load time.
  maps::train::StandardizerOverrides std_overrides;
  serve::ServeOptions serve;
  /// Stream/connection limits and the graceful-shutdown drain deadline
  /// ("max_request_mb", "conn_max_inflight", "drain_deadline_ms"; the stop
  /// flag itself is wired at runtime, not from JSON).
  serve::StreamOptions stream;
  // Wire-request defaults.
  double dl = 0.1;
  double wavelength = 1.55;
  fdfd::PmlSpec pml;
  std::string fidelity = "low";
  int port = 0;           // 0 = stdio mode (TCP/HTTP: 0 picks a free port)
  /// Front-end selector: false = ndjson (stdio when port == 0, TCP
  /// otherwise), true = the event-loop HTTP/1.1 server ("http" key; pair
  /// with "bind_address" to serve beyond loopback).
  bool http = false;
  int max_connections = -1;  // TCP mode: stop after N connections (-1 = run on)
  std::string report;     // optional stats JSON output path
  /// Long-running jobs API (/v1/jobs, HTTP front end only). "jobs" mounts
  /// the endpoints; "jobs_dir" names the manifest/journal directory for
  /// crash-safe resume (empty = in-memory jobs, lost on restart);
  /// "jobs_max_running" / "jobs_max_queued" bound concurrency and the
  /// admission queue.
  bool jobs = false;
  std::string jobs_dir;
  int jobs_max_running = 1;
  int jobs_max_queued = 8;
  /// Observability: "metrics" toggles the process registry (histograms +
  /// /v1/metrics families), "slow_request_ms" arms the span-tree dump for
  /// requests slower than the threshold (-1 = off, 0 = every request),
  /// "log_level" / "log_format" configure the structured logger
  /// (debug|info|warn|error|off, text|json).
  bool metrics = true;
  double slow_request_ms = -1.0;
  std::string log_level = "info";
  std::string log_format = "text";

  serve::WireDefaults wire_defaults() const;

  static ServeConfig from_json(const JsonValue& v);
  JsonValue to_json() const;
};

/// maps_invdes: adjoint inverse design of one device.
struct InvDesConfig {
  devices::DeviceKind device = devices::DeviceKind::Bend;
  int fidelity = 1;
  SolverSettings solver;
  invdes::InvDesOptions options;
  devices::PipelineOptions pipeline;
  std::string init = "path_seed";  // gray | random | path_seed
  unsigned seed = 7;
  std::string density_out;         // optional final density CSV
  std::string history_out;         // optional per-iteration CSV
  std::string report;              // optional summary JSON

  static InvDesConfig from_json(const JsonValue& v);
  JsonValue to_json() const;
};

/// serve "/v1/jobs" sweep job: batched evaluations of one fixed design —
/// the lithography robustness corners of MAPS-InvDes ("sweep": "corners")
/// or a multi-wavelength S-parameter matrix ("sweep": "sparams"). "theta"
/// pins the design variables explicitly; when absent the design comes from
/// "init"/"seed" exactly as maps_invdes would start it.
struct SweepJobConfig {
  devices::DeviceKind device = devices::DeviceKind::Bend;
  int fidelity = 1;
  SolverSettings solver;
  std::string sweep = "corners";  // corners | sparams
  std::vector<double> theta;      // explicit design variables; empty = init
  std::string init = "path_seed";
  unsigned seed = 7;
  std::vector<double> wavelengths;  // sparams grid; defaults to {1.55}

  static SweepJobConfig from_json(const JsonValue& v);
  JsonValue to_json() const;
};

}  // namespace maps::io
