#include "runtime/shard.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>
#include <utility>

#include "runtime/fault.hpp"

namespace maps::runtime {

namespace {

// Transient shard I/O (momentarily full/slow disk, NFS hiccup) must not
// abort an hours-long datagen run: journal appends, manifest saves and
// journal compactions retry up to kIoAttempts times with exponential
// backoff plus a small deterministic jitter, so a fleet of shards on one
// recovering disk doesn't retry in lockstep.
constexpr int kIoAttempts = 3;

void io_retry_backoff(int attempt) {
  static std::atomic<unsigned> salt{0};
  const double jitter = static_cast<double>(salt.fetch_add(1) % 7) * 0.1;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      static_cast<double>(1 << (attempt - 1)) + jitter));
}

}  // namespace

std::vector<std::size_t> ShardPlan::owned(std::size_t total) const {
  validate();
  std::vector<std::size_t> out;
  for (std::size_t p = static_cast<std::size_t>(index); p < total;
       p += static_cast<std::size_t>(count)) {
    out.push_back(p);
  }
  return out;
}

ShardPlan ShardPlan::parse(const std::string& spec) {
  const auto slash = spec.find('/');
  maps::require(slash != std::string::npos && slash > 0 && slash + 1 < spec.size(),
                "shard spec must be i/N (e.g. 0/4), got '" + spec + "'");
  ShardPlan plan;
  try {
    std::size_t used = 0;
    plan.index = std::stoi(spec.substr(0, slash), &used);
    maps::require(used == slash, "shard spec: index is not a number");
    plan.count = std::stoi(spec.substr(slash + 1), &used);
    maps::require(used == spec.size() - slash - 1, "shard spec: count is not a number");
  } catch (const MapsError&) {
    throw;
  } catch (const std::exception&) {
    throw MapsError("shard spec must be i/N (e.g. 0/4), got '" + spec + "'");
  }
  plan.validate();
  return plan;
}

void ShardPlan::validate() const {
  maps::require(count >= 1, "shard count must be >= 1");
  maps::require(index >= 0 && index < count,
                "shard index must be in [0, count), got " + std::to_string(index) +
                    "/" + std::to_string(count));
}

std::string shard_part_path(const std::string& output, int index, int count) {
  return output + ".shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".part";
}

std::string shard_manifest_path(const std::string& output, int index, int count) {
  return output + ".shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".manifest.json";
}

std::string shard_journal_path(const std::string& output, int index, int count) {
  return output + ".shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".journal";
}

bool ShardManifest::is_completed(int phase, std::uint64_t pattern) const {
  for (const auto& e : completed) {
    if (e.phase == phase && e.pattern == pattern) return true;
  }
  return false;
}

std::uint64_t ShardManifest::committed_bytes() const {
  return completed.empty() ? 0 : completed.back().bytes;
}

io::JsonValue ShardManifest::to_json() const {
  io::JsonValue v;
  v["dataset"] = dataset_name;
  io::JsonValue shard;
  shard["index"] = shard_index;
  shard["count"] = shard_count;
  v["shard"] = shard;
  v["patterns_total"] = static_cast<double>(patterns_total);
  v["samples_per_pattern"] = static_cast<double>(samples_per_pattern);
  v["phases"] = phases;
  v["done"] = done;
  io::JsonArray entries;
  for (const auto& e : completed) {
    io::JsonValue entry;
    entry["phase"] = e.phase;
    entry["pattern"] = static_cast<double>(e.pattern);
    entry["bytes"] = static_cast<double>(e.bytes);
    entries.push_back(std::move(entry));
  }
  v["completed"] = io::JsonValue(std::move(entries));
  return v;
}

ShardManifest ShardManifest::from_json(const io::JsonValue& v) {
  ShardManifest m;
  m.dataset_name = v.at("dataset").as_string();
  m.shard_index = static_cast<int>(v.at("shard").at("index").as_int());
  m.shard_count = static_cast<int>(v.at("shard").at("count").as_int());
  m.patterns_total = static_cast<std::uint64_t>(v.at("patterns_total").as_int());
  m.samples_per_pattern =
      static_cast<std::uint64_t>(v.at("samples_per_pattern").as_int());
  m.phases = static_cast<int>(v.at("phases").as_int());
  m.done = v.at("done").as_bool();
  for (const auto& entry : v.at("completed").as_array()) {
    Entry e;
    e.phase = static_cast<int>(entry.at("phase").as_int());
    e.pattern = static_cast<std::uint64_t>(entry.at("pattern").as_int());
    e.bytes = static_cast<std::uint64_t>(entry.at("bytes").as_int());
    m.completed.push_back(e);
  }
  return m;
}

void ShardManifest::save(const std::string& path) const {
  // Commit atomically: a kill during the write leaves the previous manifest
  // (and thus a consistent resume point) in place. The whole tmp+rename
  // sequence is idempotent, so transient failures simply retry it.
  const std::string tmp = path + ".tmp";
  for (int attempt = 1;; ++attempt) {
    try {
      if (fault::point("manifest.save")) {
        throw MapsError("ShardManifest::save: injected I/O failure");
      }
      io::json_save(to_json(), tmp);
      if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw MapsError("ShardManifest::save: rename to " + path + " failed");
      }
      return;
    } catch (const MapsError&) {
      if (attempt >= kIoAttempts) throw;
      io_retry_backoff(attempt);
    }
  }
}

ShardManifest ShardManifest::load(const std::string& path) {
  return from_json(io::json_load(path));
}

std::size_t ShardManifest::absorb_journal(const std::string& journal_path) {
  std::ifstream is(journal_path, std::ios::binary);
  if (!is.good()) return 0;  // no journal: the manifest is the full record

  // A compaction that crashed between the manifest rename and the journal
  // truncation leaves journal lines that the manifest already contains;
  // skip those instead of double-counting.
  std::set<std::pair<int, std::uint64_t>> seen;
  for (const auto& e : completed) seen.insert({e.phase, e.pattern});

  std::size_t adopted = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Entry e;
    try {
      const io::JsonValue v = io::json_parse(line);
      e.phase = static_cast<int>(v.at("phase").as_int());
      e.pattern = static_cast<std::uint64_t>(v.at("pattern").as_int());
      e.bytes = static_cast<std::uint64_t>(v.at("bytes").as_int());
    } catch (const std::exception&) {
      // Torn trailing line from a kill mid-append: everything from here on
      // is uncommitted. Stop — the last fully flushed commit wins.
      break;
    }
    if (!seen.insert({e.phase, e.pattern}).second) continue;
    completed.push_back(e);
    ++adopted;
  }
  return adopted;
}

ShardJournal::ShardJournal(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  maps::require(file_ != nullptr, "ShardJournal: cannot open " + path_);
}

ShardJournal::~ShardJournal() { close(); }

void ShardJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void ShardJournal::append(const ShardManifest::Entry& e) {
  maps::require(file_ != nullptr, "ShardJournal::append: journal closed");
  io::JsonValue v;
  v["phase"] = e.phase;
  v["pattern"] = static_cast<double>(e.pattern);
  v["bytes"] = static_cast<double>(e.bytes);
  const std::string line = v.dump() + "\n";
  // The journal's crash contract is "last fully flushed line wins"; a blind
  // rewrite after a partial write would glue the retried line onto the torn
  // one and poison every later line for absorb_journal. Every prior append
  // was flushed, so ftell here is the committed physical size — retries
  // truncate back to it before rewriting.
  const long committed = std::ftell(file_);
  maps::require(committed >= 0, "ShardJournal::append: ftell on " + path_ + " failed");
  for (int attempt = 1;; ++attempt) {
    try {
      if (fault::point("journal.append")) {
        throw MapsError("ShardJournal::append: injected I/O failure");
      }
      const std::size_t wrote = std::fwrite(line.data(), 1, line.size(), file_);
      maps::require(wrote == line.size() && std::fflush(file_) == 0,
                    "ShardJournal::append: write to " + path_ + " failed");
      return;
    } catch (const MapsError&) {
      if (attempt >= kIoAttempts) throw;
      std::clearerr(file_);
      if (::ftruncate(::fileno(file_), static_cast<off_t>(committed)) != 0 ||
          std::fseek(file_, committed, SEEK_SET) != 0) {
        throw;  // cannot restore the committed prefix: surface the failure
      }
      io_retry_backoff(attempt);
    }
  }
}

void ShardJournal::compact(const ShardManifest& manifest,
                           const std::string& manifest_path) {
  // Order matters for crash safety: first make the manifest the full record
  // (atomic rename), only then drop the journal lines it absorbed. A crash
  // in between is healed by absorb_journal's dedup on the next resume.
  manifest.save(manifest_path);
  close();
  for (int attempt = 1;; ++attempt) {
    try {
      if (fault::point("journal.compact")) {
        throw MapsError("ShardJournal::compact: injected I/O failure");
      }
      std::FILE* truncated = std::fopen(path_.c_str(), "wb");
      maps::require(truncated != nullptr,
                    "ShardJournal::compact: cannot truncate " + path_);
      std::fclose(truncated);
      break;
    } catch (const MapsError&) {
      if (attempt >= kIoAttempts) throw;
      io_retry_backoff(attempt);
    }
  }
  file_ = std::fopen(path_.c_str(), "ab");
  maps::require(file_ != nullptr, "ShardJournal::compact: cannot reopen " + path_);
}

}  // namespace maps::runtime
