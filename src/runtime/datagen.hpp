// The async dataset-generation pipeline: stage-parallel, sharded, resumable.
//
// Work unit: one (phase, pattern position). Phases are fidelity passes over
// the same pattern lineup (one phase for a plain dataset, low+high for
// multi-fidelity pairs). Each unit flows through producer/consumer stages:
//
//   prep   task:  pattern render -> operator assembly -> factorization
//                 (split-complex prepared band backend for direct solves)
//   solve  task:  batched forward + adjoint multi-RHS solves -> labels
//   collect (orchestrator thread): in-order scatter into the Dataset, or
//                 append to the shard .part file + manifest commit
//
// prep and solve run as TaskQueue jobs; the orchestrator keeps a bounded
// window of in-flight patterns (backpressure bounds the resident LU factors)
// and drains results in submission order, so output order — and therefore
// file bytes — is deterministic. With W workers, the prep of pattern i+1
// overlaps the back-substitution of pattern i; with one worker the pipeline
// degrades to the serial fast path.
//
// Sharding: ShardPlan round-robins positions; each shard writes
// `<output>.shard-i-of-N.part` plus a manifest of committed (phase, pattern)
// blocks (resume skips those), and merge_shards reassembles the global order
// into a file byte-identical to a single-process run.
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "core/data/generator.hpp"
#include "runtime/shard.hpp"

namespace maps::runtime {

/// One fidelity pass: device + its pattern set + the fidelity tag stamped
/// onto the records (1 = base resolution).
struct DatagenPhase {
  const devices::DeviceProblem* device = nullptr;
  const data::PatternSet* patterns = nullptr;
  int fidelity_tag = 1;
};

struct DatagenOptions {
  ShardPlan shard;                 // {0, 1} = the whole job
  bool resume = false;             // skip manifest-committed patterns
  std::size_t workers = 0;         // pipeline task workers; 0 = math::num_threads()
  std::size_t max_inflight = 0;    // in-flight patterns; 0 = workers + 2
  /// Soft cap (MB) on the factor memory the in-flight window may hold
  /// resident at once. When set (and max_inflight is 0), the window is
  /// workers + 2 clamped down so that window * per-pattern factor-byte
  /// estimate (solver::DirectBandedBackend::estimate_factor_bytes over the
  /// largest phase grid) stays within the budget — large grids stop
  /// over-committing memory. Never clamps below 1; 0 disables.
  std::size_t memory_budget_mb = 0;
  double progress_every_s = 10.0;  // throughput log cadence; <= 0 disables
  std::ostream* log = nullptr;
  /// Test hook, called after each pattern commits (argument: patterns
  /// completed so far this run). An exception thrown here aborts the run
  /// exactly like a kill — the manifest keeps the committed prefix.
  std::function<void(std::size_t)> after_pattern;
};

/// Counters are in per-phase pattern blocks — the pipeline's work unit. A
/// single-fidelity run has one block per pattern; a multi-fidelity pattern
/// counts once per fidelity phase (so patterns_per_s compares like-for-like
/// only across runs with the same phase count).
struct DatagenStats {
  std::size_t patterns = 0;   // blocks simulated this run (excludes skipped)
  std::size_t skipped = 0;    // resume: blocks already committed
  std::size_t samples = 0;
  int factorizations = 0;
  int solves = 0;
  /// Mixed-precision solve accounting (both 0 under double precision):
  /// refinement steps taken and double-factorization fallbacks triggered.
  int refine_iterations = 0;
  int refine_fallbacks = 0;
  double seconds = 0.0;
  std::size_t cache_hits = 0, cache_misses = 0;  // device factorization cache

  double patterns_per_s() const { return seconds > 0 ? patterns / seconds : 0.0; }
  double solves_per_s() const { return seconds > 0 ? solves / seconds : 0.0; }
  double cache_hit_rate() const {
    const std::size_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  io::JsonValue to_json() const;
};

/// In-memory pipelined generation of all phases (no files, no sharding —
/// opts.shard/resume are ignored). Sample order matches the reference path:
/// phase-major, pattern-ascending, excitation order.
data::Dataset generate_pipelined(const std::vector<DatagenPhase>& phases,
                                 const std::string& name,
                                 const DatagenOptions& opts = {},
                                 DatagenStats* stats_out = nullptr);

/// File-backed generation of opts.shard's slice: appends to the .part file,
/// commits the manifest after every pattern, honours opts.resume. All phases
/// must share the pattern count and excitation count.
DatagenStats generate_sharded(const std::vector<DatagenPhase>& phases,
                              const std::string& name, const std::string& output,
                              const DatagenOptions& opts = {});

/// True when every shard's manifest exists and reports done.
bool all_shards_done(const std::string& output, int shard_count);

/// Infer the shard count of `output` from the manifest files next to it
/// (shard 0's manifest names the count). Returns 0 when no shard manifests
/// exist — e.g. the run was launched with --shard flags the config file
/// never saw.
int detect_shard_count(const std::string& output);

/// Reassemble `shard_count` completed shards of `output` into the full
/// dataset (byte-identical to a single-process run when saved). Throws if a
/// shard is missing, unfinished, or inconsistent. Writes `output` when
/// `write_output`; always returns the merged dataset.
data::Dataset merge_shards(const std::string& output, int shard_count,
                           bool write_output = true);

}  // namespace maps::runtime
