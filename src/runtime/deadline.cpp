#include "runtime/deadline.hpp"

#include <algorithm>
#include <chrono>

namespace maps::runtime {

namespace {

thread_local double t_deadline_ms = 0.0;  // 0 = none

}  // namespace

double now_steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double current_deadline_ms() { return t_deadline_ms; }

bool deadline_expired() {
  return t_deadline_ms > 0.0 && now_steady_ms() >= t_deadline_ms;
}

void check_deadline(const char* where) {
  if (deadline_expired()) {
    throw DeadlineExceeded(std::string(where) + ": deadline exceeded");
  }
}

DeadlineGuard::DeadlineGuard(double deadline_abs_ms) : previous_(t_deadline_ms) {
  if (deadline_abs_ms > 0.0) {
    t_deadline_ms = previous_ > 0.0 ? std::min(previous_, deadline_abs_ms)
                                    : deadline_abs_ms;
  }
}

DeadlineGuard::~DeadlineGuard() { t_deadline_ms = previous_; }

}  // namespace maps::runtime
