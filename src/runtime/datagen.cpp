#include "runtime/datagen.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "math/parallel.hpp"
#include "obs/log.hpp"
#include "runtime/task_queue.hpp"
#include "solver/cache.hpp"
#include "solver/direct.hpp"

namespace maps::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct WorkItem {
  int phase = 0;
  std::size_t pos = 0;
};

struct SolvedPattern {
  std::vector<data::SampleRecord> records;
  int factorizations = 0;
  int solves = 0;
  int refine_iterations = 0;  // mixed-precision refinement work (0 = double)
  int refine_fallbacks = 0;
};

void validate_phases(const std::vector<DatagenPhase>& phases) {
  maps::require(!phases.empty(), "datagen: at least one phase required");
  for (const auto& ph : phases) {
    maps::require(ph.device != nullptr && ph.patterns != nullptr,
                  "datagen: phase device/patterns must be set");
    maps::require(ph.patterns->densities.size() == ph.patterns->ids.size(),
                  "datagen: pattern/ids mismatch");
  }
}

/// Aggregate (deduplicated) device-cache counters across phases.
solver::CacheStats cache_snapshot(const std::vector<DatagenPhase>& phases) {
  solver::CacheStats total;
  std::set<const solver::FactorizationCache*> seen;
  for (const auto& ph : phases) {
    const auto* cache = ph.device->solver_cache.get();
    if (cache == nullptr || !seen.insert(cache).second) continue;
    const auto s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
  }
  return total;
}

/// The stage-parallel core: runs every item through prep and solve tasks on
/// a TaskQueue and hands finished patterns to `commit` in submission order.
void run_pipeline(const std::vector<DatagenPhase>& phases,
                  const std::vector<WorkItem>& items, const DatagenOptions& opts,
                  DatagenStats& stats,
                  const std::function<void(const WorkItem&, SolvedPattern&&)>& commit) {
  const auto t_start = Clock::now();
  const auto cache_before = cache_snapshot(phases);

  TaskQueue queue(opts.workers);
  std::size_t inflight = opts.max_inflight;
  if (inflight == 0) {
    inflight = queue.worker_count() + 2;
    if (opts.memory_budget_mb > 0) {
      // Clamp the window so its resident prepared factorizations fit the
      // budget. The estimate is the worst (largest-grid) phase: every window
      // slot may hold a prepared backend for any phase.
      std::size_t per_pattern = 0;
      for (const auto& ph : phases) {
        per_pattern = std::max(per_pattern,
                               solver::DirectBandedBackend::estimate_factor_bytes(
                                   ph.device->spec, ph.device->sim_options.precision));
      }
      const std::size_t budget_bytes = opts.memory_budget_mb * (std::size_t{1} << 20);
      if (per_pattern > 0) {
        const std::size_t cap = std::max<std::size_t>(1, budget_bytes / per_pattern);
        if (cap < inflight) {
          inflight = cap;
          if (opts.log != nullptr) {
            obs::log_to(opts.log, obs::LogLevel::Info, "datagen",
                        "memory budget " + std::to_string(opts.memory_budget_mb) +
                            " MB caps in-flight window at " +
                            std::to_string(inflight) + " (est. " +
                            std::to_string(per_pattern >> 20) + " MB/pattern)");
          }
        }
      }
    }
  }

  std::deque<std::pair<WorkItem, Future<data::PreparedPattern>>> prep_win;
  std::deque<std::pair<WorkItem, Future<SolvedPattern>>> solve_win;
  std::size_t next = 0, done = 0;
  auto t_last_progress = t_start;

  while (done < items.size()) {
    // Keep the bounded window full (backpressure: at most `inflight`
    // patterns hold prepared factorizations at once).
    while (next < items.size() && prep_win.size() + solve_win.size() < inflight) {
      const WorkItem w = items[next++];
      const DatagenPhase& ph = phases[static_cast<std::size_t>(w.phase)];
      prep_win.emplace_back(w, queue.submit([&ph, w] {
        return data::prepare_pattern(*ph.device, ph.patterns->densities[w.pos], w.pos,
                                     ph.patterns->ids[w.pos]);
      }));
    }

    // Chain the solve stage of every prepared pattern, not just the oldest:
    // a straggling prep (e.g. a slow iterative factorization) must not
    // head-of-line-block the solves of patterns already prepared. Commit
    // order below follows solve submission order — safe, because the memory
    // sink scatters by (phase, position) and the shard sink's manifest
    // records its append order, so final dataset bytes are order-independent.
    bool chained = false;
    for (auto it = prep_win.begin(); it != prep_win.end();) {
      if (!it->second.ready()) {
        ++it;
        continue;
      }
      auto [w, fut] = std::move(*it);
      it = prep_win.erase(it);
      data::PreparedPattern prepared = fut.get();  // rethrows prep failures
      const DatagenPhase& ph = phases[static_cast<std::size_t>(w.phase)];
      solve_win.emplace_back(
          w, queue.submit([&ph, pp = std::move(prepared)]() mutable {
            SolvedPattern sp;
            sp.records = data::solve_prepared(*ph.device, pp, ph.patterns->strategy);
            for (auto& r : sp.records) r.fidelity = ph.fidelity_tag;
            for (const auto& b : pp.group_backends) {
              sp.factorizations += b->factorization_count();
              sp.solves += b->solve_count();
              sp.refine_iterations += b->refinement_iteration_count();
              sp.refine_fallbacks += b->refinement_fallback_count();
            }
            return sp;
          }));
      chained = true;
    }
    if (chained) continue;

    // Solved pattern ready: commit (oldest-submitted first).
    if (!solve_win.empty() && solve_win.front().second.ready()) {
      auto [w, fut] = std::move(solve_win.front());
      solve_win.pop_front();
      SolvedPattern sp = fut.get();  // rethrows solve failures
      stats.samples += sp.records.size();
      stats.factorizations += sp.factorizations;
      stats.solves += sp.solves;
      stats.refine_iterations += sp.refine_iterations;
      stats.refine_fallbacks += sp.refine_fallbacks;
      commit(w, std::move(sp));
      ++stats.patterns;
      ++done;

      const auto now = Clock::now();
      stats.seconds = seconds_between(t_start, now);
      if (opts.log != nullptr && opts.progress_every_s > 0 &&
          seconds_between(t_last_progress, now) >= opts.progress_every_s &&
          done < items.size()) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%zu/%zu patterns | %.2f patterns/s | %.1f solves/s",
                      done, items.size(), stats.patterns_per_s(),
                      stats.solves_per_s());
        obs::log_to(opts.log, obs::LogLevel::Info, "datagen", line);
        t_last_progress = now;
      }
      if (opts.after_pattern) opts.after_pattern(done);
      continue;
    }

    // Nothing ready: block on the oldest outstanding stage. Workers stay
    // busy on the queued window meanwhile.
    if (!solve_win.empty()) {
      solve_win.front().second.wait();
    } else if (!prep_win.empty()) {
      prep_win.front().second.wait();
    } else {
      break;  // defensive: no work in flight and nothing to submit
    }
  }

  stats.seconds = seconds_between(t_start, Clock::now());
  const auto cache_after = cache_snapshot(phases);
  stats.cache_hits = cache_after.hits - cache_before.hits;
  stats.cache_misses = cache_after.misses - cache_before.misses;
}

}  // namespace

io::JsonValue DatagenStats::to_json() const {
  io::JsonValue v;
  v["patterns"] = static_cast<double>(patterns);
  v["skipped"] = static_cast<double>(skipped);
  v["samples"] = static_cast<double>(samples);
  v["factorizations"] = factorizations;
  v["solves"] = solves;
  v["refine_iterations"] = refine_iterations;
  v["refine_fallbacks"] = refine_fallbacks;
  v["seconds"] = seconds;
  v["patterns_per_s"] = patterns_per_s();
  v["solves_per_s"] = solves_per_s();
  io::JsonValue cache;
  cache["hits"] = static_cast<double>(cache_hits);
  cache["misses"] = static_cast<double>(cache_misses);
  cache["hit_rate"] = cache_hit_rate();
  v["cache"] = cache;
  return v;
}

data::Dataset generate_pipelined(const std::vector<DatagenPhase>& phases,
                                 const std::string& name, const DatagenOptions& opts,
                                 DatagenStats* stats_out) {
  validate_phases(phases);
  maps::require(opts.shard.single(),
                "generate_pipelined: sharded runs go through generate_sharded");

  // Phase-major sample layout, matching the reference path's ordering.
  std::vector<std::size_t> phase_offset(phases.size(), 0);
  std::size_t total = 0;
  std::vector<WorkItem> items;
  for (std::size_t ph = 0; ph < phases.size(); ++ph) {
    phase_offset[ph] = total;
    const std::size_t m = phases[ph].patterns->densities.size();
    total += m * phases[ph].device->excitations.size();
    for (std::size_t p = 0; p < m; ++p) {
      items.push_back({static_cast<int>(ph), p});
    }
  }

  data::Dataset ds;
  ds.name = name;
  ds.samples.resize(total);
  DatagenStats stats;
  run_pipeline(phases, items, opts, stats,
               [&](const WorkItem& w, SolvedPattern&& sp) {
                 const std::size_t n_exc = sp.records.size();  // one per excitation
                 const std::size_t base =
                     phase_offset[static_cast<std::size_t>(w.phase)] + w.pos * n_exc;
                 for (std::size_t e = 0; e < sp.records.size(); ++e) {
                   ds.samples[base + e] = std::move(sp.records[e]);
                 }
               });
  if (stats_out != nullptr) *stats_out = stats;
  return ds;
}

DatagenStats generate_sharded(const std::vector<DatagenPhase>& phases,
                              const std::string& name, const std::string& output,
                              const DatagenOptions& opts) {
  namespace fs = std::filesystem;
  validate_phases(phases);
  opts.shard.validate();

  const std::size_t m = phases.front().patterns->densities.size();
  const std::size_t n_exc = phases.front().device->excitations.size();
  for (const auto& ph : phases) {
    maps::require(ph.patterns->densities.size() == m &&
                      ph.device->excitations.size() == n_exc,
                  "generate_sharded: phases must share pattern and excitation counts");
  }

  const std::string part_path =
      shard_part_path(output, opts.shard.index, opts.shard.count);
  const std::string manifest_path =
      shard_manifest_path(output, opts.shard.index, opts.shard.count);
  const std::string journal_path =
      shard_journal_path(output, opts.shard.index, opts.shard.count);

  // Start fresh, or adopt the committed prefix of a previous (killed) run.
  ShardManifest manifest;
  bool fresh = true;
  if (opts.resume && fs::exists(manifest_path)) {
    manifest = ShardManifest::load(manifest_path);
    // Commits since the last compaction live in the append-only journal
    // (one flushed line per pattern block; a torn trailing line is dropped).
    manifest.absorb_journal(journal_path);
    maps::require(manifest.dataset_name == name && manifest.shard_index == opts.shard.index &&
                      manifest.shard_count == opts.shard.count &&
                      manifest.patterns_total == m &&
                      manifest.samples_per_pattern == n_exc &&
                      manifest.phases == static_cast<int>(phases.size()),
                  "generate_sharded: resume manifest does not match this job (" +
                      manifest_path + ")");
    const std::uint64_t committed = manifest.committed_bytes();
    if (committed > 0) {
      maps::require(fs::exists(part_path),
                    "generate_sharded: manifest found but shard part file missing: " +
                        part_path);
      const std::uint64_t actual = fs::file_size(part_path);
      maps::require(actual >= committed,
                    "generate_sharded: shard part file shorter than its manifest: " +
                        part_path);
      // Drop a partial trailing write from the killed run.
      if (actual > committed) fs::resize_file(part_path, committed);
    }
    fresh = false;
  }
  if (fresh) {
    manifest = ShardManifest{};
    manifest.dataset_name = name;
    manifest.shard_index = opts.shard.index;
    manifest.shard_count = opts.shard.count;
    manifest.patterns_total = m;
    manifest.samples_per_pattern = n_exc;
    manifest.phases = static_cast<int>(phases.size());
    // A journal from an unrelated earlier run at this path must not leak
    // into the fresh manifest.
    std::remove(journal_path.c_str());
  }

  DatagenStats stats;
  // O(1) committed lookups: resume startup must stay linear in the shard's
  // pattern count.
  std::set<std::pair<int, std::uint64_t>> committed;
  for (const auto& e : manifest.completed) committed.insert({e.phase, e.pattern});
  std::vector<WorkItem> items;
  for (std::size_t ph = 0; ph < phases.size(); ++ph) {
    for (const std::size_t p : opts.shard.owned(m)) {
      if (committed.count({static_cast<int>(ph), static_cast<std::uint64_t>(p)})) {
        ++stats.skipped;
      } else {
        items.push_back({static_cast<int>(ph), p});
      }
    }
  }

  if (manifest.done && items.empty()) {
    if (opts.log != nullptr) {
      obs::log_to(opts.log, obs::LogLevel::Info, "datagen",
                  "shard " + std::to_string(opts.shard.index) + "/" +
                      std::to_string(opts.shard.count) + " already complete (" +
                      std::to_string(stats.skipped) +
                      " pattern blocks committed)");
    }
    return stats;
  }

  std::ofstream part(part_path,
                     fresh ? std::ios::binary | std::ios::trunc
                           : std::ios::binary | std::ios::app);
  maps::require(part.good(), "generate_sharded: cannot open " + part_path);

  // Commit protocol: the base manifest is rewritten atomically only at
  // open/resume/close (compaction points); each per-pattern commit appends
  // one flushed journal line. That keeps the whole run O(n) in shard size —
  // the old rewrite-the-manifest-per-commit protocol was O(n^2) — while the
  // crash guarantee is unchanged: manifest + complete journal lines describe
  // exactly the committed prefix, and a torn trailing line loses at most the
  // in-flight pattern.
  ShardJournal journal(journal_path);
  journal.compact(manifest, manifest_path);

  run_pipeline(phases, items, opts, stats,
               [&](const WorkItem& w, SolvedPattern&& sp) {
                 for (const auto& r : sp.records) data::write_sample(part, r);
                 part.flush();
                 maps::require(part.good(),
                               "generate_sharded: write failed for " + part_path);
                 ShardManifest::Entry e;
                 e.phase = w.phase;
                 e.pattern = w.pos;
                 e.bytes = static_cast<std::uint64_t>(part.tellp());
                 manifest.completed.push_back(e);
                 journal.append(e);
               });

  manifest.done = true;
  journal.compact(manifest, manifest_path);
  journal.close();
  std::remove(journal_path.c_str());
  if (opts.log != nullptr) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "shard %d/%d done: %zu pattern blocks (%zu resumed) | "
                  "%.2f patterns/s | %.1f solves/s",
                  opts.shard.index, opts.shard.count, stats.patterns, stats.skipped,
                  stats.patterns_per_s(), stats.solves_per_s());
    obs::log_to(opts.log, obs::LogLevel::Info, "datagen", line);
  }
  return stats;
}

int detect_shard_count(const std::string& output) {
  namespace fs = std::filesystem;
  const fs::path out(output);
  const fs::path dir = out.parent_path().empty() ? fs::path(".") : out.parent_path();
  const std::string prefix = out.filename().string() + ".shard-0-of-";
  const std::string suffix = ".manifest.json";
  if (!fs::exists(dir)) return 0;
  std::set<int> candidates;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string count_str =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    try {
      const int count = std::stoi(count_str);
      if (count >= 1 && std::to_string(count) == count_str) candidates.insert(count);
    } catch (const std::exception&) {
      continue;
    }
  }
  if (candidates.empty()) return 0;
  // Stale manifests from a differently-sharded earlier run make the answer
  // ambiguous; refusing beats silently merging the old data.
  maps::require(candidates.size() == 1,
                "detect_shard_count: manifests for multiple shard counts exist "
                "next to " + output +
                    " — set shard_count in the config or remove the stale "
                    ".shard-*.manifest.json files");
  return *candidates.begin();
}

bool all_shards_done(const std::string& output, int shard_count) {
  for (int i = 0; i < shard_count; ++i) {
    const std::string path = shard_manifest_path(output, i, shard_count);
    if (!std::filesystem::exists(path)) return false;
    try {
      if (!ShardManifest::load(path).done) return false;
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

data::Dataset merge_shards(const std::string& output, int shard_count,
                           bool write_output) {
  maps::require(shard_count >= 1, "merge_shards: shard count must be >= 1");

  std::vector<ShardManifest> manifests;
  for (int i = 0; i < shard_count; ++i) {
    const std::string path = shard_manifest_path(output, i, shard_count);
    maps::require(std::filesystem::exists(path),
                  "merge_shards: missing shard manifest " + path);
    manifests.push_back(ShardManifest::load(path));
    const auto& mf = manifests.back();
    maps::require(mf.done, "merge_shards: shard " + std::to_string(i) +
                               " is not finished (" + path + ")");
    maps::require(mf.shard_index == i && mf.shard_count == shard_count,
                  "merge_shards: manifest identity mismatch in " + path);
    maps::require(mf.dataset_name == manifests.front().dataset_name &&
                      mf.patterns_total == manifests.front().patterns_total &&
                      mf.samples_per_pattern == manifests.front().samples_per_pattern &&
                      mf.phases == manifests.front().phases,
                  "merge_shards: shards describe different datasets");
  }

  const std::uint64_t m = manifests.front().patterns_total;
  const std::uint64_t spp = manifests.front().samples_per_pattern;
  const int phases = manifests.front().phases;
  const std::size_t total = static_cast<std::size_t>(m * spp * phases);

  data::Dataset ds;
  ds.name = manifests.front().dataset_name;
  ds.samples.resize(total);
  std::vector<bool> filled(total, false);

  for (int i = 0; i < shard_count; ++i) {
    const std::string path = shard_part_path(output, i, shard_count);
    std::ifstream is(path, std::ios::binary);
    maps::require(is.good(), "merge_shards: cannot open " + path);
    for (const auto& entry : manifests[static_cast<std::size_t>(i)].completed) {
      maps::require(entry.phase >= 0 && entry.phase < phases && entry.pattern < m,
                    "merge_shards: manifest entry out of range in shard " +
                        std::to_string(i));
      const std::size_t base = static_cast<std::size_t>(entry.phase) *
                                   static_cast<std::size_t>(m * spp) +
                               static_cast<std::size_t>(entry.pattern * spp);
      for (std::uint64_t e = 0; e < spp; ++e) {
        maps::require(!filled[base + e],
                      "merge_shards: duplicate pattern across shards");
        ds.samples[base + e] = data::read_sample(is);
        filled[base + e] = true;
      }
    }
  }
  for (std::size_t k = 0; k < total; ++k) {
    maps::require(filled[k], "merge_shards: dataset has holes — are all shards run "
                             "with the same pattern set and shard count?");
  }

  if (write_output) {
    // Write-then-rename: concurrent mergers (two shards finishing at once
    // both observing all_shards_done) each produce identical bytes and the
    // atomic rename makes one of them the winner — never a torn output.
    const std::string tmp =
        output + ".merge-tmp." + std::to_string(::getpid());
    ds.save(tmp);
    if (std::rename(tmp.c_str(), output.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw MapsError("merge_shards: rename to " + output + " failed");
    }
  }
  return ds;
}

}  // namespace maps::runtime
