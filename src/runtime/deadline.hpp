// Deadline propagation: a thread-local absolute deadline that long-running
// kernels (solver refinement, Krylov iterations) poll between work units.
//
// The serving layer computes an absolute deadline when a request carries a
// `deadline_ms` budget and installs a DeadlineGuard on the thread that runs
// the expensive tier. Everything the thread calls synchronously — Simulation,
// DirectBandedBackend refinement, BiCGSTAB — can then `check_deadline()`
// without any plumbing through the solver interfaces, and a blown deadline
// unwinds as DeadlineExceeded, which the wire layer turns into a structured
// {"error": {"code": "deadline_exceeded"}} reply instead of blocking the
// pipeline on work nobody is waiting for anymore.
//
// Guards nest: an inner guard can only tighten (the effective deadline is
// the minimum of the active ones) and the destructor restores the outer one.
// No deadline installed => checks are no-ops.
#pragma once

#include <string>

#include "math/types.hpp"

namespace maps::runtime {

/// Thrown by check_deadline() past the installed deadline.
class DeadlineExceeded : public MapsError {
 public:
  explicit DeadlineExceeded(const std::string& what) : MapsError(what) {}
};

/// Milliseconds on the steady clock (the deadline time base).
double now_steady_ms();

/// The calling thread's effective absolute deadline (steady ms), 0 = none.
double current_deadline_ms();

/// True when a deadline is installed and has passed.
bool deadline_expired();

/// Throw DeadlineExceeded("<where>: deadline exceeded") when expired.
void check_deadline(const char* where);

/// Install `deadline_abs_ms` (steady ms; <= 0 = no-op) as this thread's
/// deadline for the guard's scope, tightening any active outer deadline.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(double deadline_abs_ms);
  ~DeadlineGuard();
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

 private:
  double previous_;
};

}  // namespace maps::runtime
