#include "runtime/task_queue.hpp"

#include <algorithm>

#include "math/parallel.hpp"

namespace maps::runtime {

TaskQueue::TaskQueue(std::size_t workers) {
  const std::size_t n =
      std::max<std::size_t>(1, workers == 0 ? maps::math::num_threads() : workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t TaskQueue::pending() const {
  std::lock_guard lk(mu_);
  return jobs_.size();
}

void TaskQueue::enqueue(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    maps::require(!stop_, "TaskQueue::submit: queue is shut down");
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void TaskQueue::worker_loop() {
  // Nested parallel_for from tasks runs serially (see header).
  maps::math::ThreadPool::register_worker_thread();
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
    if (jobs_.empty()) return;  // stop_ && drained
    auto job = std::move(jobs_.front());
    jobs_.pop_front();
    lk.unlock();
    job();  // submit() wrappers capture exceptions into the promise
    lk.lock();
  }
}

TaskQueue& TaskQueue::shared() {
  static TaskQueue queue;
  return queue;
}

}  // namespace maps::runtime
