// TaskQueue: the submit-style async execution layer on top of
// math::ThreadPool's thread budget.
//
// The global ThreadPool runs one blocking parallel_for at a time — the right
// shape for data-parallel kernels, the wrong one for pipelines that want
// assembly/factorization of pattern i+1 in flight while pattern i is still
// in back-substitution. TaskQueue adds that layer: submit(fn) enqueues an
// opaque job and returns a Future for its result; a fixed set of workers
// (default: the pool's thread budget, math::num_threads()) drains the queue
// FIFO. Every worker registers itself with the ThreadPool
// (register_worker_thread), so library code called from a task runs its
// nested parallel_for serially instead of contending for the single-task
// global pool — T workers each running serial kernels preserves the machine's
// total parallelism.
//
// Deadlock rule: a task must never block on the Future of another *queued*
// task (FIFO workers would starve). The datagen pipeline obeys this by
// construction — only the orchestrating (non-worker) thread waits on
// futures; tasks receive their inputs by value.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/future.hpp"

namespace maps::runtime {

class TaskQueue {
 public:
  /// `workers` = 0 sizes from math::num_threads().
  explicit TaskQueue(std::size_t workers = 0);
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  std::size_t worker_count() const { return workers_.size(); }
  std::size_t pending() const;

  /// Enqueue fn for asynchronous execution; the returned future delivers
  /// fn's result (or captured exception).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  Future<R> submit(F&& fn) {
    Promise<R> promise;
    Future<R> future = promise.future();
    enqueue([p = std::move(promise), f = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          static_assert(!std::is_void_v<R>, "submit: use submit<int> wrappers");
        } else {
          p.set_value(f());
        }
      } catch (...) {
        p.set_exception(std::current_exception());
      }
    });
    return future;
  }

  /// Process-wide queue used by solve_batch_async and other one-off
  /// submitters. First call fixes the size.
  static TaskQueue& shared();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace maps::runtime
