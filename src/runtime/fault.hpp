// Deterministic fault injection: named fault points compiled into the
// runtime, solver and serve hot paths, zero-cost until a spec arms them.
//
// Instrumented code calls `fault::point("solver.factorize")` at the places
// an operator wants to be able to break on purpose. Unarmed (the default)
// the call is one relaxed atomic load. Armed — via the MAPS_FAULTS
// environment variable or `arm_from_spec()` — each hit consults the point's
// trigger and fires its action:
//
//   throw        throw fault::FaultInjected (an ordinary MapsError subclass;
//                whatever error handling guards the real failure must handle
//                this one)
//   stall:<ms>   sleep the calling thread <ms> milliseconds, then continue
//                (models a slow disk / contended lock / solver outlier)
//   io           return true from point(); the call site simulates its own
//                natural I/O failure (a failed write(), a short read, a
//                rename error) so the recovery path under test is the real
//                one, not an artificial unwind
//
// Spec grammar (';'-separated entries):
//
//   MAPS_FAULTS="<name>=<action>[@<trigger>][;<name>=<action>...]"
//   action  := throw | io | stall:<ms>
//   trigger := always            fire on every hit (default)
//            | nth:<N>           fire exactly once, on the Nth hit (1-based)
//            | every:<K>         fire on hits K, 2K, 3K, ...
//            | p:<P>[,seed:<S>]  fire with probability P from a per-point
//                                deterministic LCG seeded with S (default 1)
//
// Example: MAPS_FAULTS="solver.factorize=throw@nth:3;journal.append=io@every:5;
// batcher.run_batch=stall:20@p:0.1,seed:7". Counters (hits, fires) are kept
// per point and surfaced through `stats()` — the serve wire layer reports
// them in the ServeStats JSON so a chaos run can prove each armed fault
// actually fired.
//
// Registered point names in this repo: solver.factorize, solver.solve,
// solver.iterative, batcher.run_batch, registry.load, journal.append,
// journal.compact, manifest.save, serve.tcp.read, serve.tcp.write,
// http.read, http.write, coalesce.attach, jobs.step, jobs.journal.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "math/types.hpp"

namespace maps::runtime::fault {

/// Thrown by `throw`-action fault points. Derived from MapsError so every
/// existing recovery path treats it exactly like the organic failure.
class FaultInjected : public MapsError {
 public:
  explicit FaultInjected(const std::string& what) : MapsError(what) {}
};

struct PointStats {
  std::string name;
  std::uint64_t hits = 0;   // times an armed point() was reached
  std::uint64_t fires = 0;  // times the trigger matched and the action ran
};

/// True when at least one fault point is armed. Inline fast path: the
/// instrumentation macro-equivalent `point()` checks this first.
bool armed();

/// The instrumentation hook. No-op (returns false) when `name` is not
/// armed. Otherwise: counts the hit, evaluates the trigger, and on a fire
/// throws (action `throw`), stalls (action `stall`) or returns true
/// (action `io` — the caller simulates its own I/O failure).
bool point(std::string_view name);

/// Arm every entry of a spec string (see grammar above). Entries add to /
/// overwrite already-armed points of the same name. Throws MapsError on a
/// malformed spec. An empty spec arms nothing.
void arm_from_spec(const std::string& spec);

/// Disarm every point (including MAPS_FAULTS-armed ones) and reset counters.
void disarm_all();

/// Per-point counters of every armed point, name-sorted.
std::vector<PointStats> stats();

/// Sum of fires across all armed points.
std::uint64_t total_fires();

/// RAII spec arming for tests: arms on construction, disarms everything on
/// destruction (counters reset).
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) { arm_from_spec(spec); }
  ~ScopedFaults() { disarm_all(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace maps::runtime::fault
