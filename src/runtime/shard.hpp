// Horizontal sharding of dataset generation: deterministic partition,
// resumable shard files, byte-identical merge.
//
// A ShardPlan {index, count} round-robins pattern *positions* (0..M-1 in the
// sampled PatternSet) across shards; every shard derives the identical
// PatternSet (per-pattern RNG streams make patterns independent of position
// and shard), simulates only the positions it owns, and appends finished
// patterns to `<output>.shard-<i>-of-<N>.part` while committing progress to
// a JSON manifest. Killing a shard mid-run loses at most the in-flight
// pattern: on --resume the manifest says which (phase, pattern) blocks are
// committed and at which byte offset the last commit ended, so a partial
// trailing write is truncated away and only the missing patterns are
// re-simulated. merge_shards (datagen.hpp) reassembles the M-pattern global
// order and writes a file byte-identical to a single-process run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace maps::runtime {

struct ShardPlan {
  int index = 0;
  int count = 1;

  bool single() const { return count == 1; }
  bool owns(std::size_t pattern_pos) const {
    return static_cast<int>(pattern_pos % static_cast<std::size_t>(count)) == index;
  }
  /// Owned pattern positions among [0, total), ascending.
  std::vector<std::size_t> owned(std::size_t total) const;

  /// Parse "i/N" (0-based index). Throws MapsError on malformed specs.
  static ShardPlan parse(const std::string& spec);

  void validate() const;
};

/// File layout of one shard of `output`.
std::string shard_part_path(const std::string& output, int index, int count);
std::string shard_manifest_path(const std::string& output, int index, int count);
std::string shard_journal_path(const std::string& output, int index, int count);

/// Progress record of one shard: which (phase, pattern) blocks the .part
/// file contains, in file order, and the committed byte size after each.
struct ShardManifest {
  std::string dataset_name;
  int shard_index = 0;
  int shard_count = 1;
  std::uint64_t patterns_total = 0;      // M across all shards
  std::uint64_t samples_per_pattern = 0; // excitations per pattern per phase
  int phases = 1;                        // 1, or 2 for multi-fidelity pairs
  bool done = false;

  struct Entry {
    int phase = 0;
    std::uint64_t pattern = 0;   // global pattern position
    std::uint64_t bytes = 0;     // .part size after this block's commit
  };
  std::vector<Entry> completed;  // file order

  bool is_completed(int phase, std::uint64_t pattern) const;
  /// Committed byte size of the .part file (0 when nothing committed).
  std::uint64_t committed_bytes() const;

  io::JsonValue to_json() const;
  static ShardManifest from_json(const io::JsonValue& v);

  /// Atomic save (tmp + rename), plain load.
  void save(const std::string& path) const;
  static ShardManifest load(const std::string& path);

  /// Absorb the append-only commit journal next to this manifest: each valid
  /// line is one committed Entry appended after the manifest's own
  /// `completed` list. A torn trailing line (from a kill mid-append) is
  /// ignored — the crash guarantee is then exactly the pre-journal one: the
  /// last fully flushed commit wins. Returns the number of entries adopted.
  /// Missing journal file is fine (0).
  std::size_t absorb_journal(const std::string& journal_path);
};

/// Append-only journal of per-pattern commits. The full-manifest rewrite is
/// O(completed) per save, which made the per-pattern commit loop O(n^2) in
/// shard size; a journal line per commit keeps it O(n). The journal is only
/// meaningful next to the base manifest it extends: `compact` folds it back
/// into an atomically rewritten manifest (on open, resume and close) and
/// truncates it.
class ShardJournal {
 public:
  /// Open for appending (creates the file if absent).
  explicit ShardJournal(std::string path);
  ~ShardJournal();

  /// Append one committed entry as a single flushed JSON line.
  void append(const ShardManifest::Entry& e);

  /// Fold journaled state into `manifest` (assumed already absorbed), save
  /// the manifest atomically at `manifest_path`, and truncate the journal —
  /// after which the manifest alone is the full commit record again.
  void compact(const ShardManifest& manifest, const std::string& manifest_path);

  /// Close the append handle (the destructor also closes).
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  // Kept open across appends; reopened after compaction truncates.
  std::FILE* file_ = nullptr;
};

}  // namespace maps::runtime
