// Horizontal sharding of dataset generation: deterministic partition,
// resumable shard files, byte-identical merge.
//
// A ShardPlan {index, count} round-robins pattern *positions* (0..M-1 in the
// sampled PatternSet) across shards; every shard derives the identical
// PatternSet (per-pattern RNG streams make patterns independent of position
// and shard), simulates only the positions it owns, and appends finished
// patterns to `<output>.shard-<i>-of-<N>.part` while committing progress to
// a JSON manifest. Killing a shard mid-run loses at most the in-flight
// pattern: on --resume the manifest says which (phase, pattern) blocks are
// committed and at which byte offset the last commit ended, so a partial
// trailing write is truncated away and only the missing patterns are
// re-simulated. merge_shards (datagen.hpp) reassembles the M-pattern global
// order and writes a file byte-identical to a single-process run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace maps::runtime {

struct ShardPlan {
  int index = 0;
  int count = 1;

  bool single() const { return count == 1; }
  bool owns(std::size_t pattern_pos) const {
    return static_cast<int>(pattern_pos % static_cast<std::size_t>(count)) == index;
  }
  /// Owned pattern positions among [0, total), ascending.
  std::vector<std::size_t> owned(std::size_t total) const;

  /// Parse "i/N" (0-based index). Throws MapsError on malformed specs.
  static ShardPlan parse(const std::string& spec);

  void validate() const;
};

/// File layout of one shard of `output`.
std::string shard_part_path(const std::string& output, int index, int count);
std::string shard_manifest_path(const std::string& output, int index, int count);

/// Progress record of one shard: which (phase, pattern) blocks the .part
/// file contains, in file order, and the committed byte size after each.
struct ShardManifest {
  std::string dataset_name;
  int shard_index = 0;
  int shard_count = 1;
  std::uint64_t patterns_total = 0;      // M across all shards
  std::uint64_t samples_per_pattern = 0; // excitations per pattern per phase
  int phases = 1;                        // 1, or 2 for multi-fidelity pairs
  bool done = false;

  struct Entry {
    int phase = 0;
    std::uint64_t pattern = 0;   // global pattern position
    std::uint64_t bytes = 0;     // .part size after this block's commit
  };
  std::vector<Entry> completed;  // file order

  bool is_completed(int phase, std::uint64_t pattern) const;
  /// Committed byte size of the .part file (0 when nothing committed).
  std::uint64_t committed_bytes() const;

  io::JsonValue to_json() const;
  static ShardManifest from_json(const io::JsonValue& v);

  /// Atomic save (tmp + rename), plain load.
  void save(const std::string& path) const;
  static ShardManifest load(const std::string& path);
};

}  // namespace maps::runtime
