// Bounded MPMC channel: the runtime's backpressure primitive for
// stage-threaded pipelines.
//
// A Channel<T> holds at most `capacity` items; push() blocks while full, so
// an upstream stage that outruns its consumer parks instead of accumulating
// unbounded in-flight state. close() wakes everyone: pending items still
// drain, then pop() returns nullopt and push() returns false, so a stage
// observing a failure closes its channels and the pipeline unwinds without
// special-case signalling. (The datagen pipeline's backpressure is its
// bounded in-order future window — see datagen.cpp; Channel is the
// primitive for workloads with free-running stage threads, e.g. a future
// multi-device generation fan-in.)
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "math/types.hpp"

namespace maps::runtime {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    maps::require(capacity > 0, "Channel: capacity must be positive");
  }

  /// Blocks while the channel is full. Returns false (dropping v) if the
  /// channel was closed.
  bool push(T v) {
    std::unique_lock lk(mu_);
    cv_space_.wait(lk, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    lk.unlock();
    cv_items_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the channel is closed *and*
  /// drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_items_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    cv_space_.notify_one();
    return v;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_items_, cv_space_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace maps::runtime
