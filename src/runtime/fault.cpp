#include "runtime/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace maps::runtime::fault {

namespace {

enum class Action { Throw, Stall, Io };
enum class Trigger { Always, Nth, Every, Prob };

struct Point {
  Action action = Action::Throw;
  double stall_ms = 0.0;
  Trigger trigger = Trigger::Always;
  std::uint64_t n = 1;       // nth / every parameter
  double p = 1.0;            // prob parameter
  std::uint64_t lcg = 1;     // deterministic per-point PRNG state (seeded)
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
  std::atomic<int> armed{0};
};

std::vector<std::pair<std::string, Point>> parse_spec(const std::string& spec);

void apply_parsed(Registry& r, std::vector<std::pair<std::string, Point>> parsed) {
  std::lock_guard lk(r.mu);
  for (auto& [name, pt] : parsed) r.points[name] = std::move(pt);
  r.armed.store(static_cast<int>(r.points.size()), std::memory_order_relaxed);
}

Registry& registry() {
  static Registry r;
  // The MAPS_FAULTS arming must NOT run inside Registry's constructor via
  // arm_from_spec: arm_from_spec calls registry(), and re-entering a
  // function-static's initialization guard deadlocks. call_once after
  // construction arms directly instead.
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    if (const char* env = std::getenv("MAPS_FAULTS")) {
      if (env[0] != '\0') apply_parsed(r, parse_spec(env));
    }
  });
  return r;
}

double parse_number(std::string_view text, std::string_view what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    require(used == text.size(), "MAPS_FAULTS: trailing characters after number");
    return v;
  } catch (const MapsError&) {
    throw;
  } catch (const std::exception&) {
    throw MapsError("MAPS_FAULTS: '" + std::string(text) + "' is not a valid " +
                    std::string(what));
  }
}

Point parse_point(std::string_view entry, std::string_view body) {
  Point pt;
  // body = action[@trigger]
  std::string_view action = body;
  std::string_view trigger;
  if (const auto at = body.find('@'); at != std::string_view::npos) {
    action = body.substr(0, at);
    trigger = body.substr(at + 1);
  }

  if (action == "throw") {
    pt.action = Action::Throw;
  } else if (action == "io") {
    pt.action = Action::Io;
  } else if (action.rfind("stall:", 0) == 0) {
    pt.action = Action::Stall;
    pt.stall_ms = parse_number(action.substr(6), "stall duration (ms)");
    require(pt.stall_ms >= 0.0, "MAPS_FAULTS: stall duration must be >= 0");
  } else {
    throw MapsError("MAPS_FAULTS: unknown action in '" + std::string(entry) +
                    "' (throw | io | stall:<ms>)");
  }

  if (trigger.empty() || trigger == "always") {
    pt.trigger = Trigger::Always;
  } else if (trigger.rfind("nth:", 0) == 0) {
    pt.trigger = Trigger::Nth;
    const double n = parse_number(trigger.substr(4), "nth count");
    require(n >= 1.0, "MAPS_FAULTS: nth:<N> must be >= 1");
    pt.n = static_cast<std::uint64_t>(n);
  } else if (trigger.rfind("every:", 0) == 0) {
    pt.trigger = Trigger::Every;
    const double k = parse_number(trigger.substr(6), "every period");
    require(k >= 1.0, "MAPS_FAULTS: every:<K> must be >= 1");
    pt.n = static_cast<std::uint64_t>(k);
  } else if (trigger.rfind("p:", 0) == 0) {
    pt.trigger = Trigger::Prob;
    std::string_view rest = trigger.substr(2);
    std::string_view prob = rest;
    if (const auto comma = rest.find(','); comma != std::string_view::npos) {
      prob = rest.substr(0, comma);
      std::string_view seed = rest.substr(comma + 1);
      require(seed.rfind("seed:", 0) == 0,
              "MAPS_FAULTS: expected seed:<S> after p:<P>,");
      pt.lcg = static_cast<std::uint64_t>(parse_number(seed.substr(5), "seed"));
      if (pt.lcg == 0) pt.lcg = 1;
    }
    pt.p = parse_number(prob, "probability");
    require(pt.p >= 0.0 && pt.p <= 1.0, "MAPS_FAULTS: p:<P> must be in [0, 1]");
  } else {
    throw MapsError("MAPS_FAULTS: unknown trigger in '" + std::string(entry) +
                    "' (always | nth:<N> | every:<K> | p:<P>[,seed:<S>])");
  }
  return pt;
}

}  // namespace

bool armed() { return registry().armed.load(std::memory_order_relaxed) > 0; }

namespace {

// Parse the whole spec before touching the registry, so a malformed tail
// does not leave a half-armed configuration behind.
std::vector<std::pair<std::string, Point>> parse_spec(const std::string& spec) {
  std::vector<std::pair<std::string, Point>> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    std::string_view entry(spec.data() + pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    require(eq != std::string_view::npos && eq > 0 && eq + 1 < entry.size(),
            "MAPS_FAULTS: entry '" + std::string(entry) +
                "' is not <name>=<action>[@<trigger>]");
    parsed.emplace_back(std::string(entry.substr(0, eq)),
                        parse_point(entry, entry.substr(eq + 1)));
  }
  return parsed;
}

}  // namespace

void arm_from_spec(const std::string& spec) {
  auto parsed = parse_spec(spec);
  apply_parsed(registry(), std::move(parsed));
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  r.points.clear();
  r.armed.store(0, std::memory_order_relaxed);
}

bool point(std::string_view name) {
  Registry& r = registry();
  if (r.armed.load(std::memory_order_relaxed) == 0) return false;

  Action action;
  double stall_ms = 0.0;
  {
    std::lock_guard lk(r.mu);
    const auto it = r.points.find(name);
    if (it == r.points.end()) return false;
    Point& pt = it->second;
    ++pt.hits;
    bool fire = false;
    switch (pt.trigger) {
      case Trigger::Always: fire = true; break;
      case Trigger::Nth: fire = pt.hits == pt.n; break;
      case Trigger::Every: fire = pt.hits % pt.n == 0; break;
      case Trigger::Prob: {
        // Deterministic per-point stream: same seed + same hit order =>
        // same firing sequence (MMIX LCG constants).
        pt.lcg = pt.lcg * 6364136223846793005ull + 1442695040888963407ull;
        const double u =
            static_cast<double>(pt.lcg >> 11) / static_cast<double>(1ull << 53);
        fire = u < pt.p;
        break;
      }
    }
    if (!fire) return false;
    ++pt.fires;
    action = pt.action;
    stall_ms = pt.stall_ms;
  }

  switch (action) {
    case Action::Throw:
      throw FaultInjected("fault injected at '" + std::string(name) + "'");
    case Action::Stall:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
      return false;
    case Action::Io:
      return true;
  }
  return false;
}

std::vector<PointStats> stats() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<PointStats> out;
  out.reserve(r.points.size());
  for (const auto& [name, pt] : r.points) {
    out.push_back(PointStats{name, pt.hits, pt.fires});
  }
  return out;
}

std::uint64_t total_fires() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::uint64_t total = 0;
  for (const auto& [name, pt] : r.points) total += pt.fires;
  return total;
}

}  // namespace maps::runtime::fault
