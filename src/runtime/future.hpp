// Minimal promise/future pair for the async execution layer.
//
// A Future<T> is a handle to a value produced by a TaskQueue job (or any
// producer holding the matching Promise<T>). Unlike std::future it is
// copyable — several pipeline stages may wait on the same upstream result —
// and exposes a non-blocking ready() poll, which the datagen pipeline uses
// to drain completed patterns without stalling on stragglers. Exceptions
// thrown by the producer are captured and rethrown from get().
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "math/types.hpp"

namespace maps::runtime {

namespace detail {

template <typename T>
struct SharedState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool done = false;
  std::vector<std::function<void()>> callbacks;
};

}  // namespace detail

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::SharedState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// Non-blocking: has the producer delivered (value or exception)?
  bool ready() const {
    maps::require(valid(), "Future::ready: empty future");
    std::lock_guard lk(state_->mu);
    return state_->done;
  }

  void wait() const {
    maps::require(valid(), "Future::wait: empty future");
    std::unique_lock lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->done; });
  }

  /// Bounded wait: true when delivered within `ms` (<= 0 polls). The
  /// graceful-shutdown drain uses this to stop waiting on stragglers once
  /// the drain deadline is spent.
  bool wait_for_ms(double ms) const {
    maps::require(valid(), "Future::wait_for_ms: empty future");
    std::unique_lock lk(state_->mu);
    if (ms <= 0.0) return state_->done;
    return state_->cv.wait_for(lk, std::chrono::duration<double, std::milli>(ms),
                               [&] { return state_->done; });
  }

  /// Completion hook: `fn` runs exactly once, after the producer delivers
  /// (value or exception) — immediately on the caller's thread when the
  /// future is already done, otherwise on the producer's thread inside
  /// set_value / set_exception. Callbacks must be cheap and non-blocking
  /// (the HTTP front end uses them to hand a finished reply back to its
  /// event loop); never wait on another future from inside one.
  void subscribe(std::function<void()> fn) const {
    maps::require(valid(), "Future::subscribe: empty future");
    {
      std::unique_lock lk(state_->mu);
      if (!state_->done) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    fn();  // already delivered: run inline, outside the lock
  }

  /// Block until delivered; return the value or rethrow the producer's
  /// exception. The value is *moved out* — get() is one-shot per future
  /// chain (copies of the same Future share one underlying value).
  T get() {
    maps::require(valid(), "Future::get: empty future");
    std::unique_lock lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->done; });
    if (state_->error) std::rethrow_exception(state_->error);
    maps::require(state_->value.has_value(), "Future::get: value already taken");
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  void set_value(T value) {
    std::vector<std::function<void()>> callbacks;
    {
      std::lock_guard lk(state_->mu);
      maps::require(!state_->done, "Promise::set_value: already satisfied");
      state_->value = std::move(value);
      state_->done = true;
      callbacks.swap(state_->callbacks);
    }
    state_->cv.notify_all();
    for (auto& fn : callbacks) fn();
  }

  void set_exception(std::exception_ptr e) {
    std::vector<std::function<void()>> callbacks;
    {
      std::lock_guard lk(state_->mu);
      maps::require(!state_->done, "Promise::set_exception: already satisfied");
      state_->error = std::move(e);
      state_->done = true;
      callbacks.swap(state_->callbacks);
    }
    state_->cv.notify_all();
    for (auto& fn : callbacks) fn();
  }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

}  // namespace maps::runtime
