#include "math/special.hpp"

#include <cmath>

namespace maps::math {

// Abramowitz & Stegun 9.4.1 / 9.4.3 (J0), 9.4.4 / 9.4.6 (J1) and the
// companion Y0/Y1 fits 9.4.2 / 9.4.5. The large-argument forms use the
// modulus/phase expansions 9.4.7-9.4.9.

namespace {

struct ModPhase {
  double f;  // modulus factor
  double t;  // phase correction
};

ModPhase mod_phase0(double ax) {
  const double z = 3.0 / ax;
  ModPhase mp;
  mp.f = 0.79788456 + z * (-0.00000077 + z * (-0.00552740 + z * (-0.00009512 +
         z * (0.00137237 + z * (-0.00072805 + z * 0.00014476)))));
  mp.t = ax - 0.78539816 + z * (-0.04166397 + z * (-0.00003954 + z * (0.00262573 +
         z * (-0.00054125 + z * (-0.00029333 + z * 0.00013558)))));
  return mp;
}

ModPhase mod_phase1(double ax) {
  const double z = 3.0 / ax;
  ModPhase mp;
  mp.f = 0.79788456 + z * (0.00000156 + z * (0.01659667 + z * (0.00017105 +
         z * (-0.00249511 + z * (0.00113653 + z * -0.00020033)))));
  mp.t = ax - 2.35619449 + z * (0.12499612 + z * (0.00005650 + z * (-0.00637879 +
         z * (0.00074348 + z * (0.00079824 + z * -0.00029166)))));
  return mp;
}

}  // namespace

double bessel_j0(double x) {
  const double ax = std::abs(x);
  if (ax <= 3.0) {
    const double y = (x / 3.0) * (x / 3.0);
    return 1.0 + y * (-2.2499997 + y * (1.2656208 + y * (-0.3163866 +
           y * (0.0444479 + y * (-0.0039444 + y * 0.0002100)))));
  }
  const ModPhase mp = mod_phase0(ax);
  return mp.f * std::cos(mp.t) / std::sqrt(ax);
}

double bessel_j1(double x) {
  const double ax = std::abs(x);
  if (ax <= 3.0) {
    const double y = (x / 3.0) * (x / 3.0);
    const double j1_over_x = 0.5 + y * (-0.56249985 + y * (0.21093573 +
        y * (-0.03954289 + y * (0.00443319 + y * (-0.00031761 + y * 0.00001109)))));
    return x * j1_over_x;
  }
  const ModPhase mp = mod_phase1(ax);
  const double v = mp.f * std::cos(mp.t) / std::sqrt(ax);
  return x < 0.0 ? -v : v;
}

double bessel_y0(double x) {
  require(x > 0.0, "bessel_y0: x must be > 0");
  if (x <= 3.0) {
    const double y = (x / 3.0) * (x / 3.0);
    const double p = 0.36746691 + y * (0.60559366 + y * (-0.74350384 +
        y * (0.25300117 + y * (-0.04261214 + y * (0.00427916 + y * -0.00024846)))));
    return (2.0 / kPi) * std::log(0.5 * x) * bessel_j0(x) + p;
  }
  const ModPhase mp = mod_phase0(x);
  return mp.f * std::sin(mp.t) / std::sqrt(x);
}

double bessel_y1(double x) {
  require(x > 0.0, "bessel_y1: x must be > 0");
  if (x <= 3.0) {
    const double y = (x / 3.0) * (x / 3.0);
    const double xy1 = -0.6366198 + y * (0.2212091 + y * (2.1682709 +
        y * (-1.3164827 + y * (0.3123951 + y * (-0.0400976 + y * 0.0027873)))));
    return (2.0 / kPi) * std::log(0.5 * x) * bessel_j1(x) + xy1 / x;
  }
  const ModPhase mp = mod_phase1(x);
  return mp.f * std::sin(mp.t) / std::sqrt(x);
}

cplx hankel1_0(double x) { return cplx{bessel_j0(x), bessel_y0(x)}; }

cplx hankel1_1(double x) { return cplx{bessel_j1(x), bessel_y1(x)}; }

cplx greens2d(double k, double r) {
  require(k > 0.0 && r > 0.0, "greens2d: k and r must be > 0");
  return 0.25 * kI * hankel1_0(k * r);
}

}  // namespace maps::math
