#include "math/rng.hpp"

// Header-only today; translation unit kept so the library always has at least
// one object file and future out-of-line distributions have a home.
namespace maps::math {}
