#include "math/interpolate.hpp"

#include <algorithm>
#include <cmath>

namespace maps::math {

template <typename T>
Grid2D<T> bilinear_resample(const Grid2D<T>& src, index_t nx, index_t ny) {
  require(nx > 0 && ny > 0, "bilinear_resample: empty target");
  require(src.nx() > 0 && src.ny() > 0, "bilinear_resample: empty source");
  Grid2D<T> out(nx, ny);
  const double sx = static_cast<double>(src.nx()) / static_cast<double>(nx);
  const double sy = static_cast<double>(src.ny()) / static_cast<double>(ny);
  for (index_t j = 0; j < ny; ++j) {
    // Cell-center mapping: target center (j+0.5)*sy lands in source coords.
    const double fy = (static_cast<double>(j) + 0.5) * sy - 0.5;
    const index_t j0 = static_cast<index_t>(std::floor(fy));
    const double wy = fy - static_cast<double>(j0);
    const index_t j0c = std::clamp<index_t>(j0, 0, src.ny() - 1);
    const index_t j1c = std::clamp<index_t>(j0 + 1, 0, src.ny() - 1);
    for (index_t i = 0; i < nx; ++i) {
      const double fx = (static_cast<double>(i) + 0.5) * sx - 0.5;
      const index_t i0 = static_cast<index_t>(std::floor(fx));
      const double wx = fx - static_cast<double>(i0);
      const index_t i0c = std::clamp<index_t>(i0, 0, src.nx() - 1);
      const index_t i1c = std::clamp<index_t>(i0 + 1, 0, src.nx() - 1);
      const T v00 = src(i0c, j0c), v10 = src(i1c, j0c);
      const T v01 = src(i0c, j1c), v11 = src(i1c, j1c);
      out(i, j) = v00 * ((1 - wx) * (1 - wy)) + v10 * (wx * (1 - wy)) +
                  v01 * ((1 - wx) * wy) + v11 * (wx * wy);
    }
  }
  return out;
}

template Grid2D<double> bilinear_resample(const Grid2D<double>&, index_t, index_t);
template Grid2D<cplx> bilinear_resample(const Grid2D<cplx>&, index_t, index_t);

CplxGrid richardson_extrapolate(const CplxGrid& coarse, const CplxGrid& fine,
                                int order) {
  require(order >= 1, "richardson_extrapolate: order must be >= 1");
  const CplxGrid up = bilinear_resample(coarse, fine.nx(), fine.ny());
  const double denom = std::pow(2.0, order) - 1.0;
  CplxGrid out(fine.nx(), fine.ny());
  for (index_t n = 0; n < fine.size(); ++n) {
    out[n] = fine[n] + (fine[n] - up[n]) / denom;
  }
  return out;
}

}  // namespace maps::math
