// Common scalar types and numeric constants used across MAPS.
//
// Unit system (see DESIGN.md §2): normalized Gaussian units with
// eps0 = mu0 = c = 1, lengths in micrometres, omega = 2*pi/lambda.
#pragma once

#include <complex>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <string>

namespace maps {

using cplx = std::complex<double>;
using index_t = std::int64_t;

inline constexpr double kPi = std::numbers::pi;
inline constexpr cplx kI{0.0, 1.0};

/// Angular frequency for a free-space wavelength (um) in normalized units.
inline double omega_of_wavelength(double lambda_um) { return 2.0 * kPi / lambda_um; }

/// Thrown on invalid arguments to numerical routines.
class MapsError : public std::runtime_error {
 public:
  explicit MapsError(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition check that survives NDEBUG builds (numerical code should
/// fail loudly, not corrupt silently).
inline void require(bool cond, const char* msg) {
  if (!cond) throw MapsError(msg);
}
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw MapsError(msg);
}

}  // namespace maps
