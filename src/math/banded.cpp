#include "math/banded.hpp"

#include <algorithm>
#include <cmath>

namespace maps::math {

namespace {
inline double mag(double v) { return std::abs(v); }
inline double mag(const cplx& v) { return std::abs(v.real()) + std::abs(v.imag()); }
}  // namespace

template <typename T>
BandMatrix<T>::BandMatrix(index_t n, index_t kl, index_t ku)
    : n_(n), kl_(kl), ku_(ku), ldab_(2 * kl + ku + 1) {
  require(n > 0 && kl >= 0 && ku >= 0, "BandMatrix: invalid shape");
  require(kl < n && ku < n, "BandMatrix: band exceeds dimension");
  ab_.assign(static_cast<std::size_t>(ldab_) * n_, T{});
  ipiv_.assign(static_cast<std::size_t>(n_), 0);
}

template <typename T>
T BandMatrix<T>::get(index_t i, index_t j) const {
  require(i >= 0 && i < n_ && j >= 0 && j < n_, "BandMatrix::get: out of range");
  if (i - j > kl_ || j - i > ku_) return T{};
  return at(i, j);
}

template <typename T>
void BandMatrix<T>::set(index_t i, index_t j, T v) {
  require(i >= 0 && i < n_ && j >= 0 && j < n_, "BandMatrix::set: out of range");
  require(i - j <= kl_ && j - i <= ku_, "BandMatrix::set: outside band");
  require(!factorized_, "BandMatrix::set: matrix already factorized");
  at(i, j) = v;
}

template <typename T>
void BandMatrix<T>::add(index_t i, index_t j, T v) {
  require(i >= 0 && i < n_ && j >= 0 && j < n_, "BandMatrix::add: out of range");
  require(i - j <= kl_ && j - i <= ku_, "BandMatrix::add: outside band");
  require(!factorized_, "BandMatrix::add: matrix already factorized");
  at(i, j) += v;
}

template <typename T>
std::vector<T> BandMatrix<T>::matvec(const std::vector<T>& x) const {
  require(!factorized_, "BandMatrix::matvec: matrix already factorized");
  require(static_cast<index_t>(x.size()) == n_, "BandMatrix::matvec: size mismatch");
  std::vector<T> y(static_cast<std::size_t>(n_), T{});
  for (index_t j = 0; j < n_; ++j) {
    const index_t ilo = std::max<index_t>(0, j - ku_);
    const index_t ihi = std::min<index_t>(n_ - 1, j + kl_);
    const T xj = x[static_cast<std::size_t>(j)];
    for (index_t i = ilo; i <= ihi; ++i) {
      y[static_cast<std::size_t>(i)] += at(i, j) * xj;
    }
  }
  return y;
}

// xGBTF2: unblocked banded LU with partial pivoting. Column j's pivot search
// is restricted to the kl rows below the diagonal; row interchanges widen the
// upper band to at most kl+ku, which the storage layout already reserves.
template <typename T>
void BandMatrix<T>::factorize() {
  require(!factorized_, "BandMatrix::factorize: already factorized");
  const index_t kv = kl_ + ku_;  // superdiagonals after pivoting
  index_t ju = 0;                // rightmost column affected by current row swaps

  for (index_t j = 0; j < n_; ++j) {
    const index_t km = std::min(kl_, n_ - 1 - j);  // subdiagonal rows in col j
    // Partial pivot: largest magnitude among A(j..j+km, j).
    index_t jp = 0;
    double best = mag(at(j, j));
    for (index_t k = 1; k <= km; ++k) {
      const double m = mag(at(j + k, j));
      if (m > best) {
        best = m;
        jp = k;
      }
    }
    ipiv_[static_cast<std::size_t>(j)] = j + jp;
    if (best == 0.0) throw MapsError("BandMatrix::factorize: singular matrix");

    ju = std::max(ju, std::min(j + ku_ + jp, n_ - 1));
    if (jp != 0) {
      for (index_t col = j; col <= ju; ++col) std::swap(at(j, col), at(j + jp, col));
    }
    if (km > 0) {
      const T inv_piv = T(1) / at(j, j);
      for (index_t k = 1; k <= km; ++k) at(j + k, j) *= inv_piv;
      for (index_t col = j + 1; col <= ju; ++col) {
        const T ajcol = at(j, col);
        if (ajcol != T{}) {
          for (index_t k = 1; k <= km; ++k) at(j + k, col) -= at(j + k, j) * ajcol;
        }
      }
    }
  }
  (void)kv;
  factorized_ = true;
}

// xGBTRS 'N': forward-apply L (with interchanges), then banded back-substitution.
template <typename T>
void BandMatrix<T>::solve_inplace(std::vector<T>& b) const {
  require(factorized_, "BandMatrix::solve: factorize() first");
  require(static_cast<index_t>(b.size()) == n_, "BandMatrix::solve: size mismatch");
  const index_t kv = kl_ + ku_;

  if (kl_ > 0) {
    for (index_t j = 0; j < n_ - 1; ++j) {
      const index_t piv = ipiv_[static_cast<std::size_t>(j)];
      if (piv != j) std::swap(b[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(piv)]);
      const index_t km = std::min(kl_, n_ - 1 - j);
      const T bj = b[static_cast<std::size_t>(j)];
      for (index_t k = 1; k <= km; ++k) {
        b[static_cast<std::size_t>(j + k)] -= at(j + k, j) * bj;
      }
    }
  }
  for (index_t j = n_ - 1; j >= 0; --j) {
    T bj = b[static_cast<std::size_t>(j)] / at(j, j);
    b[static_cast<std::size_t>(j)] = bj;
    const index_t ilo = std::max<index_t>(0, j - kv);
    for (index_t i = ilo; i < j; ++i) {
      b[static_cast<std::size_t>(i)] -= at(i, j) * bj;
    }
  }
}

// xGBTRS 'T': solve U^T z = b by forward substitution over U's columns, then
// apply L^T (multipliers) and the interchanges in reverse order.
template <typename T>
void BandMatrix<T>::solve_transposed_inplace(std::vector<T>& b) const {
  require(factorized_, "BandMatrix::solve_transposed: factorize() first");
  require(static_cast<index_t>(b.size()) == n_,
          "BandMatrix::solve_transposed: size mismatch");
  const index_t kv = kl_ + ku_;

  // U^T is lower triangular with band kv: z_j = (b_j - sum_{i<j} U(i,j) z_i) / U(j,j).
  for (index_t j = 0; j < n_; ++j) {
    T s = b[static_cast<std::size_t>(j)];
    const index_t ilo = std::max<index_t>(0, j - kv);
    for (index_t i = ilo; i < j; ++i) {
      s -= at(i, j) * b[static_cast<std::size_t>(i)];
    }
    b[static_cast<std::size_t>(j)] = s / at(j, j);
  }
  // L^T: unit upper triangular with band kl (stored below diagonal in columns).
  if (kl_ > 0) {
    for (index_t j = n_ - 2; j >= 0; --j) {
      const index_t km = std::min(kl_, n_ - 1 - j);
      T s = b[static_cast<std::size_t>(j)];
      for (index_t k = 1; k <= km; ++k) {
        s -= at(j + k, j) * b[static_cast<std::size_t>(j + k)];
      }
      b[static_cast<std::size_t>(j)] = s;
      const index_t piv = ipiv_[static_cast<std::size_t>(j)];
      if (piv != j) std::swap(b[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(piv)]);
    }
  }
}

// Multi-RHS xGBTRS 'N': identical recurrences to solve_inplace, but the loop
// over right-hand sides is innermost so each factor entry at(i, j) is loaded
// once and applied to the whole batch (the band array is the working set that
// dominates; the RHS vectors are small by comparison).
template <typename T>
void BandMatrix<T>::solve_multi_inplace(std::vector<std::vector<T>>& bs) const {
  require(factorized_, "BandMatrix::solve_multi: factorize() first");
  for (const auto& b : bs) {
    require(static_cast<index_t>(b.size()) == n_,
            "BandMatrix::solve_multi: size mismatch");
  }
  const index_t kv = kl_ + ku_;
  const std::size_t nrhs = bs.size();

  if (kl_ > 0) {
    for (index_t j = 0; j < n_ - 1; ++j) {
      const index_t piv = ipiv_[static_cast<std::size_t>(j)];
      const index_t km = std::min(kl_, n_ - 1 - j);
      for (std::size_t r = 0; r < nrhs; ++r) {
        auto& b = bs[r];
        if (piv != j) {
          std::swap(b[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(piv)]);
        }
        const T bj = b[static_cast<std::size_t>(j)];
        if (bj != T{}) {
          for (index_t k = 1; k <= km; ++k) {
            b[static_cast<std::size_t>(j + k)] -= at(j + k, j) * bj;
          }
        }
      }
    }
  }
  for (index_t j = n_ - 1; j >= 0; --j) {
    const T inv_d = T(1) / at(j, j);
    const index_t ilo = std::max<index_t>(0, j - kv);
    for (std::size_t r = 0; r < nrhs; ++r) {
      auto& b = bs[r];
      const T bj = b[static_cast<std::size_t>(j)] * inv_d;
      b[static_cast<std::size_t>(j)] = bj;
      for (index_t i = ilo; i < j; ++i) {
        b[static_cast<std::size_t>(i)] -= at(i, j) * bj;
      }
    }
  }
}

// Multi-RHS xGBTRS 'T': same batching of solve_transposed_inplace.
template <typename T>
void BandMatrix<T>::solve_transposed_multi_inplace(std::vector<std::vector<T>>& bs) const {
  require(factorized_, "BandMatrix::solve_transposed_multi: factorize() first");
  for (const auto& b : bs) {
    require(static_cast<index_t>(b.size()) == n_,
            "BandMatrix::solve_transposed_multi: size mismatch");
  }
  const index_t kv = kl_ + ku_;
  const std::size_t nrhs = bs.size();

  for (index_t j = 0; j < n_; ++j) {
    const index_t ilo = std::max<index_t>(0, j - kv);
    const T inv_d = T(1) / at(j, j);
    for (std::size_t r = 0; r < nrhs; ++r) {
      auto& b = bs[r];
      T s = b[static_cast<std::size_t>(j)];
      for (index_t i = ilo; i < j; ++i) {
        s -= at(i, j) * b[static_cast<std::size_t>(i)];
      }
      b[static_cast<std::size_t>(j)] = s * inv_d;
    }
  }
  if (kl_ > 0) {
    for (index_t j = n_ - 2; j >= 0; --j) {
      const index_t km = std::min(kl_, n_ - 1 - j);
      const index_t piv = ipiv_[static_cast<std::size_t>(j)];
      for (std::size_t r = 0; r < nrhs; ++r) {
        auto& b = bs[r];
        T s = b[static_cast<std::size_t>(j)];
        for (index_t k = 1; k <= km; ++k) {
          s -= at(j + k, j) * b[static_cast<std::size_t>(j + k)];
        }
        b[static_cast<std::size_t>(j)] = s;
        if (piv != j) {
          std::swap(b[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(piv)]);
        }
      }
    }
  }
}

template class BandMatrix<double>;
template class BandMatrix<cplx>;

}  // namespace maps::math
