// Dense single-precision kernels for the MAPS-Train neural substrate.
//
// sgemm is a cache-blocked, thread-tiled C = alpha*op(A)*op(B) + beta*C over
// row-major storage. The kernel packs op(A)/op(B) into contiguous panels when
// a transpose (or non-tight leading dimension) would otherwise stride the
// inner loop, then runs a register-quad micro-kernel whose innermost loop is
// a unit-stride multiply-accumulate the compiler auto-vectorizes. Rows of C
// are distributed over the thread pool with parallel_for_chunked, so one
// GEMM saturates the machine without caller-side batching tricks.
//
// im2col/col2im lower stride-1 zero-"same"-padded NCHW convolution onto that
// GEMM: im2col unrolls one sample's (C, H, W) plane into a (C*k*k) x (H*W)
// column matrix whose rows are shifted copies of the image (filled with
// row-wise memcpy, no per-element bounds checks); col2im is its exact
// adjoint (scatter-add), which is what the conv input-gradient needs.
#pragma once

#include "math/types.hpp"

namespace maps::math {

enum class Trans { No, Yes };

/// C = alpha * op(A) * op(B) + beta * C.
/// op(A) is M x K, op(B) is K x N, C is M x N; all row-major with leading
/// dimensions lda/ldb/ldc (of the *stored* matrices A, B, not of op(...)).
void sgemm(Trans trans_a, Trans trans_b, index_t M, index_t N, index_t K,
           float alpha, const float* A, index_t lda, const float* B, index_t ldb,
           float beta, float* C, index_t ldc);

/// Unroll one (C, H, W) image plane into col, a (C*k*k) x (H*W) row-major
/// matrix for stride-1 convolution with zero "same" padding (odd k).
/// col row (c*k*k + kh*k + kw) holds the image shifted by (kh - k/2, kw - k/2).
void im2col(const float* x, index_t C, index_t H, index_t W, index_t k, float* col);

/// Adjoint of im2col: accumulate col back into the (C, H, W) plane x.
/// x must be zero-initialized by the caller (col2im adds into it).
void col2im(const float* col, index_t C, index_t H, index_t W, index_t k, float* x);

namespace detail {
/// Unblocked reference GEMM (tests and fallback for degenerate shapes).
void naive_gemm(Trans trans_a, Trans trans_b, index_t M, index_t N, index_t K,
                float alpha, const float* A, index_t lda, const float* B,
                index_t ldb, float beta, float* C, index_t ldc);
}  // namespace detail

}  // namespace maps::math
