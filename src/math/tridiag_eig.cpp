#include "math/tridiag_eig.hpp"

#include <algorithm>
#include <cmath>

namespace maps::math {

namespace {
double hypot2(double a, double b) { return std::hypot(a, b); }
}  // namespace

// Port of the classic EISPACK tql2 algorithm (implicit QL with shifts,
// accumulating the rotations into an eigenvector matrix).
TridiagEig tridiag_eigh(std::vector<double> d, std::vector<double> off) {
  const std::size_t n = d.size();
  require(n >= 1, "tridiag_eigh: empty matrix");
  require(off.size() == n - 1 || (n == 1 && off.empty()),
          "tridiag_eigh: off-diagonal size mismatch");

  // e is padded to length n with a zero sentinel (tql2 convention).
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) e[i] = off[i];

  // z starts as identity; columns become eigenvectors.
  std::vector<std::vector<double>> z(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) z[i][i] = 1.0;

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (m != l) {
        if (iter++ == 60) throw MapsError("tridiag_eigh: too many QL iterations");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        bool deflated = false;  // r == 0 early exit (NR tqli "i >= l" branch)
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            deflated = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z[k][i + 1];
            z[k][i + 1] = s * z[k][i] + c * f;
            z[k][i] = c * z[k][i] - s * f;
          }
        }
        if (deflated) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&d](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagEig out;
  out.eigenvalues.resize(n);
  out.vectors.assign(n, std::vector<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = d[order[k]];
    for (std::size_t i = 0; i < n; ++i) out.vectors[k][i] = z[i][order[k]];
  }
  return out;
}

}  // namespace maps::math
