#include "math/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace maps::math {

thread_local bool ThreadPool::in_worker_ = false;

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MAPS_THREADS")) {
      long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{4} : hw;
  }());
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads) - 1;  // caller participates
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  in_worker_ = true;
  std::unique_lock lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [this] { return stop_ || current_ != nullptr; });
    if (stop_) return;
    Task* task = current_;
    // The caller waits until active_workers drains back to zero, so `task`
    // (a stack object in parallel_for_chunked) cannot dangle while we hold a
    // claim on it.
    ++task->active_workers;
    lk.unlock();
    run_task(*task);
    lk.lock();
    if (--task->active_workers == 0 && task->remaining == 0) cv_done_.notify_all();
    // Avoid spinning on the same finished task before the caller clears it.
    while (current_ == task && !stop_ && task->next >= task->end) {
      cv_work_.wait(lk);
    }
  }
}

void ThreadPool::run_task(Task& task) {
  for (;;) {
    std::size_t b, e;
    {
      std::lock_guard lk(mu_);
      if (task.next >= task.end) return;
      b = task.next;
      e = std::min(task.end, b + task.chunk);
      task.next = e;
    }
    task.body(b, e);
    {
      std::lock_guard lk(mu_);
      task.remaining -= (e - b);
      if (task.remaining == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Serial fallback: nested call from a worker, tiny range, or no helpers.
  if (in_worker_ || workers_.empty() || n <= min_chunk) {
    fn(begin, end);
    return;
  }
  const std::size_t nthreads = workers_.size() + 1;
  const std::size_t chunk =
      std::max(min_chunk, (n + nthreads * 4 - 1) / (nthreads * 4));
  Task task;
  task.body = fn;
  task.begin = begin;
  task.end = end;
  task.chunk = chunk;
  task.next = begin;
  task.remaining = n;
  {
    std::lock_guard lk(mu_);
    current_ = &task;
  }
  cv_work_.notify_all();
  run_task(task);  // caller participates
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&task] {
      return task.remaining == 0 && task.active_workers == 0;
    });
    current_ = nullptr;
  }
  cv_work_.notify_all();  // release workers parked on the finished task
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  ThreadPool::instance().parallel_for(begin, end, fn, grain);
}

void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t min_chunk) {
  ThreadPool::instance().parallel_for_chunked(begin, end, fn, min_chunk);
}

std::size_t num_threads() { return ThreadPool::instance().size() + 1; }

}  // namespace maps::math
