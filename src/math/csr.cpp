#include "math/csr.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "math/parallel.hpp"

namespace maps::math {

template <typename T>
CsrMatrix<T> CsrMatrix<T>::from_triplets(index_t rows, index_t cols,
                                         std::vector<Triplet<T>> triplets) {
  require(rows >= 0 && cols >= 0, "CsrMatrix: negative shape");
  for (const auto& t : triplets) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "CsrMatrix: triplet out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet<T>& a, const Triplet<T>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (std::size_t k = 0; k < triplets.size();) {
    const index_t r = triplets[k].row;
    const index_t c = triplets[k].col;
    T v{};
    while (k < triplets.size() && triplets[k].row == r && triplets[k].col == c) {
      v += triplets[k].value;
      ++k;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(m.values_.size());
  }
  // Rows with no entries inherit the previous offset.
  for (std::size_t r = 1; r < m.row_ptr_.size(); ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

template <typename T>
std::vector<T> CsrMatrix<T>::matvec(const std::vector<T>& x) const {
  require(static_cast<index_t>(x.size()) == cols_, "CsrMatrix::matvec: size mismatch");
  std::vector<T> y(static_cast<std::size_t>(rows_), T{});
  parallel_for_chunked(
      0, static_cast<std::size_t>(rows_),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          T s{};
          for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            s += values_[static_cast<std::size_t>(k)] *
                 x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
          }
          y[r] = s;
        }
      },
      4096);
  return y;
}

template <typename T>
std::vector<T> CsrMatrix<T>::matvec_transposed(const std::vector<T>& x) const {
  require(static_cast<index_t>(x.size()) == rows_,
          "CsrMatrix::matvec_transposed: size mismatch");
  std::vector<T> y(static_cast<std::size_t>(cols_), T{});
  for (index_t r = 0; r < rows_; ++r) {
    const T xr = x[static_cast<std::size_t>(r)];
    for (index_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xr;
    }
  }
  return y;
}

template <typename T>
CsrMatrix<T> CsrMatrix<T>::transposed() const {
  std::vector<Triplet<T>> tris;
  tris.reserve(values_.size());
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      tris.push_back({col_idx_[static_cast<std::size_t>(k)], r,
                      values_[static_cast<std::size_t>(k)]});
    }
  }
  return from_triplets(cols_, rows_, std::move(tris));
}

template <typename T>
std::vector<T> CsrMatrix<T>::diagonal() const {
  std::vector<T> d(static_cast<std::size_t>(std::min(rows_, cols_)), T{});
  for (index_t r = 0; r < static_cast<index_t>(d.size()); ++r) {
    for (index_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      if (col_idx_[static_cast<std::size_t>(k)] == r) {
        d[static_cast<std::size_t>(r)] = values_[static_cast<std::size_t>(k)];
      }
    }
  }
  return d;
}

template <typename T>
index_t CsrMatrix<T>::bandwidth() const {
  index_t bw = 0;
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      bw = std::max(bw, std::abs(col_idx_[static_cast<std::size_t>(k)] - r));
    }
  }
  return bw;
}

template <typename T>
double CsrMatrix<T>::residual_norm(const std::vector<T>& x,
                                   const std::vector<T>& b) const {
  require(static_cast<index_t>(b.size()) == rows_,
          "CsrMatrix::residual_norm: rhs size mismatch");
  const std::vector<T> ax = matvec(x);
  double s = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    if constexpr (std::is_same_v<T, cplx>) {
      s += std::norm(ax[i] - b[i]);
    } else {
      const double d = ax[i] - b[i];
      s += d * d;
    }
  }
  return std::sqrt(s);
}

template class CsrMatrix<double>;
template class CsrMatrix<cplx>;

namespace {

/// Shared CSR -> band conversion: detect kl/ku from the stored entries,
/// then scatter. `Band` is any band type exposing (n, kl, ku) construction
/// and set(r, c, v) — interleaved BandMatrix<T> or SplitBandMatrix.
template <typename Band, typename T>
Band csr_to_band_impl(const CsrMatrix<T>& a, const char* what) {
  require(a.rows() == a.cols(), std::string(what) + ": matrix must be square");
  index_t kl = 0, ku = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_ptr()[static_cast<std::size_t>(r)];
         k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
      kl = std::max(kl, r - c);
      ku = std::max(ku, c - r);
    }
  }
  Band b(a.rows(), kl, ku);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_ptr()[static_cast<std::size_t>(r)];
         k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      b.set(r, a.col_idx()[static_cast<std::size_t>(k)],
            a.values()[static_cast<std::size_t>(k)]);
    }
  }
  return b;
}

}  // namespace

template <typename T>
BandMatrix<T> to_band(const CsrMatrix<T>& a) {
  return csr_to_band_impl<BandMatrix<T>>(a, "to_band");
}

template BandMatrix<double> to_band(const CsrMatrix<double>&);
template BandMatrix<cplx> to_band(const CsrMatrix<cplx>&);

SplitBandMatrix to_split_band(const CsrCplx& a) {
  return csr_to_band_impl<SplitBandMatrix>(a, "to_split_band");
}

}  // namespace maps::math
