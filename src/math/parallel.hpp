// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The pool is a process-wide singleton sized from MAPS_THREADS (env) or
// hardware_concurrency(). Nested parallel_for calls from worker threads run
// serially, so library code can use parallel_for freely without deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maps::math {

class ThreadPool {
 public:
  /// Global pool. First call fixes the size.
  static ThreadPool& instance();

  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), blocking until all complete.
  /// Work is split into contiguous chunks of at least `grain` iterations.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Run fn(chunk_begin, chunk_end) over contiguous ranges (less call overhead).
  void parallel_for_chunked(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t, std::size_t)>& fn,
                            std::size_t min_chunk = 1);

  /// Register the calling thread as a pool-equivalent worker: nested
  /// parallel_for calls from it run serially inline, exactly as they do from
  /// the pool's own workers. The runtime TaskQueue marks its workers this
  /// way so concurrently executing tasks never contend for the single-task
  /// global pool. Idempotent; scoped for the thread's lifetime.
  static void register_worker_thread() { in_worker_ = true; }
  static bool is_worker_thread() { return in_worker_; }

 private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin = 0, end = 0, chunk = 1;
    std::size_t next = 0;        // next unclaimed index
    std::size_t remaining = 0;   // iterations not yet finished
    int active_workers = 0;      // workers currently inside run_task
  };

  void worker_loop();
  void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  bool stop_ = false;
  static thread_local bool in_worker_;
};

/// Convenience wrappers over the singleton pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain = 1);
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t min_chunk = 1);
std::size_t num_threads();

}  // namespace maps::math
