#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/vec.hpp"

namespace maps::math {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min_of(std::span<const double> x) {
  require(!x.empty(), "min_of: empty");
  return *std::min_element(x.begin(), x.end());
}

double max_of(std::span<const double> x) {
  require(!x.empty(), "max_of: empty");
  return *std::max_element(x.begin(), x.end());
}

double median(std::vector<double> x) { return percentile(std::move(x), 50.0); }

double percentile(std::vector<double> x, double p) {
  require(!x.empty(), "percentile: empty");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of range");
  std::sort(x.begin(), x.end());
  const double pos = p / 100.0 * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double cosine_similarity(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "cosine_similarity: size mismatch");
  const double nx = norm2(x), ny = norm2(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot(x, y) / (nx * ny);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "pearson: size mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x), my = mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double relative_l2(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "relative_l2: size mismatch");
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double relative_l2(std::span<const cplx> a, std::span<const cplx> b) {
  require(a.size() == b.size(), "relative_l2: size mismatch");
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(a[i] - b[i]);
    den += std::norm(b[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

Summary summarize(std::vector<double> x) {
  Summary s;
  s.count = x.size();
  if (x.empty()) return s;
  s.mean = mean(x);
  s.stddev = stddev(x);
  s.min = min_of(x);
  s.max = max_of(x);
  s.median = median(std::move(x));
  return s;
}

}  // namespace maps::math
