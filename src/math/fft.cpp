#include "math/fft.hpp"

#include <cmath>
#include <mutex>
#include <unordered_map>

namespace maps::math {

bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

namespace {

// Twiddle cache: per (n, inverse) table of e^{±2pi i k/n}, k < n/2.
const std::vector<cplx>& twiddles(index_t n, bool inverse) {
  static std::mutex mu;
  static std::unordered_map<index_t, std::vector<cplx>> cache[2];
  std::lock_guard lk(mu);
  auto& slot = cache[inverse ? 1 : 0][n];
  if (slot.empty()) {
    slot.resize(static_cast<std::size_t>(n / 2));
    const double sign = inverse ? 1.0 : -1.0;
    for (index_t k = 0; k < n / 2; ++k) {
      const double ang = sign * 2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
      slot[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
    }
  }
  return slot;
}

void radix2(cplx* a, index_t n, bool inverse) {
  // Bit-reversal permutation.
  for (index_t i = 1, j = 0; i < n; ++i) {
    index_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  const auto& tw = twiddles(n, inverse);
  for (index_t len = 2; len <= n; len <<= 1) {
    const index_t step = n / len;
    for (index_t i = 0; i < n; i += len) {
      for (index_t k = 0; k < len / 2; ++k) {
        const cplx w = tw[static_cast<std::size_t>(k * step)];
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (index_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

void naive_dft(cplx* a, index_t n, bool inverse) {
  std::vector<cplx> out(static_cast<std::size_t>(n));
  const double sign = inverse ? 1.0 : -1.0;
  for (index_t k = 0; k < n; ++k) {
    cplx s{};
    for (index_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * kPi * static_cast<double>(k * t % n) / static_cast<double>(n);
      s += a[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k)] = s;
  }
  const double scale = inverse ? 1.0 / static_cast<double>(n) : 1.0;
  for (index_t k = 0; k < n; ++k) a[k] = out[static_cast<std::size_t>(k)] * scale;
}

}  // namespace

void fft_inplace(std::vector<cplx>& x, bool inverse) {
  const index_t n = static_cast<index_t>(x.size());
  if (n <= 1) return;
  if (is_pow2(n)) {
    radix2(x.data(), n, inverse);
  } else {
    naive_dft(x.data(), n, inverse);
  }
}

std::vector<cplx> fft(std::vector<cplx> x) {
  fft_inplace(x, false);
  return x;
}

std::vector<cplx> ifft(std::vector<cplx> x) {
  fft_inplace(x, true);
  return x;
}

namespace detail {
void fft_strided(cplx* data, index_t n, index_t stride, bool inverse) {
  if (stride == 1) {
    if (is_pow2(n)) {
      radix2(data, n, inverse);
    } else {
      naive_dft(data, n, inverse);
    }
    return;
  }
  std::vector<cplx> tmp(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) tmp[static_cast<std::size_t>(i)] = data[i * stride];
  if (is_pow2(n)) {
    radix2(tmp.data(), n, inverse);
  } else {
    naive_dft(tmp.data(), n, inverse);
  }
  for (index_t i = 0; i < n; ++i) data[i * stride] = tmp[static_cast<std::size_t>(i)];
}
}  // namespace detail

CplxGrid fft2_impl(CplxGrid g, bool inverse) {
  const index_t nx = g.nx(), ny = g.ny();
  // Rows (x direction, contiguous).
  for (index_t j = 0; j < ny; ++j) {
    detail::fft_strided(&g(0, j), nx, 1, inverse);
  }
  // Columns (y direction, stride nx).
  for (index_t i = 0; i < nx; ++i) {
    detail::fft_strided(&g(i, 0), ny, nx, inverse);
  }
  return g;
}

CplxGrid fft2(const CplxGrid& g) { return fft2_impl(g, false); }
CplxGrid ifft2(const CplxGrid& g) { return fft2_impl(g, true); }

CplxGrid rfft2(const RealGrid& g) {
  CplxGrid c(g.nx(), g.ny());
  for (index_t n = 0; n < g.size(); ++n) c[n] = cplx{g[n], 0.0};
  return fft2(c);
}

}  // namespace maps::math
