#include "math/fft.hpp"

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "math/parallel.hpp"

namespace maps::math {

bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

namespace {

// Twiddle cache: per (n, inverse) table of e^{±2pi i k/n}, k < n/2.
// unordered_map guarantees reference stability of mapped values, so callers
// may hold the returned reference for a whole transform batch — one mutex
// round-trip per batch instead of one per FFT line.
const std::vector<cplx>& twiddles(index_t n, bool inverse) {
  static std::mutex mu;
  static std::unordered_map<index_t, std::vector<cplx>> cache[2];
  std::lock_guard lk(mu);
  auto& slot = cache[inverse ? 1 : 0][n];
  if (slot.empty()) {
    slot.resize(static_cast<std::size_t>(n / 2));
    const double sign = inverse ? 1.0 : -1.0;
    for (index_t k = 0; k < n / 2; ++k) {
      const double ang = sign * 2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
      slot[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
    }
  }
  return slot;
}

void radix2_with(cplx* a, index_t n, bool inverse, const std::vector<cplx>& tw) {
  // Bit-reversal permutation.
  for (index_t i = 1, j = 0; i < n; ++i) {
    index_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (index_t len = 2; len <= n; len <<= 1) {
    const index_t step = n / len;
    for (index_t i = 0; i < n; i += len) {
      for (index_t k = 0; k < len / 2; ++k) {
        const cplx w = tw[static_cast<std::size_t>(k * step)];
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (index_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

void radix2(cplx* a, index_t n, bool inverse) {
  radix2_with(a, n, inverse, twiddles(n, inverse));
}

void naive_dft(cplx* a, index_t n, bool inverse) {
  std::vector<cplx> out(static_cast<std::size_t>(n));
  const double sign = inverse ? 1.0 : -1.0;
  for (index_t k = 0; k < n; ++k) {
    cplx s{};
    for (index_t t = 0; t < n; ++t) {
      const double ang =
          sign * 2.0 * kPi * static_cast<double>(k * t % n) / static_cast<double>(n);
      s += a[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k)] = s;
  }
  const double scale = inverse ? 1.0 / static_cast<double>(n) : 1.0;
  for (index_t k = 0; k < n; ++k) a[k] = out[static_cast<std::size_t>(k)] * scale;
}

/// Twiddle table for a pre-planned batch, or null for the DFT fallback.
const std::vector<cplx>* table_for(index_t n, bool inverse) {
  return (n > 1 && is_pow2(n)) ? &twiddles(n, inverse) : nullptr;
}

void fft_line(cplx* a, index_t n, bool inverse, const std::vector<cplx>* tw) {
  if (n <= 1) return;
  if (tw != nullptr) {
    radix2_with(a, n, inverse, *tw);
  } else {
    naive_dft(a, n, inverse);
  }
}

/// Every column of an (nx, ny) grid, gathered through one reused scratch
/// buffer (fft_strided would reallocate it per column).
void fft_columns(cplx* base, index_t nx, index_t ny, bool inverse,
                 const std::vector<cplx>* tw, std::vector<cplx>& scratch) {
  scratch.resize(static_cast<std::size_t>(ny));
  for (index_t i = 0; i < nx; ++i) {
    cplx* p = base + i;
    for (index_t j = 0; j < ny; ++j) scratch[static_cast<std::size_t>(j)] = p[j * nx];
    fft_line(scratch.data(), ny, inverse, tw);
    for (index_t j = 0; j < ny; ++j) p[j * nx] = scratch[static_cast<std::size_t>(j)];
  }
}

}  // namespace

void fft_inplace(std::vector<cplx>& x, bool inverse) {
  const index_t n = static_cast<index_t>(x.size());
  if (n <= 1) return;
  if (is_pow2(n)) {
    radix2(x.data(), n, inverse);
  } else {
    naive_dft(x.data(), n, inverse);
  }
}

std::vector<cplx> fft(std::vector<cplx> x) {
  fft_inplace(x, false);
  return x;
}

std::vector<cplx> ifft(std::vector<cplx> x) {
  fft_inplace(x, true);
  return x;
}

namespace detail {
void fft_strided(cplx* data, index_t n, index_t stride, bool inverse) {
  if (stride == 1) {
    if (is_pow2(n)) {
      radix2(data, n, inverse);
    } else {
      naive_dft(data, n, inverse);
    }
    return;
  }
  std::vector<cplx> tmp(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) tmp[static_cast<std::size_t>(i)] = data[i * stride];
  if (is_pow2(n)) {
    radix2(tmp.data(), n, inverse);
  } else {
    naive_dft(tmp.data(), n, inverse);
  }
  for (index_t i = 0; i < n; ++i) data[i * stride] = tmp[static_cast<std::size_t>(i)];
}
}  // namespace detail

void fft2_inplace(CplxGrid& g, bool inverse) {
  const index_t nx = g.nx(), ny = g.ny();
  if (nx == 0 || ny == 0) return;
  const std::vector<cplx>* twx = table_for(nx, inverse);
  const std::vector<cplx>* twy = table_for(ny, inverse);
  std::vector<cplx> scratch;
  // Rows (x direction, contiguous), then columns (y direction, stride nx).
  for (index_t j = 0; j < ny; ++j) fft_line(&g(0, j), nx, inverse, twx);
  fft_columns(&g(0, 0), nx, ny, inverse, twy, scratch);
}

void fft2_batch_inplace(std::vector<CplxGrid>& grids, bool inverse) {
  if (grids.empty()) return;
  const index_t nx = grids.front().nx(), ny = grids.front().ny();
  if (nx == 0 || ny == 0) return;
  for (const auto& g : grids) {
    require(g.nx() == nx && g.ny() == ny, "fft2_batch_inplace: ragged batch");
  }
  const std::vector<cplx>* twx = table_for(nx, inverse);
  const std::vector<cplx>* twy = table_for(ny, inverse);
  parallel_for_chunked(0, grids.size(), [&](std::size_t b, std::size_t e) {
    std::vector<cplx> scratch;
    for (std::size_t idx = b; idx < e; ++idx) {
      CplxGrid& g = grids[idx];
      for (index_t j = 0; j < ny; ++j) fft_line(&g(0, j), nx, inverse, twx);
      fft_columns(&g(0, 0), nx, ny, inverse, twy, scratch);
    }
  });
}

void fft1_lines_batch_inplace(std::vector<CplxGrid>& grids, bool along_x,
                              bool inverse) {
  if (grids.empty()) return;
  const index_t nx = grids.front().nx(), ny = grids.front().ny();
  if (nx == 0 || ny == 0) return;
  for (const auto& g : grids) {
    require(g.nx() == nx && g.ny() == ny, "fft1_lines_batch_inplace: ragged batch");
  }
  const std::vector<cplx>* tw = table_for(along_x ? nx : ny, inverse);
  parallel_for_chunked(0, grids.size(), [&](std::size_t b, std::size_t e) {
    std::vector<cplx> scratch;
    for (std::size_t idx = b; idx < e; ++idx) {
      CplxGrid& g = grids[idx];
      if (along_x) {
        for (index_t j = 0; j < ny; ++j) fft_line(&g(0, j), nx, inverse, tw);
      } else {
        fft_columns(&g(0, 0), nx, ny, inverse, tw, scratch);
      }
    }
  });
}

CplxGrid fft2(const CplxGrid& g) {
  CplxGrid out = g;
  fft2_inplace(out, false);
  return out;
}

CplxGrid ifft2(const CplxGrid& g) {
  CplxGrid out = g;
  fft2_inplace(out, true);
  return out;
}

CplxGrid rfft2(const RealGrid& g) {
  CplxGrid c(g.nx(), g.ny());
  for (index_t n = 0; n < g.size(); ++n) c[n] = cplx{g[n], 0.0};
  return fft2(c);
}

}  // namespace maps::math
