// Dense 2D array with the MAPS flattening convention.
//
// Grid2D<T> stores an (nx, ny) scalar field with flattened index
// n = i + nx*j (x fastest). This matches the FDFD unknown ordering so field
// vectors returned by the solver can be viewed as Grid2D without copies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "math/types.hpp"

namespace maps::math {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(index_t nx, index_t ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx * ny), fill) {
    require(nx >= 0 && ny >= 0, "Grid2D: negative dimensions");
  }
  Grid2D(index_t nx, index_t ny, std::vector<T> data)
      : nx_(nx), ny_(ny), data_(std::move(data)) {
    require(static_cast<index_t>(data_.size()) == nx * ny,
            "Grid2D: data size mismatch");
  }

  index_t nx() const { return nx_; }
  index_t ny() const { return ny_; }
  index_t size() const { return nx_ * ny_; }
  bool in_bounds(index_t i, index_t j) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_;
  }

  T& operator()(index_t i, index_t j) { return data_[idx(i, j)]; }
  const T& operator()(index_t i, index_t j) const { return data_[idx(i, j)]; }
  T& operator[](index_t n) { return data_[static_cast<std::size_t>(n)]; }
  const T& operator[](index_t n) const { return data_[static_cast<std::size_t>(n)]; }

  std::size_t idx(index_t i, index_t j) const {
    return static_cast<std::size_t>(i + nx_ * j);
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Elementwise map to a new grid.
  template <typename F>
  auto map(F f) const {
    using U = decltype(f(std::declval<T>()));
    Grid2D<U> out(nx_, ny_);
    for (index_t n = 0; n < size(); ++n) out[n] = f(data_[static_cast<std::size_t>(n)]);
    return out;
  }

  bool same_shape(const Grid2D& o) const { return nx_ == o.nx_ && ny_ == o.ny_; }

 private:
  index_t nx_ = 0, ny_ = 0;
  std::vector<T> data_;
};

using RealGrid = Grid2D<double>;
using CplxGrid = Grid2D<cplx>;

}  // namespace maps::math
