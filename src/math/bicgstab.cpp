#include "math/bicgstab.hpp"

#include <cmath>

#include "math/vec.hpp"

namespace maps::math {

BicgstabResult bicgstab(
    const std::function<std::vector<cplx>(const std::vector<cplx>&)>& op,
    const std::vector<cplx>& diag, const std::vector<cplx>& b,
    const BicgstabOptions& opt) {
  const std::size_t n = b.size();
  BicgstabResult res;
  res.x.assign(n, cplx{});

  auto precond = [&](std::vector<cplx> v) {
    if (!diag.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (diag[i] != cplx{}) v[i] /= diag[i];
      }
    }
    return v;
  };

  const double bnorm = norm2(std::span<const cplx>(b));
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  std::vector<cplx> r = b;  // r = b - A*0
  std::vector<cplx> r0 = r;
  std::vector<cplx> p(n, cplx{}), v(n, cplx{});
  cplx rho{1.0}, alpha{1.0}, omega{1.0};

  for (int it = 0; it < opt.max_iters; ++it) {
    if (opt.check_cancel) opt.check_cancel();
    const cplx rho_new = dotc(std::span<const cplx>(r0), std::span<const cplx>(r));
    if (std::abs(rho_new) < 1e-300) break;  // breakdown
    if (it == 0) {
      p = r;
    } else {
      const cplx beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;

    const std::vector<cplx> phat = precond(p);
    v = op(phat);
    const cplx r0v = dotc(std::span<const cplx>(r0), std::span<const cplx>(v));
    if (std::abs(r0v) < 1e-300) break;
    alpha = rho / r0v;

    std::vector<cplx> s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(std::span<const cplx>(s)) / bnorm < opt.rtol) {
      for (std::size_t i = 0; i < n; ++i) res.x[i] += alpha * phat[i];
      res.iterations = it + 1;
      res.relative_residual = norm2(std::span<const cplx>(s)) / bnorm;
      res.converged = true;
      return res;
    }

    const std::vector<cplx> shat = precond(s);
    const std::vector<cplx> t = op(shat);
    const double tt = std::pow(norm2(std::span<const cplx>(t)), 2);
    if (tt < 1e-300) break;
    omega = dotc(std::span<const cplx>(t), std::span<const cplx>(s)) / tt;

    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    res.iterations = it + 1;
    res.relative_residual = norm2(std::span<const cplx>(r)) / bnorm;
    if (res.relative_residual < opt.rtol) {
      res.converged = true;
      return res;
    }
    if (std::abs(omega) < 1e-300) break;
  }
  return res;
}

BicgstabResult bicgstab(const CsrCplx& A, const std::vector<cplx>& b,
                        const BicgstabOptions& opt) {
  require(A.rows() == A.cols(), "bicgstab: matrix must be square");
  require(static_cast<index_t>(b.size()) == A.rows(), "bicgstab: rhs size mismatch");
  std::vector<cplx> diag;
  if (opt.jacobi_precond) diag = A.diagonal();
  return bicgstab([&A](const std::vector<cplx>& x) { return A.matvec(x); }, diag, b,
                  opt);
}

}  // namespace maps::math
