// Split-complex banded LU: the prepared-operator kernel of the async
// dataset-generation runtime.
//
// Same algorithm and storage convention as BandMatrix<cplx> (LAPACK
// xGBTF2/xGBTRS with partial pivoting, column-major (2*kl+ku+1) x n band
// array), but the complex entries are stored as two separate double arrays
// (re/im). The factorization inner loops then compile to plain double FMAs
// with no interleave shuffles and no libstdc++ complex-multiply fixups,
// which is worth >2x on the FDFD band profile (n = nx*ny, kl = ku = nx).
// Pivot selection uses the same |re| + |im| magnitude as BandMatrix, so the
// elimination order is identical; entries agree with the interleaved kernel
// to rounding (~1e-15 relative), not bit-for-bit.
#pragma once

#include <vector>

#include "math/types.hpp"

namespace maps::math {

/// True when the MAPS_SOLVER_INTERLEAVED environment variable requests the
/// legacy interleaved-complex BandMatrix<cplx> kernel instead of the split
/// path (any value except unset/empty/"0"). Read per call, so tests and
/// benches can toggle the fallback with setenv().
bool interleaved_fallback_requested();

class SplitBandMatrix {
 public:
  SplitBandMatrix() = default;
  /// n x n matrix with kl subdiagonals and ku superdiagonals.
  SplitBandMatrix(index_t n, index_t kl, index_t ku);

  index_t n() const { return n_; }
  index_t kl() const { return kl_; }
  index_t ku() const { return ku_; }

  /// In-band element write (pre-factorization assembly).
  void set(index_t i, index_t j, cplx v);
  cplx get(index_t i, index_t j) const;

  /// In-place LU with partial pivoting (throws MapsError on singularity).
  void factorize();
  bool factorized() const { return factorized_; }

  /// Solve A x = b / A^T x = b against the factors; b is overwritten.
  void solve_inplace(std::vector<cplx>& b) const;
  void solve_transposed_inplace(std::vector<cplx>& b) const;

  /// Multi-RHS variants: one sweep over the factors per batch (the band
  /// array dominates the working set; RHS vectors are small).
  void solve_multi_inplace(std::vector<std::vector<cplx>>& bs) const;
  void solve_transposed_multi_inplace(std::vector<std::vector<cplx>>& bs) const;

  std::size_t storage_bytes() const {
    return (re_.size() + im_.size()) * sizeof(double) +
           ipiv_.size() * sizeof(index_t);
  }

 private:
  std::size_t at(index_t i, index_t j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(ldab_) +
           static_cast<std::size_t>(kl_ + ku_ + i - j);
  }

  index_t n_ = 0, kl_ = 0, ku_ = 0;
  index_t ldab_ = 0;  // 2*kl + ku + 1
  std::vector<double> re_, im_;
  std::vector<index_t> ipiv_;
  bool factorized_ = false;
};

}  // namespace maps::math
