// Split-complex banded LU: the prepared-operator kernel of the async
// dataset-generation runtime.
//
// Same algorithm and storage convention as BandMatrix<cplx> (LAPACK
// xGBTF2/xGBTRS with partial pivoting, column-major (2*kl+ku+1) x n band
// array), but the complex entries are stored as two separate scalar arrays
// (re/im). The factorization inner loops then compile to plain FMAs with no
// interleave shuffles and no libstdc++ complex-multiply fixups, which is
// worth >2x on the FDFD band profile (n = nx*ny, kl = ku = nx). Pivot
// selection uses the same |re| + |im| magnitude as BandMatrix, so the
// elimination order is identical; entries agree with the interleaved kernel
// to rounding (~1e-15 relative), not bit-for-bit.
//
// Precision: the kernel is templated on the factor scalar T.
//   SplitBandMatrixT<double> (alias SplitBandMatrix)   the exact path; all
//     arithmetic is double, results are unchanged from the untemplated
//     kernel bit for bit.
//   SplitBandMatrixT<float> (alias SplitBandMatrixF)   factors occupy half
//     the bytes and the O(n*bw^2) factorization sweep runs in fp32 at twice
//     the effective memory bandwidth. Right-hand sides stay double complex:
//     the solve loops widen factor loads to double, so a solve against fp32
//     factors loses accuracy only through the factors themselves (~1e-7
//     relative). solver::DirectBandedBackend layers mixed-precision
//     iterative refinement on top to recover double accuracy.
#pragma once

#include <vector>

#include "math/types.hpp"

namespace maps::math {

/// True when the MAPS_SOLVER_INTERLEAVED environment variable requests the
/// legacy interleaved-complex BandMatrix<cplx> kernel instead of the split
/// path (any value except unset/empty/"0"). Read per call, so tests and
/// benches can toggle the fallback with setenv().
bool interleaved_fallback_requested();

template <typename T>
class SplitBandMatrixT {
 public:
  SplitBandMatrixT() = default;
  /// n x n matrix with kl subdiagonals and ku superdiagonals.
  SplitBandMatrixT(index_t n, index_t kl, index_t ku);

  /// Precision conversion: copy another instantiation's band entries,
  /// rounding each to T. Requires the source to be unfactorized (converting
  /// pivoted factors would not produce a valid factorization in T).
  template <typename U>
  explicit SplitBandMatrixT(const SplitBandMatrixT<U>& other);

  index_t n() const { return n_; }
  index_t kl() const { return kl_; }
  index_t ku() const { return ku_; }

  /// In-band element write (pre-factorization assembly).
  void set(index_t i, index_t j, cplx v);
  cplx get(index_t i, index_t j) const;

  /// In-place LU with partial pivoting (throws MapsError on singularity).
  /// Elimination arithmetic runs in T: exact for double, fp32 (refinable)
  /// for float.
  void factorize();
  bool factorized() const { return factorized_; }

  /// Solve A x = b / A^T x = b against the factors; b is overwritten.
  /// RHS vectors are always double complex; factor loads widen to double.
  void solve_inplace(std::vector<cplx>& b) const;
  void solve_transposed_inplace(std::vector<cplx>& b) const;

  /// Multi-RHS variants: one sweep over the factors per batch (the band
  /// array dominates the working set; RHS vectors are small).
  void solve_multi_inplace(std::vector<std::vector<cplx>>& bs) const;
  void solve_transposed_multi_inplace(std::vector<std::vector<cplx>>& bs) const;

  std::size_t storage_bytes() const {
    return (re_.size() + im_.size()) * sizeof(T) + ipiv_.size() * sizeof(index_t);
  }

 private:
  template <typename U>
  friend class SplitBandMatrixT;

  std::size_t at(index_t i, index_t j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(ldab_) +
           static_cast<std::size_t>(kl_ + ku_ + i - j);
  }

  index_t n_ = 0, kl_ = 0, ku_ = 0;
  index_t ldab_ = 0;  // 2*kl + ku + 1
  std::vector<T> re_, im_;
  std::vector<index_t> ipiv_;
  bool factorized_ = false;
};

extern template class SplitBandMatrixT<double>;
extern template class SplitBandMatrixT<float>;
extern template SplitBandMatrixT<float>::SplitBandMatrixT(
    const SplitBandMatrixT<double>&);
extern template SplitBandMatrixT<double>::SplitBandMatrixT(
    const SplitBandMatrixT<float>&);

/// The exact double-precision kernel (the historical SplitBandMatrix name;
/// every pre-existing consumer compiles unchanged against the alias).
using SplitBandMatrix = SplitBandMatrixT<double>;
/// The half-byte fp32 sibling backing mixed-precision refinement.
using SplitBandMatrixF = SplitBandMatrixT<float>;

}  // namespace maps::math
